"""The trace-category contract: canonical names, and the docs-vs-code diff.

Trace points are emitted with *instance* prefixes (``node0.lcp.send.pickup``,
``node0->sw0.tx``, ``daemon.node1.crash``) so a single trace distinguishes
the two LCPs of a ping.  The *contract* — what docs/TRACING.md documents and
what downstream tooling may rely on — is the **canonical** category, with
the instance stripped:

==============================  =================================
emitted                         canonical
==============================  =================================
``node0.lcp.send.pickup``       ``lcp.send.pickup``
``node0.pci.dma``               ``pci.dma``
``node0.hostdma.write_host``    ``hostdma.write_host``
``node0->sw0.tx``               ``link.tx``
``sw0.forward``                 ``switch.forward``
``daemon.node1.crash``          ``daemon.crash``
``fault.link_down.raise``       ``fault.<kind>.raise``  (doc pattern)
==============================  =================================

:func:`canonical_category` performs the stripping;
:func:`documented_categories` parses the reference tables out of
docs/TRACING.md; :func:`undocumented` diffs a tracer's output against them.
The unit tests and the CI gate both run through this module, so the
documentation cannot rot without breaking the build.
"""

from __future__ import annotations

import pathlib
import re
from typing import Iterable, Optional

from repro.sim.trace import Tracer

__all__ = [
    "canonical_category",
    "documented_categories",
    "documented_metrics",
    "matches_pattern",
    "undocumented",
    "tracing_doc_path",
]

#: ``node<N>.`` instance prefix (one simulated host).
_NODE_PREFIX = re.compile(r"^node\d+\.")
#: ``daemon.node<N>.`` — the VMMC daemon's Ethernet address prefix.
_DAEMON_INSTANCE = re.compile(r"^daemon\.node\d+\.")
#: A switch instance name: the hand-wired testbeds (``sw0``, ``sw1``)
#: or a generated-topology switch (``ft0:edge[0][1]``, ``mesh0:sw[2][3]``,
#: ``ft0:core[1][1]`` — fabric prefix, colon, tier, bracketed coords).
_SWITCH = re.compile(
    r"^(?:sw\d+|[A-Za-z][A-Za-z0-9_-]*:(?:sw|edge|agg|core)"
    r"(?:\[\d+\])+)$")


def canonical_category(category: str) -> str:
    """Map an emitted (instance-prefixed) category to its canonical form."""
    head = category.split(".", 1)[0]
    if "->" in head:
        # Link instance names are `src->dst` (never contain a dot).
        return "link" + category[len(head):]
    if _SWITCH.match(head):
        return "switch" + category[len(head):]
    if _DAEMON_INSTANCE.match(category):
        return _DAEMON_INSTANCE.sub("daemon.", category)
    return _NODE_PREFIX.sub("", category)


def node_of(category: str) -> Optional[str]:
    """The node instance an emitted category belongs to, if identifiable."""
    match = re.match(r"^(node\d+)\.", category)
    if match:
        return match.group(1)
    match = re.match(r"^daemon\.(node\d+)\.", category)
    if match:
        return match.group(1)
    return None


def matches_pattern(pattern: str, category: str) -> bool:
    """True if a canonical ``category`` matches a documented ``pattern``.

    Patterns are dot-paths whose segments are either literals or
    ``<wildcard>`` placeholders matching exactly one segment
    (``fault.<kind>.raise`` matches ``fault.link_down.raise``).
    """
    pseg = pattern.split(".")
    cseg = category.split(".")
    if len(pseg) != len(cseg):
        return False
    return all(p == c or (p.startswith("<") and p.endswith(">"))
               for p, c in zip(pseg, cseg))


def tracing_doc_path() -> pathlib.Path:
    """Location of docs/TRACING.md relative to the installed package."""
    return (pathlib.Path(__file__).resolve().parents[3]
            / "docs" / "TRACING.md")


_ROW = re.compile(r"^\|\s*`([^`]+)`\s*\|\s*([^|]*)\|")


def _parse_tables(text: str) -> dict[str, dict[str, str]]:
    """First-column backticked entries of every reference table, grouped by
    the nearest ``## `` heading; value is the second column (stripped)."""
    sections: dict[str, dict[str, str]] = {}
    current = ""
    for line in text.splitlines():
        if line.startswith("## "):
            current = line[3:].strip()
            continue
        match = _ROW.match(line)
        if match:
            sections.setdefault(current, {})[match.group(1)] = \
                match.group(2).strip()
    return sections


def documented_categories(path: pathlib.Path | None = None
                          ) -> dict[str, str]:
    """Category pattern → coverage class (``e2e`` or ``rare``) from the
    "Trace category reference" tables of docs/TRACING.md."""
    text = (path or tracing_doc_path()).read_text()
    out: dict[str, str] = {}
    for heading, rows in _parse_tables(text).items():
        if heading.startswith("Trace category reference"):
            out.update(rows)
    if not out:
        raise ValueError("no category tables found in docs/TRACING.md")
    return out


def documented_metrics(path: pathlib.Path | None = None) -> set[str]:
    """Base metric names from the "Metrics reference" table."""
    text = (path or tracing_doc_path()).read_text()
    names: set[str] = set()
    for heading, rows in _parse_tables(text).items():
        if heading.startswith("Metrics reference"):
            for entry in rows:
                names.add(entry.split("{", 1)[0])
    if not names:
        raise ValueError("no metrics table found in docs/TRACING.md")
    return names


def undocumented(categories: Iterable[str],
                 patterns: Iterable[str] | None = None) -> list[str]:
    """Emitted categories (canonicalised) with no documented pattern.

    ``categories`` are raw emitted categories (or a :class:`Tracer`);
    returns the sorted canonical categories that match nothing in
    docs/TRACING.md — the CI gate fails when this is non-empty.
    """
    if isinstance(categories, Tracer):
        categories = categories.categories()
    if patterns is None:
        patterns = documented_categories()
    patterns = list(patterns)
    missing = set()
    for category in categories:
        canonical = canonical_category(category)
        if not any(matches_pattern(p, canonical) for p in patterns):
            missing.add(canonical)
    return sorted(missing)
