"""§5.2 latency breakdown regenerated from traces of one instrumented send.

The paper's hardware-limit argument (section 5.2) accounts one short send
stage by stage: post (library + PIO doorbell), sending LANai (pickup,
header build, net DMA), wire (links + switch), receiving LANai + host DMA,
and the spinner's observation.  This module measures those stages from the
trace of an *actual* simulated send — not from the cost constants — so the
report doubles as a consistency proof: the stages are defined as
consecutive intervals between trace timestamps, in integer nanoseconds, so
they sum to the measured end-to-end latency **exactly** (the acceptance
criterion allows 1 %; we deliver 0).

:func:`measure_stage_breakdown` is the programmatic entry point; the
``python -m repro breakdown`` CLI and ``benchmarks/bench_latency_breakdown``
both render its output, and :mod:`repro.bench.breakdown` keeps its original
µs-level dataclass as a thin view over this one.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Optional

from repro.sim import Tracer
from repro.obs.metrics import MetricsRegistry

#: Stage labels, in wire order (the §5.2 row names).
STAGE_LABELS = (
    "post request (library + PIO)",
    "sending LANai (pickup, header, net DMA)",
    "wire (links + switch)",
    "receiving LANai + host DMA into memory",
    "spin observation (cache-line fill)",
)

#: Short machine names for JSON output, index-aligned with STAGE_LABELS.
STAGE_KEYS = ("post", "lanai_send", "wire", "lanai_recv", "deliver")


@dataclass(frozen=True)
class StageBreakdown:
    """Per-stage costs (integer ns) of one short one-way send."""

    size: int
    stages: tuple[tuple[str, int], ...]   # (label, duration_ns)
    total_ns: int

    @property
    def sum_ns(self) -> int:
        return sum(ns for _, ns in self.stages)

    def check(self, tolerance: float = 0.01) -> None:
        """Raise if the stage sum strays from the end-to-end latency."""
        if self.total_ns <= 0:
            raise ValueError(f"non-positive total latency {self.total_ns}")
        drift = abs(self.sum_ns - self.total_ns) / self.total_ns
        if drift > tolerance:
            raise ValueError(
                f"stage sum {self.sum_ns} ns vs total {self.total_ns} ns: "
                f"drift {drift:.2%} exceeds {tolerance:.0%}")

    def rows(self) -> list[tuple[str, float]]:
        """(label, µs) rows, TOTAL last — the paper's table shape."""
        rows = [(label, ns / 1000.0) for label, ns in self.stages]
        rows.append(("TOTAL", self.total_ns / 1000.0))
        return rows

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready form consumed by benchmarks/ and the CLI ``--json``."""
        return {
            "size_bytes": self.size,
            "stages_ns": {key: ns for key, (_, ns)
                          in zip(STAGE_KEYS, self.stages)},
            "sum_ns": self.sum_ns,
            "total_ns": self.total_ns,
            "total_us": self.total_ns / 1000.0,
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)


def traced_oneway_send(size: int = 4,
                       keep=None,
                       registry: Optional[MetricsRegistry] = None,
                       ) -> tuple[Tracer, dict[str, int], Any]:
    """Run one fully traced short send on a fresh 2-node pair.

    Returns ``(tracer, marks, pair)`` where ``marks`` carries the
    application-level ``call`` and ``observed`` timestamps.  ``keep=None``
    records *every* category (the Perfetto exporter wants the whole run);
    pass a predicate to filter.  A :class:`MetricsRegistry` is installed
    when given, so the same run yields a metrics snapshot.
    """
    # Imported here: repro.bench imports repro.cluster imports repro.hw,
    # which imports repro.obs.metrics — keep module import acyclic.
    from repro.bench.microbench import VmmcPair, _stamp, spin_until_stamp
    from repro.cluster import TestbedConfig

    pair = VmmcPair(TestbedConfig(nnodes=2, memory_mb=8),
                    buffer_bytes=16 * 1024)
    env = pair.env
    tracer = Tracer(keep=keep)
    env.tracer = tracer
    if registry is not None:
        registry.install(env)
    marks: dict[str, int] = {}

    def app():
        _stamp(pair.src_a, size, 1)
        marks["call"] = env.now
        yield pair.ep_a.send(pair.src_a, pair.to_b, size)
        yield spin_until_stamp(pair.ep_b, pair.inbox_b, size, 1)
        marks["observed"] = env.now

    env.run(until=env.process(app()))
    return tracer, marks, pair


def breakdown_from_trace(tracer: Tracer, marks: dict[str, int],
                         size: int) -> StageBreakdown:
    """Decompose a traced send into the §5.2 stages.

    The stage boundaries are trace timestamps of the canonical categories
    (`vmmc.send.posted`, `lcp.send.pickup`, `lanai.netsend`,
    `lanai.netrecv`, `hostdma.write_host`); consecutive differences are
    the stages, so their sum telescopes to ``observed - call`` exactly.
    """
    from repro.obs.contract import canonical_category, node_of

    def first(canonical: str, after: int = 0,
              node: Optional[str] = None) -> int:
        for record in tracer:
            if record.time < after:
                continue
            if not canonical_category(record.category).startswith(canonical):
                continue
            if node is not None and node_of(record.category) != node:
                continue
            return record.time
        raise LookupError(f"no trace {canonical!r} after {after} "
                          f"(have {sorted(set(tracer.categories()))})")

    call = marks["call"]
    observed = marks["observed"]
    posted = first("vmmc.send.posted", after=call)
    pickup = first("lcp.send.pickup", after=posted, node="node0")
    injected = first("lanai.netsend", after=pickup)
    arrived = first("lanai.netrecv", after=injected)
    # The receive-side scatter DMA: restrict to node1, because the sender's
    # completion-word writeback is also a `hostdma.write_host`.
    delivered = first("hostdma.write_host", after=arrived, node="node1")
    boundaries = (call, posted, injected, arrived, delivered, observed)
    stages = tuple(
        (label, boundaries[i + 1] - boundaries[i])
        for i, label in enumerate(STAGE_LABELS))
    return StageBreakdown(size=size, stages=stages,
                          total_ns=observed - call)


def measure_stage_breakdown(size: int = 4,
                            registry: Optional[MetricsRegistry] = None,
                            ) -> StageBreakdown:
    """Run one traced short send and decompose it (§5.2 report)."""
    tracer, marks, _pair = traced_oneway_send(size, registry=registry)
    return breakdown_from_trace(tracer, marks, size)
