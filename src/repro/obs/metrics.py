"""Metrics registry: counters, gauges and histograms for the simulator.

The registry is the quantitative half of the observability layer (the
qualitative half is :mod:`repro.sim.trace`).  Hardware and protocol modules
record into it through the module-level helpers :func:`count`,
:func:`set_gauge` and :func:`observe`, which — exactly like
:func:`repro.sim.trace.emit` — are no-ops when the environment carries no
registry, so uninstrumented runs pay one attribute lookup per call site.

Design points:

* **Labels.**  A metric is identified by a base name plus a sorted label
  set (``link.bytes{link=node0->sw0}``), so per-instance detail (per link,
  per LCP, per channel) never requires inventing new metric names.
* **Determinism.**  Snapshots are plain sorted dicts of ints/floats; the
  simulator is deterministic, so two runs with the same seed produce
  *identical* snapshots — asserted by the test suite and usable as a
  regression oracle.
* **Histograms** keep every observation (simulated runs are small) and
  report exact rank-interpolated quantiles, giving the latency
  p50/p90/p99/p999 the ROADMAP's congestion-backoff tuning and the KV
  serving tier's tail reports need.

Usage::

    registry = MetricsRegistry().install(env)   # env.metrics = registry
    ... run the simulation ...
    snap = registry.snapshot()
    snap["link.bytes{link=node0->sw0}"]          # -> int
    snap["vmmc.send.sync_ns{node=node0}"]["p90"]  # -> float
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "count",
    "set_gauge",
    "observe",
    "quantile_key",
    "registry_of",
]

#: Quantiles reported in histogram snapshots.
SNAPSHOT_QUANTILES = (0.5, 0.9, 0.99, 0.999)


def quantile_key(q: float) -> str:
    """Render a quantile as a snapshot key: 0.5→p50, 0.99→p99, 0.999→p999.

    The key is built from the decimal digits of ``q`` (not ``int(q*100)``,
    which collapsed 0.999 onto p99), so distinct quantiles always get
    distinct keys and lexicographically longer keys are deeper tails.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile {q} outside [0, 1]")
    if q == 1.0:
        return "p100"
    digits = f"{q:.12f}"[2:].rstrip("0") or "0"
    # pad so p5 renders as the conventional p50 (and p9 as p90)
    return "p" + digits.ljust(2, "0")


class Counter:
    """A monotonically increasing integer/float total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, n: float = 1) -> None:
        if n < 0:
            raise ValueError(f"counter increment must be >= 0, got {n}")
        self.value += n

    def snapshot(self) -> float:
        return self.value


class Gauge:
    """A point-in-time value; the high-water mark is tracked alongside."""

    __slots__ = ("value", "max_value")

    def __init__(self) -> None:
        self.value: float = 0
        self.max_value: float = 0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def snapshot(self) -> dict[str, float]:
        return {"value": self.value, "max": self.max_value}


class Histogram:
    """All observed samples, with exact interpolated quantiles.

    Simulated runs produce at most a few thousand observations per metric,
    so keeping the raw samples is cheap and makes the quantiles exact and
    deterministic (no probabilistic sketches).
    """

    __slots__ = ("_values", "_sorted", "_sum")

    def __init__(self) -> None:
        self._values: list[float] = []
        self._sorted = True
        self._sum: float = 0

    def observe(self, value: float) -> None:
        if self._values and value < self._values[-1]:
            self._sorted = False
        self._values.append(value)
        self._sum += value

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def sum(self) -> float:
        # Maintained incrementally in observe(); recomputing over a
        # million-sample KV histogram made every snapshot O(n).
        return self._sum

    def _ensure_sorted(self) -> list[float]:
        if not self._sorted:
            self._values.sort()
            self._sorted = True
        return self._values

    def quantile(self, q: float) -> float:
        """Rank-interpolated quantile of the observed samples."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        values = self._ensure_sorted()
        if not values:
            raise ValueError("quantile of an empty histogram")
        pos = q * (len(values) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(values) - 1)
        frac = pos - lo
        return values[lo] * (1 - frac) + values[hi] * frac

    def snapshot(self) -> dict[str, float]:
        if not self._values:
            return {"count": 0, "sum": 0}
        values = self._ensure_sorted()
        snap: dict[str, float] = {
            "count": len(values),
            "sum": self._sum,
            "min": values[0],
            "max": values[-1],
        }
        for q in SNAPSHOT_QUANTILES:
            snap[quantile_key(q)] = self.quantile(q)
        return snap


def _key(name: str, labels: dict[str, Any]) -> tuple[str, tuple]:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render(name: str, labels: tuple) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Holds every metric of one simulated run.

    One registry per :class:`~repro.sim.core.Environment`; install it with
    :meth:`install` and every instrumented module starts recording.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, tuple], Any] = {}
        self._kinds: dict[str, type] = {}

    # -- metric factories -----------------------------------------------------
    def _get(self, cls: type, name: str, labels: dict[str, Any]):
        seen = self._kinds.setdefault(name, cls)
        if seen is not cls:
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{seen.__name__}, cannot reuse it as {cls.__name__}")
        key = _key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls()
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get(Histogram, name, labels)

    # -- wiring ---------------------------------------------------------------
    def install(self, env: Any) -> "MetricsRegistry":
        """Attach this registry to an environment (``env.metrics``)."""
        env.metrics = self
        return self

    # -- introspection --------------------------------------------------------
    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> list[str]:
        """Sorted base metric names (label sets collapsed)."""
        return sorted({name for name, _ in self._metrics})

    def snapshot(self) -> dict[str, Any]:
        """Flat, deterministic view: ``name{labels}`` → value/dict.

        Counters render as numbers, gauges as ``{value, max}`` dicts,
        histograms as ``{count, sum, min, max, p50, p90, p99, p999}``
        dicts.
        Keys are sorted, so two identically seeded runs produce *equal*
        snapshots (`==` on the dicts).
        """
        out: dict[str, Any] = {}
        for (name, labels), metric in sorted(self._metrics.items()):
            out[_render(name, labels)] = metric.snapshot()
        return out

    def rows(self) -> list[list[Any]]:
        """Table rows ``[metric, value]`` for the CLI's table renderer."""
        rows: list[list[Any]] = []
        for key, value in self.snapshot().items():
            if isinstance(value, dict):
                rendered = " ".join(f"{k}={_fmt_num(v)}"
                                    for k, v in value.items())
            else:
                rendered = _fmt_num(value)
            rows.append([key, rendered])
        return rows


def _fmt_num(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.2f}"
    return str(int(value))


# -- emitter-side helpers (no-op without a registry) --------------------------
def registry_of(env: Any) -> Optional[MetricsRegistry]:
    """The environment's registry, or None (the common fast case)."""
    return getattr(env, "metrics", None)


def count(env: Any, name: str, n: float = 1, **labels: Any) -> None:
    """Increment a counter if ``env`` carries a registry."""
    registry = getattr(env, "metrics", None)
    if registry is not None:
        registry.counter(name, **labels).inc(n)


def set_gauge(env: Any, name: str, value: float, **labels: Any) -> None:
    """Set a gauge if ``env`` carries a registry."""
    registry = getattr(env, "metrics", None)
    if registry is not None:
        registry.gauge(name, **labels).set(value)


def observe(env: Any, name: str, value: float, **labels: Any) -> None:
    """Record a histogram sample if ``env`` carries a registry."""
    registry = getattr(env, "metrics", None)
    if registry is not None:
        registry.histogram(name, **labels).observe(value)
