"""Chrome trace-event / Perfetto JSON export of a simulated run.

Turns the flat :class:`~repro.sim.trace.Tracer` record list into the JSON
Array Format understood by ``chrome://tracing`` and https://ui.perfetto.dev,
so a whole simulated cluster run can be opened in a real trace viewer:

* **process (pid)** = one simulated node (``node0``, ``node1``, ...); the
  shared fabric (links, switches, Ethernet, fault injector, mapping phase)
  gets its own pid;
* **thread (tid)** = one component of that node (``lcp``, ``pci``,
  ``hostdma``, ``kernel``, ``daemon``...) — for the fabric, one tid per
  link/switch instance;
* events carrying an explicit duration in their payload (``pci.dma``'s
  ``duration``, ``link.tx``'s ``wire_time``) become *complete* events
  (phase ``X``) and render as bars; everything else is a thread-scoped
  *instant* (phase ``i``);
* timestamps are microseconds (the format's unit), converted from the
  simulator's integer nanoseconds with 1 ns resolution preserved
  (fractional µs).

The exporter is pure: it reads a tracer, returns the document as a dict
(and optionally writes it), and never touches the simulation.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Optional

from repro.sim.trace import Tracer
from repro.obs.contract import canonical_category, node_of

__all__ = ["export_chrome_trace", "FABRIC_PROCESS"]

#: Display name of the pid that owns fabric-wide events.
FABRIC_PROCESS = "fabric"

#: payload key holding an explicit event duration (ns), per canonical
#: category prefix — these become phase-"X" complete events.
_DURATION_KEYS = {
    "pci.dma": "duration",
    "eisa.dma": "duration",
    "link.tx": "wire_time",
}

#: payload keys that can carry the owning node when the category itself
#: has no instance prefix (e.g. ``lanai.netsend`` emitted with ``nic=``).
_NODE_PAYLOAD_KEYS = ("nic", "node", "host")


def _process_of(record) -> str:
    node = node_of(record.category)
    if node is not None:
        return node
    for key in _NODE_PAYLOAD_KEYS:
        value = record.payload.get(key)
        if isinstance(value, str) and value:
            return value
    return FABRIC_PROCESS


def _thread_of(record, process: str) -> str:
    head = record.category.split(".", 1)[0]
    if "->" in head:                       # link instance
        return head
    if process == FABRIC_PROCESS:
        canonical = canonical_category(record.category)
        root = canonical.split(".", 1)[0]
        if root == "switch":
            return head                    # the switch instance name
        return root                        # ether / fault / mapping / ...
    return canonical_category(record.category).split(".", 1)[0]


def _duration_ns(record) -> Optional[int]:
    canonical = canonical_category(record.category)
    for prefix, key in _DURATION_KEYS.items():
        if canonical.startswith(prefix):
            value = record.payload.get(key)
            if isinstance(value, (int, float)):
                return int(value)
    return None


def _jsonable(value: Any) -> Any:
    """Chrome's args must be JSON; coerce numpy scalars, tuples etc."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if hasattr(value, "item"):             # numpy scalar
        return value.item()
    return repr(value)


def export_chrome_trace(tracer: Tracer,
                        path: str | pathlib.Path | None = None,
                        ) -> dict[str, Any]:
    """Build (and optionally write) the Chrome trace-event document.

    Returns the document as a dict: ``{"traceEvents": [...], ...}``.
    Events are ordered by timestamp (stable for ties), so the per-thread
    event streams are monotonically non-decreasing — a property the unit
    tests assert, since some viewers silently drop out-of-order events.
    """
    pids: dict[str, int] = {}
    tids: dict[tuple[str, str], int] = {}
    meta: list[dict[str, Any]] = []
    events: list[tuple[int, int, dict[str, Any]]] = []

    def pid_of(process: str) -> int:
        if process not in pids:
            pids[process] = len(pids) + 1
            meta.append({
                "ph": "M", "name": "process_name", "pid": pids[process],
                "tid": 0, "args": {"name": process},
            })
        return pids[process]

    def tid_of(process: str, thread: str) -> int:
        key = (process, thread)
        if key not in tids:
            tids[key] = len(tids) + 1
            meta.append({
                "ph": "M", "name": "thread_name", "pid": pid_of(process),
                "tid": tids[key], "args": {"name": thread},
            })
        return tids[key]

    for seq, record in enumerate(tracer):
        process = _process_of(record)
        pid = pid_of(process)
        tid = tid_of(process, _thread_of(record, process))
        event: dict[str, Any] = {
            "name": canonical_category(record.category),
            "cat": record.category,
            "pid": pid,
            "tid": tid,
            "ts": record.time / 1000.0,
            "args": {k: _jsonable(v) for k, v in record.payload.items()},
        }
        duration = _duration_ns(record)
        if duration is not None:
            event["ph"] = "X"
            event["dur"] = duration / 1000.0
        else:
            event["ph"] = "i"
            event["s"] = "t"
        events.append((record.time, seq, event))

    events.sort(key=lambda item: (item[0], item[1]))
    document = {
        "traceEvents": meta + [event for _, _, event in events],
        "displayTimeUnit": "ns",
        "otherData": {
            "generator": "repro.obs.perfetto",
            "records": len(tracer),
            "dropped": tracer.dropped,
        },
    }
    if path is not None:
        pathlib.Path(path).write_text(json.dumps(document, indent=1))
    return document
