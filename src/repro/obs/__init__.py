"""Observability: metrics registry, Perfetto export, latency breakdown.

Cross-cutting instrumentation for the whole simulator (DESIGN S18):

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` of counters, gauges
  and histograms (latency quantiles, retransmit counts, DMA-queue depth,
  link utilisation), recorded through no-op-by-default helpers exactly
  like :func:`repro.sim.trace.emit`.  Install one per environment with
  ``MetricsRegistry().install(env)``.
* :mod:`repro.obs.perfetto` — Chrome trace-event / Perfetto JSON exporter
  over the existing :class:`~repro.sim.trace.Tracer`: pids per node, tids
  per component, so a full simulated run opens in a trace viewer.
* :mod:`repro.obs.breakdown` — the paper's §5.2 per-stage latency table
  regenerated from traces of one actual send; stage sums telescope to the
  end-to-end latency exactly.
* :mod:`repro.obs.contract` — the documented trace-category namespace
  (docs/TRACING.md) and the docs-vs-code diff that keeps it honest.
* :mod:`repro.obs.workload` — the instrumented end-to-end run the
  contract is checked against.

CLI surface: ``python -m repro metrics`` and ``python -m repro trace
--perfetto out.json`` (see README "Observability").
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    count,
    observe,
    registry_of,
    set_gauge,
)
from repro.obs.contract import (
    canonical_category,
    documented_categories,
    documented_metrics,
    undocumented,
)
from repro.obs.perfetto import export_chrome_trace
from repro.obs.breakdown import (
    StageBreakdown,
    breakdown_from_trace,
    measure_stage_breakdown,
    traced_oneway_send,
)
from repro.obs.workload import run_contract_workload

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "StageBreakdown",
    "breakdown_from_trace",
    "canonical_category",
    "count",
    "documented_categories",
    "documented_metrics",
    "export_chrome_trace",
    "measure_stage_breakdown",
    "observe",
    "registry_of",
    "run_contract_workload",
    "set_gauge",
    "traced_oneway_send",
    "undocumented",
]
