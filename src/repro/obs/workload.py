"""The instrumented end-to-end *contract workload*.

One deterministic run that drives every subsystem the trace-category
contract documents as ``e2e``: cluster boot (mapping phase, daemon
matchmaking over Ethernet), a short send, a cold-TLB long send (host
interrupt + driver refill), a notified delivery (signal path), a reliable
channel riding out a total-corruption error burst (CRC drops, timeouts,
retransmissions), and a hardware-fault sweep (cable down, switch port
down, LANai stall, daemon crash/restart) with traffic in flight.

The docs-vs-code diff test and the CI gate both run this workload: every
category it emits must be documented in docs/TRACING.md, and every
category documented as ``e2e`` must be emitted here — so neither the code
nor the documentation can drift alone.
"""

from __future__ import annotations

from repro.sim import Environment, Tracer
from repro.obs.metrics import MetricsRegistry

__all__ = ["run_contract_workload"]


def run_contract_workload() -> tuple[Tracer, MetricsRegistry]:
    """Run the workload; returns its (full) tracer and metrics registry."""
    # Local imports: this module sits below repro.cluster in the layering.
    from repro.cluster import Cluster, TestbedConfig
    from repro.dsm import wire_dsm_world
    from repro.faults import (
        DAEMON_CRASH,
        FaultCampaign,
        FaultEvent,
        FaultInjector,
        LANAI_STALL,
        LINK_DOWN,
        LINK_ERROR_BURST,
        PhaseSchedule,
        SWITCH_PORT_DOWN,
    )
    from repro.vmmc.reliable import open_channel

    env = Environment(tracer=Tracer())
    registry = MetricsRegistry().install(env)
    cluster = Cluster.build(TestbedConfig(nnodes=2, memory_mb=8), env=env)
    injector = FaultInjector(cluster)
    node0, node1 = cluster.nodes[0], cluster.nodes[1]
    _, ep_a = node0.attach_process("obs_a")
    _, ep_b = node1.attach_process("obs_b")
    inbox_b = ep_b.alloc_buffer(32 * 1024)
    src_a = ep_a.alloc_buffer(32 * 1024)
    notifications: list[dict] = []

    def on_notify(info):
        notifications.append(info)

    def app():
        # -- plain VMMC traffic ------------------------------------------
        yield ep_b.export(inbox_b, "obs_inbox", notify_handler=on_notify)
        to_b = yield ep_a.import_buffer("node1", "obs_inbox")
        # Short send (also raises a notification: the export is notified).
        yield ep_a.send(src_a, to_b, 4)
        # Long send with a *cold* software TLB: misses interrupt the host
        # driver (kernel irq path) and refill through the page tables.
        yield ep_a.send(src_a, to_b, 12 * 1024)
        yield env.timeout(300_000)  # drain deliveries + signal handlers

        # -- reliable channel under a total-corruption burst -------------
        sender, receiver = yield open_channel(ep_a, ep_b, "obs")
        recv = receiver.recv()
        yield sender.send(b"clean run")
        yield recv
        burst = FaultCampaign.of("obs_burst", [
            FaultEvent(at_ns=env.now, kind=LINK_ERROR_BURST,
                       target="node0->sw0", duration_ns=200_000,
                       params={"rate": 1.0}),
        ])
        driving = injector.run(burst)
        recv = receiver.recv()
        # First transmission and first retransmission are corrupted and
        # CRC-dropped; the second retransmission (after the burst clears)
        # gets through — exercising timeout, backoff and recovery.
        yield sender.send(b"through the storm")
        yield recv
        yield driving

        # -- paced aftermath ---------------------------------------------
        # The storm's timeouts left retransmit pressure behind; the next
        # back-to-back sends are stretched by the pacer (`rel.pace`) while
        # clean ACKs drain the pressure and regrow the window.
        for payload in (b"paced one", b"paced two"):
            recv = receiver.recv()
            yield sender.send(payload)
            yield recv

        # -- hardware fault sweep with traffic in flight ------------------
        t0 = env.now
        sweep = FaultCampaign.of("obs_sweep", [
            FaultEvent(at_ns=t0, kind=LINK_DOWN,
                       target="sw0->node1", duration_ns=150_000),
            FaultEvent(at_ns=t0 + 200_000, kind=SWITCH_PORT_DOWN,
                       target="sw0:1", duration_ns=150_000),
            FaultEvent(at_ns=t0 + 400_000, kind=LANAI_STALL,
                       target="node0", duration_ns=20_000),
            FaultEvent(at_ns=t0 + 500_000, kind=DAEMON_CRASH,
                       target="node1", duration_ns=500_000),
        ])
        driving = injector.run(sweep)
        yield env.timeout(10_000)
        # Worm truncated on the dead cable (`link.lost_down`): base VMMC
        # never learns — the short sync send still completes locally.
        yield ep_a.send(src_a, to_b, 4)
        yield env.timeout(t0 + 250_000 - env.now)
        # Worm sunk by the downed crossbar port (`switch.drop_port_down`).
        yield ep_a.send(src_a, to_b, 4)
        yield env.timeout(t0 + 550_000 - env.now)
        # Import request hitting the crashed daemon is dropped on the
        # floor (`daemon.drop_crashed`); deliberately not awaited — the
        # reply never comes, which is exactly the failure mode.  (The
        # Ethernet stack costs ~270 us end-to-end, so the crash window
        # must still be open when the datagram lands.)
        ep_a.import_buffer("node1", "obs_missing")
        yield driving
        yield env.timeout(100_000)

        # -- DSM stage: page faults, coherence actions, sync --------------
        # A two-rank shared segment: rank 0 allocates and writes (home
        # page, local hit), rank 1 read-faults the page in (fetch), then
        # write-faults it (invalidating rank 0's copy) — touching every
        # `dsm.*` e2e trace point plus the phase announcement.
        segments = yield wire_dsm_world(cluster, npages=8, page_bytes=128)
        schedule = PhaseSchedule(env)
        schedule.enter("dsm")
        shared: dict = {}

        def dsm_rank0():
            seg = segments[0]
            base = yield from seg.alloc(2 * 128)
            shared["base"] = base
            yield from seg.lock(1)
            yield from seg.write_u32(base, 41)
            yield from seg.unlock(1)
            yield from seg.barrier()
            yield from seg.barrier()  # rank 1's ops are done

        def dsm_rank1():
            seg = segments[1]
            yield from seg.barrier()  # base is published
            base = shared["base"]
            value = yield from seg.read_u32(base)
            yield from seg.lock(1)
            yield from seg.write_u32(base, value + 1)
            yield from seg.unlock(1)
            yield from seg.barrier()

        rank0 = env.process(dsm_rank0(), name="obs.dsm0")
        rank1 = env.process(dsm_rank1(), name="obs.dsm1")
        yield rank0
        yield rank1
        yield env.timeout(100_000)

    env.run(until=env.process(app(), name="obs.contract"))
    assert notifications, "contract workload expected a notification"
    return env.tracer, registry
