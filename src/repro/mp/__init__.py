"""A message-passing library built on VMMC — the intended use of the model.

The paper positions VMMC as the substrate for "a high-performance server
out of a network of commodity computer systems"; the applications its
introduction motivates are message-passing programs.  This package is the
library such programs would link: MPI-flavoured point-to-point messaging
with tags, plus the standard collectives, implemented entirely with the
*public* VMMC API in the style the paper intends:

* each pair of ranks shares a one-way **data ring** in the receiver's
  exported memory; senders deposit fragments with ``SendMsg`` and write
  the fragment header (sequence/tag/length) *last*, so in-order delivery
  makes the header's arrival publish the payload;
* flow control is VMMC-native: the receiver acknowledges consumption by
  writing a credit counter **directly into the sender's exported credit
  word** — data and acknowledgements are both just remote memory writes,
  no kernel anywhere;
* receivers spin on exported memory (no receive operation exists), and
  messages larger than a ring slot are fragmented and reassembled.

Collectives (barrier, broadcast, reduce, allreduce, gather, scatter,
alltoall) are binomial-tree / linear compositions of the point-to-point
layer.
"""

from repro.mp.comm import Communicator, MPError, build_world, wire_world
from repro.mp.collectives import (
    allreduce,
    alltoall,
    barrier,
    broadcast,
    gather,
    reduce,
    scatter,
)

__all__ = [
    "Communicator",
    "MPError",
    "allreduce",
    "alltoall",
    "barrier",
    "broadcast",
    "gather",
    "reduce",
    "scatter",
    "build_world",
    "wire_world",
]
