"""Point-to-point messaging over VMMC rings with credit flow control.

Channel layout (one per ordered pair ``src → dst``, living in *dst*'s
exported memory)::

    slot i (i = seq % nslots):
        [0:4)   u32 seq      (written LAST — publishes the fragment)
        [4:8)   u32 tag
        [8:12)  u32 total message length
        [12:16) u32 fragment length
        [16:..) fragment payload

Credit word (living in *src*'s exported memory, written remotely by dst):

    u32: highest sequence number consumed

The sender may have at most ``nslots`` unconsumed fragments outstanding;
it spins on its own credit word (a local cached read — the receiver's
remote write invalidates it) when the ring is full.  All data movement is
``SendMsg``; all synchronisation is spinning on exported memory.
"""

from __future__ import annotations

import numpy as np

from repro.sim import Environment, Resource
from repro.mem.buffers import UserBuffer
from repro.vmmc.api import ImportedBuffer, VMMCEndpoint

#: Fragment slots per channel and payload bytes per slot.
DEFAULT_SLOTS = 8
DEFAULT_SLOT_BYTES = 16 * 1024
_HEADER_BYTES = 16


class MPError(RuntimeError):
    """Misuse of the messaging layer (bad rank, oversized buffer...)."""


def _u32(value: int) -> bytes:
    return np.uint32(value).tobytes()


def _read_u32(buffer: UserBuffer, offset: int) -> int:
    return int(np.frombuffer(buffer.read(offset, 4).tobytes(),
                             dtype=np.uint32)[0])


class _RxChannel:
    """Receiver side of one src→me channel."""

    def __init__(self, ring: UserBuffer, nslots: int, slot_bytes: int,
                 credit_scratch: UserBuffer):
        self.ring = ring
        self.nslots = nslots
        self.slot_bytes = slot_bytes
        self.next_seq = 1
        #: Staging for outgoing credit updates (per channel, so receives
        #: from different sources never share a buffer mid-send).
        self.credit_scratch = credit_scratch
        #: Out-of-band buffered messages keyed by tag (tag mismatch).
        self.pending: dict[int, list[bytes]] = {}


class _TxChannel:
    """Sender side of one me→dst channel."""

    def __init__(self, remote_ring: ImportedBuffer, credit: UserBuffer,
                 credit_at_peer: ImportedBuffer | None,
                 nslots: int, slot_bytes: int, scratch: UserBuffer):
        self.remote_ring = remote_ring
        self.credit = credit            # local, exported; peer writes it
        self.credit_at_peer = credit_at_peer
        self.nslots = nslots
        self.slot_bytes = slot_bytes
        #: Staging for outgoing fragments + header (per destination, so
        #: concurrent sends to different peers never interleave on it).
        self.scratch = scratch
        self.next_seq = 1
        #: Serialises concurrent sends to the same destination (channel
        #: order must match sequence-number order).
        self.lock = None


class Communicator:
    """One rank's handle on the world."""

    def __init__(self, rank: int, size: int, ep: VMMCEndpoint,
                 nslots: int = DEFAULT_SLOTS,
                 slot_bytes: int = DEFAULT_SLOT_BYTES):
        if slot_bytes <= _HEADER_BYTES:
            raise MPError("slot too small for the fragment header")
        self.rank = rank
        self.size = size
        self.ep = ep
        self.env: Environment = ep.env
        self.nslots = nslots
        self.slot_bytes = slot_bytes
        self.payload_per_slot = slot_bytes - _HEADER_BYTES
        self._rx: dict[int, _RxChannel] = {}
        self._tx: dict[int, _TxChannel] = {}
        self.messages_sent = 0
        self.messages_received = 0
        self.fragments_sent = 0
        self.flow_control_stalls = 0

    # -- wiring -----------------------------------------------------------
    def setup_exports(self):
        """Process: export this rank's rings and credit words."""
        def run():
            for peer in range(self.size):
                if peer == self.rank:
                    continue
                ring = self.ep.alloc_buffer(self.nslots * self.slot_bytes)
                yield self.ep.export(ring, f"mp.ring.{peer}->{self.rank}")
                self._rx[peer] = _RxChannel(
                    ring, self.nslots, self.slot_bytes,
                    credit_scratch=self.ep.alloc_buffer(4096))
                credit = self.ep.alloc_buffer(4096)
                yield self.ep.export(
                    credit, f"mp.credit.{self.rank}->{peer}")
                self._tx[peer] = _TxChannel(
                    remote_ring=None, credit=credit, credit_at_peer=None,
                    nslots=self.nslots, slot_bytes=self.slot_bytes,
                    scratch=self.ep.alloc_buffer(
                        self.slot_bytes + _HEADER_BYTES))

        return self.env.process(run(), name=f"mp.exports.{self.rank}")

    def connect(self, node_of_rank):
        """Process: import every peer's ring + our credit word at them.

        ``node_of_rank(rank) -> node name``.
        """
        def run():
            for peer in range(self.size):
                if peer == self.rank:
                    continue
                tx = self._tx[peer]
                tx.remote_ring = yield self.ep.import_buffer(
                    node_of_rank(peer), f"mp.ring.{self.rank}->{peer}")
                # The credit word for traffic peer->me lives at the peer
                # (their tx channel for me); we write consumption into it.
                tx.credit_at_peer = yield self.ep.import_buffer(
                    node_of_rank(peer), f"mp.credit.{peer}->{self.rank}")

        return self.env.process(run(), name=f"mp.connect.{self.rank}")

    # -- point-to-point ------------------------------------------------------
    def send(self, dst: int, payload: bytes | np.ndarray, tag: int = 0):
        """Process: send one tagged message to rank ``dst``."""
        data = bytes(payload) if isinstance(payload, (bytes, bytearray)) \
            else np.asarray(payload).tobytes()
        if dst == self.rank or not 0 <= dst < self.size:
            raise MPError(f"bad destination rank {dst}")
        tx = self._tx[dst]

        def run():
            if tx.lock is None:
                tx.lock = Resource(self.env, capacity=1)
            grant = tx.lock.request()
            yield grant
            total = len(data)
            offset = 0
            first = True
            while first or offset < total:
                first = False
                frag = data[offset:offset + self.payload_per_slot]
                seq = tx.next_seq
                # Flow control: wait until the ring has a free slot.
                while seq - _read_u32(tx.credit, 0) > self.nslots:
                    self.flow_control_stalls += 1
                    watch = self.ep.watch(tx.credit, 0, 4)
                    yield self.ep.membus.cacheline_fill()
                    if seq - _read_u32(tx.credit, 0) <= self.nslots:
                        break
                    yield watch
                slot = (seq - 1) % self.nslots
                base = slot * self.slot_bytes
                # Payload first, header last (seq publishes the fragment).
                if frag:
                    tx.scratch.write(frag)
                    yield self.ep.send(
                        tx.scratch, tx.remote_ring.at(base + _HEADER_BYTES),
                        len(frag))
                header = (_u32(seq) + _u32(tag) + _u32(total)
                          + _u32(len(frag)))
                tx.scratch.write(header, offset=self.slot_bytes)
                yield self.ep.send(
                    tx.scratch, tx.remote_ring.at(base), _HEADER_BYTES,
                    src_offset=self.slot_bytes)
                tx.next_seq += 1
                self.fragments_sent += 1
                offset += len(frag)
            tx.lock.release(grant)
            self.messages_sent += 1

        return self.env.process(run(), name=f"mp.send.{self.rank}->{dst}")

    def recv(self, src: int, tag: int = 0):
        """Process: receive the next message with ``tag`` from ``src``;
        value is its bytes.  Messages with other tags are buffered."""
        if src == self.rank or not 0 <= src < self.size:
            raise MPError(f"bad source rank {src}")
        rx = self._rx[src]

        def run():
            while True:
                queued = rx.pending.get(tag)
                if queued:
                    self.messages_received += 1
                    return queued.pop(0)
                got_tag, message = yield self.env.process(
                    self._next_message(src, rx))
                if got_tag == tag:
                    self.messages_received += 1
                    return message
                rx.pending.setdefault(got_tag, []).append(message)

        return self.env.process(run(), name=f"mp.recv.{src}->{self.rank}")

    def _next_message(self, src: int, rx: _RxChannel):
        """Process: pull the next whole message off the wire (reassembling
        fragments) and acknowledge consumption."""
        chunks: list[bytes] = []
        total = None
        got = 0
        first = True
        while first or got < total:
            first = False
            seq = rx.next_seq
            base = ((seq - 1) % rx.nslots) * rx.slot_bytes
            while True:
                watch = self.ep.watch(rx.ring, base, 4)
                yield self.ep.membus.cacheline_fill()
                if _read_u32(rx.ring, base) == seq:
                    break
                yield watch
            msg_tag = _read_u32(rx.ring, base + 4)
            total = _read_u32(rx.ring, base + 8)
            frag_len = _read_u32(rx.ring, base + 12)
            if frag_len:
                chunks.append(
                    rx.ring.read(base + _HEADER_BYTES, frag_len).tobytes())
            got += frag_len
            rx.next_seq += 1
            # Return credit: write the consumed sequence number straight
            # into the sender's exported credit word.
            rx.credit_scratch.write(_u32(seq))
            yield self.ep.send(rx.credit_scratch,
                               self._tx[src].credit_at_peer.at(0), 4)
        return msg_tag, b"".join(chunks)

    # -- numpy conveniences --------------------------------------------------------
    def send_array(self, dst: int, array: np.ndarray, tag: int = 0):
        return self.send(dst, array.tobytes(), tag)

    def recv_array(self, src: int, dtype, tag: int = 0):
        def run():
            raw = yield self.recv(src, tag)
            return np.frombuffer(raw, dtype=dtype).copy()

        return self.env.process(run(), name="mp.recv_array")


def build_world(cluster, nslots: int = DEFAULT_SLOTS,
                slot_bytes: int = DEFAULT_SLOT_BYTES) -> list[Communicator]:
    """Create one rank per cluster node, fully wired; runs the cluster's
    environment until setup completes."""
    env = cluster.env
    comms = []
    for index, node in enumerate(cluster.nodes):
        _, ep = node.attach_process(f"mp.rank{index}")
        comms.append(Communicator(index, len(cluster.nodes), ep,
                                  nslots=nslots, slot_bytes=slot_bytes))

    def wire():
        for comm in comms:
            yield comm.setup_exports()
        for comm in comms:
            yield comm.connect(lambda rank: f"node{rank}")

    env.run(until=env.process(wire()))
    return comms
