"""Point-to-point messaging over VMMC rings with credit flow control.

Channel layout (one per ordered pair ``src → dst``, living in *dst*'s
exported memory)::

    slot i (i = seq % nslots):
        [0:4)   u32 seq      (written LAST — publishes the fragment)
        [4:8)   u32 tag
        [8:12)  u32 total message length
        [12:16) u32 fragment length
        [16:..) fragment payload

Credit word (living in *src*'s exported memory, written remotely by dst):

    u32: highest sequence number consumed

The sender may have at most ``nslots`` unconsumed fragments outstanding;
it spins on its own credit word (a local cached read — the receiver's
remote write invalidates it) when the ring is full.  All data movement is
``SendMsg``; all synchronisation is spinning on exported memory.

Resilient mode (``resilient=True``) hardens the channel against daemon
cold restarts for control-plane users (barriers, lock managers, the DSM
sync layer).  Raw mode stays zero-overhead but a cold crash can silently
swallow an in-flight fragment or credit write, wedging both ends.
Resilient channels instead:

* route every remote write through :meth:`Communicator._robust_send`,
  which re-imports stale mappings (with backoff while the peer daemon
  reboots) and retries error completions;
* run **stop-and-wait** on the send side — each fragment is held until
  the receiver's credit write acknowledges it, and retransmitted
  (idempotent slot rewrite) on timeout;
* re-ack on the receive side when a duplicate retransmission shows a
  credit write was lost.

Fragments publish by rewriting the same slot bytes, so retransmission is
idempotent and the receiver's consume-once cursor (``next_seq``) already
deduplicates.
"""

from __future__ import annotations

import numpy as np

from repro.sim import AnyOf, Environment, Resource
from repro.mem.buffers import UserBuffer
from repro.vmmc.api import ImportedBuffer, VMMCEndpoint
from repro.vmmc.errors import CompletionError, ImportDenied, ImportStale

#: Fragment slots per channel and payload bytes per slot.
DEFAULT_SLOTS = 8
DEFAULT_SLOT_BYTES = 16 * 1024
_HEADER_BYTES = 16


class MPError(RuntimeError):
    """Misuse of the messaging layer (bad rank, oversized buffer...)."""


def _u32(value: int) -> bytes:
    return np.uint32(value).tobytes()


def _read_u32(buffer: UserBuffer, offset: int) -> int:
    return int(np.frombuffer(buffer.read(offset, 4).tobytes(),
                             dtype=np.uint32)[0])


class _RxChannel:
    """Receiver side of one src→me channel."""

    def __init__(self, ring: UserBuffer, nslots: int, slot_bytes: int,
                 credit_scratch: UserBuffer):
        self.ring = ring
        self.nslots = nslots
        self.slot_bytes = slot_bytes
        self.next_seq = 1
        #: Staging for outgoing credit updates (per channel, so receives
        #: from different sources never share a buffer mid-send).
        self.credit_scratch = credit_scratch
        #: Out-of-band buffered messages keyed by tag (tag mismatch).
        self.pending: dict[int, list[bytes]] = {}
        #: Serialises concurrent ``recv`` posts on this channel — two
        #: :meth:`Communicator._next_message` instances racing on
        #: ``next_seq`` would double-consume a fragment.  Lazy.
        self.lock = None


class _TxChannel:
    """Sender side of one me→dst channel."""

    def __init__(self, remote_ring: ImportedBuffer, credit: UserBuffer,
                 credit_at_peer: ImportedBuffer | None,
                 nslots: int, slot_bytes: int, scratch: UserBuffer):
        self.remote_ring = remote_ring
        self.credit = credit            # local, exported; peer writes it
        self.credit_at_peer = credit_at_peer
        self.nslots = nslots
        self.slot_bytes = slot_bytes
        #: Staging for outgoing fragments + header (per destination, so
        #: concurrent sends to different peers never interleave on it).
        self.scratch = scratch
        self.next_seq = 1
        #: Serialises concurrent sends to the same destination (channel
        #: order must match sequence-number order).
        self.lock = None


class Communicator:
    """One rank's handle on the world."""

    def __init__(self, rank: int, size: int, ep: VMMCEndpoint,
                 nslots: int = DEFAULT_SLOTS,
                 slot_bytes: int = DEFAULT_SLOT_BYTES,
                 resilient: bool = False,
                 prefix: str = "mp",
                 retry_timeout_ns: int = 200_000,
                 max_retry_timeout_ns: int = 2_000_000,
                 max_retries: int = 10):
        if slot_bytes <= _HEADER_BYTES:
            raise MPError("slot too small for the fragment header")
        self.rank = rank
        self.size = size
        self.ep = ep
        self.env: Environment = ep.env
        self.nslots = nslots
        self.slot_bytes = slot_bytes
        self.payload_per_slot = slot_bytes - _HEADER_BYTES
        #: Survive peer daemon cold restarts (stop-and-wait + recovery).
        self.resilient = resilient
        #: Namespace for export names, so several worlds coexist on one
        #: cluster (e.g. the app's ``mp`` world and the DSM sync world).
        self.prefix = prefix
        self.retry_timeout_ns = retry_timeout_ns
        self.max_retry_timeout_ns = max_retry_timeout_ns
        self.max_retries = max_retries
        self._rx: dict[int, _RxChannel] = {}
        self._tx: dict[int, _TxChannel] = {}
        self.messages_sent = 0
        self.messages_received = 0
        self.fragments_sent = 0
        self.flow_control_stalls = 0
        #: Resilient-mode recovery counters (plain ints — queryable by
        #: tests and the DSM bench without an obs registry attached).
        self.redeliveries = 0
        self.stale_recoveries = 0
        self.credit_reacks = 0

    # -- wiring -----------------------------------------------------------
    def setup_exports(self):
        """Process: export this rank's rings and credit words."""
        def run():
            for peer in range(self.size):
                if peer == self.rank:
                    continue
                ring = self.ep.alloc_buffer(self.nslots * self.slot_bytes)
                yield self.ep.export(
                    ring, f"{self.prefix}.ring.{peer}->{self.rank}")
                self._rx[peer] = _RxChannel(
                    ring, self.nslots, self.slot_bytes,
                    credit_scratch=self.ep.alloc_buffer(4096))
                credit = self.ep.alloc_buffer(4096)
                yield self.ep.export(
                    credit, f"{self.prefix}.credit.{self.rank}->{peer}")
                self._tx[peer] = _TxChannel(
                    remote_ring=None, credit=credit, credit_at_peer=None,
                    nslots=self.nslots, slot_bytes=self.slot_bytes,
                    scratch=self.ep.alloc_buffer(
                        self.slot_bytes + _HEADER_BYTES))

        return self.env.process(run(), name=f"mp.exports.{self.rank}")

    def connect(self, node_of_rank):
        """Process: import every peer's ring + our credit word at them.

        ``node_of_rank(rank) -> node name``.
        """
        def run():
            for peer in range(self.size):
                if peer == self.rank:
                    continue
                tx = self._tx[peer]
                tx.remote_ring = yield self.ep.import_buffer(
                    node_of_rank(peer),
                    f"{self.prefix}.ring.{self.rank}->{peer}")
                # The credit word for traffic peer->me lives at the peer
                # (their tx channel for me); we write consumption into it.
                tx.credit_at_peer = yield self.ep.import_buffer(
                    node_of_rank(peer),
                    f"{self.prefix}.credit.{peer}->{self.rank}")

        return self.env.process(run(), name=f"mp.connect.{self.rank}")

    # -- resilient-mode plumbing -------------------------------------------
    def _reimport(self, imported: ImportedBuffer):
        """Generator: re-establish a stale import, backing off while the
        peer daemon reboots (denials/timeouts retried until the budget is
        spent — mirrors the reliable channel's recovery loop)."""
        backoff = self.retry_timeout_ns
        attempts = 0
        while True:
            attempts += 1
            try:
                yield imported.reimport(timeout_ns=backoff)
                return
            except ImportDenied:
                if attempts > self.max_retries:
                    raise
                backoff = min(backoff * 2, self.max_retry_timeout_ns)

    def _robust_send(self, src: UserBuffer, imported: ImportedBuffer,
                     offset: int, nbytes: int, src_offset: int = 0):
        """Generator: one remote write.  Plain ``ep.send`` unless the
        communicator is resilient, in which case stale imports are
        re-established (peer cold restart) and error completions retried
        with backoff.  The proxy address is re-resolved from ``imported``
        on every attempt, so it stays valid across a re-import."""
        if not self.resilient:
            yield self.ep.send(src, imported.at(offset), nbytes,
                               src_offset=src_offset)
            return
        backoff = self.retry_timeout_ns
        attempts = 0
        while True:
            attempts += 1
            try:
                yield self.ep.send(src, imported.at(offset), nbytes,
                                   src_offset=src_offset)
                return
            except ImportStale:
                self.stale_recoveries += 1
                yield from self._reimport(imported)
            except CompletionError:
                if attempts > self.max_retries:
                    raise
                yield self.env.timeout(backoff)
                backoff = min(backoff * 2, self.max_retry_timeout_ns)

    def _await_credit(self, dst: int, tx: _TxChannel, seq: int):
        """Generator: stop-and-wait acknowledgement — park until the
        receiver's credit write covers ``seq``, retransmitting the slot
        (payload + header still staged in ``tx.scratch``) on timeout.
        Retransmission rewrites the same bytes, so a duplicate delivery
        is harmless; the receiver re-acks if its credit write was the
        casualty."""
        frag_len = _read_u32(tx.scratch, self.slot_bytes + 12)
        base = ((seq - 1) % self.nslots) * self.slot_bytes
        deadline = self.retry_timeout_ns
        attempts = 0
        while _read_u32(tx.credit, 0) < seq:
            watch = self.ep.watch(tx.credit, 0, 4)
            yield self.ep.membus.cacheline_fill()
            if _read_u32(tx.credit, 0) >= seq:
                break
            fired = yield AnyOf(self.env, [watch,
                                           self.env.timeout(deadline)])
            if watch in fired:
                continue
            attempts += 1
            if attempts > self.max_retries:
                raise MPError(
                    f"rank {self.rank}: fragment {seq} to rank {dst} "
                    f"unacknowledged after {attempts} retransmissions")
            deadline = min(deadline * 2, self.max_retry_timeout_ns)
            self.redeliveries += 1
            if frag_len:
                yield from self._robust_send(
                    tx.scratch, tx.remote_ring, base + _HEADER_BYTES,
                    frag_len)
            yield from self._robust_send(
                tx.scratch, tx.remote_ring, base, _HEADER_BYTES,
                src_offset=self.slot_bytes)

    # -- point-to-point ------------------------------------------------------
    def send(self, dst: int, payload: bytes | np.ndarray, tag: int = 0):
        """Process: send one tagged message to rank ``dst``."""
        data = bytes(payload) if isinstance(payload, (bytes, bytearray)) \
            else np.asarray(payload).tobytes()
        if dst == self.rank or not 0 <= dst < self.size:
            raise MPError(f"bad destination rank {dst}")
        tx = self._tx[dst]

        def run():
            if tx.lock is None:
                tx.lock = Resource(self.env, capacity=1)
            grant = tx.lock.request()
            yield grant
            total = len(data)
            offset = 0
            first = True
            while first or offset < total:
                first = False
                frag = data[offset:offset + self.payload_per_slot]
                seq = tx.next_seq
                # Flow control: wait until the ring has a free slot.
                while seq - _read_u32(tx.credit, 0) > self.nslots:
                    self.flow_control_stalls += 1
                    watch = self.ep.watch(tx.credit, 0, 4)
                    yield self.ep.membus.cacheline_fill()
                    if seq - _read_u32(tx.credit, 0) <= self.nslots:
                        break
                    yield watch
                slot = (seq - 1) % self.nslots
                base = slot * self.slot_bytes
                # Payload first, header last (seq publishes the fragment).
                if frag:
                    tx.scratch.write(frag)
                    yield from self._robust_send(
                        tx.scratch, tx.remote_ring, base + _HEADER_BYTES,
                        len(frag))
                header = (_u32(seq) + _u32(tag) + _u32(total)
                          + _u32(len(frag)))
                tx.scratch.write(header, offset=self.slot_bytes)
                yield from self._robust_send(
                    tx.scratch, tx.remote_ring, base, _HEADER_BYTES,
                    src_offset=self.slot_bytes)
                tx.next_seq += 1
                self.fragments_sent += 1
                offset += len(frag)
                if self.resilient:
                    # Stop-and-wait: hold the fragment until acked so a
                    # cold-crash window can't swallow it silently.
                    yield from self._await_credit(dst, tx, seq)
            tx.lock.release(grant)
            self.messages_sent += 1

        return self.env.process(run(), name=f"mp.send.{self.rank}->{dst}")

    def recv(self, src: int, tag: int = 0):
        """Process: receive the next message with ``tag`` from ``src``;
        value is its bytes.  Messages with other tags are buffered."""
        if src == self.rank or not 0 <= src < self.size:
            raise MPError(f"bad source rank {src}")
        rx = self._rx[src]

        def run():
            if rx.lock is None:
                rx.lock = Resource(self.env, capacity=1)
            while True:
                queued = rx.pending.get(tag)
                if queued:
                    self.messages_received += 1
                    return queued.pop(0)
                # Only one receiver may pull from the wire at a time;
                # whoever held the channel may have buffered our tag, so
                # re-check before committing to the next message.
                grant = rx.lock.request()
                yield grant
                try:
                    queued = rx.pending.get(tag)
                    if queued:
                        self.messages_received += 1
                        return queued.pop(0)
                    got_tag, message = yield self.env.process(
                        self._next_message(src, rx))
                finally:
                    rx.lock.release(grant)
                if got_tag == tag:
                    self.messages_received += 1
                    return message
                rx.pending.setdefault(got_tag, []).append(message)

        return self.env.process(run(), name=f"mp.recv.{src}->{self.rank}")

    def _next_message(self, src: int, rx: _RxChannel):
        """Process: pull the next whole message off the wire (reassembling
        fragments) and acknowledge consumption."""
        chunks: list[bytes] = []
        total = None
        got = 0
        first = True
        while first or got < total:
            first = False
            seq = rx.next_seq
            base = ((seq - 1) % rx.nslots) * rx.slot_bytes
            while True:
                watches = [self.ep.watch(rx.ring, base, 4)]
                if self.resilient and seq > 1 and rx.nslots > 1:
                    # Also watch the previous fragment's slot: a rewrite
                    # there is the sender retransmitting seq-1, i.e. our
                    # credit write for it was lost in a crash window.
                    prev = ((seq - 2) % rx.nslots) * rx.slot_bytes
                    watches.append(self.ep.watch(rx.ring, prev, 4))
                yield self.ep.membus.cacheline_fill()
                if _read_u32(rx.ring, base) == seq:
                    break
                if len(watches) > 1:
                    yield AnyOf(self.env, watches)
                else:
                    yield watches[0]
                if (self.resilient and seq > 1
                        and _read_u32(rx.ring, base) != seq):
                    # Woken by a duplicate retransmission (prev slot, or
                    # the same slot when nslots == 1): re-ack the last
                    # fragment we consumed so the sender unblocks.
                    self.credit_reacks += 1
                    rx.credit_scratch.write(_u32(seq - 1))
                    yield from self._robust_send(
                        rx.credit_scratch, self._tx[src].credit_at_peer,
                        0, 4)
            msg_tag = _read_u32(rx.ring, base + 4)
            total = _read_u32(rx.ring, base + 8)
            frag_len = _read_u32(rx.ring, base + 12)
            if frag_len:
                chunks.append(
                    rx.ring.read(base + _HEADER_BYTES, frag_len).tobytes())
            got += frag_len
            rx.next_seq += 1
            # Return credit: write the consumed sequence number straight
            # into the sender's exported credit word.
            rx.credit_scratch.write(_u32(seq))
            yield from self._robust_send(
                rx.credit_scratch, self._tx[src].credit_at_peer, 0, 4)
        return msg_tag, b"".join(chunks)

    # -- numpy conveniences --------------------------------------------------------
    def send_array(self, dst: int, array: np.ndarray, tag: int = 0):
        return self.send(dst, array.tobytes(), tag)

    def recv_array(self, src: int, dtype, tag: int = 0):
        def run():
            raw = yield self.recv(src, tag)
            return np.frombuffer(raw, dtype=dtype).copy()

        return self.env.process(run(), name="mp.recv_array")


def wire_world(cluster, nslots: int = DEFAULT_SLOTS,
               slot_bytes: int = DEFAULT_SLOT_BYTES,
               resilient: bool = False, prefix: str = "mp"):
    """Process: create one rank per cluster node and wire every channel;
    the process's value is the list of :class:`Communicator` s.  Usable
    from *inside* a running simulation (unlike :func:`build_world`, which
    drives the environment itself)."""
    env = cluster.env
    comms = []
    for index, node in enumerate(cluster.nodes):
        _, ep = node.attach_process(f"{prefix}.rank{index}")
        comms.append(Communicator(index, len(cluster.nodes), ep,
                                  nslots=nslots, slot_bytes=slot_bytes,
                                  resilient=resilient, prefix=prefix))

    def wire():
        for comm in comms:
            yield comm.setup_exports()
        for comm in comms:
            yield comm.connect(lambda rank: f"node{rank}")
        return comms

    return env.process(wire(), name=f"{prefix}.wire_world")


def build_world(cluster, nslots: int = DEFAULT_SLOTS,
                slot_bytes: int = DEFAULT_SLOT_BYTES,
                resilient: bool = False,
                prefix: str = "mp") -> list[Communicator]:
    """Create one rank per cluster node, fully wired; runs the cluster's
    environment until setup completes."""
    return cluster.env.run(until=wire_world(
        cluster, nslots=nslots, slot_bytes=slot_bytes,
        resilient=resilient, prefix=prefix))
