"""Collective operations over the point-to-point layer.

Binomial-tree reduce/broadcast (power-of-two friendly but correct for any
size), linear gather/scatter/alltoall, and a dissemination barrier.  Each
collective is a generator to be run per rank, taking the rank's
:class:`~repro.mp.comm.Communicator`; tags partition the channel so
collectives can't collide with application traffic.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.mp.comm import Communicator, MPError

#: Tag space reserved for collectives (applications should use tags below).
_BASE_TAG = 1 << 20


def _tree_parent(rank: int, root: int, size: int) -> Optional[int]:
    rel = (rank - root) % size
    if rel == 0:
        return None
    # Clear the lowest set bit of the relative rank.
    return ((rel & (rel - 1)) + root) % size


def _tree_children(rank: int, root: int, size: int) -> list[int]:
    rel = (rank - root) % size
    children = []
    bit = 1
    while True:
        child_rel = rel | bit
        if child_rel == rel:
            bit <<= 1
            continue
        if child_rel >= size or (rel & (bit - 1)) != 0:
            break
        children.append((child_rel + root) % size)
        bit <<= 1
    return children


def broadcast(comm: Communicator, data: Optional[bytes], root: int = 0,
              tag: int = 0):
    """Generator: binomial-tree broadcast; every rank returns the bytes."""
    mytag = _BASE_TAG + 16 + tag
    parent = _tree_parent(comm.rank, root, comm.size)
    if parent is not None:
        data = yield comm.recv(parent, tag=mytag)
    elif data is None:
        raise MPError("root must supply the broadcast payload")
    for child in reversed(_tree_children(comm.rank, root, comm.size)):
        yield comm.send(child, data, tag=mytag)
    return data


def reduce(comm: Communicator, array: np.ndarray,
           op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add,
           root: int = 0, tag: int = 0):
    """Generator: binomial-tree reduction of a numpy array to ``root``.

    Non-root ranks return None.
    """
    mytag = _BASE_TAG + 32 + tag
    value = np.asarray(array).copy()
    for child in _tree_children(comm.rank, root, comm.size):
        incoming = yield comm.recv_array(child, value.dtype, tag=mytag)
        value = op(value, incoming.reshape(value.shape))
    parent = _tree_parent(comm.rank, root, comm.size)
    if parent is not None:
        yield comm.send_array(parent, value, tag=mytag)
        return None
    return value


def allreduce(comm: Communicator, array: np.ndarray,
              op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add,
              tag: int = 0):
    """Generator: reduce-to-0 then broadcast; every rank returns the result."""
    reduced = yield from reduce(comm, array, op=op, root=0, tag=tag)
    payload = reduced.tobytes() if reduced is not None else None
    raw = yield from broadcast(comm, payload, root=0, tag=tag + 1)
    return np.frombuffer(raw, dtype=np.asarray(array).dtype).reshape(
        np.asarray(array).shape).copy()


def barrier(comm: Communicator, tag: int = 0):
    """Generator: dissemination barrier (log2 rounds, works for any size)."""
    mytag = _BASE_TAG + 48 + tag
    size = comm.size
    if size == 1:
        return
    round_no = 0
    distance = 1
    while distance < size:
        peer_to = (comm.rank + distance) % size
        peer_from = (comm.rank - distance) % size
        send = comm.send(peer_to, b"b", tag=mytag + round_no)
        recv = comm.recv(peer_from, tag=mytag + round_no)
        yield send
        yield recv
        distance *= 2
        round_no += 1


def gather(comm: Communicator, data: bytes, root: int = 0, tag: int = 0):
    """Generator: gather every rank's bytes at ``root`` (list by rank)."""
    mytag = _BASE_TAG + 64 + tag
    if comm.rank == root:
        out: list[Optional[bytes]] = [None] * comm.size
        out[root] = data
        for src in range(comm.size):
            if src != root:
                out[src] = yield comm.recv(src, tag=mytag)
        return out
    yield comm.send(root, data, tag=mytag)
    return None


def scatter(comm: Communicator, pieces: Optional[list[bytes]],
            root: int = 0, tag: int = 0):
    """Generator: root distributes ``pieces[rank]`` to every rank."""
    mytag = _BASE_TAG + 80 + tag
    if comm.rank == root:
        if pieces is None or len(pieces) != comm.size:
            raise MPError("root must supply one piece per rank")
        for dst in range(comm.size):
            if dst != root:
                yield comm.send(dst, pieces[dst], tag=mytag)
        return pieces[root]
    piece = yield comm.recv(root, tag=mytag)
    return piece


def alltoall(comm: Communicator, pieces: list[bytes], tag: int = 0):
    """Generator: every rank sends ``pieces[dst]`` to every other rank;
    returns the list of received pieces indexed by source."""
    mytag = _BASE_TAG + 96 + tag
    if len(pieces) != comm.size:
        raise MPError("need one piece per rank")
    out: list[Optional[bytes]] = [None] * comm.size
    out[comm.rank] = pieces[comm.rank]
    # Post all sends, then drain all receives (channel order per pair is
    # preserved; pairwise phasing avoids head-of-line lockstep).
    sends = []
    for shift in range(1, comm.size):
        dst = (comm.rank + shift) % comm.size
        sends.append(comm.send(dst, pieces[dst], tag=mytag))
    for shift in range(1, comm.size):
        src = (comm.rank - shift) % comm.size
        out[src] = yield comm.recv(src, tag=mytag)
    for send in sends:
        if not send.triggered:
            yield send
    return out
