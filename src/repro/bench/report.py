"""Rendering of benchmark series as the rows/figures the paper reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence


@dataclass
class Series:
    """One plotted line: a label plus (x, y) points."""

    label: str
    points: list[tuple[float, float]] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.points.append((x, y))

    def y_at(self, x: float) -> float:
        for px, py in self.points:
            if px == x:
                return py
        raise KeyError(f"no point at x={x} in series {self.label!r}")

    @property
    def peak(self) -> float:
        return max(y for _, y in self.points)


def format_table(title: str, columns: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """A fixed-width text table (what the bench binaries print)."""
    rendered = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(c) for c in columns]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [title, "=" * len(title)]
    lines.append(" | ".join(c.ljust(w) for c, w in zip(columns, widths)))
    lines.append(sep)
    for row in rendered:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(title: str, xlabel: str, ylabel: str,
                  series: Sequence[Series]) -> str:
    """All series of one figure as a merged table keyed by x."""
    xs = sorted({x for s in series for x, _ in s.points})
    columns = [xlabel] + [f"{s.label} ({ylabel})" for s in series]
    rows = []
    for x in xs:
        row: list[object] = [x]
        for s in series:
            try:
                row.append(s.y_at(x))
            except KeyError:
                row.append("")
        rows.append(row)
    return format_table(title, columns, rows)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
