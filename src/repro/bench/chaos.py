"""Chaos/reliability measurement drivers (extension beyond the paper).

The experiment the paper could not run: sweep the per-packet link error
rate and compare **baseline VMMC** (section 4.2: CRC errors detected,
counted, dropped — never recovered) against the
:mod:`repro.vmmc.reliable` retransmission layer, on identical simulated
hardware.  A second driver runs reliable traffic *under a seeded
fault campaign* (bit-error bursts injected mid-run) to demonstrate that
chaos here is deterministic: same seed, same drops, same retransmit
counts, byte for byte.

Used by ``python -m repro chaos`` and
``benchmarks/bench_chaos_reliability.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.sim import Environment
from repro.cluster import Cluster, TestbedConfig
from repro.hw.myrinet.link import LinkParams
from repro.faults import (CampaignSet, DAEMON_COLD_CRASH, DAEMON_CRASH,
                          FaultCampaign, FaultEvent, FaultInjector,
                          FaultStats, LANAI_STALL, LINK_DOWN,
                          LINK_ERROR_BURST)
from repro.vmmc.reliable import HEADER_BYTES, open_channel

#: Settle time after the last send before the delivered count is read:
#: generous enough for any in-flight DMA/ACK to land.
DRAIN_NS = 5_000_000


def _pattern(index: int, size: int) -> bytes:
    """Deterministic, per-message payload (detects corruption *and*
    cross-message misdelivery)."""
    return bytes((index * 7 + j * 13 + 5) % 256 for j in range(size))


@dataclass(frozen=True)
class ChaosPoint:
    """One (error rate, protocol) cell of the chaos sweep."""

    error_rate: float
    mode: str                 # "baseline" or "reliable"
    messages: int
    size: int
    delivered_intact: int
    crc_drops: int
    retransmits: int
    acks_resent: int
    duplicates_suppressed: int
    send_failures: int
    elapsed_ns: int

    @property
    def delivery_ratio(self) -> float:
        return self.delivered_intact / self.messages if self.messages else 0.0

    @property
    def goodput_mbps(self) -> float:
        """Intact payload bytes per second of simulated time, in MB/s."""
        if self.elapsed_ns <= 0:
            return 0.0
        return (self.delivered_intact * self.size) / (self.elapsed_ns / 1e3)


def _two_node_cluster(error_rate: float) -> Cluster:
    return Cluster.build(TestbedConfig(
        nnodes=2, memory_mb=32,
        link=LinkParams(error_rate=error_rate)))


def run_baseline_point(error_rate: float, messages: int = 100,
                       size: int = 1024) -> ChaosPoint:
    """Plain VMMC sends over a lossy fabric: whatever the CRC kills is
    gone; the receiver's buffer simply never changes."""
    cluster = _two_node_cluster(error_rate)
    env = cluster.env
    _, ep_tx = cluster.nodes[0].attach_process("chaos_tx")
    _, ep_rx = cluster.nodes[1].attach_process("chaos_rx")
    inbox = ep_rx.alloc_buffer(messages * size)
    inbox.fill(0)
    src = ep_tx.alloc_buffer(size)
    result: dict[str, int] = {}

    def app():
        yield ep_rx.export(inbox, "chaos_inbox")
        imported = yield ep_tx.import_buffer("node1", "chaos_inbox")
        start = env.now
        for i in range(messages):
            src.write(_pattern(i, size))
            yield ep_tx.send(src, imported, size, dest_offset=i * size)
        result["elapsed"] = env.now - start

    done = env.process(app())
    env.run(until=done)
    # Let in-flight DMAs land before auditing the receive buffer; the
    # drain window is *not* charged to goodput (a real receiver has no
    # way to know when the stream ended — that is the point).
    env.run(until=env.now + DRAIN_NS)

    intact = sum(
        1 for i in range(messages)
        if inbox.read(i * size, size).tobytes() == _pattern(i, size))
    return ChaosPoint(
        error_rate=error_rate, mode="baseline", messages=messages,
        size=size, delivered_intact=intact,
        crc_drops=cluster.nodes[1].lcp.crc_drops,
        retransmits=0, acks_resent=0, duplicates_suppressed=0,
        send_failures=0, elapsed_ns=result["elapsed"])


def _attach_probe(tx, probe: dict) -> None:
    """Wrap the sender's state mutators to record invariant evidence:
    the RTO's observed min/max, the congestion-window peak, and the
    in-flight peak.  Purely observational — the wrapped calls delegate to
    the originals, so the run's behaviour is unchanged."""
    probe.update(rto_min=tx.rto_ns, rto_max=tx.rto_ns,
                 cwnd_peak=tx.cwnd, inflight_peak=tx.inflight,
                 min_rto_ns=tx.min_rto_ns, max_timeout_ns=tx.max_timeout_ns,
                 nslots=tx.nslots, max_window=tx.max_window)
    orig_rto, orig_cwnd = tx._set_rto, tx._set_cwnd
    orig_inflight = tx._set_inflight

    def set_rto(value: int) -> None:
        orig_rto(value)
        probe["rto_min"] = min(probe["rto_min"], tx.rto_ns)
        probe["rto_max"] = max(probe["rto_max"], tx.rto_ns)

    def set_cwnd(value: int, reason: str) -> None:
        orig_cwnd(value, reason=reason)
        probe["cwnd_peak"] = max(probe["cwnd_peak"], tx.cwnd)

    def set_inflight(value: int) -> None:
        orig_inflight(value)
        probe["inflight_peak"] = max(probe["inflight_peak"], tx.inflight)

    tx._set_rto = set_rto
    tx._set_cwnd = set_cwnd
    tx._set_inflight = set_inflight


def run_reliable_point(error_rate: float, messages: int = 100,
                       size: int = 1024,
                       campaign: Optional[FaultCampaign] = None,
                       adaptive: bool = True,
                       pipelined: Optional[bool] = None,
                       probe: Optional[dict] = None,
                       stats_out: Optional[dict] = None
                       ) -> tuple[ChaosPoint, Optional[FaultStats]]:
    """Reliable-VMMC transfer over the same lossy fabric, optionally with
    a fault campaign running concurrently.  Returns the measurement point
    and the campaign's :class:`FaultStats` (None without a campaign).

    ``adaptive`` selects the congestion-controlled sender (default) or
    the static stop-and-wait baseline; ``pipelined`` issues every send up
    front so the AIMD window can keep several slots in flight (defaults
    to ``adaptive`` — the static sender serialises either way).  Pass a
    dict as ``probe`` to collect invariant evidence (RTO min/max, cwnd
    peak) and as ``stats_out`` to receive the raw tx/rx stat dicts."""
    if pipelined is None:
        pipelined = adaptive
    cluster = _two_node_cluster(error_rate)
    env = cluster.env
    _, ep_tx = cluster.nodes[0].attach_process("chaos_tx")
    _, ep_rx = cluster.nodes[1].attach_process("chaos_rx")
    tx, rx = env.run(until=open_channel(
        ep_tx, ep_rx, "chaos", slot_bytes=HEADER_BYTES + size,
        adaptive=adaptive))
    if probe is not None:
        _attach_probe(tx, probe)

    fault_stats: Optional[FaultStats] = None
    if campaign is not None:
        injector = FaultInjector(cluster)
        injector.run(campaign)
        # Per-campaign map, not `injector.stats`: the latter is only the
        # most recently *started* campaign and is clobbered when several
        # campaigns share one injector.
        fault_stats = injector.stats_by_campaign[campaign.name]

    result: dict[str, object] = {}

    def receiver():
        got = []
        for _ in range(messages):
            payload = yield rx.recv()
            got.append(payload)
        result["got"] = got
        result["end"] = env.now
        # Stay posted: if the final ACK is lost, only a live recv() can
        # re-ACK the sender's retransmission of the last message.
        rx.recv()

    def sender():
        if pipelined:
            sends = [tx.send(_pattern(i, size)) for i in range(messages)]
            for proc in sends:
                yield proc
        else:
            for i in range(messages):
                yield tx.send(_pattern(i, size))

    start = env.now
    rx_proc = env.process(receiver())
    env.process(sender())
    env.run(until=rx_proc)
    env.run(until=env.now + DRAIN_NS)

    got = result["got"]
    intact = sum(1 for i, g in enumerate(got) if g == _pattern(i, size))
    elapsed = int(result["end"]) - start
    if stats_out is not None:
        stats_out["tx"] = tx.stats.as_dict()
        stats_out["rx"] = rx.stats.as_dict()
    return ChaosPoint(
        error_rate=error_rate,
        mode="adaptive" if adaptive else "static",
        messages=messages,
        size=size, delivered_intact=intact,
        crc_drops=(cluster.nodes[0].lcp.crc_drops
                   + cluster.nodes[1].lcp.crc_drops),
        retransmits=tx.stats.retransmits,
        acks_resent=rx.stats.acks_resent,
        duplicates_suppressed=rx.stats.duplicates_suppressed,
        send_failures=tx.stats.send_failures,
        elapsed_ns=elapsed), fault_stats


def burst_campaign(cluster_links: list[str], seed: int,
                   nbursts: int = 3, rate: float = 0.4,
                   burst_ns: int = 300_000) -> FaultCampaign:
    """The canonical chaos-bench campaign: clustered error bursts on the
    data path, deterministically placed by ``seed``."""
    return FaultCampaign.random_link_bursts(
        cluster_links, seed=seed, nbursts=nbursts, rate=rate,
        start_ns=20_000, window_ns=3_000_000, burst_ns=burst_ns,
        name=f"bursts.seed{seed}")


def data_path_links() -> list[str]:
    """Link names on the node0→node1 data path of the 2-node testbed
    (data packets and ACKs traverse these)."""
    return ["node0->sw0", "sw0->node1", "node1->sw0", "sw0->node0"]


def run_campaign_point(seed: int, messages: int = 60, size: int = 1024,
                       adaptive: bool = True
                       ) -> tuple[ChaosPoint, FaultStats]:
    """Reliable traffic on a *clean* fabric with seeded error bursts
    injected mid-run — the determinism fixture: two calls with the same
    seed must return identical FaultStats and retransmit counts."""
    campaign = burst_campaign(data_path_links(), seed=seed)
    point, stats = run_reliable_point(0.0, messages=messages, size=size,
                                      campaign=campaign, adaptive=adaptive)
    assert stats is not None
    return point, stats


def run_error_burst_trial(seed: int, messages: int = 60, size: int = 1024,
                          adaptive: bool = True) -> dict:
    """One fully-instrumented error-burst run: seeded bursts on the data
    path, a probe on the sender's adaptive state, and the raw stat dicts.
    Returns a deterministic, JSON-serialisable report — two calls with
    the same arguments must produce *identical* reports (the CI
    seed-sweep gate re-runs every seed and diffs)."""
    probe: dict = {}
    stats_out: dict = {}
    campaign = burst_campaign(data_path_links(), seed=seed)
    point, fault_stats = run_reliable_point(
        0.0, messages=messages, size=size, campaign=campaign,
        adaptive=adaptive, probe=probe, stats_out=stats_out)
    assert fault_stats is not None
    return {
        "seed": seed,
        "mode": point.mode,
        "messages": messages,
        "size": size,
        "delivered_intact": point.delivered_intact,
        "crc_drops": point.crc_drops,
        "retransmits": point.retransmits,
        "send_failures": point.send_failures,
        "elapsed_ns": point.elapsed_ns,
        "goodput_mbps": round(point.goodput_mbps, 6),
        "probe": dict(sorted(probe.items())),
        "tx_stats": stats_out["tx"],
        "rx_stats": stats_out["rx"],
        "fault_stats": fault_stats.as_dict(),
    }


def check_trial_invariants(report: dict) -> list[str]:
    """Protocol invariants a :func:`run_error_burst_trial` report must
    satisfy; returns human-readable violation strings (empty == pass).
    Mirrors the property harness in ``tests/test_reliable_properties.py``
    so the CI seed sweep and the test suite enforce the same contract."""
    violations: list[str] = []
    tx = report["tx_stats"]
    if report["delivered_intact"] != report["messages"]:
        violations.append(
            f"delivery: {report['delivered_intact']}/{report['messages']} "
            f"payloads intact")
    if report["send_failures"]:
        violations.append(
            f"delivery: {report['send_failures']} send failures")
    if report["mode"] == "adaptive":
        probe = report["probe"]
        if probe["rto_min"] < probe["min_rto_ns"]:
            violations.append(
                f"rto: observed min {probe['rto_min']} below floor "
                f"{probe['min_rto_ns']}")
        if probe["rto_max"] > probe["max_timeout_ns"]:
            violations.append(
                f"rto: observed max {probe['rto_max']} above ceiling "
                f"{probe['max_timeout_ns']}")
        if probe["cwnd_peak"] > probe["nslots"]:
            violations.append(
                f"cwnd: peak {probe['cwnd_peak']} exceeds ring of "
                f"{probe['nslots']} slots")
        if probe["inflight_peak"] > probe["nslots"]:
            violations.append(
                f"inflight: peak {probe['inflight_peak']} exceeds ring "
                f"of {probe['nslots']} slots")
        karn = tx["rtt_samples"] + tx["retransmitted_deliveries"]
        if karn != tx["messages_delivered"]:
            violations.append(
                f"karn: rtt_samples {tx['rtt_samples']} + retransmitted "
                f"deliveries {tx['retransmitted_deliveries']} != "
                f"{tx['messages_delivered']} delivered")
    return violations


# -- multi-campaign orchestration ------------------------------------------
def parse_campaign_spec(spec: str, *, default_seed: int = 0
                        ) -> FaultCampaign:
    """Build a :class:`FaultCampaign` from a CLI spec string.

    Format: ``builder[:key=value[,key=value...]]``.  Builders (all
    deterministic — every random choice comes from ``seed``):

    =============  =========================================================
    ``bursts``     clustered link error bursts on the node0↔node1 data path
                   (``seed``, ``nbursts``, ``rate``, ``burst_ns``,
                   ``start_ns``, ``window_ns``)
    ``flap``       link down/up cycles (``target`` link name, ``seed``,
                   ``count``, ``down_ns``, ``gap_ns``, ``start_ns``)
    ``stall``      LANai clock stops (``node``, ``seed``, ``count``,
                   ``stall_ns``, ``gap_ns``, ``start_ns``)
    ``crash``      one daemon crash window (``node``, ``at_ns``,
                   ``dur_ns``, ``cold`` ∈ 0/1)
    ``cold-crash`` the recovery-protocol schedule of
                   :func:`cold_crash_campaign` (``seed``)
    =============  =========================================================

    Every builder accepts ``name=`` to override the derived campaign name
    (names must be unique within one ``--campaign`` set).
    """
    builder, _, rest = spec.partition(":")
    builder = builder.strip()
    kw: dict[str, str] = {}
    if rest:
        for item in rest.split(","):
            if not item:
                continue
            key, eq, value = item.partition("=")
            if not eq:
                raise ValueError(
                    f"bad campaign spec item {item!r} in {spec!r} "
                    "(want key=value)")
            kw[key.strip()] = value.strip()
    seed = int(kw.pop("seed", default_seed))
    name = kw.pop("name", None)

    def leftover():
        if kw:
            raise ValueError(
                f"unknown key(s) {sorted(kw)} for campaign builder "
                f"{builder!r}")

    if builder == "bursts":
        nbursts = int(kw.pop("nbursts", 3))
        rate = float(kw.pop("rate", 0.4))
        burst_ns = int(kw.pop("burst_ns", 300_000))
        start_ns = int(kw.pop("start_ns", 20_000))
        window_ns = int(kw.pop("window_ns", 3_000_000))
        leftover()
        return FaultCampaign.random_link_bursts(
            data_path_links(), seed=seed, nbursts=nbursts, rate=rate,
            start_ns=start_ns, window_ns=window_ns, burst_ns=burst_ns,
            name=name or f"bursts.seed{seed}")
    if builder == "flap":
        target = kw.pop("target", "sw0->node1")
        count = int(kw.pop("count", 2))
        down_ns = int(kw.pop("down_ns", 150_000))
        gap_ns = int(kw.pop("gap_ns", 1_200_000))
        start_ns = int(kw.pop("start_ns", 200_000))
        leftover()
        rng = np.random.default_rng(seed)
        events = [FaultEvent(
            at_ns=start_ns + i * gap_ns + int(rng.integers(0, gap_ns // 4)),
            kind=LINK_DOWN, target=target, duration_ns=down_ns)
            for i in range(count)]
        return FaultCampaign.of(name or f"flap.seed{seed}", events,
                                seed=seed)
    if builder == "stall":
        node = kw.pop("node", "node1")
        count = int(kw.pop("count", 2))
        stall_ns = int(kw.pop("stall_ns", 120_000))
        gap_ns = int(kw.pop("gap_ns", 1_000_000))
        start_ns = int(kw.pop("start_ns", 400_000))
        leftover()
        rng = np.random.default_rng(seed)
        events = [FaultEvent(
            at_ns=start_ns + i * gap_ns + int(rng.integers(0, gap_ns // 4)),
            kind=LANAI_STALL, target=node, duration_ns=stall_ns)
            for i in range(count)]
        return FaultCampaign.of(name or f"stall.seed{seed}", events,
                                seed=seed)
    if builder == "crash":
        node = kw.pop("node", "node1")
        at_ns = int(kw.pop("at_ns", 500_000))
        dur_ns = int(kw.pop("dur_ns", 400_000))
        cold = kw.pop("cold", "0") not in ("0", "false", "no")
        leftover()
        kind = DAEMON_COLD_CRASH if cold else DAEMON_CRASH
        events = [FaultEvent(at_ns=at_ns, kind=kind, target=node,
                             duration_ns=dur_ns)]
        return FaultCampaign.of(
            name or f"{'cold-' if cold else ''}crash.{node}.seed{seed}",
            events, seed=seed)
    if builder == "cold-crash":
        leftover()
        campaign = cold_crash_campaign(seed)
        if name:
            campaign = FaultCampaign(name=name, events=campaign.events,
                                     seed=seed)
        return campaign
    raise ValueError(
        f"unknown campaign builder {builder!r} "
        "(want bursts, flap, stall, crash or cold-crash)")


def default_multi_campaigns(seed: int) -> list[FaultCampaign]:
    """The canonical concurrent-chaos set: two burst campaigns whose
    schedules include *guaranteed-overlapping* bursts on one data-path
    link (exercising the error-rate stack), plus a LANai-stall campaign
    on both nodes.  Deterministic per ``seed``."""
    links = data_path_links()
    a = FaultCampaign.of(
        f"bursts-a.seed{seed}",
        list(burst_campaign(links, seed=seed).events) + [
            FaultEvent(at_ns=100_000, kind=LINK_ERROR_BURST,
                       target="sw0->node1", duration_ns=300_000,
                       params={"rate": 0.5})],
        seed=seed)
    b = FaultCampaign.of(
        f"bursts-b.seed{seed + 1}",
        list(burst_campaign(links, seed=seed + 1).events) + [
            FaultEvent(at_ns=250_000, kind=LINK_ERROR_BURST,
                       target="sw0->node1", duration_ns=300_000,
                       params={"rate": 0.3})],
        seed=seed + 1)
    stalls = FaultCampaign.of(
        f"stalls.seed{seed}",
        [FaultEvent(at_ns=500_000, kind=LANAI_STALL, target="node1",
                    duration_ns=120_000),
         FaultEvent(at_ns=1_500_000, kind=LANAI_STALL, target="node0",
                    duration_ns=120_000)],
        seed=seed)
    return [a, b, stalls]


def run_multi_campaign_trial(seed: int, messages: int = 60,
                             size: int = 1024,
                             campaigns: Optional[list[FaultCampaign]] = None,
                             policy: str = "serialize",
                             adaptive: bool = True) -> dict:
    """Reliable traffic on a clean fabric while a whole
    :class:`CampaignSet` runs **concurrently** — the multi-campaign
    acceptance fixture.  Returns a deterministic, JSON-serialisable
    report: two calls with the same arguments must be byte-identical
    (the CI multi-campaign gate re-runs and diffs).

    The report carries the merged cross-campaign
    :class:`~repro.faults.MergedFaultStats` (overlapped intervals
    counted once per target), every per-campaign sub-stat, and any
    conflict-guard decisions.
    """
    cluster = _two_node_cluster(0.0)
    env = cluster.env
    _, ep_tx = cluster.nodes[0].attach_process("chaos_tx")
    _, ep_rx = cluster.nodes[1].attach_process("chaos_rx")
    tx, rx = env.run(until=open_channel(
        ep_tx, ep_rx, "chaos", slot_bytes=HEADER_BYTES + size,
        adaptive=adaptive))

    # Campaigns are authored relative to t=0; shift them to the workload
    # start so their relative timing (and the overlaps we are testing)
    # survives the channel-setup time.
    cset = CampaignSet.of(
        [c.shifted(env.now)
         for c in (campaigns or default_multi_campaigns(seed))],
        policy=policy)
    _, conflicts = cset.resolve()   # deterministic; re-done by run_all
    injector = FaultInjector(cluster)
    set_done = injector.run_all(cset)

    result: dict[str, object] = {}

    def receiver():
        got = []
        for _ in range(messages):
            payload = yield rx.recv()
            got.append(payload)
        result["got"] = got
        result["end"] = env.now
        # Stay posted: if the final ACK is lost, only a live recv() can
        # re-ACK the sender's retransmission of the last message.
        rx.recv()

    def sender():
        if adaptive:
            sends = [tx.send(_pattern(i, size)) for i in range(messages)]
            for proc in sends:
                yield proc
        else:
            for i in range(messages):
                yield tx.send(_pattern(i, size))

    start = env.now
    rx_proc = env.process(receiver())
    env.process(sender())
    env.run(until=rx_proc)
    merged = env.run(until=set_done)
    env.run(until=env.now + DRAIN_NS)

    got = result["got"]
    intact = sum(1 for i, g in enumerate(got) if g == _pattern(i, size))
    elapsed = int(result["end"]) - start
    goodput = (intact * size) / (elapsed / 1e3) if elapsed > 0 else 0.0
    return {
        "seed": seed,
        "policy": policy,
        "mode": "adaptive" if adaptive else "static",
        "messages": messages,
        "size": size,
        "campaigns": [c.name for c in cset],
        "conflicts": [c.as_dict() for c in conflicts],
        "delivered_intact": intact,
        "crc_drops": (cluster.nodes[0].lcp.crc_drops
                      + cluster.nodes[1].lcp.crc_drops),
        "retransmits": tx.stats.retransmits,
        "duplicates_suppressed": rx.stats.duplicates_suppressed,
        "send_failures": tx.stats.send_failures,
        "elapsed_ns": elapsed,
        "goodput_mbps": round(goodput, 6),
        "merged_fault_stats": merged.as_dict(),
        "per_campaign": {
            name: stats.as_dict()
            for name, stats in sorted(
                injector.stats_by_campaign.items())},
    }


def cold_crash_campaign(seed: int, start_ns: int = 0,
                        gap_ns: int = 4_000_000) -> FaultCampaign:
    """Cold daemon crashes for the recovery protocol: first the
    *receiver's* daemon (node1 — the sender's ring import goes stale),
    then the *sender's* (node0 — the receiver's ACK import goes stale),
    in disjoint windows so the cluster never loses both daemons at once.
    Crash times and dead windows are drawn deterministically from
    ``seed``."""
    rng = np.random.default_rng(seed)
    events = []
    for i, node in enumerate(("node1", "node0")):
        at = start_ns + i * gap_ns + int(rng.integers(100_000, 1_500_000))
        dead_ns = int(rng.integers(300_000, 800_000))
        events.append(FaultEvent(at_ns=at, kind=DAEMON_COLD_CRASH,
                                 target=node, duration_ns=dead_ns))
    return FaultCampaign.of(f"cold_crash.seed{seed}", events, seed=seed)


def run_cold_crash_point(seed: int, messages: int = 200, size: int = 1024,
                         adaptive: bool = True
                         ) -> tuple[ChaosPoint, FaultStats, dict]:
    """Reliable transfer while both daemons cold-crash mid-stream.

    The acceptance experiment for the import-lifecycle redesign: every
    payload must arrive intact exactly once (the reliable layer reimports
    stale destinations transparently), and no write may land through a
    dead mapping (``stale_writes_blocked`` counts the incoming page
    table's refusals).  Returns ``(point, fault_stats, recovery)`` where
    ``recovery`` aggregates the protocol's counters — identical across
    reruns of the same seed."""
    cluster = _two_node_cluster(0.0)
    env = cluster.env
    _, ep_tx = cluster.nodes[0].attach_process("chaos_tx")
    _, ep_rx = cluster.nodes[1].attach_process("chaos_rx")
    tx, rx = env.run(until=open_channel(
        ep_tx, ep_rx, "chaos", slot_bytes=HEADER_BYTES + size,
        adaptive=adaptive))

    campaign = cold_crash_campaign(seed, start_ns=env.now)
    injector = FaultInjector(cluster)
    campaign_done = injector.run(campaign)
    fault_stats = injector.stats_by_campaign[campaign.name]

    result: dict[str, object] = {}

    def receiver():
        got = []
        for _ in range(messages):
            payload = yield rx.recv()
            got.append(payload)
        result["got"] = got
        result["end"] = env.now
        # Stay posted: if the final ACK is lost, only a live recv() can
        # re-ACK the sender's retransmission of the last message.
        rx.recv()

    def sender():
        if adaptive:
            sends = [tx.send(_pattern(i, size)) for i in range(messages)]
            for proc in sends:
                yield proc
        else:
            for i in range(messages):
                yield tx.send(_pattern(i, size))

    start = env.now
    rx_proc = env.process(receiver())
    env.process(sender())
    env.run(until=rx_proc)
    env.run(until=campaign_done)
    env.run(until=env.now + DRAIN_NS)

    got = result["got"]
    intact = sum(1 for i, g in enumerate(got) if g == _pattern(i, size))
    elapsed = int(result["end"]) - start
    point = ChaosPoint(
        error_rate=0.0, mode="adaptive" if adaptive else "static",
        messages=messages, size=size,
        delivered_intact=intact,
        crc_drops=(cluster.nodes[0].lcp.crc_drops
                   + cluster.nodes[1].lcp.crc_drops),
        retransmits=tx.stats.retransmits,
        acks_resent=rx.stats.acks_resent,
        duplicates_suppressed=rx.stats.duplicates_suppressed,
        send_failures=tx.stats.send_failures,
        elapsed_ns=elapsed)
    daemons = [node.daemon for node in cluster.nodes]
    recovery = {
        "cold_restarts": sum(d.cold_restarts for d in daemons),
        "invalidations_rx": sum(d.invalidations_rx for d in daemons),
        "imports_invalidated": sum(d.imports_invalidated for d in daemons),
        "exports_reestablished":
            sum(d.exports_reestablished for d in daemons),
        "reimports": tx.stats.reimports + rx.stats.reimports,
        "stale_transmits":
            tx.stats.stale_transmits + rx.stats.stale_transmits,
        "stale_sends_blocked":
            ep_tx.stale_sends_blocked + ep_rx.stale_sends_blocked,
        "stale_writes_blocked":
            sum(node.lcp.protection_violations for node in cluster.nodes),
    }
    return point, fault_stats, recovery
