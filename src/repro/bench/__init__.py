"""Benchmark harness: the section-5 microbenchmarks as reusable drivers.

:mod:`repro.bench.microbench` implements the paper's measurement
methodology (ping-pong, one-way, bidirectional, send-overhead probes) over
a simulated cluster; :mod:`repro.bench.report` renders the rows/series the
paper's figures plot; the files in ``benchmarks/`` bind the two together,
one per paper artifact.
"""

from repro.bench.microbench import (
    BandwidthPoint,
    LatencyPoint,
    OverheadPoint,
    VmmcPair,
    vmmc_bidirectional_bandwidth,
    vmmc_oneway_bandwidth,
    vmmc_pingpong_latency,
    vmmc_send_overhead,
)
from repro.bench.report import Series, format_table

__all__ = [
    "BandwidthPoint",
    "LatencyPoint",
    "OverheadPoint",
    "Series",
    "VmmcPair",
    "format_table",
    "vmmc_bidirectional_bandwidth",
    "vmmc_oneway_bandwidth",
    "vmmc_pingpong_latency",
    "vmmc_send_overhead",
]
