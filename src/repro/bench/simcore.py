"""Event-core throughput bench: scalar oracle vs vector fast path.

Measures raw simulated-events/sec of the two engines on three workload
shapes that bracket the repo's real simulations:

* ``chain`` — one process, N sequential timeouts.  The
  Timeout→resume→Timeout pattern of the LANai/DMA/link pipelines;
  generator resumption dominates, so the vector engine's win here is
  only its inlined drain loop.
* ``storm`` — N independent timeouts pre-scheduled at scattered
  deadlines.  Pure heap churn with trivial callbacks.
* ``ring`` — N slot-ring deadlines armed in batches through
  :meth:`~repro.sim.core.Environment.timeout_batch` with quantized
  expiry times.  The shape the vectorized batch rings exist for: DMA
  completion timers, link-hop arrival waves, retransmission slot rings.
  This is the cell the ≥10x acceptance gate rides on.

Each point runs the same workload on both engines in one process
(best-of-``repeats`` wall time), cross-checks a behavioral fingerprint
(final simulated time, events processed, and the ring's on_fire group
digest must be equal — a throughput number from a divergent simulation
is meaningless), and reports the intra-trial speedup.  Wall-clock
throughput is machine-dependent, so the campaign publishes the numbers
as ``info`` metrics and enforces via trial *gates*: ``identical`` and,
on the ring cell, ``speedup_10x`` — both machine-independent claims.
"""

from __future__ import annotations

import time
from typing import Any, Callable

import numpy as np

from repro.sim import Environment
from repro.sim.fingerprint import value_fingerprint

__all__ = ["SIMCORE_WORKLOADS", "run_simcore_point"]


def _chain(env: Environment, events: int, seed: int) -> dict[str, Any]:
    step = 3 + (seed % 5)

    def proc():
        for _ in range(events):
            yield env.timeout(step)

    env.process(proc())
    env.run()
    return {}


def _storm(env: Environment, events: int, seed: int) -> dict[str, Any]:
    # Deterministic scattered deadlines (Knuth multiplicative hash).
    for i in range(events):
        env.timeout(((i + seed) * 2654435761) % 10_000)
    env.run()
    return {}


def _ring(env: Environment, events: int, seed: int) -> dict[str, Any]:
    rng = np.random.default_rng(seed)
    waves = 32
    per_wave = events // waves
    digest = {"groups": 0, "acc": 0}

    def on_fire(when: int, indices: np.ndarray) -> None:
        digest["groups"] += 1
        digest["acc"] ^= when * len(indices) + int(indices[0])

    def proc():
        for _ in range(waves):
            # Quantized deadlines: many members share each expiry tick,
            # like completion timers clocked by a slot ring.
            delays = rng.integers(0, 64, size=per_wave) * 16
            yield env.timeout_batch(delays, on_fire)

    env.process(proc())
    env.run()
    return dict(digest)


SIMCORE_WORKLOADS: dict[str, Callable[[Environment, int, int],
                                      dict[str, Any]]] = {
    "chain": _chain,
    "storm": _storm,
    "ring": _ring,
}


def _measure(workload: str, engine: str, events: int, seed: int,
             repeats: int) -> tuple[float, dict[str, Any]]:
    """Best-of-``repeats`` wall seconds plus the behavioral fingerprint."""
    run = SIMCORE_WORKLOADS[workload]
    best = None
    fingerprint: dict[str, Any] = {}
    for _ in range(repeats):
        env = Environment(engine=engine)
        t0 = time.perf_counter()
        extra = run(env, events, seed)
        elapsed = time.perf_counter() - t0
        fingerprint = {"final_time_ns": env.now,
                       "events_processed": env.events_processed, **extra}
        best = elapsed if best is None else min(best, elapsed)
    return best, fingerprint


def run_simcore_point(workload: str, events: int, seed: int,
                      repeats: int = 3) -> dict[str, Any]:
    """One scalar-vs-vector throughput point; see the module docstring."""
    scalar_s, scalar_fp = _measure(workload, "scalar", events, seed, repeats)
    vector_s, vector_fp = _measure(workload, "vector", events, seed, repeats)
    processed = scalar_fp["events_processed"]
    return {
        "workload": workload,
        "events": processed,
        "scalar_events_per_sec": processed / scalar_s,
        "vector_events_per_sec": processed / vector_s,
        "speedup": scalar_s / vector_s,
        "identical": (value_fingerprint(scalar_fp)
                      == value_fingerprint(vector_fp)),
        "scalar_fingerprint": scalar_fp,
        "vector_fingerprint": vector_fp,
    }
