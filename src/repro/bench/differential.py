"""Engine-differential workload runners: scalar oracle vs vector engine.

Each runner here replays one of the repo's standing workloads under a
chosen simulation engine and reduces the run to a JSON-serializable
report — simulated times, counters, metrics, trace fingerprints — with
**no wall-clock content**, so two runs are comparable byte for byte.
:func:`diff_engines` runs a workload set on both engines and reports,
per workload, whether the reports are identical and (if not) the first
divergent paths.

This is the machinery behind ``tests/test_sim_differential.py`` and the
``python -m repro engine-diff`` CLI/CI step.  The workload set matches
the issue's acceptance list:

* ``chaos``       — seeded error-burst run of the reliable sender;
* ``fig3``        — paper Figure 3 bandwidth points (one-way + bidir);
* ``dsm-smoke``   — DSM coherence workload, error-burst scenario;
* ``fabric-smoke``— multi-switch fabric pair traffic on a fat-tree;
* ``contract``    — the observability contract workload, fingerprinting
  the full event trace and the metrics snapshot.

Engine selection happens via ``$REPRO_SIM_ENGINE`` (every runner builds
its environments through the normal constructors), so a runner exercises
exactly the code path a user selecting that engine would hit.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Callable, Iterator

from repro.sim.core import ENGINE_ENV_VAR, resolve_engine
from repro.sim.fingerprint import (diff_values, trace_fingerprint,
                                   trace_payload, value_fingerprint)

__all__ = ["WORKLOADS", "engine_env", "run_workload", "diff_engines"]


@contextmanager
def engine_env(engine: str) -> Iterator[None]:
    """Run a block with ``$REPRO_SIM_ENGINE`` forced to ``engine``."""
    resolve_engine(engine)  # fail fast on typos
    saved = os.environ.get(ENGINE_ENV_VAR)
    os.environ[ENGINE_ENV_VAR] = engine
    try:
        yield
    finally:
        if saved is None:
            os.environ.pop(ENGINE_ENV_VAR, None)
        else:
            os.environ[ENGINE_ENV_VAR] = saved


def _chaos_workload() -> dict[str, Any]:
    from repro.bench.chaos import run_error_burst_trial

    return {f"seed{seed}.{mode}": run_error_burst_trial(
                seed, messages=30, size=1024, adaptive=(mode == "adaptive"))
            for seed in (0, 1) for mode in ("static", "adaptive")}


def _fig3_workload() -> dict[str, Any]:
    from repro.bench.microbench import (VmmcPair, vmmc_bidirectional_bandwidth,
                                        vmmc_oneway_bandwidth)
    from repro.cluster import TestbedConfig

    pair = VmmcPair(TestbedConfig(nnodes=2, memory_mb=32),
                    buffer_bytes=65536)
    oneway = vmmc_oneway_bandwidth(pair, 65536, iterations=4)
    bidir = vmmc_bidirectional_bandwidth(pair, 16384, iterations=3)
    return {
        "oneway": {"size": oneway.size, "mbps": oneway.mbps},
        "bidir": {"size": bidir.size, "mbps": bidir.mbps},
        "events_processed": pair.env.events_processed,
        "final_time_ns": pair.env.now,
    }


def _dsm_workload() -> dict[str, Any]:
    from repro.dsm.bench import run_dsm_trial

    report = run_dsm_trial(0, nnodes=4, npages=16, page_bytes=256,
                           ops_per_node=12, scenario="error-burst")
    report.pop("wall_clock_s", None)
    return report


def _fabric_workload() -> dict[str, Any]:
    from repro.campaign.trials import fabric_trial

    return fabric_trial({"topology": "fattree:4", "pairs": 4,
                         "messages": 6, "size": 2048}, seed=0)


def _kv_workload() -> dict[str, Any]:
    # Chaos scenario on purpose: error bursts drive the reliable
    # sender's batched retransmit deadlines (Environment.timeout_batch),
    # so this workload is the engine-identity proof for that path.
    from repro.kv.bench import run_kv_trial

    return run_kv_trial(0, shards=2, requests=120, nkeys=64, skew=1.1,
                        load="diurnal", scenario="error-burst")


def _contract_workload() -> dict[str, Any]:
    from repro.obs.workload import run_contract_workload

    tracer, metrics = run_contract_workload()
    return {
        "trace_fingerprint": trace_fingerprint(tracer),
        "trace_records": len(tracer.records),
        "trace_dropped": tracer.dropped,
        "metrics_fingerprint": value_fingerprint(metrics.snapshot()),
        "metrics": metrics.snapshot(),
        # Full trace retained so a divergence names the first differing
        # record, not just two hashes.
        "trace": trace_payload(tracer),
    }


#: name -> zero-argument runner returning a JSON-serializable report.
WORKLOADS: dict[str, Callable[[], dict[str, Any]]] = {
    "chaos": _chaos_workload,
    "fig3": _fig3_workload,
    "dsm-smoke": _dsm_workload,
    "fabric-smoke": _fabric_workload,
    "kv-smoke": _kv_workload,
    "contract": _contract_workload,
}


def run_workload(name: str, engine: str) -> dict[str, Any]:
    """Run workload ``name`` under ``engine``; returns its report plus
    the engine-side bookkeeping the differ uses."""
    from repro.hostos.process import fresh_pid_namespace

    runner = WORKLOADS[name]
    with engine_env(engine), fresh_pid_namespace():
        report = runner()
    return {"workload": name, "engine": engine,
            "fingerprint": value_fingerprint(report), "report": report}


def diff_engines(names: list[str] | None = None,
                 engines: tuple[str, str] = ("scalar", "vector"),
                 ) -> dict[str, Any]:
    """Run each workload on both engines and compare the reports.

    Returns ``{"identical": bool, "workloads": {name: {...}}}`` where a
    non-identical workload entry carries the first divergent paths from
    :func:`repro.sim.fingerprint.diff_values` — the artifact CI uploads
    on failure.
    """
    result: dict[str, Any] = {"engines": list(engines), "workloads": {}}
    identical = True
    for name in names or sorted(WORKLOADS):
        left = run_workload(name, engines[0])
        right = run_workload(name, engines[1])
        same = left["fingerprint"] == right["fingerprint"]
        entry: dict[str, Any] = {
            "identical": same,
            "fingerprints": {engines[0]: left["fingerprint"],
                             engines[1]: right["fingerprint"]},
        }
        if not same:
            identical = False
            entry["divergences"] = [
                {"path": path, engines[0]: a, engines[1]: b}
                for path, a, b in diff_values(left["report"], right["report"])]
        result["workloads"][name] = entry
    result["identical"] = identical
    return result
