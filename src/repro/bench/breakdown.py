"""Latency breakdown: decompose one send into the section-5.2 stages.

The paper's hardware-limit analysis adds up per-stage costs (post, LANai
pickup/packet/DMA, wire, receive DMA).  This module reproduces that
accounting *from traces of an actual simulated send* rather than from the
cost constants, so it doubles as a consistency check: the stages must sum
to the end-to-end latency the microbenchmark measures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim import Tracer
from repro.bench.microbench import VmmcPair, _stamp, spin_until_stamp
from repro.cluster import TestbedConfig


@dataclass(frozen=True)
class LatencyBreakdown:
    """Stage durations (µs) of one short one-way send."""

    post_us: float            # library + PIO until the request is posted
    lanai_send_us: float      # pickup → packet on the wire
    wire_us: float            # injection → arrival at the far NIC
    lanai_recv_us: float      # arrival → receive host-DMA start
    deliver_us: float         # host DMA + spin observation
    total_us: float

    def rows(self) -> list[tuple[str, float]]:
        return [
            ("post request (library + PIO)", self.post_us),
            ("sending LANai (pickup, header, net DMA)", self.lanai_send_us),
            ("wire (links + switch)", self.wire_us),
            ("receiving LANai + host DMA into memory",
             self.lanai_recv_us),
            ("spin observation (cache-line fill)", self.deliver_us),
            ("TOTAL", self.total_us),
        ]


def measure_breakdown(size: int = 4) -> LatencyBreakdown:
    """Run one traced short send on a fresh pair and decompose it."""
    keep = ("vmmc.send.posted", "node0.lcp.send.pickup", "node0.pci.dma",
            "lanai.netsend", "lanai.netrecv", "node1.pci.dma",
            "node1.hostdma.write_host", "node1.lcp")

    def keeper(category: str) -> bool:
        return any(category.startswith(k) for k in keep)

    pair = VmmcPair(TestbedConfig(nnodes=2, memory_mb=8),
                    buffer_bytes=16 * 1024)
    env = pair.env
    tracer = Tracer(keep=keeper)
    env.tracer = tracer
    marks = {}

    def app():
        _stamp(pair.src_a, size, 1)
        marks["call"] = env.now
        yield pair.ep_a.send(pair.src_a, pair.to_b, size)
        yield spin_until_stamp(pair.ep_b, pair.inbox_b, size, 1)
        marks["observed"] = env.now

    env.run(until=env.process(app()))

    def first(category: str, after: int = 0) -> int:
        for record in tracer:
            if record.category.startswith(category) and record.time >= after:
                return record.time
        raise LookupError(f"no trace {category!r} after {after}")

    posted = first("vmmc.send.posted")
    pickup = first("node0.lcp.send.pickup")
    injected = first("lanai.netsend", after=pickup)
    arrived = first("lanai.netrecv", after=injected)
    delivered = first("node1.hostdma.write_host", after=arrived)

    return LatencyBreakdown(
        post_us=(posted - marks["call"]) / 1000,
        lanai_send_us=(injected - posted) / 1000,
        wire_us=(arrived - injected) / 1000,
        lanai_recv_us=(delivered - arrived) / 1000,
        deliver_us=(marks["observed"] - delivered) / 1000,
        total_us=(marks["observed"] - marks["call"]) / 1000,
    )
