"""Latency breakdown: decompose one send into the section-5.2 stages.

The paper's hardware-limit analysis adds up per-stage costs (post, LANai
pickup/packet/DMA, wire, receive DMA).  The measurement itself lives in
:mod:`repro.obs.breakdown` (the observability layer owns trace-derived
reports); this module keeps the original µs-level dataclass as a stable
benchmark-facing view, so callers that predate ``repro.obs`` keep working.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.breakdown import measure_stage_breakdown


@dataclass(frozen=True)
class LatencyBreakdown:
    """Stage durations (µs) of one short one-way send."""

    post_us: float            # library + PIO until the request is posted
    lanai_send_us: float      # pickup → packet on the wire
    wire_us: float            # injection → arrival at the far NIC
    lanai_recv_us: float      # arrival → receive host-DMA start
    deliver_us: float         # host DMA + spin observation
    total_us: float

    def rows(self) -> list[tuple[str, float]]:
        return [
            ("post request (library + PIO)", self.post_us),
            ("sending LANai (pickup, header, net DMA)", self.lanai_send_us),
            ("wire (links + switch)", self.wire_us),
            ("receiving LANai + host DMA into memory",
             self.lanai_recv_us),
            ("spin observation (cache-line fill)", self.deliver_us),
            ("TOTAL", self.total_us),
        ]


def measure_breakdown(size: int = 4) -> LatencyBreakdown:
    """Run one traced short send on a fresh pair and decompose it."""
    report = measure_stage_breakdown(size)
    durations = [ns / 1000.0 for _, ns in report.stages]
    return LatencyBreakdown(
        post_us=durations[0],
        lanai_send_us=durations[1],
        wire_us=durations[2],
        lanai_recv_us=durations[3],
        deliver_us=durations[4],
        total_us=report.total_ns / 1000.0,
    )
