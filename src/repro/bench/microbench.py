"""The section-5.3 microbenchmarks as reusable measurement drivers.

The paper's methodology, reproduced exactly:

* translations are pre-warmed in the software TLB ("we make sure that it
  is present in the LANai software TLB" — section 5.3);
* a **synchronous** send returns when the send buffer is reusable;
* traffic patterns: one-way, bidirectional, alternating (ping-pong);
* receivers detect delivery by spinning on the last word of the message
  (the sender stamps a sequence number there), since VMMC has no receive
  operation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim import Environment
from repro.mem.buffers import UserBuffer
from repro.cluster import Cluster, TestbedConfig
from repro.vmmc.api import VMMCEndpoint, ImportedBuffer


@dataclass(frozen=True)
class LatencyPoint:
    size: int
    one_way_us: float


@dataclass(frozen=True)
class BandwidthPoint:
    size: int
    mbps: float


@dataclass(frozen=True)
class OverheadPoint:
    size: int
    overhead_us: float
    synchronous: bool


def _stamp(buffer: UserBuffer, size: int, seq: int) -> None:
    """Write the sequence number into the message's last word."""
    word = np.frombuffer(np.uint32(seq).tobytes(), dtype=np.uint8)
    if size >= 4:
        buffer.write(word, offset=size - 4)
    else:
        buffer.write(word[:size], offset=0)


def _read_stamp(buffer: UserBuffer, size: int) -> int:
    if size >= 4:
        raw = buffer.read(size - 4, 4)
    else:
        raw = np.zeros(4, dtype=np.uint8)
        raw[:size] = buffer.read(0, size)
    return int(np.frombuffer(raw.tobytes(), dtype=np.uint32)[0])


def spin_until_stamp(ep: VMMCEndpoint, buffer: UserBuffer, size: int,
                     expected: int):
    """Process: spin until the message's sequence stamp equals ``expected``.

    Race-free: the watch is armed *before* the value check, so a write
    landing between check and wait still wakes the spinner.
    """
    def run():
        while True:
            offset = max(0, size - 4)
            span = min(4, size)
            watch = ep.watch(buffer, offset, span)
            yield ep.membus.cacheline_fill()
            if _read_stamp(buffer, size) == expected:
                return
            yield watch

    return ep.env.process(run(), name="bench.spin")


class VmmcPair:
    """A booted cluster with two processes wired for mutual communication.

    Each side exports an ``inbox`` and imports the peer's; this is the
    fixture every microbenchmark runs on.
    """

    def __init__(self, config: TestbedConfig | None = None,
                 buffer_bytes: int = 1024 * 1024,
                 warm_tlb: bool = True,
                 engine: str | None = None):
        self.cluster = Cluster.build(config or TestbedConfig(), engine=engine)
        self.env: Environment = self.cluster.env
        self.buffer_bytes = buffer_bytes
        _, self.ep_a = self.cluster.nodes[0].attach_process("bench_a")
        _, self.ep_b = self.cluster.nodes[1].attach_process("bench_b")
        self.inbox_a = self.ep_a.alloc_buffer(buffer_bytes)
        self.inbox_b = self.ep_b.alloc_buffer(buffer_bytes)
        self.src_a = self.ep_a.alloc_buffer(buffer_bytes)
        self.src_b = self.ep_b.alloc_buffer(buffer_bytes)
        self.to_b: ImportedBuffer | None = None
        self.to_a: ImportedBuffer | None = None
        self._setup(warm_tlb)

    def _setup(self, warm_tlb: bool) -> None:
        env = self.env

        def wiring():
            yield self.ep_a.export(self.inbox_a, "inbox_a")
            yield self.ep_b.export(self.inbox_b, "inbox_b")
            self.to_b = yield self.ep_a.import_buffer("node1", "inbox_b")
            self.to_a = yield self.ep_b.import_buffer("node0", "inbox_a")
            if warm_tlb:
                # One full-size send each way faults every source page in,
                # mirroring the paper's warm-TLB methodology (section 5.3).
                yield self.ep_a.send(self.src_a, self.to_b,
                                     self.buffer_bytes)
                yield self.ep_b.send(self.src_b, self.to_a,
                                     self.buffer_bytes)
                yield env.timeout(5_000_000)  # drain deliveries

        env.run(until=env.process(wiring()))

    # -- measurement helpers -------------------------------------------------
    def run(self, generator) -> object:
        return self.env.run(until=self.env.process(generator))


def vmmc_pingpong_latency(pair: VmmcPair, size: int,
                          iterations: int = 20) -> LatencyPoint:
    """One-way latency via the traditional ping-pong (Figure 2)."""
    env = pair.env
    result = {}

    def side_a():
        start = env.now
        for i in range(iterations):
            _stamp(pair.src_a, size, i + 1)
            yield pair.ep_a.send(pair.src_a, pair.to_b, size)
            yield spin_until_stamp(pair.ep_a, pair.inbox_a, size, i + 1)
        result["elapsed"] = env.now - start

    def side_b():
        for i in range(iterations):
            yield spin_until_stamp(pair.ep_b, pair.inbox_b, size, i + 1)
            _stamp(pair.src_b, size, i + 1)
            yield pair.ep_b.send(pair.src_b, pair.to_a, size)

    done_a = env.process(side_a())
    env.process(side_b())
    env.run(until=done_a)
    one_way_ns = result["elapsed"] / (2 * iterations)
    return LatencyPoint(size=size, one_way_us=one_way_ns / 1000.0)


def vmmc_oneway_bandwidth(pair: VmmcPair, size: int,
                          iterations: int = 16) -> BandwidthPoint:
    """Streaming bandwidth, one sender, idle receiver (Figure 3).

    Synchronous sends back-to-back: a sync send's completion means the
    send buffer is reusable, so restamping it for the next message is
    legal (reusing it under a pending *asynchronous* send would be a
    zero-copy API violation).  The receiver times from its observation of
    the first message to the last, so sender startup is excluded.
    """
    env = pair.env
    result = {}

    def sender():
        for i in range(iterations):
            _stamp(pair.src_a, size, i + 1)
            yield pair.ep_a.send(pair.src_a, pair.to_b, size)

    def receiver():
        yield spin_until_stamp(pair.ep_b, pair.inbox_b, size, 1)
        start = env.now
        yield spin_until_stamp(pair.ep_b, pair.inbox_b, size, iterations)
        result["elapsed"] = env.now - start

    env.process(sender())
    done = env.process(receiver())
    env.run(until=done)
    total = size * (iterations - 1)
    return BandwidthPoint(size=size,
                          mbps=total / result["elapsed"] * 1000.0)


def vmmc_pingpong_bandwidth(pair: VmmcPair, size: int,
                            iterations: int = 8) -> BandwidthPoint:
    """Alternating-traffic bandwidth (Figure 3's 'ping-pong' series)."""
    point = vmmc_pingpong_latency(pair, size, iterations)
    # Bytes cross the wire in one direction at a time; each one-way leg
    # carries `size` bytes in `one_way` time.
    return BandwidthPoint(size=size,
                          mbps=size / (point.one_way_us * 1000.0) * 1000.0)


def vmmc_bidirectional_bandwidth(pair: VmmcPair, size: int,
                                 iterations: int = 12) -> BandwidthPoint:
    """Simultaneous bidirectional traffic; reports **total** bandwidth of
    both senders (Figure 3, section 5.3: both sides send, wait for the
    peer's message, then iterate)."""
    env = pair.env
    finish = {}

    def side(ep, src, dest, inbox, tag):
        start = env.now
        for i in range(iterations):
            _stamp(src, size, i + 1)
            send = ep.send(src, dest, size)  # sync: buffer reusable after
            recv = spin_until_stamp(ep, inbox, size, i + 1)
            yield send
            yield recv
        finish[tag] = env.now - start

    a = env.process(side(pair.ep_a, pair.src_a, pair.to_b,
                         pair.inbox_a, "a"))
    b = env.process(side(pair.ep_b, pair.src_b, pair.to_a,
                         pair.inbox_b, "b"))
    env.run(until=a & b)
    elapsed = max(finish.values())
    total = 2 * size * iterations
    return BandwidthPoint(size=size, mbps=total / elapsed * 1000.0)


def vmmc_send_overhead(pair: VmmcPair, size: int, synchronous: bool,
                       iterations: int = 10) -> OverheadPoint:
    """Host CPU cost of the send call itself, one-way traffic (Figure 4)."""
    env = pair.env
    samples = []

    def sender():
        for i in range(iterations):
            _stamp(pair.src_a, size, i + 1)
            t0 = env.now
            yield pair.ep_a.send(pair.src_a, pair.to_b, size,
                                 synchronous=synchronous)
            samples.append(env.now - t0)
            # Quiesce between calls so queue/DMA backlog never bleeds into
            # the next sample (one-way, unloaded, as in the paper).
            yield env.timeout(size * 20 + 200_000)

    done = env.process(sender())
    env.run(until=done)
    mean_ns = sum(samples) / len(samples)
    return OverheadPoint(size=size, overhead_us=mean_ns / 1000.0,
                         synchronous=synchronous)
