"""repro — a full-stack reproduction of *Design and Implementation of
Virtual Memory-Mapped Communication on Myrinet* (Dubnicki, Bilas, Li,
Philbin; IPPS 1997).

The original artifact is LANai firmware + a Linux driver on 1997 hardware;
this package rebuilds the complete system as a cycle-cost-accurate
discrete-event simulation: the Myrinet fabric, the LANai NIC, host
virtual memory and OS services, the VMMC protocol stack (daemon, driver,
LCP, user library), the SHRIMP comparison platform, vRPC, and the
contemporary baselines (Myrinet API, Active Messages, FM, PM).

Quick start::

    from repro import Cluster

    cluster = Cluster.build()                 # the paper's 4-node testbed
    env = cluster.env
    _, sender = cluster.nodes[0].attach_process("sender")
    _, receiver = cluster.nodes[1].attach_process("receiver")

    def app():
        inbox = receiver.alloc_buffer(8192)
        yield receiver.export(inbox, "inbox")
        imported = yield sender.import_buffer("node1", "inbox")
        msg = sender.alloc_buffer(8192)
        msg.fill(0x42)
        yield sender.send(msg, imported, 8192)      # zero-copy transfer
        assert inbox.read(0, 8192).tolist() == msg.read().tolist()

    env.run(until=env.process(app()))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured results of every table and figure.
"""

from repro.cluster import Cluster, Node, TestbedConfig
from repro.vmmc import (
    ImportedBuffer,
    SendHandle,
    VMMCEndpoint,
    VMMCError,
)

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "ImportedBuffer",
    "Node",
    "SendHandle",
    "TestbedConfig",
    "VMMCEndpoint",
    "VMMCError",
    "__version__",
]
