"""Command-line interface: ``python -m repro <command>``.

Gives downstream users the paper's measurements without touching pytest:

===========  ===========================================================
command      what it runs
===========  ===========================================================
latency      Figure 2 — ping-pong one-way latency sweep
bandwidth    Figure 3 — one-way + bidirectional bandwidth sweep
overhead     Figure 4 — sync/async send overhead sweep
dma          Figure 1 — host↔LANai DMA bandwidth curve
shootout     sections 6–7 — every protocol on identical hardware
vrpc         section 5.4 — vRPC vs SunRPC/UDP
sram         NIC SRAM accounting of a booted node
chaos        extension — lossy-link sweep + fault campaign: baseline
             VMMC vs the reliable-delivery layer; with
             ``--scenario daemon-cold-crash``, exactly-once delivery
             across cold daemon restarts (``--report`` for JSON)
dsm-bench    extension — seeded DSM coherence workload (page faults,
             invalidations, fetch latency) under clean/chaos scenarios,
             gated on the sequential-consistency checker and
             byte-identical reruns (``--report`` for JSON)
kv-bench     extension — sharded KV serving tier driven by an open-loop
             Zipf get/put generator (tail latency p50/p99/p999, hot-key
             imbalance) under clean/chaos scenarios, gated on delivery,
             the read-your-writes oracle and byte-identical reruns
             (``--report`` for JSON)
campaign     experiment campaigns — ``list|run|resume|report|diff``:
             declarative grid x seed sweeps fanned out over a process
             pool, aggregated (min/median/mean/CI) into schema-versioned
             ``BENCH_<AREA>.json`` artifacts at the repo root, with
             ``diff`` as the CI regression gate against the committed
             baselines (handbook: docs/BENCHMARKS.md)
engine-diff  differential gate — run workloads on both simulation
             engines (scalar oracle vs vector fast path) and fail on
             any trace/metric/report divergence (``--report`` writes
             the fingerprint diff, the CI artifact)
metrics      observability — metrics snapshot of the instrumented
             contract workload (``--json`` for machine consumption)
trace        observability — Perfetto / Chrome trace-event export of the
             contract workload (``--check-docs`` diffs emitted trace
             categories against docs/TRACING.md)
===========  ===========================================================
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import VmmcPair
from repro.bench.microbench import (
    vmmc_bidirectional_bandwidth,
    vmmc_oneway_bandwidth,
    vmmc_pingpong_latency,
    vmmc_send_overhead,
)
from repro.bench.report import Series, format_series, format_table
from repro.cluster import Cluster, TestbedConfig
from repro.sim.core import ENGINE_ENV_VAR, ENGINES


def _sizes(text: str) -> list[int]:
    return [int(s) for s in text.split(",") if s]


def cmd_latency(args) -> int:
    pair = VmmcPair(TestbedConfig(nnodes=2, memory_mb=16),
                    buffer_bytes=max(args.sizes) * 4)
    series = Series("VMMC one-way latency")
    for size in args.sizes:
        point = vmmc_pingpong_latency(pair, size, iterations=args.iters)
        series.add(size, point.one_way_us)
    print(format_series("Figure 2: VMMC latency for short messages",
                        "bytes", "us", [series]))
    return 0


def cmd_bandwidth(args) -> int:
    pair = VmmcPair(TestbedConfig(nnodes=2, memory_mb=32),
                    buffer_bytes=max(max(args.sizes), 65536))
    oneway = Series("one-way")
    bidir = Series("bidirectional total")
    for size in args.sizes:
        oneway.add(size, vmmc_oneway_bandwidth(pair, size, args.iters).mbps)
        bidir.add(size, vmmc_bidirectional_bandwidth(
            pair, size, max(3, args.iters // 2)).mbps)
    print(format_series("Figure 3: VMMC bandwidth", "bytes", "MB/s",
                        [oneway, bidir]))
    return 0


def cmd_overhead(args) -> int:
    pair = VmmcPair(TestbedConfig(nnodes=2, memory_mb=16),
                    buffer_bytes=max(max(args.sizes), 16384))
    sync = Series("sync")
    async_ = Series("async")
    for size in args.sizes:
        sync.add(size, vmmc_send_overhead(
            pair, size, synchronous=True, iterations=args.iters).overhead_us)
        async_.add(size, vmmc_send_overhead(
            pair, size, synchronous=False,
            iterations=args.iters).overhead_us)
    print(format_series("Figure 4: send overhead", "bytes", "us",
                        [sync, async_]))
    return 0


def cmd_dma(args) -> int:
    from repro.hw.bus.pci import PCIParams

    params = PCIParams()
    rows = [[size, f"{params.dma_bandwidth_mbps(size):.2f}"]
            for size in args.sizes]
    print(format_table("Figure 1: host<->LANai DMA bandwidth",
                       ["block bytes", "MB/s"], rows))
    return 0


def cmd_shootout(args) -> int:
    from examples import protocol_shootout  # pragma: no cover - thin

    protocol_shootout.main()
    return 0


def cmd_vrpc(args) -> int:
    from repro.rpc import (RPCProgram, VRPCClient, VRPCServer, XdrEncoder)

    cluster = Cluster.build(TestbedConfig(nnodes=2, memory_mb=32))
    env = cluster.env
    _, client_ep = cluster.nodes[0].attach_process("client")
    _, server_ep = cluster.nodes[1].attach_process("server")
    prog = RPCProgram(0x20000001, 1)
    prog.register(0, lambda dec: b"")
    server = VRPCServer(server_ep, "node1", prog)
    result = {}

    def app():
        chan = yield server.accept(client_ep, "node0", "cli")
        client = VRPCClient(chan, prog.number, prog.version)
        yield client.call(0)
        t0 = env.now
        for _ in range(args.iters):
            yield client.call(0)
        result["us"] = (env.now - t0) / args.iters / 1000

    env.run(until=env.process(app()))
    print(f"vRPC null round trip: {result['us']:.1f} us (paper: 66 us)")
    return 0


def cmd_breakdown(args) -> int:
    if args.json:
        from repro.obs.breakdown import measure_stage_breakdown

        print(measure_stage_breakdown(args.size).to_json())
        return 0
    from repro.bench.breakdown import measure_breakdown

    b = measure_breakdown(args.size)
    rows = [[name, f"{us:.2f}"] for name, us in b.rows()]
    print(format_table(
        f"Latency breakdown of a {args.size}-byte send (section 5.2)",
        ["stage", "us"], rows))
    return 0


def cmd_sram(args) -> int:
    cluster = Cluster.build(TestbedConfig(nnodes=2, memory_mb=16))
    for i in range(args.processes):
        cluster.nodes[0].attach_process(f"proc{i}")
    usage = cluster.nodes[0].nic.sram_usage()
    rows = [[region, size] for region, size in usage.items()]
    rows.append(["TOTAL", sum(usage.values())])
    print(format_table(
        f"NIC SRAM usage, {args.processes} attached process(es) "
        f"(board: 256 KB)", ["region", "bytes"], rows))
    return 0


def cmd_chaos(args) -> int:
    from repro.bench.chaos import (
        run_baseline_point,
        run_campaign_point,
        run_cold_crash_point,
        run_reliable_point,
    )

    if args.scenario == "daemon-cold-crash":
        return _chaos_cold_crash(args, run_cold_crash_point)
    if args.scenario == "error-burst":
        return _chaos_error_burst(args)
    if args.scenario == "multi-campaign" or args.campaign:
        return _chaos_multi(args)

    rows = []
    for rate in args.rates:
        base = run_baseline_point(rate, messages=args.messages,
                                  size=args.size)
        rel, _ = run_reliable_point(rate, messages=args.messages,
                                    size=args.size)
        for p in (base, rel):
            rows.append([f"{rate:g}", p.mode,
                         f"{p.delivered_intact}/{p.messages}",
                         p.crc_drops, p.retransmits,
                         f"{p.goodput_mbps:.1f}"])
    print(format_table(
        f"Chaos sweep: {args.messages} x {args.size}B messages per cell "
        "(baseline VMMC drops silently; reliable-VMMC retransmits)",
        ["error rate", "mode", "intact", "crc drops", "retransmits",
         "goodput MB/s"], rows))
    point, stats = run_campaign_point(seed=args.seed,
                                      messages=max(20, args.messages // 2),
                                      size=args.size)
    print(f"\nFault campaign '{stats.campaign}' (seed {stats.seed}): "
          f"{stats.faults_raised} faults raised, "
          f"{point.delivered_intact}/{point.messages} intact, "
          f"{point.retransmits} retransmits, "
          f"{point.duplicates_suppressed} duplicates suppressed "
          "(rerun with the same seed for identical numbers)")
    return 0


def _chaos_error_burst(args) -> int:
    """``chaos --scenario error-burst``: sweep campaign seeds 0..N-1,
    running the *adaptive* and *static* reliable senders under identical
    seeded error bursts.  Gates (any failure exits 1):

    * protocol invariants per run (exactly-once delivery, RTO within its
      configured bounds, cwnd/in-flight never above the ring, Karn's
      accounting) via :func:`repro.bench.chaos.check_trial_invariants`;
    * determinism — every seed is run twice and the full reports must be
      byte-identical.

    ``--report FILE`` writes the static-vs-adaptive goodput table and
    every per-seed report as JSON (the CI artifact)."""
    import json

    from repro.bench.chaos import check_trial_invariants, run_error_burst_trial

    seeds = list(range(args.seeds))
    rows = []
    reports = []
    violations: list[str] = []
    nondeterministic: list[int] = []
    for seed in seeds:
        per_mode = {}
        for adaptive in (False, True):
            trial = run_error_burst_trial(
                seed, messages=args.messages, size=args.size,
                adaptive=adaptive)
            rerun = run_error_burst_trial(
                seed, messages=args.messages, size=args.size,
                adaptive=adaptive)
            if json.dumps(trial, sort_keys=True) != \
                    json.dumps(rerun, sort_keys=True):
                nondeterministic.append(seed)
            for v in check_trial_invariants(trial):
                violations.append(f"seed {seed} [{trial['mode']}]: {v}")
            per_mode[trial["mode"]] = trial
            reports.append(trial)
        static, adaptive_ = per_mode["static"], per_mode["adaptive"]
        rows.append([seed,
                     f"{adaptive_['delivered_intact']}/{args.messages}",
                     static["retransmits"], adaptive_["retransmits"],
                     f"{static['goodput_mbps']:.1f}",
                     f"{adaptive_['goodput_mbps']:.1f}",
                     f"{adaptive_['goodput_mbps'] / static['goodput_mbps']:.2f}x"
                     if static["goodput_mbps"] else "-"])
    print(format_table(
        f"Error-burst seed sweep: {args.messages} x {args.size}B messages, "
        "static vs adaptive reliable sender under identical burst campaigns",
        ["seed", "intact", "retx static", "retx adaptive",
         "static MB/s", "adaptive MB/s", "speedup"], rows))
    for line in violations:
        print(f"INVARIANT VIOLATION: {line}")
    for seed in nondeterministic:
        print(f"NONDETERMINISM: seed {seed} produced different stats "
              "on re-run")
    ok = not violations and not nondeterministic
    print(f"{len(seeds)} seeds x 2 modes x 2 runs: "
          + ("PASS" if ok else "FAIL"))
    if args.report:
        report = {
            "scenario": "error-burst",
            "seeds": seeds,
            "messages": args.messages,
            "size": args.size,
            "violations": violations,
            "nondeterministic_seeds": nondeterministic,
            "trials": reports,
        }
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"report written to {args.report}")
    return 0 if ok else 1


def _chaos_multi(args) -> int:
    """``chaos --scenario multi-campaign`` (or any ``--campaign`` flag):
    drive several seeded fault campaigns **concurrently** against one
    cluster while reliable traffic runs.  Campaigns come from repeatable
    ``--campaign builder[:key=val,...]`` specs
    (:func:`repro.bench.chaos.parse_campaign_spec`) or default to the
    canonical overlapping set.  Gates (any failure exits 1):

    * exactly-once delivery of every payload despite the compound faults;
    * determinism — the whole trial is re-run and the full reports
      (merged + per-campaign FaultStats, conflict decisions, protocol
      counters) must be byte-identical.

    ``--report FILE`` writes the JSON report (the CI artifact)."""
    import json

    from repro.bench.chaos import (default_multi_campaigns,
                                   parse_campaign_spec,
                                   run_multi_campaign_trial)
    from repro.faults import CampaignConflictError

    try:
        campaigns = ([parse_campaign_spec(spec, default_seed=args.seed + i)
                      for i, spec in enumerate(args.campaign)]
                     if args.campaign
                     else default_multi_campaigns(args.seed))
        trial = run_multi_campaign_trial(
            args.seed, messages=args.messages, size=args.size,
            campaigns=campaigns, policy=args.policy)
        rerun = run_multi_campaign_trial(
            args.seed, messages=args.messages, size=args.size,
            campaigns=campaigns, policy=args.policy)
    except CampaignConflictError as exc:
        print(f"CONFLICT (policy={args.policy}): {exc}")
        return 1
    deterministic = (json.dumps(trial, sort_keys=True)
                     == json.dumps(rerun, sort_keys=True))

    merged = trial["merged_fault_stats"]
    rows = []
    for sub in merged["campaigns"]:
        rows.append([sub["campaign"], sub["seed"], sub["faults_raised"],
                     sub["faults_cleared"],
                     sum(sub["fault_ns_by_target"].values())])
    rows.append(["MERGED (overlaps once)", "-", merged["faults_raised"],
                 merged["faults_cleared"],
                 sum(merged["fault_ns_by_target"].values())])
    print(format_table(
        f"Concurrent campaigns ({len(trial['campaigns'])}), "
        f"{args.messages} x {args.size}B reliable messages "
        f"(policy={args.policy})",
        ["campaign", "seed", "raised", "cleared", "fault ns"], rows))
    overlap = sum(merged["overlap_ns_by_target"].values())
    print(f"overlapped fault time deduplicated in merge: {overlap} ns")
    for conflict in trial["conflicts"]:
        print(f"conflict: {conflict['campaign']}/{conflict['kind']}"
              f"@{conflict['at_ns']} on {conflict['target']} "
              f"{conflict['action']}"
              + (f" -> {conflict['resolved_at_ns']}"
                 if conflict["resolved_at_ns"] is not None else ""))
    delivered_ok = (trial["delivered_intact"] == trial["messages"]
                    and trial["send_failures"] == 0)
    print(f"delivered {trial['delivered_intact']}/{trial['messages']} "
          f"intact, {trial['retransmits']} retransmits, "
          f"{trial['goodput_mbps']:.1f} MB/s goodput")
    if not deterministic:
        print("NONDETERMINISM: re-run produced a different report")
    ok = delivered_ok and deterministic
    print("concurrent-campaign chaos (delivery + determinism): "
          + ("PASS" if ok else "FAIL"))
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump({"scenario": "multi-campaign",
                       "deterministic": deterministic,
                       "exactly_once": delivered_ok,
                       "trial": trial}, fh, indent=2, sort_keys=True)
        print(f"report written to {args.report}")
    return 0 if ok else 1


def _chaos_cold_crash(args, run_cold_crash_point) -> int:
    """``chaos --scenario daemon-cold-crash``: reliable traffic while both
    daemons cold-crash; prove exactly-once delivery across the recovery
    protocol and (optionally) write a JSON report."""
    import json

    point, stats, recovery = run_cold_crash_point(
        seed=args.seed, messages=args.messages, size=args.size)
    rows = [["delivered intact", f"{point.delivered_intact}/{point.messages}"],
            ["retransmits", point.retransmits],
            ["duplicates suppressed", point.duplicates_suppressed],
            ["send failures", point.send_failures]]
    rows += [[key.replace("_", " "), value]
             for key, value in recovery.items()]
    print(format_table(
        f"Daemon cold-crash recovery, campaign '{stats.campaign}' "
        f"({stats.faults_raised} faults)", ["counter", "value"], rows))
    ok = (point.delivered_intact == point.messages
          and point.send_failures == 0)
    print("exactly-once delivery across cold restarts: "
          + ("PASS" if ok else "FAIL"))
    if args.report:
        report = {
            "scenario": "daemon-cold-crash",
            "seed": args.seed,
            "messages": point.messages,
            "size": point.size,
            "delivered_intact": point.delivered_intact,
            "retransmits": point.retransmits,
            "duplicates_suppressed": point.duplicates_suppressed,
            "send_failures": point.send_failures,
            "exactly_once": ok,
            "faults": stats.as_dict(),
            "recovery": recovery,
        }
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"report written to {args.report}")
    return 0 if ok else 1


def cmd_dsm_bench(args) -> int:
    """``dsm-bench``: seeded DSM trials, SC-checker and determinism
    gated; ``--report`` writes the raw per-trial sweep.  The committed
    ``BENCH_DSM.json`` baseline is produced by ``campaign run dsm``
    (docs/BENCHMARKS.md), which aggregates the same trials per cell."""
    import json

    from repro.dsm.bench import SCENARIOS, run_dsm_sweep, run_dsm_trial

    scenarios = SCENARIOS if args.scenario == "all" else (args.scenario,)
    seeds = (list(range(args.seeds)) if args.seed is None
             else [args.seed])
    if args.smoke:
        seeds = seeds[:4]
    if not seeds:
        print("dsm-bench: nothing to run (--seeds must be >= 1)")
        return 1
    kwargs = dict(nnodes=args.nodes, npages=args.pages,
                  page_bytes=args.page_bytes, ops_per_node=args.ops)
    sweep = run_dsm_sweep(seeds, scenarios=scenarios, **kwargs)

    rows = []
    for trial in sweep["trials"]:
        counters = trial["counters"]
        rows.append([
            trial["scenario"], trial["seed"], trial["ops_total"],
            counters["read_faults"] + counters["write_faults"],
            counters["invalidations_sent"],
            trial["fetch_ns"]["p50"], trial["fetch_ns"]["p99"],
            f"{trial['pages_per_sec']:g}",
            len(trial["sc_violations"]),
        ])
    print(format_table(
        f"DSM coherence bench: {args.nodes} nodes x {args.pages} pages "
        f"x {args.page_bytes}B, {args.ops} ops/node "
        "(SC checker runs on every trial)",
        ["scenario", "seed", "ops", "faults", "invals", "fetch p50",
         "fetch p99", "pages/s", "SC viol"], rows))

    violations = sweep["summary"]["sc_violations_total"]
    # Determinism gate: the first seed of every scenario, re-run and
    # compared byte for byte.
    deterministic = True
    for scenario in scenarios:
        first = json.dumps(
            run_dsm_trial(seeds[0], scenario=scenario, **kwargs),
            sort_keys=True)
        again = json.dumps(
            run_dsm_trial(seeds[0], scenario=scenario, **kwargs),
            sort_keys=True)
        if first != again:
            deterministic = False
            print(f"DETERMINISM VIOLATION: scenario {scenario!r} "
                  f"seed {seeds[0]} differs across reruns")
    ok = violations == 0 and deterministic
    print(f"\n{len(sweep['trials'])} trials, "
          f"{violations} SC violations, "
          f"reruns {'byte-identical' if deterministic else 'DIVERGED'}"
          + ("" if ok else " — FAILING"))

    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(sweep, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"report written to {args.report}")
    return 0 if ok else 1


def cmd_kv_bench(args) -> int:
    """``kv-bench``: seeded sharded-KV serving trials; delivery,
    read-your-writes and determinism gated; ``--report`` writes the raw
    per-trial sweep.  The committed ``BENCH_KV.json`` baseline is
    produced by ``campaign run kv`` (docs/BENCHMARKS.md)."""
    import json

    from repro.kv.bench import SCENARIOS, run_kv_sweep, run_kv_trial

    scenarios = SCENARIOS if args.scenario == "all" else (args.scenario,)
    seeds = (list(range(args.seeds)) if args.seed is None
             else [args.seed])
    if args.smoke:
        seeds = seeds[:1]
    if not seeds:
        print("kv-bench: nothing to run (--seeds must be >= 1)")
        return 1
    kwargs = dict(shards=args.shards, requests=args.requests,
                  nkeys=args.nkeys, skew=args.skew,
                  get_fraction=args.get_fraction, load=args.load,
                  base_gap_ns=args.gap)
    sweep = run_kv_sweep(seeds, scenarios=scenarios, **kwargs)

    rows = []
    for trial in sweep["trials"]:
        tail = trial["latency_ns"]
        rows.append([
            trial["scenario"], trial["seed"], trial["completed"],
            trial["failed"],
            f"{tail['p50'] / 1000:.1f}", f"{tail['p99'] / 1000:.1f}",
            f"{tail['p999'] / 1000:.1f}",
            f"{trial['requests_per_sec']:g}", trial["imbalance"],
            trial["transport"]["retransmits"],
            trial["ryw_violations_total"],
        ])
    print(format_table(
        f"KV serving bench: {args.shards} shards, {args.requests} "
        f"requests/trial, zipf skew {args.skew}, {args.load} load "
        "(read-your-writes checked on every trial)",
        ["scenario", "seed", "done", "fail", "p50 us", "p99 us",
         "p999 us", "req/s", "imbal", "retx", "RYW viol"], rows))

    summary = sweep["summary"]
    delivered = (summary["failed_total"] == 0
                 and summary["completed_total"]
                 == len(sweep["trials"]) * args.requests)
    consistent = summary["ryw_violations_total"] == 0
    # Determinism gate: the first seed of every scenario, re-run and
    # compared byte for byte.
    deterministic = True
    for scenario in scenarios:
        first = json.dumps(
            run_kv_trial(seeds[0], scenario=scenario, **kwargs),
            sort_keys=True)
        again = json.dumps(
            run_kv_trial(seeds[0], scenario=scenario, **kwargs),
            sort_keys=True)
        if first != again:
            deterministic = False
            print(f"DETERMINISM VIOLATION: scenario {scenario!r} "
                  f"seed {seeds[0]} differs across reruns")
    ok = delivered and consistent and deterministic
    print(f"\n{len(sweep['trials'])} trials, "
          f"{summary['failed_total']} failed, "
          f"{summary['ryw_violations_total']} RYW violations, "
          f"reruns {'byte-identical' if deterministic else 'DIVERGED'}"
          + ("" if ok else " — FAILING"))

    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(sweep, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"report written to {args.report}")
    return 0 if ok else 1


# -- campaign orchestration (docs/BENCHMARKS.md) ---------------------------
def _campaign_artifact_path(spec, args) -> str:
    """Where a campaign's artifact goes: --out beats --out-dir beats the
    repo-root default ``BENCH_<AREA>.json``."""
    if getattr(args, "out", None):
        return args.out
    if getattr(args, "out_dir", None):
        import pathlib

        return str(pathlib.Path(args.out_dir) / spec.artifact_name)
    return spec.artifact_name


def _campaign_cell_table(spec, artifact) -> str:
    """Per-cell medians (±95 % CI where seeds > 1) as a text table."""
    metric_names = [m.name for m in spec.metrics]
    columns = ["cell"] + [f"{name} ({spec.metric(name).unit})"
                          for name in metric_names] + ["gates"]
    rows = []
    for cell in artifact["cells"]:
        row: list[object] = [cell["key"]]
        for name in metric_names:
            agg = cell["metrics"][name]
            value = f"{agg['median']:g}"
            if agg["n"] > 1 and agg["ci95"]:
                value += f" ±{agg['ci95']:g}"
            row.append(value)
        row.append("FAIL " + ",".join(cell["gates_failed"])
                   if cell["gates_failed"] else "ok")
        rows.append(row)
    shape = (f"{len(artifact['cells'])} cells x "
             f"{len(artifact['seeds'])} seeds"
             + (" [smoke]" if artifact["smoke"] else ""))
    return format_table(f"campaign {spec.name}: {spec.title} ({shape})",
                        columns, rows)


def _reject_single_out(args) -> bool:
    if getattr(args, "out", None) and len(args.name) > 1:
        print("ERROR: --out names one file; use --out-dir with several "
              "campaigns")
        return True
    return False


def _run_campaigns(args, resume: bool) -> int:
    from repro.campaign import (IncompleteRunError, build_artifact,
                                get_campaign, run_campaign, write_artifact)

    if _reject_single_out(args):
        return 1
    failures = 0
    for name in args.name:
        spec = get_campaign(name)
        summary = run_campaign(
            spec, smoke=args.smoke, jobs=args.jobs, resume=resume,
            state_root=args.state_root, max_trials=args.max_trials,
            progress=print)
        if not summary["complete"]:
            print(f"campaign {name}: stopped after "
                  f"{summary['trials_executed']} trial(s) (--max-trials); "
                  f"resume with `python -m repro campaign resume {name}"
                  + (" --smoke" if args.smoke else "") + "`")
            failures += 1
            continue
        try:
            artifact = build_artifact(spec, smoke=args.smoke,
                                      state_root=args.state_root)
        except IncompleteRunError as exc:
            print(f"ERROR: {exc}")
            failures += 1
            continue
        print(_campaign_cell_table(spec, artifact))
        path = _campaign_artifact_path(spec, args)
        write_artifact(artifact, path)
        print(f"artifact written to {path}")
        if artifact["cells_with_failed_gates"]:
            print(f"campaign {name}: "
                  f"{artifact['cells_with_failed_gates']} cell(s) with "
                  "FAILED trial gates")
            failures += 1
    return 1 if failures else 0


def cmd_campaign_list(args) -> int:
    from repro.campaign import all_campaigns

    rows = []
    for spec in all_campaigns():
        grid = spec.resolved_grid(smoke=False)
        rows.append([
            spec.name, spec.artifact_name, spec.paper_ref,
            " x ".join(f"{k}[{len(v)}]" for k, v in grid.items()) or "-",
            len(spec.resolved_seeds(smoke=False)),
            len(spec.cells(smoke=True)) * len(spec.resolved_seeds(True)),
            spec.expected_runtime,
        ])
    print(format_table(
        "Registered campaigns (docs/BENCHMARKS.md is the handbook)",
        ["name", "artifact", "reproduces", "grid", "seeds",
         "smoke trials", "full runtime"], rows))
    return 0


def cmd_campaign_run(args) -> int:
    return _run_campaigns(args, resume=False)


def cmd_campaign_resume(args) -> int:
    return _run_campaigns(args, resume=True)


def cmd_campaign_report(args) -> int:
    from repro.campaign import (IncompleteRunError, build_artifact,
                                get_campaign, write_artifact)

    if _reject_single_out(args):
        return 1
    failures = 0
    for name in args.name:
        spec = get_campaign(name)
        try:
            artifact = build_artifact(spec, smoke=args.smoke,
                                      state_root=args.state_root)
        except IncompleteRunError as exc:
            print(f"ERROR: {exc}")
            failures += 1
            continue
        print(_campaign_cell_table(spec, artifact))
        path = _campaign_artifact_path(spec, args)
        write_artifact(artifact, path)
        print(f"artifact written to {path}")
        if artifact["cells_with_failed_gates"]:
            failures += 1
    return 1 if failures else 0


def cmd_campaign_diff(args) -> int:
    import pathlib

    from repro.campaign import (build_artifact, diff_artifacts,
                                get_campaign, load_artifact, run_campaign,
                                write_artifact)

    if _reject_single_out(args):
        return 1
    failures = 0
    for name in args.name:
        spec = get_campaign(name)
        baseline_path = args.baseline or spec.artifact_name
        try:
            baseline = load_artifact(baseline_path)
        except (OSError, ValueError) as exc:
            print(f"ERROR: cannot read baseline {baseline_path}: {exc}")
            failures += 1
            continue
        if args.candidate:
            candidate = load_artifact(args.candidate)
        elif args.candidate_dir:
            candidate = load_artifact(
                pathlib.Path(args.candidate_dir) / spec.artifact_name)
        else:
            # No candidate given: run the campaign fresh, same shape as
            # the baseline artifact records.
            smoke = args.smoke or baseline.get("smoke", False)
            run_campaign(spec, smoke=smoke, jobs=args.jobs, resume=False,
                         state_root=args.state_root, progress=print)
            candidate = build_artifact(spec, smoke=smoke,
                                       state_root=args.state_root)
            if args.out or args.out_dir:
                path = _campaign_artifact_path(spec, args)
                write_artifact(candidate, path)
                print(f"candidate artifact written to {path}")
        result = diff_artifacts(baseline, candidate,
                                max_regression_pct=args.max_regression)
        rows = [[row.cell, row.metric, f"{row.baseline:g}",
                 f"{row.candidate:g}",
                 "-" if row.delta_pct is None else f"{row.delta_pct:+.2f}%",
                 f"{row.threshold_pct:g}%", row.status]
                for row in result.rows]
        print(format_table(
            f"campaign diff {name}: candidate vs baseline "
            f"({baseline_path}), cell medians",
            ["cell", "metric", "baseline", "candidate", "delta",
             "threshold", "status"], rows))
        for problem in result.problems:
            print(f"PROBLEM: {problem}")
        for key in result.new_cells:
            print(f"note: cell {key!r} is new in the candidate "
                  "(not gated)")
        print(f"campaign {name} regression gate: "
              + ("PASS" if result.ok else "FAIL"))
        if not result.ok:
            failures += 1
    return 1 if failures else 0


def cmd_topology(args) -> int:
    """Describe generated fabrics: stats table + deadlock proof."""
    from repro.sim import Environment
    from repro.hw.myrinet import topology

    if args.list:
        rows = []
        for kind in sorted(topology.SPEC_KINDS):
            cls = topology.SPEC_KINDS[kind]
            rows.append([kind, ", ".join(cls.EXAMPLES)])
        print(format_table("Registered topology kinds "
                           "(repro.hw.myrinet.topology)",
                           ["kind", "example specs"], rows))
        return 0
    rows = []
    for text in args.spec:
        spec = topology.parse(text)
        net = topology.build(spec, Environment())
        stats = topology.fabric_stats(net)
        report = topology.check_deadlock_free(net)
        rows.append([
            text, stats.nhosts, stats.nswitches, stats.ncables,
            stats.diameter_hops, f"{stats.route_hops_mean:.2f}",
            stats.bisection_links,
            f"cycle-free ({report.channels} ch, "
            f"{report.dependencies} deps)"])
        if args.verbose:
            print(f"{text}: {spec.describe()}")
    print(format_table(
        "Generated fabrics (routes proven deadlock-free at build)",
        ["topology", "hosts", "switches", "cables", "diameter",
         "mean hops", "bisection", "deadlock check"], rows))
    return 0


def cmd_engine_diff(args) -> int:
    """``engine-diff``: the scalar-vs-vector differential gate.

    Replays each named workload on both engines and compares the full
    JSON-serializable reports (simulated times, counters, metrics,
    trace fingerprints).  Any divergence exits 1 and names the first
    differing paths; ``--report FILE`` writes the machine-readable diff
    (what CI uploads on failure)."""
    import json

    from repro.bench.differential import WORKLOADS, diff_engines

    names = args.workload or sorted(WORKLOADS)
    unknown = [n for n in names if n not in WORKLOADS]
    if unknown:
        print(f"ERROR: unknown workload(s) {', '.join(unknown)}; "
              f"available: {', '.join(sorted(WORKLOADS))}")
        return 1
    result = diff_engines(names)
    rows = []
    for name in names:
        entry = result["workloads"][name]
        rows.append([name,
                     entry["fingerprints"]["scalar"][:16],
                     entry["fingerprints"]["vector"][:16],
                     "identical" if entry["identical"] else "DIVERGED"])
    print(format_table(
        "engine differential: scalar oracle vs vector fast path "
        "(sha256 of the canonical run report)",
        ["workload", "scalar", "vector", "status"], rows))
    for name in names:
        entry = result["workloads"][name]
        for div in entry.get("divergences", []):
            print(f"DIVERGENCE {name} at {div['path']}: "
                  f"scalar={div['scalar']!r} vector={div['vector']!r}")
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(result, fh, indent=2, sort_keys=True, default=repr)
            fh.write("\n")
        print(f"report written to {args.report}")
    print("engine differential gate: "
          + ("PASS" if result["identical"] else "FAIL"))
    return 0 if result["identical"] else 1


def cmd_metrics(args) -> int:
    import json

    from repro.obs import run_contract_workload

    _, registry = run_contract_workload()
    if args.json:
        print(json.dumps(registry.snapshot(), indent=2, sort_keys=True))
    else:
        print(format_table(
            "Metrics of the instrumented contract workload "
            "(docs/TRACING.md 'Metrics reference')",
            ["metric", "value"], registry.rows()))
    return 0


def cmd_trace(args) -> int:
    from repro.obs import (
        export_chrome_trace,
        run_contract_workload,
        undocumented,
    )

    tracer, _ = run_contract_workload()
    document = export_chrome_trace(tracer, path=args.perfetto)
    where = args.perfetto if args.perfetto else "(not written; no --perfetto)"
    print(f"{len(document['traceEvents'])} trace events from "
          f"{document['otherData']['records']} records "
          f"({document['otherData']['dropped']} dropped) -> {where}")
    if args.check_docs:
        stray = undocumented(r.category for r in tracer.records)
        if stray:
            print("undocumented trace categories (document them in "
                  "docs/TRACING.md):", file=sys.stderr)
            for category in stray:
                print(f"  {category}", file=sys.stderr)
            return 1
        print("all emitted trace categories are documented in "
              "docs/TRACING.md")
    return 0


def _rates(text: str) -> list[float]:
    return [float(s) for s in text.split(",") if s]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="VMMC-on-Myrinet reproduction: run the paper's "
                    "measurements from the command line.")
    parser.add_argument(
        "--engine", choices=list(ENGINES), default=None,
        help="simulation engine for every environment the command "
             "builds: 'scalar' (the oracle) or 'vector' (the fast "
             "path); default: $REPRO_SIM_ENGINE, else scalar")
    sub = parser.add_subparsers(dest="command", required=True)

    lat = sub.add_parser("latency", help="Figure 2 latency sweep")
    lat.add_argument("--sizes", type=_sizes, default=[4, 16, 64, 128, 256])
    lat.add_argument("--iters", type=int, default=10)
    lat.set_defaults(func=cmd_latency)

    bw = sub.add_parser("bandwidth", help="Figure 3 bandwidth sweep")
    bw.add_argument("--sizes", type=_sizes,
                    default=[4096, 65536, 262144])
    bw.add_argument("--iters", type=int, default=8)
    bw.set_defaults(func=cmd_bandwidth)

    ovh = sub.add_parser("overhead", help="Figure 4 overhead sweep")
    ovh.add_argument("--sizes", type=_sizes, default=[4, 64, 128, 256, 1024])
    ovh.add_argument("--iters", type=int, default=6)
    ovh.set_defaults(func=cmd_overhead)

    dma = sub.add_parser("dma", help="Figure 1 DMA curve")
    dma.add_argument("--sizes", type=_sizes,
                     default=[64, 256, 1024, 4096, 16384, 65536])
    dma.set_defaults(func=cmd_dma)

    shoot = sub.add_parser("shootout", help="sections 6-7 comparison")
    shoot.set_defaults(func=cmd_shootout)

    vrpc = sub.add_parser("vrpc", help="section 5.4 vRPC null call")
    vrpc.add_argument("--iters", type=int, default=10)
    vrpc.set_defaults(func=cmd_vrpc)

    brk = sub.add_parser("breakdown",
                         help="section 5.2 per-stage latency accounting")
    brk.add_argument("--size", type=int, default=4)
    brk.add_argument("--json", action="store_true",
                     help="machine-readable stage breakdown")
    brk.set_defaults(func=cmd_breakdown)

    sram = sub.add_parser("sram", help="NIC SRAM accounting")
    sram.add_argument("--processes", type=int, default=2)
    sram.set_defaults(func=cmd_sram)

    chaos = sub.add_parser(
        "chaos", help="lossy-link sweep + fault campaign: baseline vs "
                      "reliable VMMC")
    chaos.add_argument("--rates", type=_rates,
                       default=[0.0, 1e-6, 1e-4, 1e-3])
    chaos.add_argument("--messages", type=int, default=60)
    chaos.add_argument("--size", type=int, default=1024)
    chaos.add_argument("--seed", type=int, default=7)
    chaos.add_argument("--seeds", type=int, default=10, metavar="N",
                       help="error-burst scenario: sweep campaign seeds "
                            "0..N-1 (default 10)")
    chaos.add_argument("--scenario",
                       choices=["sweep", "daemon-cold-crash", "error-burst",
                                "multi-campaign"],
                       default="sweep",
                       help="'sweep' = lossy-link comparison (default); "
                            "'daemon-cold-crash' = reliable traffic across "
                            "cold daemon restarts (recovery protocol); "
                            "'error-burst' = static-vs-adaptive seed sweep "
                            "under burst campaigns, with protocol-invariant "
                            "and determinism gates; "
                            "'multi-campaign' = several seeded campaigns "
                            "driven concurrently on one cluster "
                            "(overlapping faults stack; merged FaultStats "
                            "count overlaps once; delivery + determinism "
                            "gates)")
    chaos.add_argument("--campaign", metavar="SPEC", action="append",
                       default=[],
                       help="repeatable: add a campaign to the "
                            "multi-campaign scenario, as "
                            "builder[:key=val,...] with builder in "
                            "{bursts, flap, stall, crash, cold-crash} "
                            "(e.g. --campaign bursts:seed=3 "
                            "--campaign flap:target=sw0->node1); "
                            "implies --scenario multi-campaign; "
                            "default: the canonical overlapping set")
    chaos.add_argument("--policy", choices=["serialize", "reject"],
                       default="serialize",
                       help="multi-campaign conflict-guard policy for "
                            "semantically incompatible overlapping raises "
                            "(warm vs cold crash on one node): shift the "
                            "loser after the winner's clear, or refuse "
                            "the schedule (default: serialize)")
    chaos.add_argument("--report", metavar="FILE",
                       help="write a JSON report of the scenario run")
    chaos.set_defaults(func=cmd_chaos)

    dsm = sub.add_parser(
        "dsm-bench",
        help="DSM coherence workload under chaos, SC-checker gated")
    dsm.add_argument("--nodes", type=int, default=4)
    dsm.add_argument("--pages", type=int, default=64)
    dsm.add_argument("--page-bytes", type=int, default=256)
    dsm.add_argument("--ops", type=int, default=24,
                     help="mixed-phase ops per node (default 24)")
    dsm.add_argument("--seeds", type=int, default=16, metavar="N",
                     help="sweep seeds 0..N-1 (default 16)")
    dsm.add_argument("--seed", type=int, default=None,
                     help="run a single seed instead of the sweep")
    dsm.add_argument("--scenario",
                     choices=["all", "clean", "error-burst",
                              "daemon-cold-crash"],
                     default="all")
    dsm.add_argument("--smoke", action="store_true",
                     help="CI shape: first 4 seeds only")
    dsm.add_argument("--report", metavar="FILE",
                     help="write the JSON sweep report")
    dsm.set_defaults(func=cmd_dsm_bench)

    kv = sub.add_parser(
        "kv-bench",
        help="sharded KV serving tier under chaos, RYW-oracle gated")
    kv.add_argument("--shards", type=int, default=4)
    kv.add_argument("--requests", type=int, default=400)
    kv.add_argument("--nkeys", type=int, default=512)
    kv.add_argument("--skew", type=float, default=0.9,
                    help="zipf exponent over keys (0 = uniform)")
    kv.add_argument("--get-fraction", type=float, default=0.8)
    kv.add_argument("--load", choices=["steady", "diurnal"],
                    default="steady")
    kv.add_argument("--gap", type=int, default=20_000, metavar="NS",
                    help="base inter-arrival gap in ns (default 20000)")
    kv.add_argument("--seeds", type=int, default=2, metavar="N",
                    help="sweep seeds 0..N-1 (default 2)")
    kv.add_argument("--seed", type=int, default=None,
                    help="run a single seed instead of the sweep")
    kv.add_argument("--scenario",
                    choices=["all", "clean", "error-burst",
                             "daemon-cold-crash"],
                    default="all")
    kv.add_argument("--smoke", action="store_true",
                    help="CI shape: first seed only")
    kv.add_argument("--report", metavar="FILE", nargs="?",
                    const="kv-bench-report.json",
                    help="write the JSON sweep report "
                         "(default FILE: kv-bench-report.json)")
    kv.set_defaults(func=cmd_kv_bench)

    camp = sub.add_parser(
        "campaign",
        help="experiment campaigns: grid x seeds -> BENCH_<AREA>.json "
             "artifacts + CI regression gate (docs/BENCHMARKS.md)")
    csub = camp.add_subparsers(dest="action", required=True)

    def _campaign_common(sp, names: bool = True):
        if names:
            sp.add_argument("name", nargs="+",
                            help="registered campaign name(s); "
                                 "see `campaign list`")
        sp.add_argument("--smoke", action="store_true",
                        help="the reduced CI shape (committed baselines "
                             "are smoke artifacts)")
        sp.add_argument("--state-root", metavar="DIR", default=None,
                        help="root for per-campaign trial state "
                             "(default benchmarks/out/campaigns)")
        sp.add_argument("--out", metavar="FILE", default=None,
                        help="artifact path (single campaign only; "
                             "default ./BENCH_<AREA>.json)")
        sp.add_argument("--out-dir", metavar="DIR", default=None,
                        help="directory for BENCH_<AREA>.json artifacts")

    clist = csub.add_parser("list", help="registered campaigns")
    clist.set_defaults(func=cmd_campaign_list)

    crun = csub.add_parser(
        "run", help="run the grid from scratch and write the artifact")
    _campaign_common(crun)
    crun.add_argument("--jobs", type=int, default=None,
                      help="process-pool width (default: one per core; "
                           "1 = inline)")
    crun.add_argument("--max-trials", type=int, default=None,
                      help="stop after N new trials (leaves a resumable "
                           "state dir; used to exercise `resume`)")
    crun.set_defaults(func=cmd_campaign_run)

    cres = csub.add_parser(
        "resume", help="finish an interrupted run (skips finished trials; "
                       "the artifact is byte-identical to an "
                       "uninterrupted run)")
    _campaign_common(cres)
    cres.add_argument("--jobs", type=int, default=None)
    cres.add_argument("--max-trials", type=int, default=None)
    cres.set_defaults(func=cmd_campaign_resume)

    crep = csub.add_parser(
        "report", help="re-aggregate a finished run without re-running")
    _campaign_common(crep)
    crep.set_defaults(func=cmd_campaign_report)

    cdiff = csub.add_parser(
        "diff", help="regression gate: candidate artifact vs the "
                     "committed baseline (no candidate -> fresh run)")
    _campaign_common(cdiff)
    cdiff.add_argument("--baseline", metavar="FILE", default=None,
                       help="baseline artifact "
                            "(default ./BENCH_<AREA>.json)")
    cdiff.add_argument("--candidate", metavar="FILE", default=None,
                       help="candidate artifact (default: run fresh)")
    cdiff.add_argument("--candidate-dir", metavar="DIR", default=None,
                       help="directory holding candidate "
                            "BENCH_<AREA>.json artifacts")
    cdiff.add_argument("--jobs", type=int, default=None)
    cdiff.add_argument("--max-regression", type=float, default=None,
                       metavar="PCT",
                       help="override every metric's regression "
                            "threshold (percent)")
    cdiff.set_defaults(func=cmd_campaign_diff)

    topo = sub.add_parser(
        "topology",
        help="describe generated fabrics (stats + deadlock proof)")
    topo.add_argument("spec", nargs="*",
                      default=["single:8", "dual:8", "fattree:4",
                               "fattree:8,h=2", "mesh:4x4", "mesh:8x8",
                               "torus:4x4"],
                      help="topology strings, e.g. fattree:8,h=2 mesh:4x4")
    topo.add_argument("--list", action="store_true",
                      help="list registered topology kinds and exit")
    topo.add_argument("--verbose", action="store_true",
                      help="print each spec's description line")
    topo.set_defaults(func=cmd_topology)

    ediff = sub.add_parser(
        "engine-diff",
        help="differential gate: scalar vs vector engine on the "
             "standing workloads (exits 1 on any divergence)")
    ediff.add_argument("workload", nargs="*",
                       help="workload names (default: all); see "
                            "repro.bench.differential.WORKLOADS")
    ediff.add_argument("--report", metavar="FILE",
                       help="write the JSON fingerprint diff (CI "
                            "artifact on failure)")
    ediff.set_defaults(func=cmd_engine_diff)

    met = sub.add_parser(
        "metrics", help="metrics snapshot of the instrumented workload")
    met.add_argument("--json", action="store_true",
                     help="JSON snapshot instead of a table")
    met.set_defaults(func=cmd_metrics)

    trace = sub.add_parser(
        "trace", help="Perfetto / Chrome trace-event export")
    trace.add_argument("--perfetto", metavar="OUT",
                       help="write Chrome trace-event JSON to this file")
    trace.add_argument("--check-docs", action="store_true",
                       help="fail if an emitted trace category is missing "
                            "from docs/TRACING.md")
    trace.set_defaults(func=cmd_trace)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.engine:
        # One switch for every Environment the command constructs —
        # commands build clusters/pairs through the normal constructors,
        # which consult $REPRO_SIM_ENGINE (see repro.sim.core).
        import os

        os.environ[ENGINE_ENV_VAR] = args.engine
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
