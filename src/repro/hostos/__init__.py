"""Host operating-system substrate (Linux 2.0-era, paper section 5.1).

The paper needed only minimal OS support: page lock/unlock, virtual→
physical translation inside a loadable driver, interrupt dispatch, and
signal-based notification delivery.  This package models those services
with realistic costs on the 166 MHz Pentium testbed:

* :class:`Kernel` — interrupt entry/exit, syscall overhead, driver
  registry, page locking.
* :class:`UserProcess` — identity + address space + signal handlers.
* :class:`DeviceDriver` — base class for loadable modules (the VMMC
  driver lives in :mod:`repro.vmmc.driver`).
* :class:`EthernetNetwork` — the commodity 10/100 Mb Ethernet the VMMC
  daemons use as their control channel for export/import matchmaking.
"""

from repro.hostos.kernel import Kernel, KernelParams
from repro.hostos.process import UserProcess
from repro.hostos.driver import DeviceDriver
from repro.hostos.ethernet import EthernetNetwork, EthernetParams

__all__ = [
    "DeviceDriver",
    "EthernetNetwork",
    "EthernetParams",
    "Kernel",
    "KernelParams",
    "UserProcess",
]
