"""User process model: identity, address space, signal handlers.

A :class:`UserProcess` is not itself a simulation process — application
code in examples/benchmarks runs as plain generators that call library
functions.  The object carries what the OS needs to know: the pid, the
address space, and registered signal handlers (VMMC notifications are
delivered as signals, section 5.1).
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional

from repro.mem.virtual import AddressSpace

_pids = itertools.count(100)


@contextmanager
def fresh_pid_namespace(first: int = 100) -> Iterator[None]:
    """Run a block with pid allocation restarted from ``first``.

    Pids are allocation-order identifiers from a process-global counter,
    so two otherwise identical simulations started at different points
    in one interpreter get different pids.  The engine-differential
    harness wraps each workload run in this so traces compare byte for
    byte; the previous counter is restored on exit.
    """
    global _pids
    saved = _pids
    _pids = itertools.count(first)
    try:
        yield
    finally:
        _pids = saved


class UserProcess:
    """One user process on one node."""

    def __init__(self, space: AddressSpace, name: str = ""):
        self.pid = next(_pids)
        self.space = space
        self.name = name or f"pid{self.pid}"
        self._signal_handlers: dict[int, Callable[[Any], object]] = {}
        self.signals_received: list[tuple[int, Any]] = []

    def register_signal_handler(self, signo: int,
                                handler: Callable[[Any], object]) -> None:
        self._signal_handlers[signo] = handler

    def signal_handler(self, signo: int) -> Optional[Callable[[Any], object]]:
        return self._signal_handlers.get(signo)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"UserProcess({self.name}, pid={self.pid})"
