"""Loadable device-driver framework.

"Loadable kernel modules proved to be a useful and powerful feature of
Linux" (section 5.1) — all new kernel-level code in the paper lives in one
loadable driver.  :class:`DeviceDriver` gives concrete drivers (the VMMC
driver, the baseline protocols' drivers) a uniform shape: an ISR entry
point the NIC's interrupt line calls, plus access to kernel services.
"""

from __future__ import annotations

from typing import Any

from repro.sim import Environment
from repro.hostos.kernel import Kernel


class DeviceDriver:
    """Base class for loadable drivers."""

    def __init__(self, env: Environment, kernel: Kernel, name: str):
        self.env = env
        self.kernel = kernel
        self.name = name

    def isr(self, reason: str, payload: Any):
        """Interrupt entry point.  Subclasses override :meth:`handle_irq`;
        this wrapper charges kernel dispatch cost around it.

        Returns a simulation process whose value is the handler's result.
        """
        return self.kernel.service_interrupt(
            lambda: self.handle_irq(reason, payload))

    def handle_irq(self, reason: str, payload: Any):
        """Driver-specific interrupt work (generator or plain callable)."""
        raise NotImplementedError
