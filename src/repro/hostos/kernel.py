"""Kernel services: interrupts, syscalls, page locking, signal delivery.

Costs are for Linux 2.0 on a 166 MHz Pentium.  They matter to the paper in
two places: the software-TLB-miss path (interrupt + driver work — expensive
enough that the microbenchmarks ensure translations are present, section
5.3), and notification delivery via signals (tens of microseconds, which is
why data-only transfers avoiding receiver involvement are the fast path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.sim import Environment
from repro.sim.trace import emit
from repro.obs.metrics import count
from repro.mem.virtual import AddressSpace
from repro.hostos.process import UserProcess

#: Signal number used for VMMC notifications (SIGIO in the real driver).
SIGIO = 29


@dataclass(frozen=True)
class KernelParams:
    """Kernel path costs (defaults: Linux 2.0 / P166)."""

    #: Interrupt entry: vector through the IDT, save state, reach the ISR.
    irq_entry_ns: int = 2_500
    #: Interrupt exit: restore state, iret.
    irq_exit_ns: int = 1_500
    #: A trivial syscall (trap + return).
    syscall_ns: int = 4_000
    #: Locking one page in memory (mlock-style, per page).
    lock_page_ns: int = 1_800
    #: Looking up one virtual→physical translation in the page tables.
    translate_ns: int = 700
    #: Delivering a signal to a user process and running its handler
    #: prologue (stack switch, sigreturn) — the notification cost floor.
    signal_delivery_ns: int = 25_000


class Kernel:
    """Kernel of one node."""

    def __init__(self, env: Environment, name: str = "kernel",
                 params: KernelParams | None = None):
        self.env = env
        self.name = name
        self.params = params or KernelParams()
        self.interrupts_serviced = 0
        self.signals_delivered = 0

    # -- interrupts ------------------------------------------------------------
    def service_interrupt(self, isr: Callable[[], Any]):
        """Process: dispatch an interrupt to ``isr`` (a generator function
        or plain callable); the process value is the ISR's result."""
        def run():
            yield self.env.timeout(self.params.irq_entry_ns)
            self.interrupts_serviced += 1
            count(self.env, "kernel.interrupts", kernel=self.name)
            emit(self.env, f"{self.name}.irq.enter")
            result = isr()
            if hasattr(result, "__next__"):
                result = yield self.env.process(result)
            yield self.env.timeout(self.params.irq_exit_ns)
            emit(self.env, f"{self.name}.irq.exit")
            return result

        return self.env.process(run(), name=f"{self.name}.irq")

    # -- syscalls ------------------------------------------------------------------
    def syscall(self, work_ns: int = 0):
        """Process: charge one syscall plus ``work_ns`` of kernel work."""
        def run():
            yield self.env.timeout(self.params.syscall_ns + work_ns)

        return self.env.process(run(), name=f"{self.name}.syscall")

    def lock_pages(self, space: AddressSpace, vaddr: int, nbytes: int):
        """Process: pin a virtual range; value is the list of frame numbers.

        This is the "calls to lock and unlock pages in physical memory"
        the paper found Linux already provided (section 5.1).
        """
        def run():
            frames = space.pin_range(vaddr, nbytes)
            yield self.env.timeout(
                self.params.syscall_ns
                + self.params.lock_page_ns * len(frames))
            return frames

        return self.env.process(run(), name=f"{self.name}.lock_pages")

    def unlock_pages(self, space: AddressSpace, vaddr: int, nbytes: int):
        def run():
            space.unpin_range(vaddr, nbytes)
            yield self.env.timeout(self.params.syscall_ns)

        return self.env.process(run(), name=f"{self.name}.unlock_pages")

    def translate_range(self, space: AddressSpace, vaddr: int, npages: int):
        """Process: kernel-side V→P translation of up to ``npages`` pages
        starting at ``vaddr``'s page; value is [(vpage, paddr_of_page)].

        This is the one function the paper added to the kernel interface
        via the loadable driver (section 5.1).
        """
        from repro.mem.virtual import PAGE_SIZE, page_round_down

        def run():
            base = page_round_down(vaddr)
            pairs = []
            for i in range(npages):
                va = base + i * PAGE_SIZE
                if not space.mapped(va):
                    break
                pairs.append((va // PAGE_SIZE, space.translate(va)))
            yield self.env.timeout(self.params.translate_ns * max(1, len(pairs)))
            return pairs

        return self.env.process(run(), name=f"{self.name}.translate")

    # -- signals ------------------------------------------------------------------------
    def deliver_signal(self, process: UserProcess, signo: int,
                       payload: Any = None):
        """Process: deliver a signal; runs the registered handler (which
        may itself be a generator and take simulated time)."""
        def run():
            yield self.env.timeout(self.params.signal_delivery_ns)
            self.signals_delivered += 1
            count(self.env, "kernel.signals", kernel=self.name)
            process.signals_received.append((signo, payload))
            handler = process.signal_handler(signo)
            emit(self.env, f"{self.name}.signal", signo=signo,
                 pid=process.pid)
            if handler is not None:
                result = handler(payload)
                if hasattr(result, "__next__"):
                    yield self.env.process(result)

        return self.env.process(run(), name=f"{self.name}.signal")
