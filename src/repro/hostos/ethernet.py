"""Commodity Ethernet model: the daemons' control channel and the SunRPC
baseline transport.

The testbed PCs "are also connected by an Ethernet" (section 5.1); VMMC
daemons match export/import requests over it, and the stock SunRPC that
vRPC is compared against runs UDP over it.  We model a shared 100 Mb/s
segment with kernel protocol-stack costs on both ends — the three-orders-
of-magnitude gap between this path and VMMC is the paper's motivation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.sim import Environment, Resource, Store
from repro.sim.trace import emit
from repro.obs.metrics import count


@dataclass(frozen=True)
class EthernetParams:
    """Shared-segment Ethernet + in-kernel UDP/IP stack costs."""

    #: 100 Mb/s = 12.5 MB/s → 80 ns per byte.
    ns_per_byte: int = 80
    #: Fixed per-frame wire overhead (preamble, header, IFG).
    frame_overhead_bytes: int = 42
    #: Sender kernel stack traversal (socket, UDP/IP, driver, per packet).
    tx_stack_ns: int = 120_000
    #: Receiver kernel stack traversal + wakeup of the blocked process.
    rx_stack_ns: int = 150_000
    #: Maximum UDP payload per frame before fragmentation.
    mtu: int = 1500

    def wire_time_ns(self, nbytes: int) -> int:
        nframes = max(1, (nbytes + self.mtu - 1) // self.mtu)
        return (nbytes + nframes * self.frame_overhead_bytes) \
            * self.ns_per_byte


@dataclass
class Datagram:
    """One UDP datagram on the control network."""

    src: str
    dst: str
    payload: Any
    sent_at: int = 0


class EthernetNetwork:
    """A single shared segment connecting every node's control endpoint."""

    def __init__(self, env: Environment, params: EthernetParams | None = None):
        self.env = env
        self.params = params or EthernetParams()
        self._segment = Resource(env, capacity=1)
        self._mailboxes: dict[str, Store] = {}
        self.datagrams_carried = 0

    def register(self, endpoint: str) -> None:
        """Attach a node (or daemon) endpoint."""
        if endpoint in self._mailboxes:
            raise ValueError(f"endpoint {endpoint!r} already registered")
        self._mailboxes[endpoint] = Store(self.env)

    def send(self, src: str, dst: str, payload: Any, nbytes: int = 256):
        """Process: transmit a datagram; completes when the sender's stack
        is done (delivery happens asynchronously on the receive side)."""
        if dst not in self._mailboxes:
            raise KeyError(f"unknown ethernet endpoint {dst!r}")

        def run():
            yield self.env.timeout(self.params.tx_stack_ns)
            with self._segment.request() as req:
                yield req
                yield self.env.timeout(self.params.wire_time_ns(nbytes))
            self.datagrams_carried += 1
            count(self.env, "ether.frames")
            count(self.env, "ether.bytes", nbytes)
            emit(self.env, "ether.tx", src=src, dst=dst, nbytes=nbytes)
            self.env.process(self._deliver(src, dst, payload),
                             name="ether.deliver")

        return self.env.process(run(), name="ether.send")

    def _deliver(self, src: str, dst: str, payload: Any):
        yield self.env.timeout(self.params.rx_stack_ns)
        self._mailboxes[dst].put(
            Datagram(src=src, dst=dst, payload=payload, sent_at=self.env.now))

    def endpoints(self) -> list[str]:
        """Registered endpoint addresses (the daemons' broadcast domain)."""
        return list(self._mailboxes)

    def receive(self, endpoint: str):
        """Event: the next datagram addressed to ``endpoint``."""
        return self._mailboxes[endpoint].get()

    def pending(self, endpoint: str) -> int:
        return len(self._mailboxes[endpoint])
