"""Per-cell statistics over the seed axis.

Every metric of every grid cell is aggregated across that cell's seeds:
min, max, mean, median, and a 95 % confidence half-width
(``1.96 * s / sqrt(n)`` with the sample standard deviation, ``0.0`` for
``n == 1`` — simulation trials are deterministic per seed, so the spread
measures seed-to-seed workload variation, not measurement noise).

All floats are rounded to 6 decimals so artifacts are stable to
re-serialisation; trials are deterministic, so re-aggregating the same
trial set — e.g. after ``campaign resume`` — is byte-identical.
"""

from __future__ import annotations

import math
import statistics
from typing import Mapping, Sequence

#: z-score of the two-sided 95 % interval (normal approximation).
Z95 = 1.96


def _round(value: float) -> float:
    rounded = round(value, 6)
    # Avoid "-0.0" artifacts so JSON output is canonical.
    return 0.0 if rounded == 0 else rounded


def aggregate_values(values: Sequence[float]) -> dict:
    """min/max/mean/median/ci95 of one metric across seeds."""
    if not values:
        raise ValueError("cannot aggregate an empty value list")
    values = [float(v) for v in values]
    n = len(values)
    mean = statistics.fmean(values)
    ci95 = (Z95 * statistics.stdev(values) / math.sqrt(n)
            if n > 1 else 0.0)
    return {
        "n": n,
        "min": _round(min(values)),
        "max": _round(max(values)),
        "mean": _round(mean),
        "median": _round(statistics.median(values)),
        "ci95": _round(ci95),
    }


def aggregate_cell(trial_reports: Sequence[Mapping]) -> dict:
    """Fold one cell's per-seed trial reports into its artifact entry.

    ``trial_reports`` must all belong to the same cell and be ordered by
    seed (the runner guarantees both).  Every report carries the same
    metric names; a mismatch means the trial function is not
    deterministic in its output shape and is reported as an error.
    """
    if not trial_reports:
        raise ValueError("cannot aggregate a cell with no trials")
    names = sorted(trial_reports[0]["metrics"])
    for report in trial_reports[1:]:
        if sorted(report["metrics"]) != names:
            raise ValueError(
                "trial reports disagree on metric names: "
                f"{names} vs {sorted(report['metrics'])}")
    metrics = {
        name: aggregate_values([r["metrics"][name] for r in trial_reports])
        for name in names
    }
    gates_failed = sorted({
        gate
        for report in trial_reports
        for gate, passed in report.get("gates", {}).items()
        if not passed
    })
    return {
        "seeds": [r["seed"] for r in trial_reports],
        "metrics": metrics,
        "gates_failed": gates_failed,
    }
