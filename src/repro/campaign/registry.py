"""The registered campaigns — the repo's perf-trajectory surface.

Every entry maps a paper figure/section (or an extension experiment) to
a :class:`~repro.campaign.spec.CampaignSpec`; ``python -m repro campaign
list`` prints this table, CI runs every campaign's smoke shape, and the
committed ``BENCH_<AREA>.json`` baselines at the repo root are the smoke
artifacts.  docs/BENCHMARKS.md is the handbook entry per campaign.

Third-party / test campaigns can be added at runtime with
:func:`register`; the fork-based process pool sees them too.
"""

from __future__ import annotations

from repro.campaign import trials
from repro.campaign.spec import CampaignSpec, Metric, SpecError

_REGISTRY: dict[str, CampaignSpec] = {}


def register(spec: CampaignSpec, *, replace: bool = False) -> CampaignSpec:
    """Add a campaign; names and areas must be unique."""
    if not replace:
        if spec.name in _REGISTRY:
            raise SpecError(f"campaign {spec.name!r} already registered")
        taken = {s.area: n for n, s in _REGISTRY.items()}
        if spec.area in taken:
            raise SpecError(
                f"area {spec.area!r} already used by campaign "
                f"{taken[spec.area]!r} (artifacts would collide)")
    _REGISTRY[spec.name] = spec
    return spec


def unregister(name: str) -> None:
    _REGISTRY.pop(name, None)


def get_campaign(name: str) -> CampaignSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SpecError(
            f"unknown campaign {name!r}; registered: "
            f"{', '.join(campaign_names())}") from None


def campaign_names() -> list[str]:
    return sorted(_REGISTRY)


def all_campaigns() -> list[CampaignSpec]:
    return [_REGISTRY[name] for name in campaign_names()]


# -- the built-in table ----------------------------------------------------
register(CampaignSpec(
    name="latency", area="LATENCY",
    title="VMMC one-way latency (ping-pong)",
    paper_ref="Figure 2 / section 5.3",
    trial=trials.latency_trial,
    grid={"size": (4, 16, 64, 128, 256)},
    fixed={"iters": 10},
    seeds=(0,),
    metrics=(
        Metric("one_way_us", "us", "lower", 10.0),
    ),
    expected_runtime="~10 s",
))

register(CampaignSpec(
    name="bandwidth", area="BANDWIDTH",
    title="VMMC bandwidth (one-way + bidirectional)",
    paper_ref="Figure 3 / section 5.3",
    trial=trials.bandwidth_trial,
    grid={"size": (4096, 65536, 262144),
          "pattern": ("oneway", "bidir")},
    fixed={"iters": 8},
    seeds=(0,),
    metrics=(
        Metric("mbps", "MB/s", "higher", 10.0),
    ),
    smoke_grid={"size": (65536,)},
    expected_runtime="~1 min",
))

register(CampaignSpec(
    name="overhead", area="OVERHEAD",
    title="send overhead, sync vs async",
    paper_ref="Figure 4 / section 5.3",
    trial=trials.overhead_trial,
    grid={"size": (4, 64, 128, 256, 1024),
          "mode": ("sync", "async")},
    fixed={"iters": 6},
    seeds=(0,),
    metrics=(
        Metric("overhead_us", "us", "lower", 10.0),
    ),
    smoke_grid={"size": (4, 256)},
    expected_runtime="~30 s",
))

register(CampaignSpec(
    name="dma", area="DMA",
    title="host<->LANai DMA bandwidth curve",
    paper_ref="Figure 1 / section 5.1",
    trial=trials.dma_trial,
    grid={"size": (64, 256, 1024, 4096, 16384, 65536)},
    seeds=(0,),
    metrics=(
        Metric("mbps", "MB/s", "higher", 5.0),
    ),
    expected_runtime="<1 s",
))

register(CampaignSpec(
    name="breakdown", area="BREAKDOWN",
    title="trace-derived per-stage latency of one send",
    paper_ref="section 5.2",
    trial=trials.breakdown_trial,
    grid={"size": (4, 128)},
    seeds=(0,),
    metrics=(
        Metric("total_us", "us", "lower", 10.0),
        Metric("post_us", "us", "info"),
        Metric("lanai_send_us", "us", "info"),
        Metric("wire_us", "us", "info"),
        Metric("lanai_recv_us", "us", "info"),
        Metric("deliver_us", "us", "info"),
    ),
    expected_runtime="~5 s",
))

register(CampaignSpec(
    name="vrpc", area="VRPC",
    title="vRPC null round trip",
    paper_ref="section 5.4",
    trial=trials.vrpc_trial,
    grid={"iters": (10,)},
    seeds=(0,),
    metrics=(
        Metric("null_rtt_us", "us", "lower", 10.0),
    ),
    expected_runtime="~5 s",
))

register(CampaignSpec(
    name="simcore", area="SIMCORE",
    title="event-core throughput: scalar oracle vs vector engine",
    paper_ref="infrastructure (DESIGN.md 'Two engines, one contract')",
    trial=trials.simcore_trial,
    grid={"workload": ("chain", "storm", "ring")},
    fixed={"events": 100_000},
    seeds=(0,),
    metrics=(
        # Wall-clock throughput is machine-dependent: all info, never
        # diff-gated.  Enforcement is the trial gates (identical
        # simulations everywhere; >=10x intra-trial speedup on ring).
        Metric("scalar_events_per_sec", "events/s", "info"),
        Metric("vector_events_per_sec", "events/s", "info"),
        Metric("speedup", "x", "info"),
        Metric("events", "count", "info"),
    ),
    expected_runtime="~30 s",
))

register(CampaignSpec(
    name="chaos", area="CHAOS",
    title="reliable sender under seeded error bursts, static vs adaptive",
    paper_ref="extension of section 4.2 (E-chaos / E-congestion)",
    trial=trials.chaos_trial,
    grid={"mode": ("static", "adaptive")},
    fixed={"messages": 60, "size": 1024},
    seeds=tuple(range(10)),
    metrics=(
        Metric("goodput_mbps", "MB/s", "higher", 10.0),
        Metric("delivered_intact", "messages", "info"),
        Metric("retransmits", "count", "info"),
        Metric("crc_drops", "count", "info"),
        Metric("elapsed_ns", "ns", "info"),
    ),
    smoke_seeds=tuple(range(4)),
    expected_runtime="~2 min",
))

register(CampaignSpec(
    name="fabric", area="FABRIC",
    title="multi-switch fabric scale-out: bandwidth + route distributions",
    paper_ref="extension of section 4.3 (topology generators, E-fabric)",
    trial=trials.fabric_trial,
    grid={"topology": ("single:8", "dual:8", "fattree:4", "mesh:4x4",
                       "torus:4x4", "fattree:8,h=2", "mesh:8x8")},
    fixed={"pairs": 8, "messages": 12, "size": 4096},
    seeds=(0, 1, 2),
    metrics=(
        Metric("delivered_mbps", "MB/s", "higher", 15.0),
        Metric("route_hops_mean", "hops", "info"),
        Metric("route_hops_used_mean", "hops", "info"),
        Metric("diameter_hops", "hops", "info"),
        Metric("bisection_links", "links", "info"),
        Metric("nswitches", "count", "info"),
        Metric("mapping_probes", "count", "info"),
    ),
    smoke_grid={"topology": ("single:4", "dual:8", "fattree:4",
                             "mesh:3x3")},
    smoke_seeds=(0,),
    expected_runtime="~4 min",
))

register(CampaignSpec(
    name="dsm", area="DSM",
    title="DSM coherence workload under chaos scenarios",
    paper_ref="extension of section 1's DSM motivation (E-dsm)",
    trial=trials.dsm_trial,
    grid={"scenario": ("clean", "error-burst", "daemon-cold-crash")},
    fixed={"nnodes": 4, "npages": 64, "page_bytes": 256,
           "ops_per_node": 24},
    seeds=tuple(range(16)),
    metrics=(
        Metric("pages_per_sec", "pages/s", "higher", 10.0),
        Metric("fetch_p50_ns", "ns", "lower", 15.0),
        Metric("fetch_p99_ns", "ns", "lower", 25.0),
        Metric("invalidations_per_write", "ratio", "info"),
        Metric("faults", "count", "info"),
        Metric("workload_ns", "ns", "info"),
    ),
    smoke_seeds=tuple(range(4)),
    expected_runtime="~4 min",
))

register(CampaignSpec(
    name="kv", area="KV",
    title="sharded KV serving tier: open-loop tail latency under chaos",
    paper_ref="extension of section 1's client-server motivation (E-kv)",
    trial=trials.kv_trial,
    grid={"shards": (2, 4, 8), "skew": (0.0, 0.9, 1.2),
          "load": ("steady", "diurnal"),
          "scenario": ("clean", "error-burst", "daemon-cold-crash"),
          "requests": (100_000,)},
    seeds=(0,),
    metrics=(
        Metric("p50_us", "us", "lower", 15.0),
        Metric("p99_us", "us", "lower", 25.0),
        Metric("p999_us", "us", "info"),
        Metric("requests_per_sec", "req/s", "info"),
        Metric("imbalance", "ratio", "info"),
        Metric("retransmits", "count", "info"),
    ),
    smoke_grid={"shards": (2,), "skew": (0.0, 1.2),
                "load": ("steady", "diurnal"),
                "scenario": ("clean", "error-burst", "daemon-cold-crash"),
                "requests": (400,)},
    smoke_seeds=(0,),
    expected_runtime="~1 min smoke; hours at the full 100k-request grid",
))
