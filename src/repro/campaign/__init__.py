"""Experiment-campaign orchestration + the machine-readable perf trajectory.

``repro.campaign`` turns the repo's scattered bench scripts into
*registered campaigns*: a declarative spec (parameter grid x seed list x
trial function) fans out across a multiprocess pool, per-cell statistics
(min/median/mean/95 % CI over seeds) are aggregated, and a
schema-versioned ``BENCH_<AREA>.json`` artifact lands at the repo root.
Runs are resumable (per-trial state files; a resumed run's artifact is
byte-identical to an uninterrupted one) and diffable (``campaign diff``
is the CI regression gate against the committed baselines).

CLI: ``python -m repro campaign list|run|resume|report|diff`` —
handbook in docs/BENCHMARKS.md.
"""

from repro.campaign.aggregate import aggregate_cell, aggregate_values
from repro.campaign.diffing import DiffResult, DiffRow, diff_artifacts
from repro.campaign.registry import (all_campaigns, campaign_names,
                                     get_campaign, register, unregister)
from repro.campaign.runner import (IncompleteRunError, build_artifact,
                                   git_metadata, load_artifact,
                                   run_campaign, state_dir_for,
                                   write_artifact)
from repro.campaign.spec import (SCHEMA_VERSION, CampaignSpec, Metric,
                                 SpecError, cell_key)

__all__ = [
    "SCHEMA_VERSION",
    "CampaignSpec",
    "DiffResult",
    "DiffRow",
    "IncompleteRunError",
    "Metric",
    "SpecError",
    "aggregate_cell",
    "aggregate_values",
    "all_campaigns",
    "build_artifact",
    "campaign_names",
    "cell_key",
    "diff_artifacts",
    "get_campaign",
    "git_metadata",
    "load_artifact",
    "register",
    "run_campaign",
    "state_dir_for",
    "unregister",
    "write_artifact",
]
