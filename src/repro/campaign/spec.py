"""Declarative experiment-campaign specifications.

A campaign is the unit of the perf trajectory: one parameter grid, one
seed list, one trial function, one machine-readable ``BENCH_<AREA>.json``
artifact at the repo root.  The spec is *declarative* — everything the
runner, the aggregator, the diff gate and the handbook need (knobs,
metric directions, regression thresholds, the smoke shape CI runs) lives
here, so a registered campaign is self-describing.

The trial callable has the signature ``trial(params, seed) -> dict`` and
must return ``{"metrics": {name: number}, "gates": {name: bool}}``
(``gates`` optional).  Trials must be deterministic in ``(params, seed)``
— the runner fans them out across processes and re-aggregation after a
resume must be byte-identical to an uninterrupted run.
"""

from __future__ import annotations

import itertools
import re
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence

#: Version of the BENCH_<AREA>.json artifact layout.  Bump on any
#: structural change and document the migration in docs/BENCHMARKS.md.
SCHEMA_VERSION = 1

_NAME_RE = re.compile(r"^[a-z][a-z0-9-]*$")
_AREA_RE = re.compile(r"^[A-Z][A-Z0-9_]*$")

#: Allowed metric directions: "higher" / "lower" say which way is
#: *better* (the diff gate fails on moves the other way beyond the
#: threshold); "info" metrics are recorded but never gated.
DIRECTIONS = ("higher", "lower", "info")


class SpecError(ValueError):
    """A campaign spec (or a spec/state mismatch) is invalid."""


@dataclass(frozen=True)
class Metric:
    """One column of the campaign's artifact.

    ``regression_pct`` is the default diff-gate threshold: a relative
    move beyond it in the bad direction fails ``campaign diff``.  ``None``
    (or direction ``"info"``) means the metric is informational only.
    """

    name: str
    unit: str
    direction: str = "info"
    regression_pct: Optional[float] = None

    def __post_init__(self) -> None:
        if self.direction not in DIRECTIONS:
            raise SpecError(
                f"metric {self.name!r}: direction {self.direction!r} "
                f"not in {DIRECTIONS}")
        if self.regression_pct is not None and self.regression_pct <= 0:
            raise SpecError(
                f"metric {self.name!r}: regression_pct must be positive, "
                f"got {self.regression_pct}")

    @property
    def gated(self) -> bool:
        return (self.direction in ("higher", "lower")
                and self.regression_pct is not None)


@dataclass(frozen=True)
class CampaignSpec:
    """One registered campaign: grid x seeds -> trials -> artifact."""

    name: str                         # CLI name (kebab-case)
    area: str                         # artifact is BENCH_<area>.json
    title: str                        # one-line, for tables and docs
    paper_ref: str                    # which figure/section it reproduces
    trial: Callable[[dict, int], dict]
    grid: Mapping[str, Sequence]      # param -> sweep values
    seeds: Sequence[int]
    metrics: Sequence[Metric]
    fixed: Mapping[str, object] = field(default_factory=dict)
    smoke_grid: Optional[Mapping[str, Sequence]] = None
    smoke_seeds: Optional[Sequence[int]] = None
    expected_runtime: str = "seconds"   # handbook hint, full (non-smoke)

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise SpecError(f"campaign name {self.name!r} must be "
                            "kebab-case ([a-z][a-z0-9-]*)")
        if not _AREA_RE.match(self.area):
            raise SpecError(f"campaign {self.name}: area {self.area!r} "
                            "must be UPPER_SNAKE ([A-Z][A-Z0-9_]*)")
        if not callable(self.trial):
            raise SpecError(f"campaign {self.name}: trial is not callable")
        _check_grid(self.name, self.grid)
        _check_seeds(self.name, self.seeds)
        if not self.metrics:
            raise SpecError(f"campaign {self.name}: no metrics declared")
        names = [m.name for m in self.metrics]
        if len(set(names)) != len(names):
            raise SpecError(f"campaign {self.name}: duplicate metric "
                            f"names in {names}")
        overlap = set(self.grid) & set(self.fixed)
        if overlap:
            raise SpecError(f"campaign {self.name}: params {sorted(overlap)}"
                            " appear in both grid and fixed")
        if self.smoke_grid is not None:
            _check_grid(self.name, self.smoke_grid, kind="smoke grid")
            stray = set(self.smoke_grid) - set(self.grid)
            if stray:
                raise SpecError(
                    f"campaign {self.name}: smoke grid params "
                    f"{sorted(stray)} not in the full grid")
        if self.smoke_seeds is not None:
            _check_seeds(self.name, self.smoke_seeds, kind="smoke seeds")

    # -- shape resolution --------------------------------------------------
    def resolved_grid(self, smoke: bool) -> dict:
        """The grid actually swept (smoke overrides merged over full)."""
        grid = dict(self.grid)
        if smoke and self.smoke_grid is not None:
            grid.update(self.smoke_grid)
        return {key: list(values) for key, values in sorted(grid.items())}

    def resolved_seeds(self, smoke: bool) -> list[int]:
        seeds = (self.smoke_seeds
                 if smoke and self.smoke_seeds is not None else self.seeds)
        return list(seeds)

    def cells(self, smoke: bool) -> list[dict]:
        """Every grid cell, deterministically ordered: params sorted by
        name, values in declared order, row-major product."""
        grid = self.resolved_grid(smoke)
        keys = list(grid)
        return [dict(zip(keys, combo))
                for combo in itertools.product(*(grid[k] for k in keys))]

    def trials(self, smoke: bool) -> list[tuple[int, dict, int]]:
        """The full work list: ``(cell_index, cell_params, seed)``."""
        return [(index, params, seed)
                for index, params in enumerate(self.cells(smoke))
                for seed in self.resolved_seeds(smoke)]

    def trial_params(self, cell_params: dict) -> dict:
        """What the trial function actually receives: fixed + cell."""
        merged = dict(self.fixed)
        merged.update(cell_params)
        return merged

    @property
    def artifact_name(self) -> str:
        return f"BENCH_{self.area}.json"

    def metric(self, name: str) -> Metric:
        for metric in self.metrics:
            if metric.name == name:
                return metric
        raise KeyError(name)


def _check_grid(name: str, grid: Mapping[str, Sequence],
                kind: str = "grid") -> None:
    for param, values in grid.items():
        if not isinstance(param, str) or not param:
            raise SpecError(f"campaign {name}: {kind} param {param!r} "
                            "must be a non-empty string")
        values = list(values)
        if not values:
            raise SpecError(f"campaign {name}: {kind} param {param!r} "
                            "has no values")
        if len(set(map(repr, values))) != len(values):
            raise SpecError(f"campaign {name}: {kind} param {param!r} "
                            f"has duplicate values {values}")


def _check_seeds(name: str, seeds: Sequence[int],
                 kind: str = "seeds") -> None:
    seeds = list(seeds)
    if not seeds:
        raise SpecError(f"campaign {name}: {kind} list is empty")
    if any(not isinstance(s, int) or isinstance(s, bool) for s in seeds):
        raise SpecError(f"campaign {name}: {kind} must be ints, "
                        f"got {seeds}")
    if len(set(seeds)) != len(seeds):
        raise SpecError(f"campaign {name}: duplicate {kind} in {seeds}")


_SAFE_RE = re.compile(r"[^A-Za-z0-9_.=-]")


def cell_key(params: Mapping[str, object]) -> str:
    """Filesystem- and JSON-safe canonical key for one grid cell."""
    if not params:
        return "cell"
    parts = [f"{k}={_SAFE_RE.sub('_', str(v))}"
             for k, v in sorted(params.items())]
    return ",".join(parts)
