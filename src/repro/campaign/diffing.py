"""The regression gate: compare two ``BENCH_<AREA>.json`` artifacts.

``campaign diff`` compares a *candidate* artifact (a fresh run) against
the *baseline* committed at the repo root.  Per gated metric (direction
``higher``/``lower`` with a ``regression_pct`` threshold) it compares the
cell **medians**; a relative move beyond the threshold in the bad
direction is a regression.  Moves in the good direction are reported as
improvements (and are the cue to refresh the baseline — see
docs/BENCHMARKS.md, "Refreshing baselines").

Structural problems always fail: schema/campaign mismatch, a baseline
cell missing from the candidate, or any candidate cell with failed
trial gates (SC violations, lost deliveries, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: Statuses a (cell, metric) comparison can land on.
OK, REGRESSION, IMPROVED, ZERO_BASELINE = (
    "ok", "REGRESSION", "improved", "zero-baseline")


@dataclass(frozen=True)
class DiffRow:
    cell: str
    metric: str
    direction: str
    baseline: float
    candidate: float
    delta_pct: Optional[float]     # None when the baseline median is 0
    threshold_pct: float
    status: str


@dataclass
class DiffResult:
    campaign: str
    rows: list[DiffRow] = field(default_factory=list)
    problems: list[str] = field(default_factory=list)
    new_cells: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[DiffRow]:
        return [row for row in self.rows if row.status == REGRESSION]

    @property
    def ok(self) -> bool:
        return not self.problems and not self.regressions


def _median(cell: dict, metric: str) -> float:
    return cell["metrics"][metric]["median"]


def diff_artifacts(baseline: dict, candidate: dict,
                   max_regression_pct: Optional[float] = None) -> DiffResult:
    """Gate ``candidate`` against ``baseline``; see the module docstring.

    ``max_regression_pct`` overrides every metric's own threshold (the
    CLI's ``--max-regression``).
    """
    result = DiffResult(campaign=str(candidate.get("campaign")))
    if baseline.get("campaign") != candidate.get("campaign"):
        result.problems.append(
            f"campaign mismatch: baseline {baseline.get('campaign')!r} "
            f"vs candidate {candidate.get('campaign')!r}")
        return result
    if baseline.get("schema_version") != candidate.get("schema_version"):
        result.problems.append(
            f"schema_version mismatch: baseline "
            f"{baseline.get('schema_version')} vs candidate "
            f"{candidate.get('schema_version')} — regenerate the baseline")
        return result
    if candidate.get("cells_with_failed_gates"):
        failed = [f"{cell['key']}: {', '.join(cell['gates_failed'])}"
                  for cell in candidate["cells"] if cell["gates_failed"]]
        result.problems.append(
            "candidate has failed trial gates — " + "; ".join(failed))

    base_cells = {cell["key"]: cell for cell in baseline["cells"]}
    cand_cells = {cell["key"]: cell for cell in candidate["cells"]}
    for key in base_cells:
        if key not in cand_cells:
            result.problems.append(
                f"cell {key!r} is in the baseline but missing from the "
                "candidate (grid shrank? run the same shape)")
    result.new_cells = [key for key in cand_cells if key not in base_cells]

    meta = candidate.get("metrics", {})
    for key, base_cell in sorted(base_cells.items()):
        cand_cell = cand_cells.get(key)
        if cand_cell is None:
            continue
        for name, info in sorted(meta.items()):
            direction = info.get("direction", "info")
            threshold = (max_regression_pct
                         if max_regression_pct is not None
                         else info.get("regression_pct"))
            if direction not in ("higher", "lower") or threshold is None:
                continue
            if (name not in base_cell["metrics"]
                    or name not in cand_cell["metrics"]):
                result.problems.append(
                    f"cell {key!r}: metric {name!r} missing from "
                    f"{'baseline' if name not in base_cell['metrics'] else 'candidate'}")
                continue
            base = _median(base_cell, name)
            cand = _median(cand_cell, name)
            if base == 0:
                status = OK if cand == 0 else ZERO_BASELINE
                result.rows.append(DiffRow(
                    cell=key, metric=name, direction=direction,
                    baseline=base, candidate=cand, delta_pct=None,
                    threshold_pct=threshold, status=status))
                continue
            delta_pct = (cand - base) / abs(base) * 100.0
            worse = -delta_pct if direction == "higher" else delta_pct
            if worse > threshold:
                status = REGRESSION
            elif worse < -threshold:
                status = IMPROVED
            else:
                status = OK
            result.rows.append(DiffRow(
                cell=key, metric=name, direction=direction,
                baseline=base, candidate=cand,
                delta_pct=round(delta_pct, 3),
                threshold_pct=threshold, status=status))
    return result
