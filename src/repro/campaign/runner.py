"""Resumable multiprocess execution of a campaign's trial grid.

The runner owns a *state directory* per ``(campaign, shape)``:

.. code-block:: text

    benchmarks/out/campaigns/<name>[-smoke]/
        state.json              # shape fingerprint (grid, seeds, schema)
        trials/<cell>_s<seed>.json   # one file per finished trial

Each trial file is written atomically (tmp + rename) the moment its
trial finishes, so a killed run loses only in-flight trials; ``resume``
re-derives the work list, skips every finished trial, and runs the rest.
Trials are deterministic in ``(params, seed)``, and aggregation orders
cells and seeds canonically, so a resumed run's artifact is
**byte-identical** to an uninterrupted one — the property the campaign
tests assert.

Fan-out uses a fork-context process pool (``--jobs``); ``jobs <= 1``
runs inline, which keeps trial functions registered at runtime (tests)
usable without pickling and makes single-trial debugging trivial.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pathlib
import subprocess
from concurrent.futures import ProcessPoolExecutor, as_completed
from numbers import Number
from typing import Callable, Optional

from repro.campaign.aggregate import aggregate_cell
from repro.campaign.spec import (SCHEMA_VERSION, CampaignSpec, SpecError,
                                 cell_key)

#: Default root for campaign state, relative to the invocation directory
#: (the repo root in CI); see docs/BENCHMARKS.md.
DEFAULT_STATE_ROOT = pathlib.Path("benchmarks") / "out" / "campaigns"


class IncompleteRunError(RuntimeError):
    """An artifact was requested from a state dir with unfinished trials."""

    def __init__(self, campaign: str, missing: list[str]):
        self.campaign = campaign
        self.missing = missing
        super().__init__(
            f"campaign {campaign!r}: {len(missing)} trial(s) not finished "
            f"(first missing: {missing[0]}); run "
            f"`python -m repro campaign resume {campaign}` to complete")


def state_dir_for(spec: CampaignSpec, smoke: bool,
                  state_root: Optional[pathlib.Path] = None) -> pathlib.Path:
    root = pathlib.Path(state_root) if state_root else DEFAULT_STATE_ROOT
    return root / (f"{spec.name}-smoke" if smoke else spec.name)


def _fingerprint(spec: CampaignSpec, smoke: bool) -> dict:
    return {
        "campaign": spec.name,
        "schema_version": SCHEMA_VERSION,
        "smoke": smoke,
        "fixed": {k: spec.fixed[k] for k in sorted(spec.fixed)},
        "grid": spec.resolved_grid(smoke),
        "seeds": spec.resolved_seeds(smoke),
        "metrics": sorted(m.name for m in spec.metrics),
    }


def _trial_path(trials_dir: pathlib.Path, index: int, params: dict,
                seed: int) -> pathlib.Path:
    return trials_dir / f"{index:04d}_{cell_key(params)}_s{seed}.json"


def _write_json(path: pathlib.Path, payload: dict) -> None:
    """Atomic write: a kill mid-dump never leaves a torn trial file."""
    tmp = path.with_suffix(".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)


def _check_report(spec: CampaignSpec, raw: dict) -> tuple[dict, dict]:
    """Validate a trial function's return value against the spec."""
    if not isinstance(raw, dict) or "metrics" not in raw:
        raise SpecError(f"campaign {spec.name}: trial returned {type(raw)}; "
                        "expected {'metrics': {...}, 'gates': {...}}")
    metrics = raw["metrics"]
    declared = {m.name for m in spec.metrics}
    if set(metrics) != declared:
        raise SpecError(
            f"campaign {spec.name}: trial metrics {sorted(metrics)} != "
            f"declared {sorted(declared)}")
    for name, value in metrics.items():
        if not isinstance(value, Number) or isinstance(value, bool):
            raise SpecError(f"campaign {spec.name}: metric {name!r} is "
                            f"{value!r}, expected a number")
    gates = raw.get("gates", {})
    if any(not isinstance(v, bool) for v in gates.values()):
        raise SpecError(f"campaign {spec.name}: gates must be booleans, "
                        f"got {gates}")
    return dict(metrics), dict(gates)


def run_trial(spec: CampaignSpec, index: int, params: dict,
              seed: int) -> dict:
    """Execute one trial and normalise its report (JSON-ready)."""
    metrics, gates = _check_report(
        spec, spec.trial(spec.trial_params(params), seed))
    return {
        "campaign": spec.name,
        "cell_index": index,
        "cell": cell_key(params),
        "params": params,
        "seed": seed,
        "metrics": metrics,
        "gates": gates,
    }


def _pool_trial(name: str, index: int, params: dict, seed: int) -> dict:
    """Top-level pool entry point (must be picklable).  The fork context
    means campaigns registered at runtime are visible here too."""
    from repro.campaign.registry import get_campaign

    return run_trial(get_campaign(name), index, params, seed)


def run_campaign(spec: CampaignSpec, *, smoke: bool = False,
                 jobs: Optional[int] = None, resume: bool = False,
                 state_root: Optional[pathlib.Path] = None,
                 max_trials: Optional[int] = None,
                 progress: Optional[Callable[[str], None]] = None) -> dict:
    """Run (or resume) a campaign's grid; returns the run summary.

    ``max_trials`` stops after that many *newly executed* trials (used by
    tests to model a killed run — the state dir is left half-finished).
    """
    def say(message: str) -> None:
        if progress is not None:
            progress(message)

    state_dir = state_dir_for(spec, smoke, state_root)
    trials_dir = state_dir / "trials"
    fingerprint = _fingerprint(spec, smoke)
    state_file = state_dir / "state.json"

    if resume:
        if not state_file.exists():
            say(f"{spec.name}: nothing to resume, starting fresh")
        else:
            recorded = json.loads(state_file.read_text())
            if recorded != fingerprint:
                raise SpecError(
                    f"campaign {spec.name}: state dir {state_dir} was "
                    "written by a different shape (grid/seeds/schema "
                    "changed); re-run `campaign run` to start over")
    else:
        for stale in sorted(trials_dir.glob("*.json")):
            stale.unlink()
    trials_dir.mkdir(parents=True, exist_ok=True)
    _write_json(state_file, fingerprint)

    work = spec.trials(smoke)
    pending = [(index, params, seed) for index, params, seed in work
               if not _trial_path(trials_dir, index, params, seed).exists()]
    skipped = len(work) - len(pending)
    if max_trials is not None:
        pending = pending[:max_trials]
    say(f"{spec.name}{' [smoke]' if smoke else ''}: "
        f"{len(work)} trials ({skipped} already finished, "
        f"{len(pending)} to run)")

    if jobs is None:
        jobs = min(len(pending), os.cpu_count() or 1) or 1
    executed = 0
    if jobs <= 1 or len(pending) <= 1:
        for index, params, seed in pending:
            report = run_trial(spec, index, params, seed)
            _write_json(_trial_path(trials_dir, index, params, seed), report)
            executed += 1
    else:
        context = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else None)
        with ProcessPoolExecutor(max_workers=jobs,
                                 mp_context=context) as pool:
            futures = {
                pool.submit(_pool_trial, spec.name, index, params, seed):
                (index, params, seed)
                for index, params, seed in pending
            }
            for future in as_completed(futures):
                index, params, seed = futures[future]
                report = future.result()
                _write_json(_trial_path(trials_dir, index, params, seed),
                            report)
                executed += 1

    return {
        "campaign": spec.name,
        "smoke": smoke,
        "state_dir": str(state_dir),
        "trials_total": len(work),
        "trials_skipped": skipped,
        "trials_executed": executed,
        "complete": skipped + executed == len(work),
    }


def load_reports(spec: CampaignSpec, smoke: bool,
                 state_root: Optional[pathlib.Path] = None
                 ) -> list[list[dict]]:
    """All finished trial reports, grouped per cell in canonical order.

    Raises :class:`IncompleteRunError` when any expected trial file is
    missing — the artifact never silently aggregates a partial grid.
    """
    state_dir = state_dir_for(spec, smoke, state_root)
    trials_dir = state_dir / "trials"
    cells = spec.cells(smoke)
    seeds = spec.resolved_seeds(smoke)
    missing: list[str] = []
    grouped: list[list[dict]] = []
    for index, params in enumerate(cells):
        reports = []
        for seed in seeds:
            path = _trial_path(trials_dir, index, params, seed)
            if not path.exists():
                missing.append(path.name)
                continue
            reports.append(json.loads(path.read_text()))
        grouped.append(reports)
    if missing:
        raise IncompleteRunError(spec.name, missing)
    return grouped


def git_metadata(repo_dir: Optional[pathlib.Path] = None) -> dict:
    """Provenance of the artifact: commit, branch, dirty flag (best
    effort — all ``None``/``False`` outside a git checkout)."""
    def ask(*argv: str) -> Optional[str]:
        try:
            out = subprocess.run(
                ["git", *argv], cwd=repo_dir, capture_output=True,
                text=True, timeout=10)
        except (OSError, subprocess.SubprocessError):
            return None
        return out.stdout.strip() if out.returncode == 0 else None

    commit = ask("rev-parse", "HEAD")
    branch = ask("rev-parse", "--abbrev-ref", "HEAD")
    status = ask("status", "--porcelain")
    return {
        "commit": commit,
        "branch": branch,
        "dirty": bool(status) if status is not None else False,
    }


def build_artifact(spec: CampaignSpec, *, smoke: bool = False,
                   state_root: Optional[pathlib.Path] = None,
                   git: Optional[dict] = None) -> dict:
    """Aggregate a finished run into the ``BENCH_<AREA>.json`` payload."""
    grouped = load_reports(spec, smoke, state_root)
    cells = []
    gates_failed_total = 0
    for params, reports in zip(spec.cells(smoke), grouped):
        entry = aggregate_cell(reports)
        entry["params"] = params
        entry["key"] = cell_key(params)
        gates_failed_total += 1 if entry["gates_failed"] else 0
        cells.append(entry)
    return {
        "schema_version": SCHEMA_VERSION,
        "artifact": spec.artifact_name,
        "campaign": spec.name,
        "area": spec.area,
        "title": spec.title,
        "paper_ref": spec.paper_ref,
        "smoke": smoke,
        "fixed": {k: spec.fixed[k] for k in sorted(spec.fixed)},
        "grid": spec.resolved_grid(smoke),
        "seeds": spec.resolved_seeds(smoke),
        "metrics": {
            m.name: {
                "unit": m.unit,
                "direction": m.direction,
                "regression_pct": m.regression_pct,
            }
            for m in spec.metrics
        },
        "cells": cells,
        "cells_with_failed_gates": gates_failed_total,
        "git": git if git is not None else git_metadata(),
    }


def write_artifact(artifact: dict, path: pathlib.Path) -> None:
    path = pathlib.Path(path)
    if path.parent != pathlib.Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    _write_json(path, artifact)


def load_artifact(path: pathlib.Path) -> dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)
