"""Trial functions behind the registered campaigns.

Each function is a **top-level, picklable** entry point with the
campaign-trial signature ``trial(params, seed) -> {"metrics": ...,
"gates": ...}``; the runner fans them out across a process pool.  They
are thin adapters over the existing measurement drivers
(:mod:`repro.bench.microbench`, :mod:`repro.bench.chaos`,
:mod:`repro.dsm.bench`, :mod:`repro.obs.breakdown`), so a campaign
measures exactly what the legacy bench scripts and CLI commands measure
— the artifact is a reorganisation, not a re-implementation.

The microbenchmark simulations are deterministic and seed-free; their
campaigns run a single seed 0 and the trial ignores it.  The chaos and
DSM trials are seeded — the seed drives the fault schedule and the
workload stream.
"""

from __future__ import annotations

from repro.cluster import Cluster, TestbedConfig


def _fresh_pair(buffer_bytes: int, memory_mb: int = 32):
    from repro.bench.microbench import VmmcPair

    return VmmcPair(TestbedConfig(nnodes=2, memory_mb=memory_mb),
                    buffer_bytes=buffer_bytes)


def latency_trial(params: dict, seed: int) -> dict:
    """Figure 2: ping-pong one-way latency at one message size."""
    from repro.bench.microbench import vmmc_pingpong_latency

    size, iters = params["size"], params["iters"]
    pair = _fresh_pair(max(size * 4, 4096), memory_mb=16)
    point = vmmc_pingpong_latency(pair, size, iterations=iters)
    return {"metrics": {"one_way_us": point.one_way_us}}


def bandwidth_trial(params: dict, seed: int) -> dict:
    """Figure 3: streaming / bidirectional bandwidth at one size."""
    from repro.bench.microbench import (vmmc_bidirectional_bandwidth,
                                        vmmc_oneway_bandwidth)

    size, iters = params["size"], params["iters"]
    pair = _fresh_pair(max(size, 65536))
    if params["pattern"] == "oneway":
        point = vmmc_oneway_bandwidth(pair, size, iters)
    elif params["pattern"] == "bidir":
        point = vmmc_bidirectional_bandwidth(pair, size, max(3, iters // 2))
    else:
        raise ValueError(f"unknown pattern {params['pattern']!r}")
    return {"metrics": {"mbps": point.mbps}}


def overhead_trial(params: dict, seed: int) -> dict:
    """Figure 4: host CPU cost of the send call itself."""
    from repro.bench.microbench import vmmc_send_overhead

    size, iters = params["size"], params["iters"]
    pair = _fresh_pair(max(size, 16384), memory_mb=16)
    point = vmmc_send_overhead(pair, size,
                               synchronous=params["mode"] == "sync",
                               iterations=iters)
    return {"metrics": {"overhead_us": point.overhead_us}}


def dma_trial(params: dict, seed: int) -> dict:
    """Figure 1: host<->LANai DMA bandwidth at one block size."""
    from repro.hw.bus.pci import PCIParams

    return {"metrics": {
        "mbps": PCIParams().dma_bandwidth_mbps(params["size"])}}


def breakdown_trial(params: dict, seed: int) -> dict:
    """Section 5.2: trace-derived per-stage latency of one short send.

    Gate: the stages must telescope to the end-to-end latency exactly
    (``StageBreakdown.check`` with zero tolerance at the ns level is the
    repo's standing invariant; 1 % is the declared bar)."""
    from repro.obs.breakdown import STAGE_KEYS, measure_stage_breakdown

    report = measure_stage_breakdown(params["size"])
    telescopes = True
    try:
        report.check(tolerance=0.01)
    except ValueError:
        telescopes = False
    metrics = {f"{key}_us": ns / 1000.0
               for key, (_, ns) in zip(STAGE_KEYS, report.stages)}
    metrics["total_us"] = report.total_ns / 1000.0
    return {"metrics": metrics, "gates": {"stages_telescope": telescopes}}


def vrpc_trial(params: dict, seed: int) -> dict:
    """Section 5.4: vRPC null round-trip time."""
    from repro.rpc import RPCProgram, VRPCClient, VRPCServer

    iters = params["iters"]
    cluster = Cluster.build(TestbedConfig(nnodes=2, memory_mb=32))
    env = cluster.env
    _, client_ep = cluster.nodes[0].attach_process("client")
    _, server_ep = cluster.nodes[1].attach_process("server")
    prog = RPCProgram(0x20000001, 1)
    prog.register(0, lambda dec: b"")
    server = VRPCServer(server_ep, "node1", prog)
    result: dict[str, float] = {}

    def app():
        chan = yield server.accept(client_ep, "node0", "cli")
        client = VRPCClient(chan, prog.number, prog.version)
        yield client.call(0)                    # warm the path
        t0 = env.now
        for _ in range(iters):
            yield client.call(0)
        result["us"] = (env.now - t0) / iters / 1000

    env.run(until=env.process(app()))
    return {"metrics": {"null_rtt_us": result["us"]}}


def simcore_trial(params: dict, seed: int) -> dict:
    """Event-core throughput: scalar oracle vs vector engine, one shape.

    Wall-clock events/sec is machine-dependent, so every metric is
    ``info`` (never diff-gated); the machine-independent claims ride on
    gates: ``identical`` (both engines produced the same simulation —
    final time, event count, ring group digest) on every cell, plus
    ``speedup_10x`` on the batch-friendly ``ring`` cell, the issue's
    acceptance bar for the vectorized fast path."""
    from repro.bench.simcore import run_simcore_point

    point = run_simcore_point(params["workload"], events=params["events"],
                              seed=seed)
    gates = {"identical": point["identical"]}
    if params["workload"] == "ring":
        gates["speedup_10x"] = point["speedup"] >= 10.0
    return {
        "metrics": {
            "scalar_events_per_sec": point["scalar_events_per_sec"],
            "vector_events_per_sec": point["vector_events_per_sec"],
            "speedup": point["speedup"],
            "events": point["events"],
        },
        "gates": gates,
    }


def chaos_trial(params: dict, seed: int) -> dict:
    """Seeded error-burst run of the reliable sender (static/adaptive).

    Gates: every protocol invariant of
    :func:`repro.bench.chaos.check_trial_invariants` (exactly-once
    delivery, RTO/window bounds, Karn's rule)."""
    from repro.bench.chaos import check_trial_invariants, run_error_burst_trial

    trial = run_error_burst_trial(
        seed, messages=params["messages"], size=params["size"],
        adaptive=params["mode"] == "adaptive")
    violations = check_trial_invariants(trial)
    return {
        "metrics": {
            "goodput_mbps": trial["goodput_mbps"],
            "delivered_intact": trial["delivered_intact"],
            "retransmits": trial["retransmits"],
            "crc_drops": trial["crc_drops"],
            "elapsed_ns": trial["elapsed_ns"],
        },
        "gates": {"protocol_invariants": not violations},
    }


def fabric_trial(params: dict, seed: int) -> dict:
    """Fabric scale-out: seeded random pair traffic on one topology.

    Boots the topology via the declarative spec (the mapping LCP proves
    the routing function deadlock-free at boot), picks ``pairs``
    disjoint sender/receiver pairs from a seeded permutation, streams
    VMMC sends concurrently on all of them, and reports delivered
    aggregate bandwidth plus the fabric's route-length distribution and
    bisection (the README fabric table is generated from these).
    """
    import numpy as np

    from repro.hw.myrinet import topology

    spec = topology.parse(params["topology"])
    cluster = Cluster.build(TestbedConfig(memory_mb=8), topology=spec)
    env = cluster.env
    stats = topology.fabric_stats(cluster.fabric)

    rng = np.random.default_rng(seed)
    perm = [int(i) for i in rng.permutation(spec.nhosts)]
    npairs = min(int(params["pairs"]), spec.nhosts // 2)
    pairs = [(perm[2 * i], perm[2 * i + 1]) for i in range(npairs)]
    size, messages = int(params["size"]), int(params["messages"])

    table = cluster.fabric.route_table
    hops = [len(table[(f"node{s}", f"node{d}")]) for s, d in pairs]
    delivered = {"messages": 0}
    span = {"t0": None, "t1": 0}

    def stream(s: int, d: int, tag: str):
        _, ep_rx = cluster.nodes[d].attach_process(f"rx.{tag}")
        _, ep_tx = cluster.nodes[s].attach_process(f"tx.{tag}")
        inbox = ep_rx.alloc_buffer(size)
        yield ep_rx.export(inbox, f"in.{tag}")
        imported = yield ep_tx.import_buffer(f"node{d}", f"in.{tag}")
        src = ep_tx.alloc_buffer(size)
        if span["t0"] is None:
            span["t0"] = env.now
        for _ in range(messages):
            yield ep_tx.send(src, imported.at(0), size)
            delivered["messages"] += 1
        span["t1"] = max(span["t1"], env.now)

    procs = [env.process(stream(s, d, f"p{i}"))
             for i, (s, d) in enumerate(pairs)]

    def wait_all():
        for proc in procs:
            yield proc

    env.run(until=env.process(wait_all()))
    elapsed_ns = max(1, span["t1"] - span["t0"])
    total_bytes = npairs * messages * size
    return {
        "metrics": {
            # bytes/ns == GB/s, so *1000 gives MB/s.
            "delivered_mbps": total_bytes / elapsed_ns * 1000.0,
            "route_hops_mean": stats.route_hops_mean,
            "route_hops_used_mean": sum(hops) / len(hops),
            "diameter_hops": stats.diameter_hops,
            "bisection_links": stats.bisection_links,
            "nswitches": stats.nswitches,
            "mapping_probes": cluster.mapping.probes_sent,
        },
        "gates": {
            "deadlock_free": cluster.mapping.deadlock is not None,
            "all_delivered": delivered["messages"] == npairs * messages,
        },
    }


def dsm_trial(params: dict, seed: int) -> dict:
    """Seeded DSM coherence workload under one chaos scenario.

    Gate: the sequential-consistency checker must report no violation
    (coherence must survive the scenario's faults)."""
    from repro.dsm.bench import run_dsm_trial

    trial = run_dsm_trial(
        seed, nnodes=params["nnodes"], npages=params["npages"],
        page_bytes=params["page_bytes"], ops_per_node=params["ops_per_node"],
        scenario=params["scenario"])
    counters = trial["counters"]
    return {
        "metrics": {
            "pages_per_sec": trial["pages_per_sec"],
            "fetch_p50_ns": trial["fetch_ns"]["p50"],
            "fetch_p99_ns": trial["fetch_ns"]["p99"],
            "invalidations_per_write": trial["invalidations_per_write"],
            "faults": counters["read_faults"] + counters["write_faults"],
            "workload_ns": trial["workload_ns"],
        },
        "gates": {"sequential_consistency": not trial["sc_violations"]},
    }


def kv_trial(params: dict, seed: int) -> dict:
    """Seeded sharded-KV serving trial under one chaos scenario.

    Gates: every request must complete (the reliable layer rides out
    the scenario's faults) and every GET must observe exactly its
    read-your-writes oracle value."""
    from repro.kv.bench import run_kv_trial

    trial = run_kv_trial(
        seed, shards=params["shards"], requests=params["requests"],
        skew=params["skew"], load=params["load"],
        scenario=params["scenario"])
    tail = trial["latency_ns"]
    return {
        "metrics": {
            "p50_us": tail["p50"] / 1000.0,
            "p99_us": tail["p99"] / 1000.0,
            "p999_us": tail["p999"] / 1000.0,
            "requests_per_sec": trial["requests_per_sec"],
            "imbalance": trial["imbalance"],
            "retransmits": trial["transport"]["retransmits"],
        },
        "gates": {
            "delivered": (trial["failed"] == 0
                          and trial["completed"] == trial["requests"]),
            "read_your_writes": trial["ryw_violations_total"] == 0,
        },
    }
