"""Sharded key-value serving tier over the reliable RPC layer.

The ROADMAP's million-request application tier, item (b): N server
ranks each export an XDR-RPC-backed store
(:mod:`repro.kv.store`), keys route to shards by deterministic
consistent hashing (:mod:`repro.kv.hashing`), and an open-loop,
integer-ns, RNG-seeded generator (:mod:`repro.kv.workload`) replays a
Zipf-keyed get/put stream with a diurnal load envelope against the
cluster.  :mod:`repro.kv.bench` drives one trial end to end — tail
latency (p50/p99/p999) lands in :mod:`repro.obs` histograms, per-key
read-your-writes is checked against a static oracle, and the chaos
scenarios prove the tier rides the reliable layer through faults.
"""

from repro.kv.hashing import HashRing
from repro.kv.store import KV_PROGRAM_NUMBER, KV_PROGRAM_VERSION, KVStore
from repro.kv.workload import Request, WorkloadSpec, generate_schedule

__all__ = [
    "HashRing",
    "KVStore",
    "KV_PROGRAM_NUMBER",
    "KV_PROGRAM_VERSION",
    "Request",
    "WorkloadSpec",
    "generate_schedule",
]
