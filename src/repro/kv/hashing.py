"""Deterministic consistent hashing: key → shard routing.

A classic virtual-node hash ring: every shard contributes ``vnodes``
points on a 64-bit ring (SHA-1 of ``"shard#vnode"``), a key routes to
the first point clockwise of its own hash.  SHA-1 is used purely as a
deterministic spreader — same inputs, same ring, on every platform and
in every process, which is what lets the bench's static read-your-writes
oracle predict each key's shard without running the simulation.

Virtual nodes bound the per-shard load spread (the classic
``O(sqrt(vnodes))`` balance result), and consistent hashing keeps the
key→shard map stable under reconfiguration: adding or removing one
shard remaps only the keys on its arcs.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Sequence

__all__ = ["HashRing", "point_for"]

DEFAULT_VNODES = 64


def point_for(data: bytes) -> int:
    """A deterministic 64-bit ring position for ``data``."""
    return int.from_bytes(hashlib.sha1(data).digest()[:8], "big")


class HashRing:
    """An immutable consistent-hash ring over named shards."""

    def __init__(self, shards: Sequence[str], vnodes: int = DEFAULT_VNODES):
        if not shards:
            raise ValueError("HashRing needs at least one shard")
        if len(set(shards)) != len(shards):
            raise ValueError(f"duplicate shard names in {list(shards)!r}")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.shards = tuple(shards)
        self.vnodes = vnodes
        points = sorted(
            (point_for(f"{shard}#{v}".encode()), shard)
            for shard in shards for v in range(vnodes))
        self._hashes = [h for h, _ in points]
        self._owners = [shard for _, shard in points]

    def route(self, key: int) -> str:
        """The shard owning ``key`` (a 64-bit integer key id)."""
        h = point_for(int(key).to_bytes(8, "big"))
        i = bisect.bisect_right(self._hashes, h) % len(self._hashes)
        return self._owners[i]

    def spread(self, keys: Iterable[int]) -> dict[str, int]:
        """Keys-per-shard histogram (every shard present, possibly 0)."""
        counts = {shard: 0 for shard in self.shards}
        for key in keys:
            counts[self.route(key)] += 1
        return counts
