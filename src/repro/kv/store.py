"""The per-shard store and its RPC program (XDR wire format).

One :class:`KVStore` per server rank, exported as an
:class:`~repro.rpc.sunrpc.RPCProgram` with two procedures::

    GET(key: uhyper) -> (found: bool, value: opaque, version: uhyper)
    PUT(key: uhyper, value: opaque) -> (version: uhyper)

Versions are per-key monotone counters, so a client can assert
read-your-writes ordering from replies alone.  The handlers are plain
functions over the decoder — exactly the rpcgen server-stub shape
:mod:`repro.rpc.sunrpc` expects — so the same program object serves
over vRPC or the reliable RPC layer unchanged.
"""

from __future__ import annotations

from repro.rpc.sunrpc import RPCProgram
from repro.rpc.xdr import XdrDecoder, XdrEncoder

__all__ = ["KVStore", "KV_PROGRAM_NUMBER", "KV_PROGRAM_VERSION",
           "PROC_GET", "PROC_PUT", "encode_get_args", "encode_put_args",
           "decode_get_reply", "decode_put_reply"]

KV_PROGRAM_NUMBER = 0x20000101
KV_PROGRAM_VERSION = 1
PROC_GET = 1
PROC_PUT = 2


# -- argument / reply marshalling (shared by client and tests) -------------
def encode_get_args(key: int) -> bytes:
    return XdrEncoder().pack_uhyper(key).getvalue()


def encode_put_args(key: int, value: bytes) -> bytes:
    return XdrEncoder().pack_uhyper(key).pack_opaque(value).getvalue()


def decode_get_reply(dec: XdrDecoder) -> tuple[bool, bytes, int]:
    """(found, value, version); value is ``b""`` when not found."""
    found = dec.unpack_bool()
    return found, dec.unpack_opaque(), dec.unpack_uhyper()


def decode_put_reply(dec: XdrDecoder) -> int:
    return dec.unpack_uhyper()


class KVStore:
    """One shard's in-memory store with per-key versions."""

    def __init__(self, name: str):
        self.name = name
        self._data: dict[int, tuple[bytes, int]] = {}
        self.gets = 0
        self.puts = 0

    def get(self, key: int) -> tuple[bool, bytes, int]:
        self.gets += 1
        entry = self._data.get(key)
        if entry is None:
            return False, b"", 0
        return True, entry[0], entry[1]

    def put(self, key: int, value: bytes) -> int:
        self.puts += 1
        version = self._data.get(key, (b"", 0))[1] + 1
        self._data[key] = (bytes(value), version)
        return version

    def __len__(self) -> int:
        return len(self._data)

    # -- the RPC surface ----------------------------------------------------
    def program(self) -> RPCProgram:
        """This store as an RPC program (GET/PUT handlers registered)."""
        prog = RPCProgram(KV_PROGRAM_NUMBER, KV_PROGRAM_VERSION)

        def handle_get(dec: XdrDecoder) -> bytes:
            found, value, version = self.get(dec.unpack_uhyper())
            return (XdrEncoder().pack_bool(found).pack_opaque(value)
                    .pack_uhyper(version).getvalue())

        def handle_put(dec: XdrDecoder) -> bytes:
            key = dec.unpack_uhyper()
            version = self.put(key, dec.unpack_opaque())
            return XdrEncoder().pack_uhyper(version).getvalue()

        prog.register(PROC_GET, handle_get)
        prog.register(PROC_PUT, handle_put)
        return prog
