"""One seeded KV serving-tier trial (``python -m repro kv-bench``).

One trial = one cluster, one seed, one chaos scenario:

* a front-end tier (enough nodes to fit one client process per shard
  under the NIC's SRAM budget) runs the open-loop driver; the remaining
  nodes run one shard each (a :class:`~repro.kv.store.KVStore` served
  over :mod:`repro.rpc.reliable`);
* keys route to shards through a deterministic consistent-hash ring, so
  the schedule's shard assignment is known before the simulation runs;
* every request is fired at its precomputed arrival time (open loop —
  the driver never waits for the service), end-to-end latency =
  completion − scheduled arrival, recorded into :mod:`repro.obs`
  histograms end-to-end and per shard;
* chaos scenarios anchor fault windows to the replay phase on a
  :class:`~repro.faults.injector.PhaseSchedule`: ``error-burst`` drops
  every frame on the victim shard's links twice mid-replay,
  ``daemon-cold-crash`` cold-restarts the victim shard's daemon;
* after the run every GET is checked against the static
  read-your-writes oracle — the serving tier's consistency gate.

Trials are deterministic (integer-ns simulation, all randomness from
the seed), so a report is byte-identical across re-runs — the CLI's
determinism gate re-runs and compares.
"""

from __future__ import annotations

import random

from repro.cluster import Cluster, TestbedConfig
from repro.obs.metrics import MetricsRegistry, count, observe, quantile_key
from repro.faults import (DAEMON_COLD_CRASH, FaultCampaign, FaultEvent,
                          FaultInjector, LINK_ERROR_BURST, PhaseSchedule,
                          phase)
from repro.kv.hashing import HashRing
from repro.kv.store import (KVStore, PROC_GET, PROC_PUT, decode_get_reply,
                            decode_put_reply, encode_get_args,
                            encode_put_args)
from repro.kv.workload import (WorkloadSpec, generate_schedule,
                               read_your_writes_oracle)
from repro.rpc.reliable import connect_reliable_rpc
from repro.rpc.sunrpc import RPCError
from repro.vmmc.errors import RetriesExhausted

SCENARIOS = ("clean", "error-burst", "daemon-cold-crash")

#: Cold-crash outage length: long enough that in-flight slots hit the
#: stale import and recover, short enough that the channels' reimport
#: backoff budget rides it out (same shape the DSM bench uses).
_CRASH_OUTAGE_NS = 250_000

#: Client processes hosted per front-end node.  Each attached process
#: costs ~29 KB of the NIC's 256 KB SRAM (section 6), so a node tops
#: out at ~7 attachments; 6 leaves headroom.
_CLIENTS_PER_FRONTEND = 6


def _campaign_for(scenario: str, seed: int, cluster: Cluster,
                  shard_nodes: list[str], span_ns: int):
    """The scenario's fault schedule, anchored to the replay phase.

    The victim shard is seeded; fault windows scale with the replay
    span so they land mid-workload for any request count.  Link names
    come from the booted fabric, so the schedule is valid on any
    topology the trial runs on.
    """
    if scenario == "clean":
        return None
    rng = random.Random(seed * 7919 + 29)
    victim = rng.choice(shard_nodes)
    if scenario == "error-burst":
        burst_ns = max(50_000, span_ns // 16)
        events = []
        for start in (span_ns // 8, span_ns // 2):
            for link in cluster.fabric.links_of(victim):
                events.append(FaultEvent(
                    at_ns=phase("replay") + start, kind=LINK_ERROR_BURST,
                    target=link.name, duration_ns=burst_ns,
                    params={"rate": 1.0}))
        return FaultCampaign(name=f"kv-burst-s{seed}", seed=seed,
                             events=tuple(events))
    if scenario == "daemon-cold-crash":
        return FaultCampaign(
            name=f"kv-coldcrash-s{seed}", seed=seed,
            events=(FaultEvent(
                at_ns=phase("replay") + span_ns // 4,
                kind=DAEMON_COLD_CRASH, target=victim,
                duration_ns=_CRASH_OUTAGE_NS),))
    raise ValueError(f"unknown scenario {scenario!r} "
                     f"(have: {', '.join(SCENARIOS)})")


def _tail(snapshot: dict) -> dict:
    """count/p50/p99/p999 extract of a histogram snapshot (0s if empty)."""
    return {
        "count": int(snapshot.get("count", 0)),
        "p50": snapshot.get(quantile_key(0.5), 0),
        "p99": snapshot.get(quantile_key(0.99), 0),
        "p999": snapshot.get(quantile_key(0.999), 0),
    }


def run_kv_trial(seed: int, *, shards: int = 4, requests: int = 400,
                 nkeys: int = 512, skew: float = 0.9,
                 get_fraction: float = 0.8, load: str = "steady",
                 base_gap_ns: int = 20_000, value_bytes: int = 64,
                 scenario: str = "clean") -> dict:
    """One seeded KV trial; returns a JSON-serialisable report."""
    spec = WorkloadSpec(requests=requests, nkeys=nkeys, skew=skew,
                        get_fraction=get_fraction, base_gap_ns=base_gap_ns,
                        load=load, value_bytes=value_bytes)
    schedule_reqs = generate_schedule(spec, seed)
    expected = read_your_writes_oracle(schedule_reqs)
    span_ns = schedule_reqs[-1].at_ns

    # NIC SRAM bounds attached processes per node (~29 KB each, the
    # section-6 resource cost), so the front-end tier spreads its client
    # processes across enough nodes to stay under that limit.
    frontends = (shards + _CLIENTS_PER_FRONTEND - 1) // _CLIENTS_PER_FRONTEND
    nnodes = shards + frontends
    topology = None if nnodes <= 8 else f"dual:{nnodes}"
    cluster = Cluster.build(TestbedConfig(nnodes=nnodes, memory_mb=32),
                            topology=topology)
    env = cluster.env
    registry = MetricsRegistry().install(env)
    shard_nodes = [f"node{i}"
                   for i in range(frontends, frontends + shards)]
    ring = HashRing(shard_nodes)
    shard_of = {req.index: ring.route(req.key) for req in schedule_reqs}

    phases = PhaseSchedule(env)
    injector = FaultInjector(cluster)
    campaign = _campaign_for(scenario, seed, cluster, shard_nodes, span_ns)
    fault_proc = (injector.run(campaign, phases=phases)
                  if campaign is not None else None)

    stores = {name: KVStore(name) for name in shard_nodes}
    clients: dict[str, object] = {}
    servers: dict[str, object] = {}
    outcome = {"completed": 0, "failed": 0, "gets": 0, "puts": 0}
    ryw_violations: list[dict] = []

    def wire():
        for j, name in enumerate(shard_nodes):
            front = cluster.nodes[j % frontends]
            _, cli_ep = front.attach_process(f"kv.cli.{name}")
            _, srv_ep = cluster.nodes[frontends + j].attach_process(
                f"kv.srv.{name}")
            client, server = yield connect_reliable_rpc(
                cli_ep, srv_ep, f"kv.{name}", stores[name].program())
            clients[name] = client
            servers[name] = server

    def do_request(req, arrival_ns):
        shard = shard_of[req.index]
        client = clients[shard]
        try:
            if req.op == "put":
                dec = yield client.call(PROC_PUT,
                                        encode_put_args(req.key, req.value))
                decode_put_reply(dec)
                outcome["puts"] += 1
            else:
                dec = yield client.call(PROC_GET, encode_get_args(req.key))
                found, value, _version = decode_get_reply(dec)
                outcome["gets"] += 1
                want = expected[req.index]
                got = value if found else None
                if got != want:
                    ryw_violations.append({
                        "index": req.index, "key": req.key, "shard": shard,
                        "found": found})
        except (RetriesExhausted, RPCError):
            outcome["failed"] += 1
            count(env, "kv.failures", shard=shard)
            return
        outcome["completed"] += 1
        latency = env.now - arrival_ns
        observe(env, "kv.e2e_ns", latency)
        observe(env, "kv.shard_ns", latency, shard=shard)
        count(env, "kv.requests", shard=shard, op=req.op)

    def driver():
        # Open-loop replay: wire the tier, then fire every request at
        # its scheduled arrival (rebased past wiring) without ever
        # waiting for the service.
        yield env.process(wire())
        phases.enter("replay")
        t0 = env.now
        pending = []
        for req in schedule_reqs:
            arrival = t0 + req.at_ns
            wait = arrival - env.now
            if wait > 0:
                yield env.timeout(wait)
            pending.append(env.process(do_request(req, arrival),
                                       name=f"kv.req{req.index}"))
        for proc in pending:
            yield proc
        phases.enter("drain")

    env.run(until=env.process(driver(), name="kv.driver"))
    elapsed_ns = env.now
    workload_ns = phases.started_at["drain"] - phases.started_at["replay"]
    if fault_proc is not None:
        env.run(until=fault_proc)

    shard_counts = {name: 0 for name in shard_nodes}
    for shard in shard_of.values():
        shard_counts[shard] += 1
    mean_count = len(schedule_reqs) / len(shard_nodes)
    per_shard = {}
    for name in shard_nodes:
        shard_snap = registry.histogram("kv.shard_ns", shard=name).snapshot()
        per_shard[name] = dict(_tail(shard_snap), routed=shard_counts[name],
                               served=stores[name].gets + stores[name].puts)

    transport = {"retransmits": 0, "timeouts": 0, "reimports": 0,
                 "reply_failures": 0}
    for name in shard_nodes:
        for stats in (clients[name].sender.stats,
                      servers[name].sender.stats):
            transport["retransmits"] += stats.retransmits
            transport["timeouts"] += stats.timeouts
            transport["reimports"] += stats.reimports
        transport["reply_failures"] += servers[name].reply_failures

    # Hot-key pressure: the most popular key's share of the schedule.
    key_counts: dict[int, int] = {}
    for req in schedule_reqs:
        key_counts[req.key] = key_counts.get(req.key, 0) + 1

    report = {
        "bench": "kv",
        "scenario": scenario,
        "seed": seed,
        "shards": shards,
        "frontends": frontends,
        "requests": requests,
        "nkeys": nkeys,
        "skew": skew,
        "load": load,
        "get_fraction": get_fraction,
        "base_gap_ns": base_gap_ns,
        "elapsed_ns": elapsed_ns,
        "workload_ns": workload_ns,
        "completed": outcome["completed"],
        "failed": outcome["failed"],
        "gets": outcome["gets"],
        "puts": outcome["puts"],
        "latency_ns": registry.histogram("kv.e2e_ns").snapshot(),
        "per_shard": per_shard,
        "imbalance": round(max(shard_counts.values()) / mean_count, 4),
        "hot_key_fraction": round(
            max(key_counts.values()) / len(schedule_reqs), 4),
        "requests_per_sec": (
            round(outcome["completed"] * 1e9 / workload_ns, 3)
            if workload_ns else 0.0),
        "transport": transport,
        "ryw_violations": ryw_violations[:10],
        "ryw_violations_total": len(ryw_violations),
        "phases": dict(sorted(phases.started_at.items())),
        "faults": (injector.stats.as_dict()
                   if campaign is not None else None),
    }
    return report


def run_kv_sweep(seeds, *, shards: int = 4, requests: int = 400,
                 nkeys: int = 512, skew: float = 0.9,
                 get_fraction: float = 0.8, load: str = "steady",
                 base_gap_ns: int = 20_000,
                 scenarios=SCENARIOS) -> dict:
    """Trials for every (scenario, seed) pair plus summary aggregates."""
    trials = [
        run_kv_trial(seed, shards=shards, requests=requests, nkeys=nkeys,
                     skew=skew, get_fraction=get_fraction, load=load,
                     base_gap_ns=base_gap_ns, scenario=scenario)
        for scenario in scenarios
        for seed in seeds
    ]
    summary = {
        "trials": len(trials),
        "scenarios": list(scenarios),
        "seeds": list(seeds),
        "completed_total": sum(t["completed"] for t in trials),
        "failed_total": sum(t["failed"] for t in trials),
        "ryw_violations_total": sum(t["ryw_violations_total"]
                                    for t in trials),
        "retransmits_total": sum(t["transport"]["retransmits"]
                                 for t in trials),
    }
    return {"bench": "kv-sweep", "summary": summary, "trials": trials}
