"""Open-loop request generator: Zipf keys, get/put mix, diurnal load.

The generator is *open loop*: every request has a precomputed integer-ns
arrival time, and the driver fires it at that time regardless of how
the service is coping — the workload model that actually exposes tail
latency (a closed loop self-throttles exactly when the system is
slowest).  Everything is derived from one ``numpy`` RNG seed, so a
schedule is a pure function of ``(spec, seed)``:

* **keys** — bounded Zipf over ``nkeys`` ranks with exponent ``skew``
  (0 = uniform) via inverse-CDF sampling on a precomputed table;
* **ops** — Bernoulli get/put mix at ``get_fraction``;
* **arrivals** — base inter-arrival gap ``base_gap_ns``, modulated by a
  sinusoidal diurnal envelope (``load="diurnal"``) sweeping the arrival
  rate between ``1 - amplitude`` and ``1 + amplitude`` of nominal over
  ``cycles`` day-cycles across the run.

Because the whole schedule exists before the simulation starts, the
expected value of every GET is computable *statically*
(:func:`read_your_writes_oracle`): per key, requests are issued in
schedule order onto one FIFO exactly-once channel to one shard, so a
GET must observe exactly the last earlier PUT to its key.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

__all__ = ["WorkloadSpec", "Request", "generate_schedule",
           "read_your_writes_oracle"]


@dataclass(frozen=True)
class WorkloadSpec:
    """Shape of one open-loop replay (all knobs deterministic)."""

    requests: int = 1000
    nkeys: int = 512
    skew: float = 0.9
    get_fraction: float = 0.8
    base_gap_ns: int = 20_000
    load: str = "steady"            # "steady" | "diurnal"
    diurnal_amplitude: float = 0.5
    diurnal_cycles: float = 2.0
    value_bytes: int = 64

    def __post_init__(self):
        if self.requests < 1:
            raise ValueError(f"requests must be >= 1, got {self.requests}")
        if self.nkeys < 1:
            raise ValueError(f"nkeys must be >= 1, got {self.nkeys}")
        if self.skew < 0:
            raise ValueError(f"skew must be >= 0, got {self.skew}")
        if not 0.0 <= self.get_fraction <= 1.0:
            raise ValueError(f"get_fraction {self.get_fraction} not in [0,1]")
        if self.base_gap_ns < 1:
            raise ValueError(f"base_gap_ns must be >= 1 ns")
        if self.load not in ("steady", "diurnal"):
            raise ValueError(f"load must be steady|diurnal, got {self.load!r}")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")


@dataclass(frozen=True)
class Request:
    """One scheduled request (plain python ints/bytes, JSON-safe)."""

    index: int
    at_ns: int
    op: str                  # "get" | "put"
    key: int
    value: bytes | None      # None for gets


def _value_for(index: int, key: int, value_bytes: int) -> bytes:
    """A deterministic, self-describing payload for PUT ``index``."""
    stamp = struct.pack(">QQ", index, key)
    reps = value_bytes // len(stamp) + 1
    return (stamp * reps)[:value_bytes]


def generate_schedule(spec: WorkloadSpec, seed: int) -> list[Request]:
    """The full request schedule for ``(spec, seed)``, arrival-ordered."""
    rng = np.random.default_rng(seed)
    n = spec.requests

    # Bounded Zipf by inverse-CDF: weight(rank r) = r^-skew, r = 1..nkeys.
    ranks = np.arange(1, spec.nkeys + 1, dtype=np.float64)
    cdf = np.cumsum(ranks ** -spec.skew)
    cdf /= cdf[-1]
    keys = np.searchsorted(cdf, rng.random(n), side="right")

    is_get = rng.random(n) < spec.get_fraction

    if spec.load == "diurnal":
        phase = (2.0 * np.pi * spec.diurnal_cycles
                 * np.arange(n, dtype=np.float64) / n)
        rate = 1.0 + spec.diurnal_amplitude * np.sin(phase)
        gaps = np.maximum(1, np.rint(spec.base_gap_ns / rate)).astype(np.int64)
    else:
        gaps = np.full(n, spec.base_gap_ns, dtype=np.int64)
    at_ns = np.cumsum(gaps)

    schedule = []
    for i in range(n):
        key = int(keys[i])
        if is_get[i]:
            schedule.append(Request(i, int(at_ns[i]), "get", key, None))
        else:
            schedule.append(Request(
                i, int(at_ns[i]), "put", key,
                _value_for(i, key, spec.value_bytes)))
    return schedule


def read_your_writes_oracle(schedule: list[Request]) -> dict[int, bytes | None]:
    """Expected value of every GET, by request index.

    Valid because per key the service is a single FIFO exactly-once
    pipeline: key → one shard (consistent hashing), requests issued in
    schedule order, the channel delivers in order, the shard applies
    serially.  ``None`` means the key was never written before the GET.
    """
    last: dict[int, bytes] = {}
    expected: dict[int, bytes | None] = {}
    for req in schedule:
        if req.op == "put":
            last[req.key] = req.value
        else:
            expected[req.index] = last.get(req.key)
    return expected
