"""User-visible buffer handles.

A :class:`UserBuffer` is what application code passes to the communication
libraries: a (address space, vaddr, length) triple with convenience
accessors.  It is intentionally a thin handle — VMMC's zero-copy property
means the library never copies the buffer contents on the receive side, and
tests verify that by writing through one buffer handle and reading the same
bytes through another that maps the exported region.
"""

from __future__ import annotations

import numpy as np

from repro.mem.virtual import AddressSpace, PAGE_SIZE, page_offset


class UserBuffer:
    """A contiguous virtual-memory region owned by one address space."""

    def __init__(self, space: AddressSpace, vaddr: int, nbytes: int):
        if nbytes <= 0:
            raise ValueError("buffer length must be positive")
        self.space = space
        self.vaddr = vaddr
        self.nbytes = nbytes

    @classmethod
    def alloc(cls, space: AddressSpace, nbytes: int) -> "UserBuffer":
        """Allocate a fresh page-aligned buffer in ``space``."""
        return cls(space, space.mmap(nbytes), nbytes)

    def slice(self, offset: int, nbytes: int) -> "UserBuffer":
        """A sub-buffer (no allocation)."""
        if offset < 0 or offset + nbytes > self.nbytes:
            raise ValueError("slice outside buffer")
        return UserBuffer(self.space, self.vaddr + offset, nbytes)

    # -- data access ---------------------------------------------------------
    def read(self, offset: int = 0, nbytes: int | None = None) -> np.ndarray:
        nbytes = self.nbytes - offset if nbytes is None else nbytes
        if offset < 0 or offset + nbytes > self.nbytes:
            raise ValueError("read outside buffer")
        return self.space.read(self.vaddr + offset, nbytes)

    def write(self, payload: np.ndarray | bytes, offset: int = 0) -> None:
        length = len(payload)
        if offset < 0 or offset + length > self.nbytes:
            raise ValueError("write outside buffer")
        self.space.write(self.vaddr + offset, payload)

    def fill(self, value: int) -> None:
        self.write(np.full(self.nbytes, value, dtype=np.uint8))

    def tobytes(self) -> bytes:
        return self.read().tobytes()

    # -- geometry --------------------------------------------------------------
    @property
    def page_aligned(self) -> bool:
        return page_offset(self.vaddr) == 0

    @property
    def npages(self) -> int:
        from repro.mem.virtual import pages_spanned

        return pages_spanned(self.vaddr, self.nbytes)

    def __len__(self) -> int:
        return self.nbytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"UserBuffer({self.space.name}, vaddr={self.vaddr:#x}, "
                f"nbytes={self.nbytes})")
