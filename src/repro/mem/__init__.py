"""Host memory substrate: physical frames, virtual address spaces, pinning.

VMMC's whole design is shaped by the virtual-memory reality of the host
(paper section 5.2): user buffers live in *virtual* memory whose consecutive
pages are usually **not** physically contiguous, so any zero-copy transfer
engine is limited to page-sized (4 KB) DMA transfer units, and every page
touched by the NIC must be pinned (locked) so the frame cannot move.

This package models exactly that:

* :class:`PhysicalMemory` — a byte-accurate numpy-backed memory with a frame
  allocator that *deliberately scatters* allocations so that virtually
  contiguous pages get non-contiguous frames, like a real, long-running OS.
* :class:`AddressSpace` — per-process virtual memory with a page table,
  translation, region allocation and read/write access in virtual terms.
* :class:`UserBuffer` — a typed handle on a virtual region, the object user
  programs pass to the communication libraries.
* pin/unpin accounting on both the frame and the address-space level.
"""

from repro.mem.physical import Frame, OutOfMemoryError, PhysicalMemory
from repro.mem.virtual import (
    AddressSpace,
    PAGE_SIZE,
    PageFault,
    ProtectionError,
    page_offset,
    page_round_down,
    page_round_up,
    vpage_of,
)
from repro.mem.buffers import UserBuffer

__all__ = [
    "AddressSpace",
    "Frame",
    "OutOfMemoryError",
    "PAGE_SIZE",
    "PageFault",
    "PhysicalMemory",
    "ProtectionError",
    "UserBuffer",
    "page_offset",
    "page_round_down",
    "page_round_up",
    "vpage_of",
]
