"""Per-process virtual address spaces with 4 KB pages.

An :class:`AddressSpace` owns a page table mapping virtual page numbers to
physical frames, allocates virtual regions, translates addresses, performs
virtual reads/writes against the backing :class:`~repro.mem.physical.PhysicalMemory`,
and implements ``mlock``-style pinning (what the VMMC driver does when it
installs software-TLB translations or exports receive buffers).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.mem.physical import Frame, PhysicalMemory

#: Page size used throughout (Linux 2.0 on i386, paper section 4.5).
PAGE_SIZE = 4096


class PageFault(Exception):
    """Access to an unmapped virtual address."""


class ProtectionError(Exception):
    """Access that violates a mapping's permissions."""


def vpage_of(vaddr: int) -> int:
    """Virtual page number containing ``vaddr``."""
    return vaddr // PAGE_SIZE


def page_offset(vaddr: int) -> int:
    """Offset of ``vaddr`` within its page."""
    return vaddr % PAGE_SIZE


def page_round_down(vaddr: int) -> int:
    return vaddr - (vaddr % PAGE_SIZE)


def page_round_up(vaddr: int) -> int:
    return page_round_down(vaddr + PAGE_SIZE - 1)


def pages_spanned(vaddr: int, nbytes: int) -> int:
    """How many distinct pages the byte range [vaddr, vaddr+nbytes) touches."""
    if nbytes <= 0:
        return 0
    return vpage_of(vaddr + nbytes - 1) - vpage_of(vaddr) + 1


class AddressSpace:
    """A process's virtual memory: page table + region allocator."""

    #: Default base for user mappings (grows upward).
    USER_BASE = 0x0800_0000

    def __init__(self, memory: PhysicalMemory, name: str = "proc",
                 base: int = USER_BASE):
        if memory.page_size != PAGE_SIZE:
            raise ValueError("address space requires 4 KB pages")
        self.memory = memory
        self.name = name
        self._next_vaddr = base
        self._table: dict[int, Frame] = {}

    # -- mapping ---------------------------------------------------------------
    def mmap(self, nbytes: int, contiguous_physical: bool = False) -> int:
        """Allocate a zero-filled region; returns its (page-aligned) vaddr.

        ``contiguous_physical=True`` models driver-preallocated memory
        mapped into user space (the rejected section-5.1 alternative).
        """
        if nbytes <= 0:
            raise ValueError("mmap size must be positive")
        npages = (nbytes + PAGE_SIZE - 1) // PAGE_SIZE
        vaddr = self._next_vaddr
        self._next_vaddr += npages * PAGE_SIZE
        frames = (self.memory.alloc_contiguous(npages, owner=self.name)
                  if contiguous_physical
                  else self.memory.alloc_frames(npages, owner=self.name))
        first_vpage = vpage_of(vaddr)
        for i, frame in enumerate(frames):
            self._table[first_vpage + i] = frame
        return vaddr

    def munmap(self, vaddr: int, nbytes: int) -> None:
        """Unmap and free a previously mapped region."""
        first = vpage_of(vaddr)
        for vpage in range(first, first + pages_spanned(vaddr, nbytes)):
            frame = self._table.pop(vpage, None)
            if frame is None:
                raise PageFault(f"munmap of unmapped page {vpage:#x}")
            self.memory.free_frame(frame)

    def mapped(self, vaddr: int) -> bool:
        return vpage_of(vaddr) in self._table

    @property
    def mapped_pages(self) -> int:
        return len(self._table)

    # -- translation -------------------------------------------------------------
    def translate(self, vaddr: int) -> int:
        """Virtual → physical translation of a single address."""
        frame = self._table.get(vpage_of(vaddr))
        if frame is None:
            raise PageFault(
                f"{self.name}: unmapped virtual address {vaddr:#x}")
        return frame.number * PAGE_SIZE + page_offset(vaddr)

    def frame_of(self, vaddr: int) -> Frame:
        frame = self._table.get(vpage_of(vaddr))
        if frame is None:
            raise PageFault(
                f"{self.name}: unmapped virtual address {vaddr:#x}")
        return frame

    def physical_extents(self, vaddr: int, nbytes: int
                         ) -> list[tuple[int, int]]:
        """Break [vaddr, vaddr+nbytes) into physically contiguous pieces.

        Returns ``(paddr, length)`` pairs, one per *physical* run; since the
        allocator scatters frames, runs rarely exceed one page — which is
        exactly the property that limits DMA transfer units (section 5.2).
        """
        extents: list[tuple[int, int]] = []
        remaining = nbytes
        cursor = vaddr
        while remaining > 0:
            paddr = self.translate(cursor)
            chunk = min(remaining, PAGE_SIZE - page_offset(cursor))
            if extents and extents[-1][0] + extents[-1][1] == paddr:
                extents[-1] = (extents[-1][0], extents[-1][1] + chunk)
            else:
                extents.append((paddr, chunk))
            cursor += chunk
            remaining -= chunk
        return extents

    # -- pinning -------------------------------------------------------------------
    def pin_range(self, vaddr: int, nbytes: int) -> list[int]:
        """Pin every page the range touches; returns the frame numbers."""
        first = vpage_of(vaddr)
        frames = []
        for vpage in range(first, first + pages_spanned(vaddr, nbytes)):
            frame = self._table.get(vpage)
            if frame is None:
                raise PageFault(f"pin of unmapped page {vpage:#x}")
            self.memory.pin(frame.number)
            frames.append(frame.number)
        return frames

    def unpin_range(self, vaddr: int, nbytes: int) -> None:
        first = vpage_of(vaddr)
        for vpage in range(first, first + pages_spanned(vaddr, nbytes)):
            self.memory.unpin(self._table[vpage].number)

    def is_pinned(self, vaddr: int, nbytes: int) -> bool:
        first = vpage_of(vaddr)
        return all(
            self._table[vpage].pinned
            for vpage in range(first, first + pages_spanned(vaddr, nbytes))
            if vpage in self._table)

    # -- virtual data access -----------------------------------------------------------
    def read(self, vaddr: int, nbytes: int) -> np.ndarray:
        """Copy bytes out of virtual memory (may cross page boundaries)."""
        out = np.empty(nbytes, dtype=np.uint8)
        done = 0
        for paddr, length in self.physical_extents(vaddr, nbytes):
            out[done:done + length] = self.memory.view(paddr, length)
            done += length
        return out

    def write(self, vaddr: int, payload: np.ndarray | bytes) -> None:
        buf = np.frombuffer(bytes(payload), dtype=np.uint8) \
            if isinstance(payload, (bytes, bytearray)) \
            else np.asarray(payload, dtype=np.uint8)
        done = 0
        for paddr, length in self.physical_extents(vaddr, len(buf)):
            self.memory.view(paddr, length)[:] = buf[done:done + length]
            done += length
