"""Byte-accurate physical memory with a fragmenting frame allocator.

The testbed machines had 64 MB of EDO DRAM (paper section 5.1).  We model
physical memory as a numpy ``uint8`` array indexed by physical address, plus
a frame allocator.  The allocator hands out frames in a *scattered* order on
purpose: a stride-permuted sequence, so that two frames allocated
back-to-back are almost never physically adjacent.  That reproduces the
fragmentation of a long-running system and makes the paper's central
hardware limitation structural — DMA transfer units cannot exceed one page
because "consecutive pages in virtual memory are usually not consecutive in
the physical address space" (section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np


class OutOfMemoryError(MemoryError):
    """No free physical frames remain."""


@dataclass
class Frame:
    """One physical page frame."""

    number: int
    pin_count: int = 0
    owner: Optional[str] = None

    @property
    def pinned(self) -> bool:
        return self.pin_count > 0


def _scatter_order(nframes: int, stride: int = 41) -> list[int]:
    """A permutation of frame numbers that scatters consecutive picks.

    Uses a stride co-prime with ``nframes`` so that the sequence visits
    every frame exactly once while neighbouring picks land ``stride`` frames
    apart — mimicking the free-list of a fragmented system.
    """
    if nframes <= 0:
        return []
    while _gcd(stride, nframes) != 1:
        stride += 1
    return [(i * stride) % nframes for i in range(nframes)]


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a


class PhysicalMemory:
    """Physical memory: data array + frame allocation + pinning."""

    def __init__(self, size_bytes: int, page_size: int = 4096,
                 scatter: bool = True, reserved_frames: int = 0):
        if size_bytes % page_size != 0:
            raise ValueError("memory size must be a whole number of pages")
        self.size = size_bytes
        self.page_size = page_size
        self.nframes = size_bytes // page_size
        self.data = np.zeros(size_bytes, dtype=np.uint8)
        self.frames = [Frame(i) for i in range(self.nframes)]
        # reserved_frames models kernel-owned low memory never given to users.
        order = (_scatter_order(self.nframes) if scatter
                 else list(range(self.nframes)))
        self._free = [f for f in order if f >= reserved_frames]
        self._allocated: set[int] = set()
        self._watches: list[tuple[int, int, object]] = []

    # -- allocation ---------------------------------------------------------
    @property
    def free_frames(self) -> int:
        return len(self._free)

    def alloc_frame(self, owner: Optional[str] = None) -> Frame:
        """Allocate one frame (scattered order)."""
        if not self._free:
            raise OutOfMemoryError(
                f"out of physical memory ({self.nframes} frames)")
        number = self._free.pop(0)
        self._allocated.add(number)
        frame = self.frames[number]
        frame.owner = owner
        return frame

    def alloc_frames(self, count: int, owner: Optional[str] = None
                     ) -> list[Frame]:
        if count > len(self._free):
            raise OutOfMemoryError(
                f"requested {count} frames, only {len(self._free)} free")
        return [self.alloc_frame(owner) for _ in range(count)]

    def alloc_contiguous(self, count: int, owner: Optional[str] = None
                         ) -> list[Frame]:
        """Allocate physically *contiguous* frames (driver-reserved memory).

        This is what a driver-preallocated buffer pool would use — the
        alternative design the paper rejects in section 5.1 because it
        cannot support sends from static user data structures.
        """
        free = sorted(self._free)
        run_start = 0
        for i in range(1, len(free) + 1):
            if i == len(free) or free[i] != free[i - 1] + 1:
                if i - run_start >= count:
                    chosen = free[run_start:run_start + count]
                    for n in chosen:
                        self._free.remove(n)
                        self._allocated.add(n)
                        self.frames[n].owner = owner
                    return [self.frames[n] for n in chosen]
                run_start = i
        raise OutOfMemoryError(
            f"no contiguous run of {count} frames available")

    def free_frame(self, frame: Frame) -> None:
        if frame.number not in self._allocated:
            raise ValueError(f"frame {frame.number} is not allocated")
        if frame.pinned:
            raise ValueError(f"cannot free pinned frame {frame.number}")
        self._allocated.discard(frame.number)
        frame.owner = None
        self._free.append(frame.number)

    # -- pinning --------------------------------------------------------------
    def pin(self, frame_number: int) -> None:
        """Pin a frame (lock it in memory); pins nest."""
        self.frames[frame_number].pin_count += 1

    def unpin(self, frame_number: int) -> None:
        frame = self.frames[frame_number]
        if frame.pin_count == 0:
            raise ValueError(f"frame {frame_number} is not pinned")
        frame.pin_count -= 1

    @property
    def pinned_frames(self) -> int:
        return sum(1 for f in self.frames if f.pinned)

    # -- data access (by physical address) -----------------------------------
    def read(self, paddr: int, nbytes: int) -> np.ndarray:
        """Return a *copy* of ``nbytes`` at physical address ``paddr``."""
        self._check_range(paddr, nbytes)
        return self.data[paddr:paddr + nbytes].copy()

    def write(self, paddr: int, payload: np.ndarray | bytes) -> None:
        buf = np.frombuffer(bytes(payload), dtype=np.uint8) \
            if isinstance(payload, (bytes, bytearray)) \
            else np.asarray(payload, dtype=np.uint8)
        self._check_range(paddr, len(buf))
        self.data[paddr:paddr + len(buf)] = buf

    def view(self, paddr: int, nbytes: int) -> np.ndarray:
        """A mutable *view* (no copy) — used by DMA engines."""
        self._check_range(paddr, nbytes)
        return self.data[paddr:paddr + nbytes]

    def frame_base(self, frame_number: int) -> int:
        return frame_number * self.page_size

    def frame_of_paddr(self, paddr: int) -> int:
        return paddr // self.page_size

    def _check_range(self, paddr: int, nbytes: int) -> None:
        if paddr < 0 or paddr + nbytes > self.size:
            raise ValueError(
                f"physical access [{paddr}, {paddr + nbytes}) outside "
                f"memory of {self.size} bytes")

    # -- write watches (device-write visibility for spinning CPUs) --------------
    def add_watch(self, paddr: int, nbytes: int, event) -> None:
        """Register a one-shot event fired when a device write touches
        [paddr, paddr+nbytes).  Models a CPU spinning on a cache location:
        the DMA that deposits data invalidates the line and the spinner
        observes it.  Only *device* writers call :meth:`notify_write`."""
        self._watches.append((paddr, nbytes, event))

    def notify_write(self, paddr: int, nbytes: int) -> None:
        """Called by DMA engines after mutating [paddr, paddr+nbytes)."""
        if not self._watches:
            return
        remaining = []
        for start, length, event in self._watches:
            overlaps = start < paddr + nbytes and paddr < start + length
            if overlaps and not getattr(event, "triggered", True):
                event.succeed((paddr, nbytes))
            elif not getattr(event, "triggered", True):
                remaining.append((start, length, event))
        self._watches = remaining

    # -- introspection ----------------------------------------------------------
    def frames_are_contiguous(self, frames: Iterable[Frame]) -> bool:
        numbers = [f.number for f in frames]
        return all(b == a + 1 for a, b in zip(numbers, numbers[1:]))
