"""Cluster assembly: nodes, topologies, and the boot sequence.

:class:`Cluster` reproduces the paper's testbed in one call: four PCI PCs
(166 MHz Pentium, 64 MB EDO, Intel 430FX) with M2F-PCI32 interfaces on one
M2F-SW8 switch, plus the Ethernet control network — then boots it (network
mapping → VMMC LCPs → daemons) so user code can attach processes and
communicate.
"""

from repro.cluster.config import TestbedConfig
from repro.cluster.node import Node
from repro.cluster.cluster import Cluster

__all__ = ["Cluster", "Node", "TestbedConfig"]
