"""Cluster builder + boot orchestration."""

from __future__ import annotations

from typing import Optional

from repro.sim import Environment
from repro.hw.myrinet.network import MyrinetNetwork
from repro.hostos.ethernet import EthernetNetwork
from repro.vmmc.mapping_lcp import MappingPhase, MappingResult
from repro.cluster.config import TestbedConfig
from repro.cluster.node import Node


class Cluster:
    """A bootable simulated cluster.

    Usage::

        cluster = Cluster.build()        # 4-node paper testbed, booted
        env = cluster.env
        p0, ep0 = cluster.nodes[0].attach_process("sender")
        p1, ep1 = cluster.nodes[1].attach_process("receiver")
        ... run application generators with env.process / env.run ...
    """

    def __init__(self, env: Environment, config: TestbedConfig):
        self.env = env
        self.config = config
        if config.topology == "single_switch":
            self.fabric = MyrinetNetwork.single_switch(
                env, config.nnodes, config.link)
        elif config.topology == "dual_switch":
            self.fabric = MyrinetNetwork.dual_switch(
                env, config.nnodes, config.link)
        else:
            raise ValueError(f"unknown topology {config.topology!r}")
        self.ether = EthernetNetwork(env, config.ethernet)
        self.nodes = [
            Node(env, f"node{i}", i, self.fabric, self.ether, config)
            for i in range(config.nnodes)
        ]
        self.mapping: Optional[MappingResult] = None

    def boot(self) -> MappingResult:
        """Run the mapping phase, then start every node's LCP + daemon.

        Mirrors the section-4.3 life cycle: mapping LCP first, replaced by
        the VMMC LCP with static routing tables.
        """
        phase = MappingPhase(self.env, self.fabric,
                             {n.name: n.nic for n in self.nodes})
        mapping_proc = phase.run()
        result = self.env.run(until=mapping_proc)
        for node in self.nodes:
            node.boot(result.routes[node.name])
        self.mapping = result
        return result

    @classmethod
    def build(cls, config: TestbedConfig | None = None,
              env: Environment | None = None) -> "Cluster":
        """Construct and boot a cluster (defaults: the paper's testbed)."""
        cluster = cls(env or Environment(), config or TestbedConfig())
        cluster.boot()
        return cluster

    def node(self, name: str) -> Node:
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(name)

    def sram_usage(self) -> dict[str, dict[str, int]]:
        """Per-node NIC SRAM accounting (section-6 resource costs)."""
        return {n.name: n.nic.sram_usage() for n in self.nodes}
