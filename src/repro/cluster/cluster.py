"""Cluster builder + boot orchestration."""

from __future__ import annotations

from typing import Optional, Union

from repro.sim import Environment
from repro.hw.myrinet import topology as fabric_topology
from repro.hw.myrinet.topology import TopologySpec
from repro.hostos.ethernet import EthernetNetwork
from repro.vmmc.mapping_lcp import MappingPhase, MappingResult
from repro.cluster.config import TestbedConfig
from repro.cluster.node import Node


class Cluster:
    """A bootable simulated cluster.

    Usage::

        cluster = Cluster.build()        # 4-node paper testbed, booted
        big = Cluster.build(topology="fattree:8,h=2")   # 64-node fat-tree
        env = cluster.env
        p0, ep0 = cluster.nodes[0].attach_process("sender")
        p1, ep1 = cluster.nodes[1].attach_process("receiver")
        ... run application generators with env.process / env.run ...
    """

    def __init__(self, env: Environment, config: TestbedConfig):
        self.env = env
        #: The resolved, validated fabric spec (declarative ground truth).
        self.topology: TopologySpec = fabric_topology.resolve(
            config.topology, nhosts=config.nnodes)
        if self.topology.nhosts != config.nnodes:
            # Non-legacy specs fix their own host count; the cluster
            # follows the fabric.
            config = config.with_(nnodes=self.topology.nhosts)
        self.config = config
        self.fabric = fabric_topology.build(self.topology, env, config.link)
        self.ether = EthernetNetwork(env, config.ethernet)
        self.nodes = [
            Node(env, name, i, self.fabric, self.ether, config)
            for i, name in enumerate(self.fabric.host_names)
        ]
        self.mapping: Optional[MappingResult] = None

    def boot(self) -> MappingResult:
        """Run the mapping phase, then start every node's LCP + daemon.

        Mirrors the section-4.3 life cycle: mapping LCP first, replaced by
        the VMMC LCP with static routing tables.  The cluster's node
        numbering is authoritative: the mapping phase verifies and
        installs routes against these indices.
        """
        phase = MappingPhase(self.env, self.fabric,
                             {n.name: n.nic for n in self.nodes},
                             indices={n.name: n.index for n in self.nodes})
        mapping_proc = phase.run()
        result = self.env.run(until=mapping_proc)
        for node in self.nodes:
            node.boot(result.routes[node.name])
        self.mapping = result
        return result

    @classmethod
    def build(cls, config: TestbedConfig | None = None,
              env: Environment | None = None,
              topology: Union[str, TopologySpec, None] = None,
              engine: str | None = None) -> "Cluster":
        """Construct and boot a cluster (defaults: the paper's testbed).

        ``topology`` overrides the config's fabric: a
        :class:`~repro.hw.myrinet.topology.TopologySpec` or a compact
        string like ``"fattree:8,h=2"`` / ``"mesh:8x8"``; ``nnodes``
        follows the spec.

        ``engine`` selects the simulation engine (``"scalar"`` /
        ``"vector"``) when no ``env`` is supplied; default is
        :func:`repro.sim.resolve_engine`'s resolution (``$REPRO_SIM_ENGINE``,
        else scalar).
        """
        config = config or TestbedConfig()
        if topology is not None:
            spec = fabric_topology.resolve(topology, nhosts=config.nnodes)
            config = config.with_(topology=spec, nnodes=spec.nhosts)
        cluster = cls(env or Environment(engine=engine), config)
        cluster.boot()
        return cluster

    def node(self, name: str) -> Node:
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(name)

    def sram_usage(self) -> dict[str, dict[str, int]]:
        """Per-node NIC SRAM accounting (section-6 resource costs)."""
        return {n.name: n.nic.sram_usage() for n in self.nodes}
