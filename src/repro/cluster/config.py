"""Canonical hardware configuration of the paper's testbed (section 5.1).

"Our implementation and experimentation environment consists of four PCI
PCs connected to a Myrinet switch (M2F-SW8) via Myrinet PCI network
interfaces (M2F-PCI32).  In addition, the PCs are also connected by an
Ethernet.  Each PC is a Dell Dimension P166 with a 166 MHz Pentium CPU
with 512 KByte L2 cache ... Intel 430FX (Triton) chipset ... 64 MBytes of
EDO main memory ... Linux OS version 2.0."

Every cost constant in the simulator is reachable from this one object so
benchmarks, tests and ablations share a single source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Union

from repro.hw.bus.eisa import EISAParams
from repro.hw.bus.membus import MemoryBusParams
from repro.hw.bus.pci import PCIParams
from repro.hw.myrinet.link import LinkParams
from repro.hw.myrinet.topology import TopologySpec
from repro.hostos.ethernet import EthernetParams
from repro.hostos.kernel import KernelParams
from repro.vmmc.lcp import LCPCosts


@dataclass(frozen=True)
class TestbedConfig:
    """All tunables of one simulated cluster."""

    #: Not a pytest test class despite the name.
    __test__ = False

    nnodes: int = 4
    memory_mb: int = 64
    #: The fabric: a :class:`~repro.hw.myrinet.topology.TopologySpec`, a
    #: compact string (``"fattree:4"``, ``"mesh:8x8"`` — see
    #: :func:`repro.hw.myrinet.topology.parse`), or the legacy names
    #: ``"single_switch"`` / ``"dual_switch"`` sized by ``nnodes``.  When
    #: the spec fixes its own host count (every non-legacy form),
    #: :class:`~repro.cluster.Cluster` normalizes ``nnodes`` to match.
    topology: Union[str, TopologySpec] = "single_switch"
    pci: PCIParams = field(default_factory=PCIParams)
    eisa: EISAParams = field(default_factory=EISAParams)
    membus: MemoryBusParams = field(default_factory=MemoryBusParams)
    link: LinkParams = field(default_factory=LinkParams)
    ethernet: EthernetParams = field(default_factory=EthernetParams)
    kernel: KernelParams = field(default_factory=KernelParams)
    lcp: LCPCosts = field(default_factory=LCPCosts)
    #: Scatter physical frames (realistic fragmented memory).  Turning this
    #: off is the ablation for the 4 KB-transfer-unit argument of §5.2.
    scatter_frames: bool = True

    def with_(self, **overrides) -> "TestbedConfig":
        """A modified copy (ablation helper)."""
        return replace(self, **overrides)

    @property
    def memory_bytes(self) -> int:
        return self.memory_mb * 1024 * 1024


#: The configuration used by all paper-reproduction benchmarks.
PAPER_TESTBED = TestbedConfig()
