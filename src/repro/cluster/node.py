"""One cluster node: PC + Myrinet NIC + OS + VMMC system software."""

from __future__ import annotations

from typing import Optional

from repro.sim import Environment
from repro.mem.buffers import UserBuffer
from repro.mem.physical import PhysicalMemory
from repro.mem.virtual import AddressSpace, PAGE_SIZE
from repro.hw.bus.membus import MemoryBus
from repro.hw.bus.pci import PCIBus
from repro.hw.lanai.nic import LanaiNIC
from repro.hw.myrinet.network import MyrinetNetwork
from repro.hostos.ethernet import EthernetNetwork
from repro.hostos.kernel import Kernel
from repro.hostos.process import UserProcess
from repro.vmmc.api import VMMCEndpoint
from repro.vmmc.daemon import VMMCDaemon
from repro.vmmc.driver import VMMCDriver
from repro.vmmc.lcp import VmmcLCP
from repro.cluster.config import TestbedConfig


class Node:
    """A Dell Dimension P166 with a Myrinet PCI interface."""

    def __init__(self, env: Environment, name: str, index: int,
                 fabric: MyrinetNetwork, ether: EthernetNetwork,
                 config: TestbedConfig):
        self.env = env
        self.name = name
        self.index = index
        self.config = config
        # Hardware.
        self.memory = PhysicalMemory(config.memory_bytes,
                                     scatter=config.scatter_frames,
                                     reserved_frames=64)
        self.pci = PCIBus(env, config.pci, name=f"{name}.pci")
        self.membus = MemoryBus(env, config.membus)
        self.nic = LanaiNIC(env, fabric, name, self.pci, self.memory)
        # OS + VMMC system software.
        self.kernel = Kernel(env, name=f"{name}.kernel",
                             params=config.kernel)
        self.lcp = VmmcLCP(env, self.nic, index, self.memory.nframes,
                           costs=config.lcp, name=f"{name}.lcp")
        self.driver = VMMCDriver(env, self.kernel, self.lcp,
                                 name=f"{name}.vmmc_drv")
        self.daemon = VMMCDaemon(env, name, self.kernel, self.driver, ether)
        self._booted = False

    # -- boot -------------------------------------------------------------------
    def boot(self, routes: dict[int, list[int]]) -> None:
        """Install the mapping phase's routes and start the system software."""
        if self._booted:
            raise RuntimeError(f"{self.name} already booted")
        self.lcp.install_routes(routes)
        self.lcp.start()
        self.daemon.start()
        self._booted = True

    # -- process management ----------------------------------------------------------
    def attach_process(self, proc_name: str = ""
                       ) -> tuple[UserProcess, VMMCEndpoint]:
        """Create a user process on this node and open VMMC for it.

        Allocates the process's pinned completion-word page and registers
        the process with the driver/LCP (send queue, outgoing page table
        and software TLB appear in NIC SRAM at this point).
        """
        if not self._booted:
            raise RuntimeError(f"{self.name}: attach before boot")
        space = AddressSpace(self.memory,
                             name=proc_name or f"{self.name}.proc")
        process = UserProcess(space, proc_name)
        completion = UserBuffer.alloc(space, PAGE_SIZE)
        space.pin_range(completion.vaddr, completion.nbytes)
        completion_paddr = space.translate(completion.vaddr)
        ctx = self.driver.attach_process(process, completion_paddr)
        endpoint = VMMCEndpoint(self.env, self.name, process, ctx,
                                self.lcp, self.driver, self.daemon,
                                self.membus)
        return process, endpoint

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.name}, index={self.index})"
