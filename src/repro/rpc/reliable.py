"""RPC service plumbing over the reliable VMMC layer.

:mod:`repro.rpc.vrpc` is the paper's section-5.4 artifact: raw VMMC
deposits with spin-wait receive — the right transport for a trusted
ping-pong benchmark, but a service that must *stay up* under link error
bursts and daemon cold crashes needs retransmission, exactly-once
delivery and transparent re-import.  This module runs the same SunRPC
XDR wire format (:mod:`repro.rpc.sunrpc`, unchanged) over a pair of
:mod:`repro.vmmc.reliable` channels, one per direction:

* calls pipeline through the sender's AIMD window (several requests in
  flight per connection, FIFO, exactly once);
* replies are demultiplexed by xid, so the server may finish calls in
  any order and reply sends never serialise on the client's ACK;
* both channels ride the reliable layer's loss recovery and stale-import
  reimport machinery, so the connection survives the chaos scenarios the
  KV campaign schedules.

Cost model: the same collapsed thin layer + fixed stub cost per message
as vRPC (:data:`~repro.rpc.vrpc.THIN_LAYER_NS`,
:data:`~repro.rpc.vrpc.STUB_FIXED_NS`); the transport cost is whatever
the reliable channel actually spends.
"""

from __future__ import annotations

import itertools

from repro.sim import Environment, Event
from repro.vmmc.api import VMMCEndpoint
from repro.vmmc.errors import RetriesExhausted
from repro.vmmc.reliable import ReliableError, open_channel
from repro.rpc.sunrpc import (
    PROC_UNAVAIL,
    RPCError,
    RPCProgram,
    SUCCESS,
    decode_call,
    decode_reply,
    encode_call,
    encode_reply,
)
from repro.rpc.vrpc import STUB_FIXED_NS, THIN_LAYER_NS
from repro.rpc.xdr import XdrError

__all__ = ["ReliableRPCClient", "ReliableRPCServer", "connect_reliable_rpc"]


class ReliableRPCServer:
    """Serves one :class:`~repro.rpc.sunrpc.RPCProgram` over a reliable
    connection (requests in via ``receiver``, replies out via
    ``sender``)."""

    def __init__(self, program: RPCProgram, receiver, sender, name: str):
        self.program = program
        self.receiver = receiver
        self.sender = sender
        self.name = name
        self.env: Environment = sender.env
        self.calls_served = 0
        #: Replies the transport gave up on (retry budget exhausted mid
        #: chaos window); the bench's delivery gate counts these.
        self.reply_failures = 0

    def start(self):
        """Start the serve loop; returns its (never-ending) process."""
        return self.env.process(self._serve(), name=f"rrpc.serve.{self.name}")

    def _serve(self):
        while True:
            request = yield self.receiver.recv()
            yield self.env.timeout(THIN_LAYER_NS + STUB_FIXED_NS)
            try:
                xid, prog, vers, proc, args = decode_call(bytes(request))
            except XdrError:
                continue
            handler = (self.program.lookup(proc)
                       if (prog, vers) == (self.program.number,
                                           self.program.version) else None)
            if handler is None:
                reply = encode_reply(xid, PROC_UNAVAIL)
            else:
                result = handler(args)
                if hasattr(result, "__next__"):
                    result = yield self.env.process(result)
                reply = encode_reply(xid, SUCCESS, result)
            self.calls_served += 1
            yield self.env.timeout(THIN_LAYER_NS + STUB_FIXED_NS)
            # Replies pipeline through the channel window; blocking the
            # serve loop on the client's transport ACK would put one
            # round trip between every pair of requests.
            self.env.process(self._send_reply(reply),
                             name=f"rrpc.reply.{self.name}")

    def _send_reply(self, reply: bytes):
        try:
            yield self.sender.send(reply)
        except (ReliableError, RetriesExhausted):
            self.reply_failures += 1


class ReliableRPCClient:
    """Client side of one reliable RPC connection.

    Concurrent :meth:`call` s pipeline through the request channel's
    AIMD window; a single demux process matches replies to callers by
    xid, so calls complete as their replies arrive regardless of order.
    """

    def __init__(self, prog: int, vers: int, sender, receiver, name: str):
        self.prog = prog
        self.vers = vers
        self.sender = sender
        self.receiver = receiver
        self.name = name
        self.env: Environment = sender.env
        self.calls_sent = 0
        self._xids = itertools.count(1)
        self._pending: dict[int, Event] = {}
        self._demux_started = False

    def _ensure_demux(self) -> None:
        if not self._demux_started:
            self._demux_started = True
            self.env.process(self._demux(), name=f"rrpc.demux.{self.name}")

    def _demux(self):
        while True:
            raw = yield self.receiver.recv()
            try:
                xid, _status, _dec = decode_reply(bytes(raw))
            except XdrError:
                continue
            waiter = self._pending.pop(xid, None)
            if waiter is not None:
                waiter.succeed(bytes(raw))

    def call(self, proc: int, args: bytes = b""):
        """Process: one RPC; value is the reply's XdrDecoder.

        Raises :class:`~repro.rpc.sunrpc.RPCError` on a non-SUCCESS
        reply status; transport-level exhaustion surfaces as
        :class:`~repro.vmmc.reliable.RetriesExhausted`.
        """
        self._ensure_demux()

        def run():
            xid = next(self._xids)
            yield self.env.timeout(THIN_LAYER_NS + STUB_FIXED_NS)
            request = encode_call(xid, self.prog, self.vers, proc, args)
            waiter = Event(self.env)
            self._pending[xid] = waiter
            try:
                yield self.sender.send(request)
                self.calls_sent += 1
                raw = yield waiter
            except BaseException:
                self._pending.pop(xid, None)
                raise
            yield self.env.timeout(THIN_LAYER_NS + STUB_FIXED_NS)
            reply_xid, status, dec = decode_reply(raw)
            if reply_xid != xid:
                raise RPCError("xid mismatch")
            if status != SUCCESS:
                raise RPCError(f"status {status}")
            return dec

        return self.env.process(run(), name=f"rrpc.call.{self.name}")


def connect_reliable_rpc(client_ep: VMMCEndpoint, server_ep: VMMCEndpoint,
                         tag: str, program: RPCProgram, **channel_knobs):
    """Process: wire one reliable RPC connection and start its serve
    loop; value is the ``(ReliableRPCClient, ReliableRPCServer)`` pair.

    ``channel_knobs`` pass through to both
    :func:`~repro.vmmc.reliable.open_channel` calls (``nslots``,
    ``timeout_ns``, ``max_retries``, the adaptive knobs, ...), shaping
    both directions identically.
    """
    env = client_ep.env

    def run():
        req_tx, req_rx = yield open_channel(
            client_ep, server_ep, f"rrpc.{tag}.req", **channel_knobs)
        rep_tx, rep_rx = yield open_channel(
            server_ep, client_ep, f"rrpc.{tag}.rep", **channel_knobs)
        server = ReliableRPCServer(program, req_rx, rep_tx, tag)
        client = ReliableRPCClient(program.number, program.version,
                                   req_tx, rep_rx, tag)
        server.start()
        return client, server

    return env.process(run(), name=f"rrpc.connect.{tag}")
