"""vRPC: the SunRPC-compatible RPC library over VMMC (section 5.4).

Design points taken from the paper:

* **wire/stub compatibility** — the call/reply records are the exact XDR
  SunRPC format from :mod:`repro.rpc.sunrpc`; only the runtime transport
  changed;
* **network layer re-implemented directly on VMMC** — client and server
  export request/reply regions to each other and deposit records with
  ``SendMsg``; no kernel, no sockets;
* **collapsed thin layer** — one small fixed cost per message instead of
  the SunRPC stack traversal;
* **one copy on every message receive** — compatibility with SunRPC stubs
  requires handing the decoder a private copy of the record, so each side
  bcopy's the record out of the exported region (two copies per round
  trip).  Bulk arguments are *sent* zero-copy straight from user buffers
  (gather on the send side costs nothing under VMMC), which is why
  bandwidth is limited by the single receive-side copy: with bcopy at
  ≈50 MB/s against a 98 MB/s transport the sustained rate lands at
  ≈33 MB/s — well below peak VMMC but far above SunRPC/UDP.

Protocol inside an exported region::

    offset 0:  u32 seq | u32 record length      (header, written last)
    offset 8:  the XDR record (call or reply)

In-order VMMC delivery guarantees the record is in place before the
header's sequence number becomes visible, so the receiver just spins on
the header word — no receive operation, no interrupts.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.sim import Environment
from repro.mem.buffers import UserBuffer
from repro.vmmc.api import VMMCEndpoint
from repro.rpc.sunrpc import (
    PROC_UNAVAIL,
    RPCError,
    RPCProgram,
    SUCCESS,
    decode_call,
    decode_reply,
    encode_call,
    encode_reply,
)
from repro.rpc.xdr import XdrDecoder, XdrError

#: The collapsed runtime layer: per-message fixed cost on each side
#: (dispatch, xid bookkeeping, null-auth processing).
THIN_LAYER_NS = 6_700
#: Fixed XDR stub cost per message (headers only — bulk opaque data is
#: passed by reference and gathered by VMMC, not walked by the stub).
STUB_FIXED_NS = 2_400

#: Region layout.
_HEADER_BYTES = 8
_DATA_OFFSET = 8


def _header(seq: int, length: int) -> bytes:
    return np.array([seq, length], dtype=">u4").tobytes()


def _parse_header(raw: np.ndarray) -> tuple[int, int]:
    words = np.frombuffer(raw.tobytes(), dtype=">u4")
    return int(words[0]), int(words[1])


class _Channel:
    """One direction of a vRPC connection: a remote region we deposit
    records into, and a local exported region we receive from."""

    def __init__(self, ep: VMMCEndpoint, local: UserBuffer, remote,
                 scratch: UserBuffer):
        self.ep = ep
        self.local = local          # exported region (we receive here)
        self.remote = remote        # ImportedBuffer (we send there)
        self.scratch = scratch      # staging for outgoing records
        self.rx_seq = 0

    def deposit(self, seq: int, record: bytes,
                bulk: UserBuffer | None = None, bulk_nbytes: int = 0):
        """Process: place a record (+ optional zero-copy bulk payload)
        into the remote region, header last."""
        ep = self.ep

        def run():
            total = len(record) + bulk_nbytes
            self.scratch.write(record)
            yield ep.send(self.scratch, self.remote.at(_DATA_OFFSET),
                          len(record))
            if bulk is not None and bulk_nbytes:
                # Bulk arguments go straight from the user's buffer —
                # VMMC's zero-copy send side.
                yield ep.send(bulk,
                              self.remote.at(_DATA_OFFSET + len(record)),
                              bulk_nbytes)
            self.scratch.write(_header(seq, total))
            yield ep.send(self.scratch, self.remote.at(0), _HEADER_BYTES)

        return ep.env.process(run(), name="vrpc.deposit")

    def await_record(self, expected_seq: int):
        """Process: spin until the next record lands; value is its bytes
        after the mandatory compatibility copy."""
        ep = self.ep

        def run():
            while True:
                watch = ep.watch(self.local, 0, _HEADER_BYTES)
                yield ep.membus.cacheline_fill()
                seq, length = _parse_header(self.local.read(0, _HEADER_BYTES))
                if seq == expected_seq:
                    break
                yield watch
            # The one copy per receive that SunRPC compatibility forces.
            yield ep.membus.bcopy(length)
            return self.local.read(_DATA_OFFSET, length).tobytes()

        return ep.env.process(run(), name="vrpc.await")


def _connect(client_ep: VMMCEndpoint, server_ep: VMMCEndpoint,
             server_node: str, client_node: str, tag: str,
             region_bytes: int):
    """Process: wire the two regions of one connection; value is the
    (client channel, server channel) pair."""
    env = client_ep.env

    def run():
        req_region = server_ep.alloc_buffer(region_bytes)
        rep_region = client_ep.alloc_buffer(region_bytes)
        yield server_ep.export(req_region, f"vrpc.req.{tag}")
        yield client_ep.export(rep_region, f"vrpc.rep.{tag}")
        to_server = yield client_ep.import_buffer(server_node,
                                                  f"vrpc.req.{tag}")
        to_client = yield server_ep.import_buffer(client_node,
                                                  f"vrpc.rep.{tag}")
        client_chan = _Channel(client_ep, rep_region, to_server,
                               client_ep.alloc_buffer(region_bytes))
        server_chan = _Channel(server_ep, req_region, to_client,
                               server_ep.alloc_buffer(region_bytes))
        return client_chan, server_chan

    return env.process(run(), name="vrpc.connect")


class VRPCServer:
    """A vRPC server endpoint serving one program."""

    def __init__(self, ep: VMMCEndpoint, node_name: str,
                 program: RPCProgram, region_bytes: int = 512 * 1024):
        self.ep = ep
        self.env = ep.env
        self.node_name = node_name
        self.program = program
        self.region_bytes = region_bytes
        self.calls_served = 0

    def accept(self, client_ep: VMMCEndpoint, client_node: str, tag: str):
        """Process: accept one client connection and start serving it;
        value is the client's :class:`_Channel`."""
        def run():
            client_chan, server_chan = yield _connect(
                client_ep, self.ep, self.node_name, client_node, tag,
                self.region_bytes)
            self.env.process(self._serve(server_chan),
                             name=f"vrpc.serve.{tag}")
            return client_chan

        return self.env.process(run(), name="vrpc.accept")

    def _serve(self, channel: _Channel):
        seq = 1
        while True:
            request = yield channel.await_record(seq)
            yield self.env.timeout(THIN_LAYER_NS + STUB_FIXED_NS)
            try:
                xid, prog, vers, proc, args = decode_call(request)
            except XdrError:
                seq += 1
                continue
            handler = (self.program.lookup(proc)
                       if (prog, vers) == (self.program.number,
                                           self.program.version) else None)
            if handler is None:
                reply = encode_reply(xid, PROC_UNAVAIL)
            else:
                result = handler(args)
                if hasattr(result, "__next__"):
                    result = yield self.env.process(result)
                reply = encode_reply(xid, SUCCESS, result)
            self.calls_served += 1
            yield self.env.timeout(THIN_LAYER_NS + STUB_FIXED_NS)
            yield channel.deposit(seq, reply)
            seq += 1


class VRPCClient:
    """A vRPC client bound to one server connection."""

    def __init__(self, channel: _Channel, prog: int, vers: int):
        self.channel = channel
        self.env = channel.ep.env
        self.prog = prog
        self.vers = vers
        self._xids = itertools.count(1)
        self._seq = itertools.count(1)

    def call(self, proc: int, args: bytes = b"",
             bulk: UserBuffer | None = None, bulk_nbytes: int = 0):
        """Process: one RPC; value is the reply's XdrDecoder.

        ``bulk`` carries large opaque arguments zero-copy from the user's
        own buffer (the stub encodes only their length).
        """
        def run():
            seq = next(self._seq)
            xid = next(self._xids)
            yield self.env.timeout(THIN_LAYER_NS + STUB_FIXED_NS)
            request = encode_call(xid, self.prog, self.vers, proc, args)
            yield self.channel.deposit(seq, request, bulk, bulk_nbytes)
            reply = yield self.channel.await_record(seq)
            yield self.env.timeout(THIN_LAYER_NS + STUB_FIXED_NS)
            reply_xid, status, dec = decode_reply(reply)
            if reply_xid != xid:
                raise RPCError("xid mismatch")
            if status != SUCCESS:
                raise RPCError(f"status {status}")
            return dec

        return self.env.process(run(), name="vrpc.call")
