"""vRPC and its SunRPC substrate (section 5.4).

vRPC is an RPC library implementing the SunRPC standard with VMMC as its
low-level network interface.  The paper's strategy: change only the
runtime library, stay wire/stub-compatible with SunRPC, re-implement the
network layer directly on VMMC, and collapse several layers into one thin
layer.  The server can talk to both old (UDP-based) and new (VMMC-based)
clients.

This package provides all three pieces from scratch:

* :mod:`xdr` — the XDR (RFC 1014) marshalling SunRPC uses;
* :mod:`sunrpc` — the SunRPC message format + a UDP/Ethernet transport
  (the commodity baseline);
* :mod:`vrpc` — the VMMC transport with its one compatibility copy on
  receive, reproducing the 66 µs round trip and the copy-limited
  ≈33 MB/s bulk bandwidth.
"""

from repro.rpc.xdr import XdrDecoder, XdrEncoder, XdrError
from repro.rpc.sunrpc import (
    RPCError,
    RPCProgram,
    SunRPCServer,
    UDPRPCClient,
)
from repro.rpc.vrpc import VRPCClient, VRPCServer

__all__ = [
    "RPCError",
    "RPCProgram",
    "SunRPCServer",
    "UDPRPCClient",
    "VRPCClient",
    "VRPCServer",
    "XdrDecoder",
    "XdrEncoder",
    "XdrError",
]
