"""XDR (RFC 1014) marshalling — the wire format of SunRPC.

A real, bit-exact implementation: big-endian 4-byte alignment, the basic
types SunRPC needs (unsigned/signed 32- and 64-bit integers, booleans,
opaque byte strings, strings, fixed and counted arrays).  vRPC keeps this
exact format for SunRPC compatibility (section 5.4: "we changed only the
runtime library ... and remain fully compatible with the existing SunRPC
implementations").
"""

from __future__ import annotations

import struct
from typing import Callable, Sequence


class XdrError(ValueError):
    """Malformed XDR data or out-of-range value."""


class XdrEncoder:
    """Builds an XDR byte stream."""

    def __init__(self):
        self._parts: list[bytes] = []

    # -- integers ------------------------------------------------------------
    def pack_uint(self, value: int) -> "XdrEncoder":
        if not 0 <= value < (1 << 32):
            raise XdrError(f"uint out of range: {value}")
        self._parts.append(struct.pack(">I", value))
        return self

    def pack_int(self, value: int) -> "XdrEncoder":
        if not -(1 << 31) <= value < (1 << 31):
            raise XdrError(f"int out of range: {value}")
        self._parts.append(struct.pack(">i", value))
        return self

    def pack_uhyper(self, value: int) -> "XdrEncoder":
        if not 0 <= value < (1 << 64):
            raise XdrError(f"uhyper out of range: {value}")
        self._parts.append(struct.pack(">Q", value))
        return self

    def pack_bool(self, value: bool) -> "XdrEncoder":
        return self.pack_uint(1 if value else 0)

    # -- byte strings -----------------------------------------------------------
    def pack_fixed_opaque(self, data: bytes) -> "XdrEncoder":
        pad = (4 - len(data) % 4) % 4
        self._parts.append(bytes(data) + b"\0" * pad)
        return self

    def pack_opaque(self, data: bytes) -> "XdrEncoder":
        self.pack_uint(len(data))
        return self.pack_fixed_opaque(data)

    def pack_string(self, text: str) -> "XdrEncoder":
        return self.pack_opaque(text.encode("utf-8"))

    # -- arrays --------------------------------------------------------------------
    def pack_array(self, items: Sequence, pack_item: Callable) -> "XdrEncoder":
        self.pack_uint(len(items))
        for item in items:
            pack_item(self, item)
        return self

    def getvalue(self) -> bytes:
        return b"".join(self._parts)

    def __len__(self) -> int:
        return sum(len(p) for p in self._parts)


class XdrDecoder:
    """Consumes an XDR byte stream."""

    def __init__(self, data: bytes):
        self._data = bytes(data)
        self._pos = 0

    def _take(self, n: int) -> bytes:
        if self._pos + n > len(self._data):
            raise XdrError(
                f"XDR underrun: need {n} bytes at {self._pos}, have "
                f"{len(self._data)}")
        out = self._data[self._pos:self._pos + n]
        self._pos += n
        return out

    # -- integers ------------------------------------------------------------
    def unpack_uint(self) -> int:
        return struct.unpack(">I", self._take(4))[0]

    def unpack_int(self) -> int:
        return struct.unpack(">i", self._take(4))[0]

    def unpack_uhyper(self) -> int:
        return struct.unpack(">Q", self._take(8))[0]

    def unpack_bool(self) -> bool:
        value = self.unpack_uint()
        if value not in (0, 1):
            raise XdrError(f"bad bool {value}")
        return bool(value)

    # -- byte strings -----------------------------------------------------------
    def unpack_fixed_opaque(self, n: int) -> bytes:
        pad = (4 - n % 4) % 4
        data = self._take(n + pad)
        return data[:n]

    def unpack_opaque(self) -> bytes:
        return self.unpack_fixed_opaque(self.unpack_uint())

    def unpack_string(self) -> str:
        return self.unpack_opaque().decode("utf-8")

    # -- arrays --------------------------------------------------------------------
    def unpack_array(self, unpack_item: Callable) -> list:
        return [unpack_item(self) for _ in range(self.unpack_uint())]

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    def done(self) -> bool:
        return self.remaining == 0
