"""SunRPC (RFC 1057) message format + the stock UDP/Ethernet transport.

This is the commodity baseline vRPC is measured against: each call crosses
the kernel socket layer, UDP/IP, the shared Ethernet segment and the whole
stack again on the far side — hundreds of microseconds per round trip
against vRPC's 66 µs.

The message format is real XDR, shared verbatim by the vRPC transport
(that is the compatibility constraint that forces vRPC's one receive-side
copy).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Optional

from repro.sim import Environment, Store
from repro.hostos.ethernet import EthernetNetwork
from repro.rpc.xdr import XdrDecoder, XdrEncoder, XdrError

CALL = 0
REPLY = 1
MSG_ACCEPTED = 0
SUCCESS = 0
PROC_UNAVAIL = 3

#: Host CPU cost of XDR marshalling per byte (walks + converts the data)
#: plus a fixed per-message cost.
MARSHAL_FIXED_NS = 3_000
MARSHAL_NS_PER_KB = 12_000  # ≈83 MB/s marshalling walk


class RPCError(RuntimeError):
    """Call failed (no such procedure, decode error...)."""


@dataclass
class RPCProgram:
    """A program: number, version, and named procedures.

    Procedures take ``(XdrDecoder) -> bytes`` — they decode their own
    arguments and return pre-encoded XDR results, exactly like rpcgen
    server stubs.
    """

    number: int
    version: int

    def __post_init__(self):
        self._procs: dict[int, Callable[[XdrDecoder], bytes]] = {}

    def register(self, proc_number: int,
                 handler: Callable[[XdrDecoder], bytes]) -> None:
        self._procs[proc_number] = handler

    def lookup(self, proc_number: int):
        return self._procs.get(proc_number)


def encode_call(xid: int, prog: int, vers: int, proc: int,
                args: bytes) -> bytes:
    enc = XdrEncoder()
    enc.pack_uint(xid).pack_uint(CALL)
    enc.pack_uint(2)            # RPC version
    enc.pack_uint(prog).pack_uint(vers).pack_uint(proc)
    enc.pack_uint(0).pack_uint(0)   # null cred
    enc.pack_uint(0).pack_uint(0)   # null verf
    return enc.getvalue() + args


def decode_call(data: bytes):
    dec = XdrDecoder(data)
    xid = dec.unpack_uint()
    if dec.unpack_uint() != CALL:
        raise XdrError("not a call")
    if dec.unpack_uint() != 2:
        raise XdrError("bad RPC version")
    prog, vers, proc = (dec.unpack_uint(), dec.unpack_uint(),
                        dec.unpack_uint())
    dec.unpack_uint(), dec.unpack_uint()   # cred
    dec.unpack_uint(), dec.unpack_uint()   # verf
    return xid, prog, vers, proc, dec


def encode_reply(xid: int, status: int, result: bytes = b"") -> bytes:
    enc = XdrEncoder()
    enc.pack_uint(xid).pack_uint(REPLY)
    enc.pack_uint(MSG_ACCEPTED)
    enc.pack_uint(0).pack_uint(0)   # null verf
    enc.pack_uint(status)
    return enc.getvalue() + result


def decode_reply(data: bytes):
    dec = XdrDecoder(data)
    xid = dec.unpack_uint()
    if dec.unpack_uint() != REPLY:
        raise XdrError("not a reply")
    if dec.unpack_uint() != MSG_ACCEPTED:
        raise XdrError("message rejected")
    dec.unpack_uint(), dec.unpack_uint()   # verf
    status = dec.unpack_uint()
    return xid, status, dec


def marshal_time_ns(nbytes: int) -> int:
    return MARSHAL_FIXED_NS + (nbytes * MARSHAL_NS_PER_KB) // 1000


class SunRPCServer:
    """The stock server loop on one node's UDP endpoint."""

    def __init__(self, env: Environment, ether: EthernetNetwork,
                 address: str, program: RPCProgram):
        self.env = env
        self.ether = ether
        self.address = address
        self.program = program
        ether.register(address)
        self.calls_served = 0
        env.process(self._serve(), name=f"sunrpc.{address}")

    def _serve(self):
        while True:
            datagram = yield self.ether.receive(self.address)
            request = datagram.payload
            yield self.env.timeout(marshal_time_ns(len(request)))
            try:
                xid, prog, vers, proc, args = decode_call(request)
            except XdrError:
                continue
            handler = (self.program.lookup(proc)
                       if (prog, vers) == (self.program.number,
                                           self.program.version) else None)
            if handler is None:
                reply = encode_reply(xid, PROC_UNAVAIL)
            else:
                result = handler(args)
                if hasattr(result, "__next__"):
                    result = yield self.env.process(result)
                reply = encode_reply(xid, SUCCESS, result)
            self.calls_served += 1
            yield self.env.timeout(marshal_time_ns(len(reply)))
            yield self.ether.send(self.address, datagram.src, reply,
                                  nbytes=len(reply))


class UDPRPCClient:
    """The stock client on one node's UDP endpoint."""

    def __init__(self, env: Environment, ether: EthernetNetwork,
                 address: str, server_address: str,
                 prog: int, vers: int):
        self.env = env
        self.ether = ether
        self.address = address
        self.server_address = server_address
        self.prog = prog
        self.vers = vers
        ether.register(address)
        self._xids = itertools.count(1)

    def call(self, proc: int, args: bytes = b""):
        """Process: one RPC; value is the result's XdrDecoder."""
        def run():
            xid = next(self._xids)
            request = encode_call(xid, self.prog, self.vers, proc, args)
            yield self.env.timeout(marshal_time_ns(len(request)))
            yield self.ether.send(self.address, self.server_address,
                                  request, nbytes=len(request))
            while True:
                datagram = yield self.ether.receive(self.address)
                yield self.env.timeout(
                    marshal_time_ns(len(datagram.payload)))
                reply_xid, status, dec = decode_reply(datagram.payload)
                if reply_xid != xid:
                    continue  # stale retransmission
                if status != SUCCESS:
                    raise RPCError(f"status {status}")
                return dec

        return self.env.process(run(), name="sunrpc.call")
