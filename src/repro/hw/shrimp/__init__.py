"""SHRIMP network-interface hardware (the paper's comparison platform).

SHRIMP attaches to the EISA bus and implements deliberate-update initiation
**in hardware**: the destination proxy space is part of the sender's
virtual address space, virtual-memory mappings verify permissions and
translate addresses, and a user process starts a transfer with just two
memory-mapped I/O instructions (section 6).  The price: a custom board, a
memory-bus snooping card, and more OS modifications (proxy mappings
maintained by the kernel, state-machine invalidation on context switch).
"""

from repro.hw.shrimp.nic import ShrimpNIC, ShrimpParams
from repro.hw.shrimp.snoop import AutomaticUpdateUnit, SnoopParams

__all__ = ["AutomaticUpdateUnit", "ShrimpNIC", "ShrimpParams",
           "SnoopParams"]
