"""The SHRIMP network interface: a hardware deliberate-update state machine.

Differences from the Myrinet/LANai interface that section 6 builds its
comparison on, all modelled here:

* **EISA** instead of PCI — slower I/O cycles, DMA limited to ≈23 MB/s.
* Send initiation is a **hardware state machine** "responding to a wide
  range of memory-mapped addresses": no queue scanning, no software
  translation — picking up a request is immediate and processing one takes
  2–3 µs (verify permissions, access the outgoing page table, build a
  packet, start sending).
* The outgoing page table is **per interface** (one, in hardware), not per
  process; protection comes from the OS-maintained proxy *mappings* in the
  sender's own address space, and the two initiation instructions are not
  atomic — the state machine must be **invalidated on context switch**.
* A send spanning N pages needs N two-instruction initiations from the
  host (vs. one posted request on Myrinet).
* The interconnect is the multicomputer backplane: faster links than the
  sender's EISA bus, so EISA is always the bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.sim import Environment, Resource, Store
from repro.sim.trace import emit
from repro.mem.physical import PhysicalMemory
from repro.mem.virtual import PAGE_SIZE
from repro.hw.bus.eisa import EISABus
from repro.hw.myrinet.link import LinkParams
from repro.hw.myrinet.network import MyrinetNetwork
from repro.hw.myrinet.packet import MyrinetPacket, PacketHeader
from repro.vmmc.pagetables import IncomingPageTable, OutgoingPageTable
from repro.hw.shrimp.snoop import AutomaticUpdateUnit


@dataclass(frozen=True)
class ShrimpParams:
    """Timing of the SHRIMP board (calibrated to section 6's statements)."""

    #: Hardware state machine: verify permissions + outgoing-table access +
    #: packet build + send start ("about 2-3 microseconds in SHRIMP").
    state_machine_ns: int = 2_000
    #: Receive-side hardware: header parse + incoming check + DMA start.
    recv_setup_ns: int = 700
    #: Interconnect: the Paragon-style backplane, 175 MB/s, short hops.
    link: LinkParams = field(
        default_factory=lambda: LinkParams(ns_per_kb=5714, latency_ns=150))
    #: Host instructions to initiate one (≤ page) deliberate update.
    initiation_writes: int = 2


class ShrimpStateMachine:
    """The send-side hardware pipeline: one request at a time."""

    def __init__(self, env: Environment, nic: "ShrimpNIC",
                 params: ShrimpParams):
        self.env = env
        self.nic = nic
        self.params = params
        self._engine = Resource(env, capacity=1)
        self.requests_processed = 0
        self.invalidations = 0

    def invalidate(self) -> None:
        """Context switch: partial two-instruction initiations must not mix
        between users (section 6)."""
        self.invalidations += 1

    def deliberate_update(self, src_paddr: int, extents, node_index: int,
                          nbytes: int, last: bool, notify: bool = False):
        """Process: one ≤page transfer; completes when the data has left
        host memory (the EISA DMA finished) — the sender-visible point."""
        def run():
            with self._engine.request() as req:
                yield req
                yield self.env.timeout(self.params.state_machine_ns)
                # Fetch the data from host memory over EISA.
                yield self.nic.bus.dma(nbytes)
                payload = self.nic.host_memory.read(src_paddr, nbytes)
                packet = MyrinetPacket(
                    list(self.nic.routes[node_index]),
                    PacketHeader("shrimp_du", {
                        "extents": tuple(extents),
                        "length": nbytes,
                        "last": last,
                        "notify": notify,
                        "src_node": self.nic.node_index,
                    }),
                    payload)
                packet.seal()
                self.requests_processed += 1
                emit(self.env, "shrimp.sm.send", nbytes=nbytes)
                # The backplane injection proceeds in hardware; don't hold
                # the state machine for the wire time.
                self.env.process(self._inject(packet), name="shrimp.inject")

        return self.env.process(run(), name="shrimp.sm")

    def _inject(self, packet: MyrinetPacket):
        yield self.nic.network.inject(self.nic.host_name, packet)


class ShrimpNIC:
    """One SHRIMP board: EISA interface + state machine + receive engine."""

    def __init__(self, env: Environment, network: MyrinetNetwork,
                 host_name: str, node_index: int, bus: EISABus,
                 host_memory: PhysicalMemory,
                 params: ShrimpParams | None = None):
        self.env = env
        self.network = network
        self.host_name = host_name
        self.node_index = node_index
        self.bus = bus
        self.host_memory = host_memory
        self.params = params or ShrimpParams()
        #: One outgoing page table per *interface* (hardware), keyed by the
        #: sender's proxy page — OS mappings provide per-process protection.
        self.outgoing = OutgoingPageTable(pid=-1)
        self.incoming = IncomingPageTable(host_memory.nframes)
        self.routes: dict[int, list[int]] = {}
        self.state_machine = ShrimpStateMachine(env, self, self.params)
        #: The memory-bus snooping card (automatic update, footnote 3).
        self.au = AutomaticUpdateUnit(env, self)
        self.packets_delivered = 0
        self.protection_violations = 0
        network.attach_host_sink(host_name, self._receive)

    def install_routes(self, routes: dict[int, list[int]]) -> None:
        self.routes = dict(routes)

    # -- receive side (hardware) ------------------------------------------------
    def _receive(self, packet: MyrinetPacket):
        yield self.env.timeout(self.params.recv_setup_ns)
        if not packet.crc_ok():
            emit(self.env, "shrimp.recv.crc_drop")
            return
        extents = list(packet.header["extents"])
        for paddr, length in extents:
            if length == 0:
                continue
            first = paddr // PAGE_SIZE
            last = (paddr + length - 1) // PAGE_SIZE
            if any(not self.incoming.writable(f)
                   for f in range(first, last + 1)):
                self.protection_violations += 1
                return
        # DMA into pinned receive buffers over this node's EISA bus.
        offset = 0
        for paddr, length in extents:
            if length == 0:
                continue
            yield self.bus.dma(length)
            self.host_memory.view(paddr, length)[:] = \
                packet.payload[offset:offset + length]
            self.host_memory.notify_write(paddr, length)
            offset += length
        self.packets_delivered += 1
        emit(self.env, "shrimp.recv.delivered", nbytes=packet.payload_bytes)
