"""SHRIMP automatic update: the memory-bus snooping transfer mode.

Footnote 3 of the paper: "SHRIMP supports besides deliberate update
another mode of transfer, called automatic update which snoops writes
directly from the memory bus and sends [them] to a destination node."
The section-6 comparison deliberately excludes it (Myrinet cannot snoop),
which makes it the natural *extension* feature of this reproduction.

Model: an :class:`AutomaticUpdateUnit` holds a snoop table mapping local
physical pages to (destination node, destination page).  Writes to mapped
pages are captured **off the memory bus** — the data never crosses the
EISA bus on the send side and the sending CPU executes *zero* extra
instructions.  Captured writes are coalesced in a small outgoing queue
(the real hardware had a proxy-write FIFO) and injected as packets by a
hardware pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim import Environment, Store
from repro.sim.trace import emit
from repro.mem.virtual import PAGE_SIZE
from repro.hw.myrinet.packet import MyrinetPacket, PacketHeader


@dataclass(frozen=True)
class SnoopParams:
    """Timing of the snooping hardware."""

    #: Capturing one write burst off the memory bus (pipeline stage).
    capture_ns: int = 150
    #: Building + injecting one update packet.
    inject_ns: int = 900
    #: Coalescing window: captured writes to adjacent addresses within
    #: this time are merged into one packet.
    coalesce_window_ns: int = 500
    #: FIFO depth (captured-but-not-injected writes); overflow stalls the
    #: writing CPU, exactly like the real proxy-write FIFO.
    fifo_depth: int = 32


@dataclass
class _CapturedWrite:
    dest_node: int
    dest_paddr: int
    data: np.ndarray
    captured_at: int


class AutomaticUpdateUnit:
    """The snooping side-car on a SHRIMP node's memory bus."""

    def __init__(self, env: Environment, nic, params: SnoopParams | None = None):
        self.env = env
        self.nic = nic
        self.params = params or SnoopParams()
        #: local physical page → (dest node index, dest physical page).
        self._table: dict[int, tuple[int, int]] = {}
        self._fifo: Store = Store(env, capacity=self.params.fifo_depth)
        self.writes_captured = 0
        self.packets_injected = 0
        self.coalesced = 0
        env.process(self._pipeline(), name=f"{nic.host_name}.au")

    # -- mapping management (set up by the OS on au-import) -------------------
    def map_page(self, local_page: int, dest_node: int,
                 dest_page: int) -> None:
        self._table[local_page] = (dest_node, dest_page)

    def unmap_page(self, local_page: int) -> None:
        self._table.pop(local_page, None)

    @property
    def mapped_pages(self) -> int:
        return len(self._table)

    # -- the snoop itself -----------------------------------------------------------
    def snoop(self, paddr: int, data: np.ndarray):
        """Process: a write of ``data`` at ``paddr`` appeared on the memory
        bus.  If the page is mapped, capture it (may stall on FIFO-full,
        back-pressuring the writing CPU)."""
        def run():
            offset = 0
            size = int(np.asarray(data).size)
            while offset < size:
                page = (paddr + offset) // PAGE_SIZE
                mapping = self._table.get(page)
                chunk = min(size - offset,
                            PAGE_SIZE - (paddr + offset) % PAGE_SIZE)
                if mapping is not None:
                    dest_node, dest_page = mapping
                    dest_paddr = dest_page * PAGE_SIZE \
                        + (paddr + offset) % PAGE_SIZE
                    yield self.env.timeout(self.params.capture_ns)
                    yield self._fifo.put(_CapturedWrite(
                        dest_node=dest_node, dest_paddr=dest_paddr,
                        data=np.asarray(data[offset:offset + chunk],
                                        dtype=np.uint8).copy(),
                        captured_at=self.env.now))
                    self.writes_captured += 1
                offset += chunk

        return self.env.process(run(), name="au.snoop")

    def _pipeline(self):
        """Drain the FIFO: coalesce adjacent captures, inject packets."""
        while True:
            first = yield self._fifo.get()
            batch = [first]
            # Coalesce: absorb immediately-following contiguous captures.
            while len(self._fifo):
                nxt = self._fifo.items[0]
                last = batch[-1]
                contiguous = (
                    nxt.dest_node == last.dest_node
                    and nxt.dest_paddr == last.dest_paddr + last.data.size
                    and nxt.captured_at - first.captured_at
                    <= self.params.coalesce_window_ns)
                if not contiguous:
                    break
                batch.append((yield self._fifo.get()))
                self.coalesced += 1
            payload = np.concatenate([w.data for w in batch])
            yield self.env.timeout(self.params.inject_ns)
            packet = MyrinetPacket(
                list(self.nic.routes[first.dest_node]),
                PacketHeader("shrimp_au", {
                    "extents": ((first.dest_paddr, int(payload.size)),),
                    "length": int(payload.size),
                    "last": True,
                    "notify": False,
                    "src_node": self.nic.node_index,
                }),
                payload)
            packet.seal()
            self.packets_injected += 1
            emit(self.env, "shrimp.au.inject", nbytes=int(payload.size),
                 coalesced=len(batch))
            yield self.nic.network.inject(self.nic.host_name, packet)
