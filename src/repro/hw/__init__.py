"""Hardware models: buses, the Myrinet fabric, the LANai NIC, SHRIMP.

Everything in this package charges **time** (integer nanoseconds) through
the discrete-event engine and moves **real bytes** (numpy arrays) between
byte-accurate memories, so both performance shape and data integrity are
simulated, not asserted.
"""
