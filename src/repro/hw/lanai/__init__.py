"""LANai 4.1 network-interface hardware (paper section 3).

The Myrinet PCI interface (M2F-PCI32) comprises:

* a 33 MHz LANai control processor running the LANai Control Program,
* 256 KB of SRAM holding the LCP's code/data, send queues, page tables,
  the software TLB and packet staging buffers,
* three DMA engines — host↔SRAM over PCI, SRAM→network, network→SRAM —
  on an internal bus clocked at 2× the CPU so the two network engines can
  run concurrently with the processor.

The LCP itself is *software* and lives in :mod:`repro.vmmc.lcp`; this
package is the hardware it runs on.
"""

from repro.hw.lanai.sram import SRAM, SRAMExhausted, SRAMRegion
from repro.hw.lanai.processor import LANaiProcessor
from repro.hw.lanai.dma import HostDMAEngine, NetRecvEngine, NetSendEngine
from repro.hw.lanai.nic import LanaiNIC

__all__ = [
    "HostDMAEngine",
    "LANaiProcessor",
    "LanaiNIC",
    "NetRecvEngine",
    "NetSendEngine",
    "SRAM",
    "SRAMExhausted",
    "SRAMRegion",
]
