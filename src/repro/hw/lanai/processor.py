"""LANai processor: a 33 MHz control CPU whose time we account in cycles.

Every step of the LANai Control Program charges cycles here.  The paper's
section-6 comparison hinges on these costs: "virtual-to-physical
translation and header preparation is done by the LANai in software",
making Myrinet send initiation at least twice SHRIMP's 2–3 µs.

The processor is *single threaded* — the LCP is one big loop — which is
modelled naturally by running the whole LCP as a single simulation process
that yields :meth:`cycles` charges.  The internal bus runs at 2× the CPU
clock, letting the DMA engines move data concurrently with the processor;
hence DMA engines do not contend with :meth:`cycles` time.
"""

from __future__ import annotations

from repro.sim import Environment
from repro.obs.metrics import count

#: 33 MHz → one cycle ≈ 30 ns.
CYCLE_NS = 30


class LANaiProcessor:
    """Cycle-time accounting for the LANai control processor."""

    def __init__(self, env: Environment, cycle_ns: int = CYCLE_NS):
        self.env = env
        self.cycle_ns = cycle_ns
        self.cycles_charged = 0
        #: Fault hook: absolute sim time until which the processor is
        #: frozen (clock-stop / firmware-hang injection).
        self._stall_until = 0
        self.stall_ns_served = 0

    def stall(self, duration_ns: int) -> None:
        """Freeze the processor for ``duration_ns`` (fault injection).

        The next :meth:`cycles` charge is delayed until the stall window
        has passed — the whole LCP pauses, since it is one process whose
        every step funnels through this accounting.  Overlapping stalls
        extend, never shorten.
        """
        if duration_ns < 0:
            raise ValueError("negative stall duration")
        count(self.env, "lanai.stalls")
        count(self.env, "lanai.stall_ns", duration_ns)
        self._stall_until = max(self._stall_until,
                                self.env.now + duration_ns)

    def cycles(self, n: int):
        """Timeout event worth ``n`` processor cycles (plus any pending
        injected stall time)."""
        self.cycles_charged += n
        duration = n * self.cycle_ns
        if self._stall_until > self.env.now:
            extra = self._stall_until - self.env.now
            self.stall_ns_served += extra
            duration += extra
        return self.env.timeout(duration)

    def work_ns(self, ns: int):
        """Timeout event for ``ns`` nanoseconds of firmware work, rounded
        up to whole cycles."""
        n = max(1, (ns + self.cycle_ns - 1) // self.cycle_ns)
        return self.cycles(n)

    @property
    def busy_time_ns(self) -> int:
        """Total firmware time charged so far."""
        return self.cycles_charged * self.cycle_ns
