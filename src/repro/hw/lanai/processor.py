"""LANai processor: a 33 MHz control CPU whose time we account in cycles.

Every step of the LANai Control Program charges cycles here.  The paper's
section-6 comparison hinges on these costs: "virtual-to-physical
translation and header preparation is done by the LANai in software",
making Myrinet send initiation at least twice SHRIMP's 2–3 µs.

The processor is *single threaded* — the LCP is one big loop — which is
modelled naturally by running the whole LCP as a single simulation process
that yields :meth:`cycles` charges.  The internal bus runs at 2× the CPU
clock, letting the DMA engines move data concurrently with the processor;
hence DMA engines do not contend with :meth:`cycles` time.
"""

from __future__ import annotations

from repro.sim import Environment

#: 33 MHz → one cycle ≈ 30 ns.
CYCLE_NS = 30


class LANaiProcessor:
    """Cycle-time accounting for the LANai control processor."""

    def __init__(self, env: Environment, cycle_ns: int = CYCLE_NS):
        self.env = env
        self.cycle_ns = cycle_ns
        self.cycles_charged = 0

    def cycles(self, n: int):
        """Timeout event worth ``n`` processor cycles."""
        self.cycles_charged += n
        return self.env.timeout(n * self.cycle_ns)

    def work_ns(self, ns: int):
        """Timeout event for ``ns`` nanoseconds of firmware work, rounded
        up to whole cycles."""
        n = max(1, (ns + self.cycle_ns - 1) // self.cycle_ns)
        return self.cycles(n)

    @property
    def busy_time_ns(self) -> int:
        """Total firmware time charged so far."""
        return self.cycles_charged * self.cycle_ns
