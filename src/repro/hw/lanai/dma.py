"""The three DMA engines on the Myrinet PCI interface (paper section 3).

* :class:`HostDMAEngine` — moves bytes between host main memory (by
  physical address) and LANai SRAM across the PCI bus.  This is the
  bandwidth bottleneck of the whole system (Figure 1): with virtual memory
  forcing ≤4 KB transfer units it sustains ≈100 MB/s.
* :class:`NetSendEngine` — streams a packet from SRAM onto the outgoing
  link at 160 MB/s.
* :class:`NetRecvEngine` — receives packets from the link into SRAM
  staging buffers and queues their descriptors for the LCP.

Each engine serialises its own transfers (capacity-1 resource) but the
three engines run concurrently — the internal bus is clocked at twice the
processor, "letting the two DMA engines operate concurrently".
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.sim import Environment, Resource, Store
from repro.sim.trace import emit
from repro.obs.metrics import count, set_gauge
from repro.mem.physical import PhysicalMemory
from repro.hw.bus.pci import PCIBus
from repro.hw.lanai.sram import SRAM
from repro.hw.myrinet.network import MyrinetNetwork
from repro.hw.myrinet.packet import MyrinetPacket


class HostDMAEngine:
    """Host-memory ↔ SRAM DMA over the PCI bus.

    The LANai cannot touch host memory directly; every access goes through
    this engine (paper section 3).  Transfers move real bytes.
    """

    def __init__(self, env: Environment, bus: PCIBus,
                 host_memory: PhysicalMemory, sram: SRAM,
                 name: str = "lanai"):
        self.env = env
        self.bus = bus
        self.host_memory = host_memory
        self.sram = sram
        self.name = name
        self._engine = Resource(env, capacity=1)
        self.bytes_to_sram = 0
        self.bytes_to_host = 0

    def to_sram(self, paddr: int, sram_addr: int, nbytes: int):
        """Process: DMA ``nbytes`` host→SRAM; fires when data is in SRAM."""
        def run():
            set_gauge(self.env, "hostdma.queue_depth",
                      self._engine.queue_length, nic=self.name)
            with self._engine.request() as req:
                yield req
                yield self.bus.dma(nbytes)
                self.sram.view(sram_addr, nbytes)[:] = \
                    self.host_memory.view(paddr, nbytes)
                self.bytes_to_sram += nbytes
                count(self.env, "hostdma.bytes", nbytes,
                      nic=self.name, dir="to_sram")
                emit(self.env, f"{self.name}.hostdma.to_sram",
                     paddr=paddr, nbytes=nbytes)

        return self.env.process(run(), name="hostdma.to_sram")

    def to_host(self, sram_addr: int, paddr: int, nbytes: int):
        """Process: DMA ``nbytes`` SRAM→host memory."""
        def run():
            with self._engine.request() as req:
                yield req
                yield self.bus.dma(nbytes)
                self.host_memory.view(paddr, nbytes)[:] = \
                    self.sram.view(sram_addr, nbytes)
                self.host_memory.notify_write(paddr, nbytes)
                self.bytes_to_host += nbytes
                count(self.env, "hostdma.bytes", nbytes,
                      nic=self.name, dir="to_host")
                emit(self.env, f"{self.name}.hostdma.to_host",
                     paddr=paddr, nbytes=nbytes)

        return self.env.process(run(), name="hostdma.to_host")

    def write_host(self, data: np.ndarray, paddr: int):
        """Process: DMA the given bytes (already staged in SRAM by the
        receive engine) to host memory at ``paddr``."""
        payload = np.asarray(data, dtype=np.uint8)

        def run():
            set_gauge(self.env, "hostdma.queue_depth",
                      self._engine.queue_length, nic=self.name)
            with self._engine.request() as req:
                yield req
                yield self.bus.dma(int(payload.size))
                self.host_memory.view(paddr, int(payload.size))[:] = payload
                self.host_memory.notify_write(paddr, int(payload.size))
                self.bytes_to_host += int(payload.size)
                count(self.env, "hostdma.bytes", int(payload.size),
                      nic=self.name, dir="to_host")
                emit(self.env, f"{self.name}.hostdma.write_host",
                     paddr=paddr, nbytes=int(payload.size))

        return self.env.process(run(), name="hostdma.write_host")

    def write_host_scatter(self, data: np.ndarray,
                           extents: list[tuple[int, int]]):
        """Process: deliver staged receive data to up to two physical
        extents — the section-4.5 two-piece scatter."""
        payload = np.asarray(data, dtype=np.uint8)

        def run():
            offset = 0
            for paddr, length in extents:
                if length == 0:
                    continue
                yield self.write_host(payload[offset:offset + length], paddr)
                offset += length

        return self.env.process(run(), name="hostdma.write_scatter")

    def scatter_to_host(self, sram_addr: int,
                        extents: list[tuple[int, int]]):
        """Process: write SRAM bytes to up to two physical extents.

        This is the receive-side "two piece scatter" of section 4.5 — a
        message landing across a page boundary is written with two DMA
        transactions, addresses taken from the packet header.
        """
        def run():
            offset = 0
            for paddr, length in extents:
                if length == 0:
                    continue
                yield self.to_host(sram_addr + offset, paddr, length)
                offset += length

        return self.env.process(run(), name="hostdma.scatter")

    @property
    def queue_length(self) -> int:
        return self._engine.queue_length


class NetSendEngine:
    """SRAM → network DMA: injects sealed packets onto the host's cable."""

    def __init__(self, env: Environment, network: MyrinetNetwork,
                 host_name: str):
        self.env = env
        self.network = network
        self.host_name = host_name
        self._engine = Resource(env, capacity=1)
        self.packets_sent = 0

    def send(self, packet: MyrinetPacket):
        """Process: seal (hardware CRC) and transmit one packet.

        Completes when the packet's tail has left the NIC — the point at
        which the SRAM staging buffer is reusable.
        """
        def run():
            with self._engine.request() as req:
                yield req
                packet.seal()
                yield self.network.inject(self.host_name, packet)
                self.packets_sent += 1
                count(self.env, "net.packets", nic=self.host_name, dir="tx")
                emit(self.env, "lanai.netsend", nic=self.host_name,
                     nbytes=packet.payload_bytes)

        return self.env.process(run(), name="netsend")


class NetRecvEngine:
    """Network → SRAM DMA: the host sink registered with the fabric.

    Arriving packets have their CRC checked by hardware; good or bad, a
    descriptor is queued for the LCP (bad CRC sets a flag — the LCP
    reports it and drops, matching the no-recovery policy of section 4.2).
    """

    def __init__(self, env: Environment, network: MyrinetNetwork,
                 host_name: str, sram: SRAM,
                 staging_region_name: str = "recv_staging"):
        self.env = env
        self.sram = sram
        self.host_name = host_name
        self.inbox: Store = Store(env)
        self.packets_received = 0
        self.crc_errors = 0
        #: Optional hook invoked on every arrival (the LCP's wakeup line).
        self.on_arrival = None
        network.attach_host_sink(host_name, self._on_packet)

    def _on_packet(self, packet: MyrinetPacket):
        ok = packet.crc_ok()
        if not ok:
            self.crc_errors += 1
            count(self.env, "net.crc_errors", nic=self.host_name)
        self.packets_received += 1
        count(self.env, "net.packets", nic=self.host_name, dir="rx")
        emit(self.env, "lanai.netrecv", nic=self.host_name,
             nbytes=packet.payload_bytes, ok=ok)
        packet.meta["crc_ok"] = ok
        self.inbox.put(packet)
        if self.on_arrival is not None:
            self.on_arrival()

    def pending(self) -> int:
        """Packets waiting for the LCP — polled by the main loop."""
        return len(self.inbox)
