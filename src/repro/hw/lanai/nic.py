"""The assembled Myrinet PCI network interface (M2F-PCI32).

:class:`LanaiNIC` wires the SRAM, processor and three DMA engines together
and exposes the two host-visible surfaces:

* the **MMIO window** — the host reads/writes LANai SRAM with programmed
  I/O across the PCI bus (this is how send requests are posted and how
  short-message data is copied into the send queue), and
* the **interrupt line** — the LCP raises host interrupts (software-TLB
  miss, notification delivery), dispatched to the registered driver.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim import Environment
from repro.sim.trace import emit
from repro.mem.physical import PhysicalMemory
from repro.hw.bus.pci import PCIBus
from repro.hw.lanai.dma import HostDMAEngine, NetRecvEngine, NetSendEngine
from repro.hw.lanai.processor import LANaiProcessor
from repro.hw.lanai.sram import SRAM
from repro.hw.myrinet.network import MyrinetNetwork


class LanaiNIC:
    """One Myrinet PCI interface installed in one host."""

    def __init__(self, env: Environment, network: MyrinetNetwork,
                 host_name: str, bus: PCIBus, host_memory: PhysicalMemory):
        self.env = env
        self.host_name = host_name
        self.bus = bus
        self.sram = SRAM()
        self.processor = LANaiProcessor(env)
        self.host_dma = HostDMAEngine(env, bus, host_memory,
                                      self.sram, name=host_name)
        self.net_send = NetSendEngine(env, network, host_name)
        self.net_recv = NetRecvEngine(env, network, host_name, self.sram)
        self._interrupt_handler: Optional[Callable[[str, Any], Any]] = None
        self.interrupts_raised = 0

    # -- host-side MMIO access to SRAM ---------------------------------------
    def host_write_sram(self, addr: int, payload, words: int | None = None):
        """Process: host writes ``payload`` into SRAM via programmed I/O.

        Cost: one posted PCI write per 32-bit word (section 5.2's
        0.121 µs each).  The byte payload lands in SRAM when the last
        write completes.
        """
        data = bytes(payload)
        nwords = words if words is not None else max(1, (len(data) + 3) // 4)

        def run():
            yield self.bus.mmio_write(nwords)
            self.sram.write(addr, data)
            emit(self.env, "nic.host_write_sram", addr=addr,
                 nbytes=len(data))

        return self.env.process(run(), name="nic.host_write_sram")

    def host_read_sram(self, addr: int, nbytes: int):
        """Process: host reads SRAM via programmed I/O (0.422 µs/word);
        the process's value is the bytes read."""
        nwords = max(1, (nbytes + 3) // 4)

        def run():
            yield self.bus.mmio_read(nwords)
            return self.sram.read(addr, nbytes)

        return self.env.process(run(), name="nic.host_read_sram")

    # -- interrupt line ----------------------------------------------------------
    def set_interrupt_handler(self,
                              handler: Callable[[str, Any], Any]) -> None:
        """The driver registers its IRQ entry point here."""
        self._interrupt_handler = handler

    def raise_interrupt(self, reason: str, payload: Any = None):
        """Process: assert the PCI interrupt line; completes when the host
        driver has serviced it (the LCP blocks on TLB-miss service)."""
        if self._interrupt_handler is None:
            raise RuntimeError(
                f"{self.host_name}: interrupt with no driver attached")
        self.interrupts_raised += 1
        emit(self.env, "nic.interrupt", reason=reason)

        def run():
            from repro.sim import Event

            result = self._interrupt_handler(reason, payload)
            if hasattr(result, "__next__"):
                result = yield self.env.process(result)
            elif isinstance(result, Event):
                result = yield result
            return result

        return self.env.process(run(), name=f"nic.irq.{reason}")

    # -- resource accounting (section 6 tradeoffs) ------------------------------
    def sram_usage(self) -> dict[str, int]:
        return self.sram.usage_report()
