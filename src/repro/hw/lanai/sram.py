"""LANai on-board SRAM: 256 KB of byte-accurate storage with named regions.

SRAM is the scarce resource the section-6 tradeoff discussion is about:
the VMMC LCP must fit its code and data, one send queue **per process**,
one outgoing page table **per process**, a software TLB **per process**
(up to 8 MB of reach each!), the incoming page table, routing tables and
packet staging buffers into 256 KB.  The allocator therefore tracks every
region by name so the resource accounting the paper argues from can be
reported (see :meth:`SRAM.usage_report`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: M2F-PCI32 carries 256 KB of SRAM (paper section 3).
SRAM_SIZE = 256 * 1024


class SRAMExhausted(MemoryError):
    """The 256 KB of on-board SRAM is over-committed."""


@dataclass
class SRAMRegion:
    """A named allocation inside the SRAM."""

    name: str
    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size


class SRAM:
    """Byte-accurate SRAM with a named-region allocator."""

    def __init__(self, size: int = SRAM_SIZE):
        self.size = size
        self.data = np.zeros(size, dtype=np.uint8)
        self.regions: dict[str, SRAMRegion] = {}
        self._cursor = 0

    # -- allocation ---------------------------------------------------------
    def alloc(self, name: str, size: int) -> SRAMRegion:
        """Allocate a named region; raises :class:`SRAMExhausted` if full."""
        if name in self.regions:
            raise ValueError(f"SRAM region {name!r} already exists")
        if size <= 0:
            raise ValueError("region size must be positive")
        if self._cursor + size > self.size:
            raise SRAMExhausted(
                f"SRAM overflow allocating {name!r}: need {size} bytes, "
                f"{self.size - self._cursor} free of {self.size}")
        region = SRAMRegion(name, self._cursor, size)
        self._cursor += size
        self.regions[name] = region
        return region

    def free(self, name: str) -> None:
        """Release a region's accounting (space is not compacted — the real
        LCP never frees SRAM at runtime either; this exists for process
        teardown bookkeeping)."""
        self.regions.pop(name)

    @property
    def used(self) -> int:
        return sum(r.size for r in self.regions.values())

    @property
    def free_bytes(self) -> int:
        return self.size - self._cursor

    def usage_report(self) -> dict[str, int]:
        """Bytes per region name — the NIC-resource accounting of section 6."""
        return {r.name: r.size for r in
                sorted(self.regions.values(), key=lambda r: r.base)}

    # -- data access ------------------------------------------------------------
    def read(self, addr: int, nbytes: int) -> np.ndarray:
        self._check(addr, nbytes)
        return self.data[addr:addr + nbytes].copy()

    def write(self, addr: int, payload: np.ndarray | bytes) -> None:
        buf = np.frombuffer(bytes(payload), dtype=np.uint8) \
            if isinstance(payload, (bytes, bytearray)) \
            else np.asarray(payload, dtype=np.uint8)
        self._check(addr, len(buf))
        self.data[addr:addr + len(buf)] = buf

    def view(self, addr: int, nbytes: int) -> np.ndarray:
        """Mutable no-copy view (used by DMA engines)."""
        self._check(addr, nbytes)
        return self.data[addr:addr + nbytes]

    def _check(self, addr: int, nbytes: int) -> None:
        if addr < 0 or addr + nbytes > self.size:
            raise ValueError(
                f"SRAM access [{addr}, {addr + nbytes}) out of range")
