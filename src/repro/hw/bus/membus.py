"""Host memory-bus / memory-copy cost model.

Section 5.4 measures ``bcopy`` bandwidth in the vRPC library "in the range
of 50 MBytes/sec depending on the size of the data copied" on the P166 EDO
testbed.  Copies that fit in the 512 KB L2 cache run a little faster than
copies that stream through DRAM, so we model a two-regime rate with a small
fixed call overhead.

The same model provides the per-word cost of touching user data (used by
protocols that compute checksums or marshal arguments) and the cache-line
fill charged when a spinning receiver finally observes the DMA'd
completion word.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim import Environment


@dataclass(frozen=True)
class MemoryBusParams:
    """Host memory-copy cost parameters (defaults: P166, EDO DRAM)."""

    #: Fixed function-call + loop-setup overhead of a bcopy.
    copy_setup_ns: int = 150
    #: Copies within L2 reach (≤ threshold) — warm rate, ≈55 MB/s.
    cache_threshold_bytes: int = 64 * 1024
    warm_ns_per_kb: int = 18182   # ≈55 MB/s
    #: Streaming copies through DRAM — ≈45 MB/s.
    cold_ns_per_kb: int = 22222   # ≈45 MB/s
    #: Cost of one cache-line fill (spinner observing a DMA'd word).
    cacheline_fill_ns: int = 120

    def bcopy_ns(self, nbytes: int) -> int:
        """Duration of copying ``nbytes`` host-memory to host-memory."""
        if nbytes <= 0:
            return 0
        rate = (self.warm_ns_per_kb
                if nbytes <= self.cache_threshold_bytes
                else self.cold_ns_per_kb)
        return self.copy_setup_ns + (nbytes * rate) // 1000

    def bcopy_bandwidth_mbps(self, nbytes: int) -> float:
        t = self.bcopy_ns(nbytes)
        return nbytes / t * 1000.0 if t else 0.0


class MemoryBus:
    """Charges memory-copy time; the actual byte movement is done by the
    caller against :class:`~repro.mem.physical.PhysicalMemory`."""

    def __init__(self, env: Environment, params: MemoryBusParams | None = None):
        self.env = env
        self.params = params or MemoryBusParams()

    def bcopy(self, nbytes: int):
        """Process: charge the time of one host-side memory copy."""
        duration = self.params.bcopy_ns(nbytes)

        def run():
            yield self.env.timeout(duration)

        return self.env.process(run(), name="membus.bcopy")

    def cacheline_fill(self):
        """Process: charge one cache-line fill."""
        def run():
            yield self.env.timeout(self.params.cacheline_fill_ns)

        return self.env.process(run(), name="membus.fill")
