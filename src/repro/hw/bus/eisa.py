"""EISA bus model for the SHRIMP network interface comparison (section 6).

SHRIMP attaches to the EISA bus; the paper states its VMMC delivers
user-to-user bandwidth equal to the achievable hardware limit of 23 MB/s,
and that a deliberate-update send is initiated with just **two**
memory-mapped I/O instructions.  EISA I/O cycles are slower than PCI's but
the hardware state machine makes up for it — one-word latency ≈7 µs versus
9.8 µs on Myrinet despite the slower bus.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim import Environment, Resource
from repro.sim.trace import emit
from repro.obs.metrics import count, observe, set_gauge


@dataclass(frozen=True)
class EISAParams:
    """Timing parameters for the EISA bus (SHRIMP node)."""

    #: An EISA I/O write (slower than PCI's 0.121 µs posted write).
    mmio_write_ns: int = 500
    #: An EISA I/O read.
    mmio_read_ns: int = 900
    #: DMA: fixed setup (arbitration + address phase).
    dma_setup_ns: int = 700
    #: Sustained EISA burst rate ≈ 24 MB/s raw; 23 MB/s is the achievable
    #: user-level limit the paper quotes.
    dma_ns_per_kb: int = 42000  # ≈23.8 MB/s marginal

    def dma_time_ns(self, nbytes: int) -> int:
        if nbytes <= 0:
            return 0
        return self.dma_setup_ns + (nbytes * self.dma_ns_per_kb) // 1000

    def dma_bandwidth_mbps(self, nbytes: int) -> float:
        t = self.dma_time_ns(nbytes)
        return nbytes / t * 1000.0 if t else 0.0


class EISABus:
    """Shared EISA bus: same interface as :class:`~repro.hw.bus.pci.PCIBus`."""

    def __init__(self, env: Environment, params: EISAParams | None = None,
                 name: str = "eisa"):
        self.env = env
        self.params = params or EISAParams()
        self.name = name
        self._arbiter = Resource(env, capacity=1)

    def mmio_read(self, words: int = 1):
        return self._pio(self.params.mmio_read_ns, words, "read")

    def mmio_write(self, words: int = 1):
        return self._pio(self.params.mmio_write_ns, words, "write")

    def _pio(self, cost_ns: int, words: int, kind: str):
        def run():
            with self._arbiter.request() as req:
                yield req
                emit(self.env, f"{self.name}.pio.{kind}", words=words)
                count(self.env, "bus.pio.words", words,
                      bus=self.name, kind=kind)
                yield self.env.timeout(cost_ns * words)

        return self.env.process(run(), name=f"{self.name}.pio.{kind}")

    def dma(self, nbytes: int, priority: int = 0):
        duration = self.params.dma_time_ns(nbytes)

        def run():
            set_gauge(self.env, "bus.dma.queue_depth",
                      self._arbiter.queue_length, bus=self.name)
            with self._arbiter.request(priority=priority) as req:
                yield req
                emit(self.env, f"{self.name}.dma", nbytes=nbytes,
                     duration=duration)
                count(self.env, "bus.dma.transactions", bus=self.name)
                count(self.env, "bus.dma.bytes", nbytes, bus=self.name)
                observe(self.env, "bus.dma.duration_ns", duration,
                        bus=self.name)
                yield self.env.timeout(duration)

        return self.env.process(run(), name=f"{self.name}.dma")
