"""PCI bus model calibrated to the paper's measurements (section 5.2).

Measured anchors on the Dell Dimension P166 / Intel 430FX testbed:

* memory-mapped I/O **read** across PCI: 0.422 µs
* memory-mapped I/O **write** across PCI: 0.121 µs (posted write)
* host↔LANai DMA of a one-word message: ≈2 µs including arbitration
  (receive-side budget in section 5.2)
* host↔LANai DMA bandwidth: ≈100 MB/s at 4 KB transfer units and
  ≈128 MB/s at 64 KB units (Figure 1)

A single ``setup + size/rate`` law cannot satisfy all four anchors because
the marginal byte rate *improves* with transfer size (longer PCI bursts
amortise address phases, and the LANai's internal bus interleaves better on
long streams).  We therefore use a two-slope law::

    t(size) = setup + min(size, knee)/rate_small + max(0, size-knee)/rate_large

with ``knee`` = one page.  Fitted to the anchors this gives ≈2 µs for tiny
transfers, exactly 100 MB/s at 4 KB and exactly 128 MB/s at 64 KB, with the
monotonically rising curve of Figure 1 in between.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim import Environment, Resource
from repro.sim.trace import emit
from repro.obs.metrics import count, observe, set_gauge


@dataclass(frozen=True)
class PCIParams:
    """Timing parameters for one PCI bus (defaults: paper testbed)."""

    #: Programmed-I/O read across the bus (paper: 0.422 µs).
    mmio_read_ns: int = 422
    #: Programmed-I/O (posted) write across the bus (paper: 0.121 µs).
    mmio_write_ns: int = 121
    #: Fixed DMA cost: arbitration + engine start + first data phase.
    dma_setup_ns: int = 2000
    #: Two-slope DMA law: bytes up to ``dma_knee_bytes`` move at the small
    #: rate, bytes beyond at the large rate (both in ns per byte, scaled
    #: by 1000 to stay integral: ns per 1000 bytes).
    dma_knee_bytes: int = 4096
    dma_small_ns_per_kb: int = 9521   # ≈105 MB/s marginal
    dma_large_ns_per_kb: int = 7667   # ≈130 MB/s marginal

    def dma_time_ns(self, nbytes: int) -> int:
        """Duration of one DMA transaction of ``nbytes``."""
        if nbytes <= 0:
            return 0
        small = min(nbytes, self.dma_knee_bytes)
        large = max(0, nbytes - self.dma_knee_bytes)
        return (self.dma_setup_ns
                + (small * self.dma_small_ns_per_kb) // 1000
                + (large * self.dma_large_ns_per_kb) // 1000)

    def dma_bandwidth_mbps(self, nbytes: int) -> float:
        """Effective bandwidth (MB/s) of one transaction — Figure 1's y-axis."""
        t = self.dma_time_ns(nbytes)
        return nbytes / t * 1000.0 if t else 0.0


class PCIBus:
    """A shared PCI bus: MMIO accesses and DMA bursts contend for it.

    The bus is a capacity-1 resource.  DMA engines hold it for whole
    transactions (the 430FX gives the busmaster long bursts); PIO accesses
    queue behind them, which is how send-posting cost can grow under heavy
    DMA traffic — visible in the bidirectional benchmark.
    """

    def __init__(self, env: Environment, params: PCIParams | None = None,
                 name: str = "pci"):
        self.env = env
        self.params = params or PCIParams()
        self.name = name
        self._arbiter = Resource(env, capacity=1)

    # -- programmed I/O ------------------------------------------------------
    def mmio_read(self, words: int = 1):
        """Process: perform ``words`` uncached I/O reads. Yields; returns None."""
        return self._pio(self.params.mmio_read_ns, words, "read")

    def mmio_write(self, words: int = 1):
        """Process: perform ``words`` posted I/O writes."""
        return self._pio(self.params.mmio_write_ns, words, "write")

    def _pio(self, cost_ns: int, words: int, kind: str):
        def run():
            with self._arbiter.request() as req:
                yield req
                emit(self.env, f"{self.name}.pio.{kind}", words=words)
                count(self.env, "bus.pio.words", words,
                      bus=self.name, kind=kind)
                yield self.env.timeout(cost_ns * words)

        return self.env.process(run(), name=f"{self.name}.pio.{kind}")

    # -- DMA ---------------------------------------------------------------------
    def dma(self, nbytes: int, priority: int = 0):
        """Process: one DMA transaction of ``nbytes`` across the bus.

        The caller (a DMA engine) is responsible for actually moving the
        bytes between memories; this models only the bus time.
        """
        duration = self.params.dma_time_ns(nbytes)

        def run():
            set_gauge(self.env, "bus.dma.queue_depth",
                      self._arbiter.queue_length, bus=self.name)
            with self._arbiter.request(priority=priority) as req:
                yield req
                emit(self.env, f"{self.name}.dma", nbytes=nbytes,
                     duration=duration)
                count(self.env, "bus.dma.transactions", bus=self.name)
                count(self.env, "bus.dma.bytes", nbytes, bus=self.name)
                observe(self.env, "bus.dma.duration_ns", duration,
                        bus=self.name)
                yield self.env.timeout(duration)

        return self.env.process(run(), name=f"{self.name}.dma")

    @property
    def busy(self) -> bool:
        return self._arbiter.count > 0
