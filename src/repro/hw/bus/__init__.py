"""I/O and memory bus models (PCI, EISA, host memory bus)."""

from repro.hw.bus.pci import PCIBus, PCIParams
from repro.hw.bus.eisa import EISABus, EISAParams
from repro.hw.bus.membus import MemoryBus, MemoryBusParams

__all__ = [
    "EISABus",
    "EISAParams",
    "MemoryBus",
    "MemoryBusParams",
    "PCIBus",
    "PCIParams",
]
