"""Declarative multi-switch topology generation with deadlock-free routing.

The paper's VMMC runs on arbitrary wormhole-routed Myrinet fabrics; the
reproduction grew up on the hand-wired 1- and 2-switch testbeds.  This
module scales the fabric out declaratively:

* **Topology specs** — frozen dataclasses (:class:`SingleSwitchSpec`,
  :class:`DualSwitchSpec`, :class:`FatTreeSpec`, :class:`MeshSpec`)
  describing a fabric: how many switches, how they are cabled, where the
  hosts attach.  ``parse("fattree:4")`` / ``parse("mesh:8x8")`` give a
  compact string form usable in configs and CLIs; every spec kind lives
  in the :data:`SPEC_KINDS` registry.
* **Generators** — :func:`build` materializes a spec into a cabled
  :class:`~repro.hw.myrinet.network.MyrinetNetwork` (switches, full-duplex
  cables, host attachment points named ``node0..nodeN-1``).
* **Source-route computers** — each spec emits the per-hop Myrinet route
  bytes for every ordered host pair: deterministic shortest path on the
  small testbeds, **up*/down*** on fat-trees, **dimension-order (X then
  Y)** on meshes and tori.  The table is installed into the network and
  becomes the ground truth the mapping LCP (section 4.3) discovers.
* **Deadlock checker** — :func:`check_deadlock_free` builds the channel
  dependency graph of a routing function over the wormhole channels
  (unidirectional links) and proves it cycle-free; a cyclic routing
  function — e.g. minimal dimension-order routing on a torus without
  virtual channels (:func:`minimal_torus_routes`) — raises the typed
  :class:`RoutingDeadlockError` carrying the offending channel cycle.
  :func:`build` runs the checker on every generated fabric, so a spec
  that materializes is *proven* deadlock-free by construction.

Deadlock-freedom arguments (details in DESIGN.md §8):

* Fat-tree up*/down*: channels partition into *up* (toward the core) and
  *down*; every route is a sequence of up channels followed by a sequence
  of down channels, so dependencies only go up→up (strictly rising
  level), up→down, down→down (strictly falling level) — never down→up.
  A level-indexed potential function orders the channels; no cycle.
* Mesh dimension-order: all X-channel dependencies point monotonically
  along a row (no wraparound), Y likewise along a column, and turns only
  go X→Y.  Ordering channels (dimension, direction, coordinate) is a
  topological order.
* Torus: the wrap cables are generated, but **minimal** DOR over them is
  cyclic without virtual channels (the classic ring dependency cycle) —
  our switches model none, so the generated routing is
  *dateline-restricted*: it never crosses the wrap edge, which is
  exactly mesh DOR.  Wrap cables still exist for fault injection and
  hand-built routing experiments; :func:`minimal_torus_routes` computes
  the wrap-using variant precisely so tests can watch the checker
  reject it.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import ClassVar, Optional, Union

import networkx as nx

from repro.sim import Environment
from repro.hw.myrinet.link import LinkParams
from repro.hw.myrinet.network import MyrinetNetwork, PortRef

__all__ = [
    "TopologyError",
    "RoutingDeadlockError",
    "TopologySpec",
    "SingleSwitchSpec",
    "DualSwitchSpec",
    "FatTreeSpec",
    "MeshSpec",
    "SPEC_KINDS",
    "DeadlockReport",
    "TopologyStats",
    "build",
    "parse",
    "resolve",
    "walk_route",
    "channel_dependency_graph",
    "check_deadlock_free",
    "minimal_torus_routes",
    "fabric_stats",
]


class TopologyError(ValueError):
    """A topology spec, route table, or generated fabric is invalid."""


class RoutingDeadlockError(TopologyError):
    """The routing function's channel dependency graph has a cycle.

    ``cycle`` is the offending channel chain (``["a->b", "b->c", ...,
    "a->b"]``): a worm holding each channel while waiting for the next
    would wait forever.
    """

    def __init__(self, message: str, cycle: list[str]):
        super().__init__(message)
        self.cycle = list(cycle)


#: Route tables map ordered host-name pairs to per-hop route bytes.
RouteTable = dict[tuple[str, str], list[int]]

#: kind string → spec class (the declarative registry).
SPEC_KINDS: dict[str, type] = {}


def _register(cls):
    SPEC_KINDS[cls.kind] = cls
    return cls


_NAME_RE = re.compile(r"^[A-Za-z][A-Za-z0-9_-]*$")


@dataclass(frozen=True)
class TopologySpec:
    """Base class: a declarative description of one fabric.

    Subclasses define :attr:`kind` (the registry key and string-form
    prefix), validate themselves in ``__post_init__``, and implement
    :meth:`materialize` (add switches/hosts/cables to a network) and
    :meth:`routes` (the topology's deadlock-free source-routing
    function).  Hosts are always named ``node0..node{nhosts-1}`` in
    attachment order, matching :class:`repro.cluster.Cluster` node names.
    """

    kind: ClassVar[str] = ""
    #: Example string forms (CLI help + the property-test sweep floor).
    EXAMPLES: ClassVar[tuple[str, ...]] = ()

    @property
    def nhosts(self) -> int:
        raise NotImplementedError

    def host_names(self) -> list[str]:
        return [f"node{i}" for i in range(self.nhosts)]

    def materialize(self, net: MyrinetNetwork) -> None:
        raise NotImplementedError

    def routes(self, net: MyrinetNetwork) -> RouteTable:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


@_register
@dataclass(frozen=True)
class SingleSwitchSpec(TopologySpec):
    """The paper's testbed: N hosts on one crossbar (M2F-SW8)."""

    nhosts_: int = 4
    switch_ports: int = 8

    kind: ClassVar[str] = "single"
    EXAMPLES: ClassVar[tuple[str, ...]] = ("single:2", "single:4", "single:8")

    def __post_init__(self) -> None:
        if self.nhosts_ < 1:
            raise TopologyError(f"single: need >= 1 host, got {self.nhosts_}")
        if self.nhosts_ > self.switch_ports:
            raise TopologyError(
                f"more hosts ({self.nhosts_}) than switch ports "
                f"({self.switch_ports})")

    @property
    def nhosts(self) -> int:
        return self.nhosts_

    def materialize(self, net: MyrinetNetwork) -> None:
        net.add_switch("sw0", nports=self.switch_ports)
        for i in range(self.nhosts_):
            name = net.add_host(f"node{i}")
            net.connect(PortRef(name, 0), PortRef("sw0", i))

    def routes(self, net: MyrinetNetwork) -> RouteTable:
        # Host i sits on switch port i: one route byte naming the port.
        table: RouteTable = {}
        for s in range(self.nhosts_):
            for d in range(self.nhosts_):
                if s != d:
                    table[(f"node{s}", f"node{d}")] = [d]
        return table

    def describe(self) -> str:
        return (f"{self.nhosts_} hosts on one {self.switch_ports}-port "
                "crossbar")


@_register
@dataclass(frozen=True)
class DualSwitchSpec(TopologySpec):
    """Two cascaded 8-port switches (the original multi-hop testbed)."""

    nhosts_: int = 4

    kind: ClassVar[str] = "dual"
    EXAMPLES: ClassVar[tuple[str, ...]] = ("dual:4", "dual:8", "dual:14")

    def __post_init__(self) -> None:
        if not 2 <= self.nhosts_ <= 14:
            raise TopologyError(
                f"dual: 2..14 hosts (7 per switch + uplink), "
                f"got {self.nhosts_}")

    @property
    def nhosts(self) -> int:
        return self.nhosts_

    def _placement(self, i: int) -> tuple[str, int]:
        switch = "sw0" if i < self.nhosts_ // 2 else "sw1"
        return switch, i % 7

    def materialize(self, net: MyrinetNetwork) -> None:
        net.add_switch("sw0")
        net.add_switch("sw1")
        net.connect(PortRef("sw0", 7), PortRef("sw1", 7))
        for i in range(self.nhosts_):
            name = net.add_host(f"node{i}")
            switch, port = self._placement(i)
            net.connect(PortRef(name, 0), PortRef(switch, port))

    def routes(self, net: MyrinetNetwork) -> RouteTable:
        table: RouteTable = {}
        for s in range(self.nhosts_):
            s_sw, _ = self._placement(s)
            for d in range(self.nhosts_):
                if s == d:
                    continue
                d_sw, d_port = self._placement(d)
                if s_sw == d_sw:
                    table[(f"node{s}", f"node{d}")] = [d_port]
                else:
                    # Cross the port-7 uplink, then exit at the far port.
                    table[(f"node{s}", f"node{d}")] = [7, d_port]
        return table

    def describe(self) -> str:
        return f"{self.nhosts_} hosts on two cascaded 8-port switches"


@_register
@dataclass(frozen=True)
class FatTreeSpec(TopologySpec):
    """A k-ary fat-tree / folded Clos (k pods, 3 switch tiers).

    ``k`` (even) pods each hold ``k/2`` edge and ``k/2`` aggregation
    switches; ``(k/2)^2`` core switches join the pods.  Each edge switch
    attaches ``hosts_per_edge`` hosts (default ``k/2`` — the classic
    fully-provisioned Al-Fares tree; fewer hosts per edge
    over-provisions the uplinks).  Switch names are
    ``{name}:edge[pod][i]``, ``{name}:agg[pod][i]``, ``{name}:core[i][j]``.

    Routing is deterministic **up*/down***: the up path (edge→agg→core)
    is chosen by destination index (D-mod, so traffic to one host always
    takes one path — preserving Myrinet's in-order delivery guarantee),
    then down core→agg→edge→host.
    """

    k: int = 4
    hosts_per_edge: Optional[int] = None
    name: str = "ft0"

    kind: ClassVar[str] = "fattree"
    EXAMPLES: ClassVar[tuple[str, ...]] = (
        "fattree:2", "fattree:4", "fattree:4,h=1", "fattree:8,h=2")

    def __post_init__(self) -> None:
        if self.k < 2 or self.k % 2:
            raise TopologyError(f"fattree: k must be even >= 2, got {self.k}")
        if not _NAME_RE.match(self.name):
            raise TopologyError(
                f"fattree: bad fabric name {self.name!r} "
                "(letters/digits/_/- only)")
        h = self.h
        if h < 1 or h > self.k // 2:
            raise TopologyError(
                f"fattree: hosts_per_edge must be 1..k/2={self.k // 2}, "
                f"got {h}")

    @property
    def h(self) -> int:
        """Hosts attached to each edge switch."""
        return self.k // 2 if self.hosts_per_edge is None else \
            self.hosts_per_edge

    @property
    def half(self) -> int:
        return self.k // 2

    @property
    def nhosts(self) -> int:
        return self.k * self.half * self.h

    # -- naming ----------------------------------------------------------
    def edge(self, pod: int, e: int) -> str:
        return f"{self.name}:edge[{pod}][{e}]"

    def agg(self, pod: int, a: int) -> str:
        return f"{self.name}:agg[{pod}][{a}]"

    def core(self, i: int, j: int) -> str:
        return f"{self.name}:core[{i}][{j}]"

    def host_coords(self, idx: int) -> tuple[int, int, int]:
        """Host index → (pod, edge, slot)."""
        per_pod = self.half * self.h
        pod, rest = divmod(idx, per_pod)
        e, s = divmod(rest, self.h)
        return pod, e, s

    def materialize(self, net: MyrinetNetwork) -> None:
        half, h = self.half, self.h
        for pod in range(self.k):
            for e in range(half):
                net.add_switch(self.edge(pod, e), nports=h + half)
            for a in range(half):
                net.add_switch(self.agg(pod, a), nports=self.k)
        for i in range(half):
            for j in range(half):
                net.add_switch(self.core(i, j), nports=self.k)
        # Edge ports: 0..h-1 down to hosts, h..h+half-1 up to aggs.
        # Agg ports: 0..half-1 down to edges, half..k-1 up to cores.
        # Core ports: one per pod.
        for pod in range(self.k):
            for e in range(half):
                for a in range(half):
                    net.connect(PortRef(self.edge(pod, e), h + a),
                                PortRef(self.agg(pod, a), e))
            for a in range(half):
                for j in range(half):
                    net.connect(PortRef(self.agg(pod, a), half + j),
                                PortRef(self.core(a, j), pod))
        for idx in range(self.nhosts):
            pod, e, s = self.host_coords(idx)
            name = net.add_host(f"node{idx}")
            net.connect(PortRef(name, 0), PortRef(self.edge(pod, e), s))

    def routes(self, net: MyrinetNetwork) -> RouteTable:
        half, h = self.half, self.h
        table: RouteTable = {}
        for s_idx in range(self.nhosts):
            sp, se, _ = self.host_coords(s_idx)
            for d_idx in range(self.nhosts):
                if s_idx == d_idx:
                    continue
                dp, de, ds = self.host_coords(d_idx)
                if sp == dp and se == de:
                    route = [ds]                    # same edge switch
                elif sp == dp:
                    a = d_idx % half                # up to one agg, down
                    route = [h + a, de, ds]
                else:
                    a = d_idx % half                # D-mod up-path choice
                    j = (d_idx // half) % half
                    route = [h + a, half + j, dp, de, ds]
                table[(f"node{s_idx}", f"node{d_idx}")] = route
        return table

    def describe(self) -> str:
        half = self.half
        return (f"{self.k}-ary fat-tree: {self.nhosts} hosts, "
                f"{self.k * half} edge + {self.k * half} agg + "
                f"{half * half} core switches, up*/down* routing")


@_register
@dataclass(frozen=True)
class MeshSpec(TopologySpec):
    """A 2-D mesh (or torus) of switches with hosts at every switch.

    Switches ``{name}:sw[x][y]`` form a ``cols x rows`` grid; ports 0-3
    are +x/-x/+y/-y neighbours, ports ``4..4+h-1`` attach hosts (the
    APENet/PMS mesh-machine shape).  ``torus=True`` adds wraparound
    cables in each dimension.

    Routing is **dimension-order** (X fully, then Y) and never crosses
    the wrap cables: minimal torus DOR without virtual channels has the
    classic ring dependency cycle (see :func:`minimal_torus_routes`),
    so the generated, provably deadlock-free routing is
    dateline-restricted — wrap cables serve fault-injection and routing
    experiments, not the default route table.
    """

    cols: int = 2
    rows: int = 2
    hosts_per_switch: int = 1
    torus: bool = False
    name: str = "mesh0"

    kind: ClassVar[str] = "mesh"
    EXAMPLES: ClassVar[tuple[str, ...]] = (
        "mesh:2x2", "mesh:3x2,h=2", "mesh:4x4", "torus:3x3", "torus:4x4")

    def __post_init__(self) -> None:
        if self.cols < 1 or self.rows < 1 or self.cols * self.rows < 2:
            raise TopologyError(
                f"mesh: need >= 2 switches, got {self.cols}x{self.rows}")
        if self.torus and (self.cols < 3 or self.rows < 3):
            raise TopologyError(
                f"torus: wrap cables need >= 3 switches per dimension, "
                f"got {self.cols}x{self.rows}")
        if self.hosts_per_switch < 1:
            raise TopologyError(
                f"mesh: hosts_per_switch must be >= 1, "
                f"got {self.hosts_per_switch}")
        if not _NAME_RE.match(self.name):
            raise TopologyError(
                f"mesh: bad fabric name {self.name!r} "
                "(letters/digits/_/- only)")

    # Port conventions.
    EAST, WEST, NORTH, SOUTH = 0, 1, 2, 3
    HOST_BASE: ClassVar[int] = 4

    @property
    def nhosts(self) -> int:
        return self.cols * self.rows * self.hosts_per_switch

    def sw(self, x: int, y: int) -> str:
        return f"{self.name}:sw[{x}][{y}]"

    def host_coords(self, idx: int) -> tuple[int, int, int]:
        """Host index → (x, y, slot); x-major within each row."""
        sw_idx, s = divmod(idx, self.hosts_per_switch)
        y, x = divmod(sw_idx, self.cols)
        return x, y, s

    def materialize(self, net: MyrinetNetwork) -> None:
        nports = self.HOST_BASE + self.hosts_per_switch
        for y in range(self.rows):
            for x in range(self.cols):
                net.add_switch(self.sw(x, y), nports=nports)
        for y in range(self.rows):
            for x in range(self.cols):
                if x + 1 < self.cols:
                    net.connect(PortRef(self.sw(x, y), self.EAST),
                                PortRef(self.sw(x + 1, y), self.WEST))
                elif self.torus:
                    net.connect(PortRef(self.sw(x, y), self.EAST),
                                PortRef(self.sw(0, y), self.WEST))
                if y + 1 < self.rows:
                    net.connect(PortRef(self.sw(x, y), self.NORTH),
                                PortRef(self.sw(x, y + 1), self.SOUTH))
                elif self.torus:
                    net.connect(PortRef(self.sw(x, y), self.NORTH),
                                PortRef(self.sw(x, 0), self.SOUTH))
        for idx in range(self.nhosts):
            x, y, s = self.host_coords(idx)
            name = net.add_host(f"node{idx}")
            net.connect(PortRef(name, 0),
                        PortRef(self.sw(x, y), self.HOST_BASE + s))

    def _dor_route(self, src: int, dst: int, *, minimal: bool) -> list[int]:
        """Dimension-order route bytes; ``minimal`` may use wrap cables."""
        sx, sy, _ = self.host_coords(src)
        dx, dy, ds = self.host_coords(dst)
        route: list[int] = []
        route += self._ring_steps(sx, dx, self.cols, self.EAST, self.WEST,
                                  minimal=minimal)
        route += self._ring_steps(sy, dy, self.rows, self.NORTH, self.SOUTH,
                                  minimal=minimal)
        route.append(self.HOST_BASE + ds)
        return route

    def _ring_steps(self, a: int, b: int, n: int, plus: int, minus: int,
                    *, minimal: bool) -> list[int]:
        if a == b:
            return []
        if minimal and self.torus:
            fwd = (b - a) % n
            back = (a - b) % n
            # Minimal direction, wrap allowed; ties go +.
            return [plus] * fwd if fwd <= back else [minus] * back
        return [plus] * (b - a) if b > a else [minus] * (a - b)

    def routes(self, net: MyrinetNetwork) -> RouteTable:
        table: RouteTable = {}
        for s in range(self.nhosts):
            for d in range(self.nhosts):
                if s != d:
                    table[(f"node{s}", f"node{d}")] = \
                        self._dor_route(s, d, minimal=False)
        return table

    def describe(self) -> str:
        shape = "torus" if self.torus else "mesh"
        return (f"{self.cols}x{self.rows} {shape}, "
                f"{self.hosts_per_switch} host(s)/switch "
                f"({self.nhosts} hosts), dimension-order routing")


def minimal_torus_routes(spec: MeshSpec) -> RouteTable:
    """Minimal (wrap-using) dimension-order routes on a torus.

    This is the textbook deadlock example: with >= 4 switches in a ring
    and no virtual channels, the minimal routes use every channel of the
    ring *and* continue past it, closing a cyclic channel dependency.
    :func:`check_deadlock_free` must reject this table — tests rely on
    it as the canonical "hand-built cyclic routing function".
    """
    if not spec.torus:
        raise TopologyError("minimal_torus_routes needs torus=True")
    return {(f"node{s}", f"node{d}"): spec._dor_route(s, d, minimal=True)
            for s in range(spec.nhosts)
            for d in range(spec.nhosts) if s != d}


# -- string forms ----------------------------------------------------------
_SHAPE_RE = re.compile(r"^(\d+)x(\d+)$")


def parse(text: str) -> TopologySpec:
    """Parse a compact topology string into a spec.

    Grammar: ``kind:shape[,key=value...]`` —

    ==================  ==============================================
    string              spec
    ==================  ==============================================
    ``single:8``        :class:`SingleSwitchSpec` (8 hosts, 8 ports)
    ``single:6,ports=8``  explicit crossbar size
    ``dual:8``          :class:`DualSwitchSpec` (8 hosts)
    ``fattree:4``       :class:`FatTreeSpec` k=4 (16 hosts)
    ``fattree:8,h=2``   k=8, 2 hosts per edge switch (64 hosts)
    ``mesh:4x4``        :class:`MeshSpec` 4x4, 1 host/switch
    ``mesh:8x8,h=2``    8x8, 2 hosts per switch (128 hosts)
    ``torus:4x4``       4x4 with wraparound cables
    ==================  ==============================================
    """
    head, _, rest = text.strip().partition(":")
    head = head.lower()
    if head not in SPEC_KINDS and head != "torus":
        raise TopologyError(
            f"unknown topology kind {head!r} (registered: "
            f"{', '.join(sorted(SPEC_KINDS) + ['torus'])})")
    if not rest:
        raise TopologyError(
            f"topology {text!r} needs a shape, e.g. "
            f"'single:8', 'fattree:4', 'mesh:4x4'")
    shape, *opts = rest.split(",")
    kv: dict[str, int] = {}
    for opt in opts:
        key, _, value = opt.partition("=")
        if not value or not value.isdigit():
            raise TopologyError(f"bad topology option {opt!r} in {text!r}")
        kv[key.strip()] = int(value)

    def _int_shape() -> int:
        if not shape.isdigit():
            raise TopologyError(f"bad host count {shape!r} in {text!r}")
        return int(shape)

    if head == "single":
        ports = kv.pop("ports", None)
        _reject_extra(text, kv)
        n = _int_shape()
        return SingleSwitchSpec(nhosts_=n,
                                switch_ports=ports if ports else max(8, n))
    if head == "dual":
        _reject_extra(text, kv)
        return DualSwitchSpec(nhosts_=_int_shape())
    if head == "fattree":
        h = kv.pop("h", None)
        _reject_extra(text, kv)
        return FatTreeSpec(k=_int_shape(), hosts_per_edge=h)
    # mesh / torus
    match = _SHAPE_RE.match(shape)
    if not match:
        raise TopologyError(
            f"bad mesh shape {shape!r} in {text!r} (want COLSxROWS)")
    h = kv.pop("h", 1)
    _reject_extra(text, kv)
    return MeshSpec(cols=int(match.group(1)), rows=int(match.group(2)),
                    hosts_per_switch=h, torus=head == "torus",
                    name="torus0" if head == "torus" else "mesh0")


def _reject_extra(text: str, kv: dict) -> None:
    if kv:
        raise TopologyError(
            f"unknown topology option(s) {sorted(kv)} in {text!r}")


def resolve(spec: Union[TopologySpec, str],
            nhosts: Optional[int] = None) -> TopologySpec:
    """Normalize a config's topology field into a spec.

    Accepts a :class:`TopologySpec` (returned as-is), a compact string
    (``"fattree:4"`` — see :func:`parse`), or the legacy names
    ``"single_switch"`` / ``"dual_switch"`` sized by ``nhosts``.
    """
    if isinstance(spec, TopologySpec):
        return spec
    if not isinstance(spec, str):
        raise TopologyError(f"not a topology spec or name: {spec!r}")
    if spec == "single_switch":
        return SingleSwitchSpec(nhosts_=nhosts if nhosts else 4)
    if spec == "dual_switch":
        return DualSwitchSpec(nhosts_=nhosts if nhosts else 4)
    return parse(spec)


# -- generation ------------------------------------------------------------
def build(spec: Union[TopologySpec, str], env: Environment,
          link_params: Optional[LinkParams] = None) -> MyrinetNetwork:
    """Materialize a spec into a cabled network with verified routing.

    Generates the devices and cables, computes the spec's source-route
    table, **proves it deadlock-free** (every route is also walked
    through the cabling to its claimed destination), and installs it so
    :meth:`MyrinetNetwork.compute_route` — and therefore the mapping
    LCP — serves the topology's routing discipline.
    """
    spec = resolve(spec)
    net = MyrinetNetwork(env, link_params)
    spec.materialize(net)
    table = spec.routes(net)
    check_deadlock_free(net, table)
    net.install_topology(spec, table)
    return net


# -- route walking + the deadlock checker ----------------------------------
def walk_route(net: MyrinetNetwork, src: str,
               route: list[int]) -> tuple[str, list[str]]:
    """Follow route bytes through the cabling graph (no simulation).

    Returns ``(terminal_device, channels)`` where ``channels`` is the
    ordered list of unidirectional link names (``"a->b"``) a worm
    holds.  Raises :class:`TopologyError` on an uncabled port or a route
    that tries to forward through a host;
    :class:`~repro.hw.myrinet.switch.PortRangeError` on an out-of-range
    route byte.
    """
    if src not in net.hosts:
        raise TopologyError(f"{src!r} is not a host")
    there = net.host_uplink(src)
    channels = [f"{src}->{there}"]
    here = there
    for byte in route:
        if here not in net.switches:
            raise TopologyError(
                f"route from {src} tries to forward through {here!r}, "
                "which is not a switch")
        net.switches[here]._check_port(byte)
        there = net.port_neighbor(here, byte)
        if there is None:
            raise TopologyError(
                f"route from {src}: switch {here!r} port {byte} is "
                "not cabled")
        channels.append(f"{here}->{there}")
        here = there
    return here, channels


@dataclass(frozen=True)
class DeadlockReport:
    """Result of a successful deadlock-freedom proof."""

    routes: int
    channels: int
    dependencies: int


def channel_dependency_graph(net: MyrinetNetwork,
                             routes: RouteTable) -> nx.DiGraph:
    """The wormhole channel dependency graph of a routing function.

    Nodes are unidirectional channels (links); an edge ``c1 → c2`` means
    some route holds ``c1`` while requesting ``c2`` (consecutive hops of
    one worm).  Every route is walked through the real cabling and must
    terminate at its claimed destination host.
    """
    cdg = nx.DiGraph()
    for (src, dst), route in sorted(routes.items()):
        if src == dst:
            continue
        terminal, channels = walk_route(net, src, route)
        if terminal != dst:
            raise TopologyError(
                f"route {src}->{dst} {route} terminates at {terminal!r}")
        cdg.add_nodes_from(channels)
        for c1, c2 in zip(channels, channels[1:]):
            cdg.add_edge(c1, c2)
    return cdg


def check_deadlock_free(net: MyrinetNetwork,
                        routes: Optional[RouteTable] = None
                        ) -> DeadlockReport:
    """Prove a routing function cycle-free over a network's channels.

    Uses the installed route table when ``routes`` is omitted.  Returns
    a :class:`DeadlockReport` on success; raises
    :class:`RoutingDeadlockError` (carrying the channel cycle) when the
    channel dependency graph is cyclic — such a routing function can
    wedge the wormhole fabric permanently under contention.
    """
    if routes is None:
        routes = net.route_table
        if routes is None:
            raise TopologyError(
                "no route table installed and none given to check")
    cdg = channel_dependency_graph(net, routes)
    try:
        cycle_edges = nx.find_cycle(cdg)
    except nx.NetworkXNoCycle:
        return DeadlockReport(routes=len(routes),
                              channels=cdg.number_of_nodes(),
                              dependencies=cdg.number_of_edges())
    chain = [edge[0] for edge in cycle_edges] + [cycle_edges[-1][1]]
    raise RoutingDeadlockError(
        f"routing function has a channel dependency cycle of length "
        f"{len(cycle_edges)}: {' -> '.join(chain)}", cycle=chain)


# -- fabric statistics -----------------------------------------------------
@dataclass(frozen=True)
class TopologyStats:
    """Measured properties of one built fabric (README fabric table)."""

    nhosts: int
    nswitches: int
    ncables: int
    #: Longest route in the installed table, in switch hops.
    diameter_hops: int
    #: Mean route length over all ordered host pairs.
    route_hops_mean: float
    #: Min-cut (unidirectional links) between the canonical host halves —
    #: the fabric's bisection width; host-limited fabrics report n/2.
    bisection_links: int


def fabric_stats(net: MyrinetNetwork) -> TopologyStats:
    """Compute diameter / route-length / bisection stats of a built fabric.

    Bisection is an exact min-cut (max-flow, every cable = capacity 1
    each direction) between the first and second half of the hosts in
    index order — the canonical partition for every generated topology.
    """
    table = net.route_table
    if table is None:
        raise TopologyError("fabric has no installed route table")
    hosts = net.host_names
    lengths = [len(route) for route in table.values()]
    flow = nx.DiGraph()
    for a, b in net.graph.edges:
        flow.add_edge(a, b, capacity=1)
        flow.add_edge(b, a, capacity=1)
    bisection = 0
    if len(hosts) >= 2:
        half = len(hosts) // 2
        for host in hosts[:half]:
            flow.add_edge("bisect_src", host, capacity=len(hosts))
        for host in hosts[half:]:
            flow.add_edge(host, "bisect_dst", capacity=len(hosts))
        bisection = int(nx.maximum_flow_value(flow, "bisect_src",
                                              "bisect_dst"))
    return TopologyStats(
        nhosts=len(hosts),
        nswitches=len(net.switches),
        ncables=len(net.links) // 2,
        diameter_hops=max(lengths) if lengths else 0,
        route_hops_mean=(sum(lengths) / len(lengths)) if lengths else 0.0,
        bisection_links=bisection,
    )
