"""Myrinet packet format.

A packet on the wire is::

    [route bytes][type][header words][payload][CRC-8]

* **route** — one byte per switch hop, consumed by each switch (source
  routing, section 3).  We keep a cursor instead of destructively popping
  so traces remain readable; wire-size accounting uses the *remaining*
  route length like real hardware.
* **header** — protocol-defined; VMMC's header carries the message length
  and *two* physical destination addresses for the page-boundary scatter
  (section 4.5).  The fabric treats it as an opaque mapping plus a wire
  size.
* **payload** — real bytes (numpy array), checked end-to-end by tests.
* **crc** — CRC-8 over header+payload, appended on send, verified on
  arrival.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.hw.myrinet.crc import crc8


@dataclass
class PacketHeader:
    """Typed header: a protocol tag plus free-form fields.

    ``wire_bytes`` is the serialized size charged on the wire; VMMC's long
    header is 16 bytes (length word, two destination addresses, flags) and
    the short format carries data inline.
    """

    kind: str
    fields: dict[str, Any] = field(default_factory=dict)
    wire_bytes: int = 16

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)


class MyrinetPacket:
    """One packet travelling the fabric."""

    __slots__ = ("route", "_hop", "header", "payload", "crc",
                 "injected_at", "meta")

    def __init__(self, route: list[int], header: PacketHeader,
                 payload: np.ndarray | bytes):
        self.route = list(route)
        self._hop = 0
        self.header = header
        self.payload = (np.frombuffer(bytes(payload), dtype=np.uint8)
                        if isinstance(payload, (bytes, bytearray))
                        else np.asarray(payload, dtype=np.uint8))
        self.crc: Optional[int] = None
        self.injected_at: Optional[int] = None
        self.meta: dict[str, Any] = {}

    # -- routing -------------------------------------------------------------
    def next_port(self) -> int:
        """The output port at the current switch; consumes one route byte."""
        if self._hop >= len(self.route):
            raise ValueError("packet ran out of route bytes")
        port = self.route[self._hop]
        self._hop += 1
        return port

    @property
    def hops_remaining(self) -> int:
        return len(self.route) - self._hop

    @property
    def route_exhausted(self) -> bool:
        return self._hop >= len(self.route)

    # -- sizing ----------------------------------------------------------------
    @property
    def payload_bytes(self) -> int:
        return int(self.payload.size)

    @property
    def wire_bytes(self) -> int:
        """Bytes occupying the wire at this hop: remaining route + type byte
        + header + payload + CRC."""
        return self.hops_remaining + 1 + self.header.wire_bytes \
            + self.payload_bytes + 1

    # -- CRC -----------------------------------------------------------------------
    def _crc_input(self) -> bytes:
        head = repr(sorted(self.header.fields.items())).encode()
        return head + self.payload.tobytes()

    def seal(self) -> None:
        """Compute and append the hardware CRC (done by the sending NIC)."""
        self.crc = crc8(self._crc_input())

    def crc_ok(self) -> bool:
        """Verify the CRC (done by the receiving NIC)."""
        return self.crc is not None and self.crc == crc8(self._crc_input())

    def corrupt(self, bit: int = 0) -> None:
        """Flip one payload bit — wire error injection (section 4.2)."""
        if self.payload_bytes == 0:
            # No payload: corrupt the CRC itself.
            self.crc = (self.crc or 0) ^ 1
            return
        idx = (bit // 8) % self.payload_bytes
        self.payload = self.payload.copy()
        self.payload[idx] ^= np.uint8(1 << (bit % 8))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MyrinetPacket({self.header.kind}, "
                f"{self.payload_bytes}B, hops={self.hops_remaining})")
