"""Myrinet link: 160 MB/s per direction, cut-through, in-order, lossless.

A :class:`Link` is unidirectional (full-duplex cables are two links).  We
model wormhole cut-through at packet granularity: the head of the packet
reaches the far end after the propagation latency, the tail after the
packet's wire time (``wire_bytes / rate``), and the link is occupied for
the wire time — so back-to-back packets pipeline correctly and a busy link
exerts back-pressure (the send blocks until the previous packet's tail has
left).

Bit errors are injected by an optional error process with the paper's
"very rare, clustered" character (section 4.2): a Bernoulli draw per packet
under normal operation, or a burst when a simulated hardware fault is
switched on.

Fault hooks (used by :mod:`repro.faults`):

* :meth:`set_down` / :meth:`set_up` — a dead cable.  Packets whose tail
  would arrive while the link is down are lost in the fabric (the worm is
  truncated; downstream hardware sees nothing and the sender is not told —
  exactly the failure VMMC's base layer cannot survive).  Down state is
  **depth-counted** so overlapping faults from concurrent campaigns
  compose: every ``set_down`` increments the depth, every ``set_up``
  decrements it, and the cable only carries traffic again at depth 0
  (the *last* clear wins).
* :meth:`set_error_rate` / :meth:`clear_error_rate` — a temporary
  per-packet corruption-probability override modelling a clustered
  bit-error burst.  Overrides form a **stack**: each ``set_error_rate``
  pushes an entry and returns a token; the effective rate is the most
  recently pushed entry (*last-wins*, documented contract), and clearing
  by token removes only that entry, so two overlapping bursts keep the
  link faulted until the last one clears.  ``clear_error_rate()`` with no
  token empties the whole stack (the legacy single-override behaviour).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.sim import Environment, Resource
from repro.sim.trace import emit
from repro.obs.metrics import count
from repro.hw.myrinet.packet import MyrinetPacket


@dataclass(frozen=True)
class LinkParams:
    """Per-link timing and error parameters."""

    #: 1.28 Gb/s = 160 MB/s = 0.16 bytes/ns → 6.25 ns per byte.
    ns_per_kb: int = 6250
    #: Cable propagation + SAN interface latency per traversal.
    latency_ns: int = 100
    #: Per-packet corruption probability (paper: BER below 1e-15; the
    #: default 0 keeps normal runs error-free, tests raise it).
    error_rate: float = 0.0

    def wire_time_ns(self, wire_bytes: int) -> int:
        return max(1, (wire_bytes * self.ns_per_kb) // 1000)


def _seed_from_name(name: str) -> int:
    """Deterministic per-link RNG seed derived from the link's name.

    Independently-constructed links must not share an error sequence: a
    shared ``default_rng(0)`` fallback made two lossy hops draw identical
    Bernoulli streams (and could even flip the same bit twice, silently
    cancelling an injected error).  CRC-32 of the name is stable across
    runs and processes (unlike ``hash``) and distinct per link name.
    """
    return zlib.crc32(name.encode("utf-8"))


class Link:
    """Unidirectional link from a source port to a sink callable.

    The sink is ``receive(packet)`` on a switch input port or a NIC; it is
    invoked (as a new process) when the packet **tail** arrives, i.e. when
    the packet is fully deliverable to the next stage's buffer.
    """

    def __init__(self, env: Environment, params: LinkParams | None = None,
                 name: str = "link", rng: Optional[np.random.Generator] = None):
        self.env = env
        self.params = params or LinkParams()
        self.name = name
        self.sink: Optional[Callable[[MyrinetPacket], object]] = None
        self._wire = Resource(env, capacity=1)
        self._rng = rng or np.random.default_rng(_seed_from_name(name))
        #: Stack of ``(token, rate)`` error-rate overrides (last-wins).
        self._error_stack: list[tuple[int, float]] = []
        self._error_tokens = 0
        #: Number of outstanding :meth:`set_down` raises (0 == cable up).
        self._down_depth = 0
        self.packets_carried = 0
        self.bytes_carried = 0
        self.errors_injected = 0
        self.packets_lost_down = 0

    # -- fault hooks ----------------------------------------------------------
    @property
    def is_up(self) -> bool:
        return self._down_depth == 0

    @property
    def down_depth(self) -> int:
        """How many overlapping down-faults currently hold the cable."""
        return self._down_depth

    @property
    def error_burst_depth(self) -> int:
        """How many overlapping error-rate overrides are active."""
        return len(self._error_stack)

    @property
    def effective_error_rate(self) -> float:
        """Per-packet corruption probability in force right now: the most
        recently pushed override (last-wins), else the configured
        baseline."""
        if self._error_stack:
            return self._error_stack[-1][1]
        return self.params.error_rate

    def set_down(self) -> None:
        """Take the cable down: in-flight and future worms are lost.
        Depth-counted — overlapping down-faults compose, and the link
        stays down until the matching number of :meth:`set_up` calls."""
        self._down_depth += 1
        emit(self.env, f"{self.name}.down", depth=self._down_depth)

    def set_up(self) -> None:
        """Release one down-fault; the cable carries traffic again only
        when every overlapping down-fault has been released (clamped at
        0 so stray extra calls are harmless)."""
        self._down_depth = max(0, self._down_depth - 1)
        emit(self.env, f"{self.name}.up", depth=self._down_depth)

    def set_error_rate(self, rate: float) -> int:
        """Push a per-packet corruption-probability override (error
        burst) and return a token for :meth:`clear_error_rate`.  The
        effective rate is always the most recent push (last-wins)."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"error rate {rate} outside [0, 1]")
        self._error_tokens += 1
        token = self._error_tokens
        self._error_stack.append((token, rate))
        emit(self.env, f"{self.name}.error_burst", rate=rate,
             depth=len(self._error_stack))
        return token

    def clear_error_rate(self, token: Optional[int] = None) -> None:
        """Remove the override identified by ``token`` (idempotent: an
        unknown token is a no-op).  Without a token the whole stack is
        emptied — the legacy 'return to baseline' behaviour."""
        if token is None:
            self._error_stack.clear()
        else:
            self._error_stack = [entry for entry in self._error_stack
                                 if entry[0] != token]
        emit(self.env, f"{self.name}.error_clear",
             depth=len(self._error_stack))

    # -- data path ------------------------------------------------------------
    def connect(self, sink: Callable[[MyrinetPacket], object]) -> None:
        self.sink = sink

    def transmit(self, packet: MyrinetPacket):
        """Process: put ``packet`` on the wire; completes when the **tail**
        has left this end (so the sender's DMA engine frees up), while
        delivery to the sink happens ``latency`` later."""
        if self.sink is None:
            raise RuntimeError(f"{self.name}: link not connected")

        def run():
            with self._wire.request() as req:
                yield req
                wire_time = self.params.wire_time_ns(packet.wire_bytes)
                emit(self.env, f"{self.name}.tx",
                     bytes=packet.wire_bytes, wire_time=wire_time)
                error_rate = self.effective_error_rate
                if error_rate > 0 and self._rng.random() < error_rate:
                    packet.corrupt(bit=int(self._rng.integers(0, 1 << 16)))
                    self.errors_injected += 1
                    count(self.env, "link.errors_injected", link=self.name)
                self.packets_carried += 1
                self.bytes_carried += packet.wire_bytes
                count(self.env, "link.packets", link=self.name)
                count(self.env, "link.bytes", packet.wire_bytes,
                      link=self.name)
                count(self.env, "link.busy_ns", wire_time, link=self.name)
                yield self.env.timeout(wire_time)
            # Tail has left this end; head+latency delivery downstream.
            self.env.process(self._deliver(packet),
                             name=f"{self.name}.deliver")

        return self.env.process(run(), name=f"{self.name}.tx")

    def _deliver(self, packet: MyrinetPacket):
        yield self.env.timeout(self.params.latency_ns)
        if not self.is_up:
            # Dead cable: the worm never reaches the far end.  Nobody is
            # notified — Myrinet hardware gives the sender no feedback.
            self.packets_lost_down += 1
            count(self.env, "link.lost_down", link=self.name)
            emit(self.env, f"{self.name}.lost_down",
                 bytes=packet.wire_bytes)
            return
        result = self.sink(packet)
        if hasattr(result, "__next__"):
            # Sink is a generator — run it as a process.
            yield self.env.process(result)
