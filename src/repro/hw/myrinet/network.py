"""Topology container: hosts, switches, cables, and route computation.

The network-mapping LCP of section 4.3 discovers the topology at boot and
builds static routing tables.  Our fabric object *is* the ground truth the
mapping LCP discovers: it holds the device graph (networkx) and can compute
the source-route byte string between any two hosts — but protocol code
never calls :meth:`compute_route` directly; it goes through the mapping LCP
(:mod:`repro.vmmc.mapping_lcp`) exactly as the paper's daemons do.

Fabrics are normally built declaratively: :func:`repro.hw.myrinet.topology
.build` materializes a :class:`~repro.hw.myrinet.topology.TopologySpec`
(single/dual switch, fat-tree, mesh/torus) and installs the topology's
deadlock-free route table via :meth:`MyrinetNetwork.install_topology`;
:meth:`compute_route` then serves that table (up*/down* on fat-trees,
dimension-order on meshes) instead of generic shortest path.  The old
``single_switch``/``dual_switch`` classmethods remain as deprecated shims.
"""

from __future__ import annotations

import re
import warnings
from dataclasses import dataclass, field
from typing import Callable, Optional

import networkx as nx

from repro.sim import Environment
from repro.hw.myrinet.link import Link, LinkParams
from repro.hw.myrinet.packet import MyrinetPacket
from repro.hw.myrinet.switch import Switch

_NUM_RE = re.compile(r"(\d+)")


def natural_key(name: str):
    """Sort key placing ``node10`` after ``node9`` (not after ``node1``)."""
    return tuple(int(tok) if tok.isdigit() else tok
                 for tok in _NUM_RE.split(name))


@dataclass
class PortRef:
    """A (device name, port number) endpoint of a cable."""

    device: str
    port: int = 0


@dataclass
class _HostPort:
    """A host attachment point: one full-duplex cable to the fabric."""

    name: str
    out_link: Optional[Link] = None
    sink: Optional[Callable[[MyrinetPacket], object]] = None
    queued: list = field(default_factory=list)

    def receive(self, packet: MyrinetPacket):
        if self.sink is None:
            # NIC not attached yet (e.g. during fabric construction).
            self.queued.append(packet)
            return None
        return self.sink(packet)


class MyrinetNetwork:
    """The switched fabric: devices, cables, and route computation."""

    def __init__(self, env: Environment, link_params: LinkParams | None = None):
        self.env = env
        self.link_params = link_params or LinkParams()
        self.graph = nx.Graph()
        self.switches: dict[str, Switch] = {}
        self.hosts: dict[str, _HostPort] = {}
        self._links: list[Link] = []
        #: Set by :meth:`install_topology` (declarative fabrics).
        self.topology = None
        self._route_table: Optional[dict[tuple[str, str], list[int]]] = None
        #: device → port → neighbour device (both ends of every cable).
        self._port_map: dict[str, dict[int, str]] = {}

    # -- construction ---------------------------------------------------------
    def add_switch(self, name: str, nports: int = 8) -> Switch:
        if name in self.switches or name in self.hosts:
            raise ValueError(f"duplicate device name {name!r}")
        switch = Switch(self.env, nports=nports, name=name)
        self.switches[name] = switch
        self.graph.add_node(name, kind="switch")
        return switch

    def add_host(self, name: str) -> str:
        if name in self.switches or name in self.hosts:
            raise ValueError(f"duplicate device name {name!r}")
        self.hosts[name] = _HostPort(name)
        self.graph.add_node(name, kind="host")
        return name

    def attach_host_sink(self, name: str,
                         sink: Callable[[MyrinetPacket], object]) -> None:
        """Register the NIC's receive entry point for host ``name``."""
        port = self.hosts[name]
        port.sink = sink
        for packet in port.queued:
            result = sink(packet)
            if hasattr(result, "__next__"):
                self.env.process(result)
        port.queued.clear()

    def connect(self, a: PortRef, b: PortRef,
                link_params: LinkParams | None = None) -> None:
        """Run a full-duplex cable between two endpoints."""
        params = link_params or self.link_params
        for ref in (a, b):
            if ref.port in self._port_map.get(ref.device, {}):
                raise ValueError(
                    f"{ref.device}: port {ref.port} already cabled to "
                    f"{self._port_map[ref.device][ref.port]}")
        # Distinct RNG streams per link come from the name-derived seed
        # fallback in Link: two hops must never flip the same bit and
        # silently cancel an injected error.
        link_ab = Link(self.env, params, name=f"{a.device}->{b.device}")
        link_ba = Link(self.env, params, name=f"{b.device}->{a.device}")
        self._links += [link_ab, link_ba]
        link_ab.connect(self._sink_of(b))
        link_ba.connect(self._sink_of(a))
        self._outlet_of(a, link_ab)
        self._outlet_of(b, link_ba)
        self.graph.add_edge(a.device, b.device,
                            ports={a.device: a.port, b.device: b.port})
        self._port_map.setdefault(a.device, {})[a.port] = b.device
        self._port_map.setdefault(b.device, {})[b.port] = a.device

    def _sink_of(self, ref: PortRef) -> Callable[[MyrinetPacket], object]:
        if ref.device in self.switches:
            return self.switches[ref.device].receive
        return self.hosts[ref.device].receive

    def _outlet_of(self, ref: PortRef, link: Link) -> None:
        if ref.device in self.switches:
            self.switches[ref.device].attach_output(ref.port, link)
        else:
            host = self.hosts[ref.device]
            if host.out_link is not None:
                raise ValueError(f"host {ref.device} already cabled")
            host.out_link = link

    # -- use ------------------------------------------------------------------------
    def inject(self, host: str, packet: MyrinetPacket):
        """Process: host NIC puts a packet on its outgoing cable."""
        out = self.hosts[host].out_link
        if out is None:
            raise RuntimeError(f"host {host} is not cabled to the fabric")
        packet.injected_at = self.env.now
        return out.transmit(packet)

    def install_topology(self, spec, table: dict[tuple[str, str],
                                                 list[int]]) -> None:
        """Install a declarative topology's route table as ground truth.

        ``table`` must cover every ordered pair of distinct hosts;
        :meth:`compute_route` then serves it verbatim, so the fabric
        follows the topology's routing discipline (up*/down*,
        dimension-order, …) rather than generic shortest path.  Called
        by :func:`repro.hw.myrinet.topology.build` after the deadlock
        check passes.
        """
        hosts = self.host_names
        missing = [(s, d) for s in hosts for d in hosts
                   if s != d and (s, d) not in table]
        if missing:
            raise ValueError(
                f"route table incomplete: missing {len(missing)} "
                f"pair(s), first {missing[0]}")
        self.topology = spec
        self._route_table = {pair: list(route)
                             for pair, route in table.items()}

    @property
    def route_table(self) -> Optional[dict[tuple[str, str], list[int]]]:
        """The installed route table, or ``None`` for hand-built fabrics."""
        return self._route_table

    def compute_route(self, src: str, dst: str) -> list[int]:
        """Source-route bytes (one per switch hop) from ``src`` to ``dst``.

        Ground truth used by the mapping LCP.  Serves the installed
        topology route table when one exists; otherwise falls back to
        deterministic shortest path (BFS, neighbours explored in natural
        name order, so ties break identically on every run).  Raises if
        no path exists.
        """
        if src == dst:
            return []
        if self._route_table is not None:
            try:
                return list(self._route_table[(src, dst)])
            except KeyError:
                raise ValueError(
                    f"no installed route {src!r} -> {dst!r} "
                    f"(topology {self.topology!r})") from None
        path = self._shortest_path(src, dst)
        route: list[int] = []
        for here, there in zip(path[1:-1], path[2:]):
            # 'here' is a switch; find its output port toward 'there'.
            ports = self.graph.edges[here, there]["ports"]
            route.append(ports[here])
        # Sanity: intermediate nodes must all be switches.
        for node in path[1:-1]:
            if node not in self.switches:
                raise ValueError(
                    f"path {path} routes through host {node}")
        return route

    def _shortest_path(self, src: str, dst: str) -> list[str]:
        """BFS shortest path with deterministic (natural-order) ties."""
        if src not in self.graph or dst not in self.graph:
            raise ValueError(f"unknown device in {src!r} -> {dst!r}")
        parents: dict[str, Optional[str]] = {src: None}
        frontier = [src]
        while frontier and dst not in parents:
            nxt: list[str] = []
            for node in frontier:
                for neigh in sorted(self.graph[node], key=natural_key):
                    if neigh not in parents:
                        parents[neigh] = node
                        nxt.append(neigh)
            frontier = nxt
        if dst not in parents:
            raise ValueError(f"no path {src!r} -> {dst!r}")
        path = [dst]
        while parents[path[-1]] is not None:
            path.append(parents[path[-1]])  # type: ignore[arg-type]
        path.reverse()
        return path

    def hop_count(self, src: str, dst: str) -> int:
        if src == dst:
            return 0
        if self._route_table is not None and (src, dst) in self._route_table:
            # switch hops + the final switch→host cable
            return len(self._route_table[(src, dst)]) + 1
        return len(self._shortest_path(src, dst)) - 1

    def port_neighbor(self, device: str, port: int) -> Optional[str]:
        """The device cabled to ``device``'s ``port`` (None if uncabled)."""
        return self._port_map.get(device, {}).get(port)

    def host_uplink(self, host: str) -> str:
        """The switch (or peer) a host's single cable runs to."""
        ports = self._port_map.get(host)
        if not ports:
            raise ValueError(f"host {host!r} is not cabled")
        return next(iter(ports.values()))

    @property
    def host_names(self) -> list[str]:
        """Hosts in index order (natural sort: node9 before node10)."""
        return sorted(self.hosts, key=natural_key)

    # -- fault-injection surface ----------------------------------------------
    @property
    def links(self) -> list[Link]:
        """All unidirectional links in the fabric (fault-injection surface)."""
        return list(self._links)

    def find_link(self, name: str) -> Link:
        """Look up a unidirectional link by its ``src->dst`` name."""
        for link in self._links:
            if link.name == name:
                return link
        raise KeyError(f"no link named {name!r} "
                       f"(have: {[l.name for l in self._links]})")

    def cable_links(self, a: str, b: str) -> list[Link]:
        """Both directions of the full-duplex cable between two devices."""
        found = [l for l in self._links
                 if l.name in (f"{a}->{b}", f"{b}->{a}")]
        if not found:
            raise KeyError(f"no cable between {a!r} and {b!r}")
        return found

    def links_of(self, device: str) -> list[Link]:
        """Every unidirectional link touching ``device`` (either end)."""
        found = [l for l in self._links if device in l.name.split("->")]
        if not found:
            raise KeyError(f"no links touch device {device!r}")
        return found

    # -- deprecated canned topologies -----------------------------------------
    # The declarative replacements live in repro.hw.myrinet.topology:
    #   topology.build(topology.SingleSwitchSpec(nhosts_=n), env, params)
    #   topology.build("dual:8", env)
    @classmethod
    def single_switch(cls, env: Environment, nhosts: int,
                      link_params: LinkParams | None = None,
                      switch_ports: int = 8) -> "MyrinetNetwork":
        """Deprecated shim for ``topology.build(SingleSwitchSpec(...))``."""
        warnings.warn(
            "MyrinetNetwork.single_switch() is deprecated; use "
            "repro.hw.myrinet.topology.build(SingleSwitchSpec(nhosts_=n, "
            "switch_ports=p), env, link_params)",
            DeprecationWarning, stacklevel=2)
        from repro.hw.myrinet import topology
        if nhosts > switch_ports:
            raise ValueError("more hosts than switch ports")
        return topology.build(
            topology.SingleSwitchSpec(nhosts_=nhosts,
                                      switch_ports=switch_ports),
            env, link_params)

    @classmethod
    def dual_switch(cls, env: Environment, nhosts: int,
                    link_params: LinkParams | None = None) -> "MyrinetNetwork":
        """Deprecated shim for ``topology.build(DualSwitchSpec(...))``."""
        warnings.warn(
            "MyrinetNetwork.dual_switch() is deprecated; use "
            "repro.hw.myrinet.topology.build(DualSwitchSpec(nhosts_=n), "
            "env, link_params)",
            DeprecationWarning, stacklevel=2)
        from repro.hw.myrinet import topology
        return topology.build(topology.DualSwitchSpec(nhosts_=nhosts),
                              env, link_params)
