"""Topology container: hosts, switches, cables, and route computation.

The network-mapping LCP of section 4.3 discovers the topology at boot and
builds static routing tables.  Our fabric object *is* the ground truth the
mapping LCP discovers: it holds the device graph (networkx) and can compute
the source-route byte string between any two hosts — but protocol code
never calls :meth:`compute_route` directly; it goes through the mapping LCP
(:mod:`repro.vmmc.mapping_lcp`) exactly as the paper's daemons do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import networkx as nx

from repro.sim import Environment
from repro.hw.myrinet.link import Link, LinkParams
from repro.hw.myrinet.packet import MyrinetPacket
from repro.hw.myrinet.switch import Switch


@dataclass
class PortRef:
    """A (device name, port number) endpoint of a cable."""

    device: str
    port: int = 0


@dataclass
class _HostPort:
    """A host attachment point: one full-duplex cable to the fabric."""

    name: str
    out_link: Optional[Link] = None
    sink: Optional[Callable[[MyrinetPacket], object]] = None
    queued: list = field(default_factory=list)

    def receive(self, packet: MyrinetPacket):
        if self.sink is None:
            # NIC not attached yet (e.g. during fabric construction).
            self.queued.append(packet)
            return None
        return self.sink(packet)


class MyrinetNetwork:
    """The switched fabric: devices, cables, and route computation."""

    def __init__(self, env: Environment, link_params: LinkParams | None = None):
        self.env = env
        self.link_params = link_params or LinkParams()
        self.graph = nx.Graph()
        self.switches: dict[str, Switch] = {}
        self.hosts: dict[str, _HostPort] = {}
        self._links: list[Link] = []

    # -- construction ---------------------------------------------------------
    def add_switch(self, name: str, nports: int = 8) -> Switch:
        if name in self.switches or name in self.hosts:
            raise ValueError(f"duplicate device name {name!r}")
        switch = Switch(self.env, nports=nports, name=name)
        self.switches[name] = switch
        self.graph.add_node(name, kind="switch")
        return switch

    def add_host(self, name: str) -> str:
        if name in self.switches or name in self.hosts:
            raise ValueError(f"duplicate device name {name!r}")
        self.hosts[name] = _HostPort(name)
        self.graph.add_node(name, kind="host")
        return name

    def attach_host_sink(self, name: str,
                         sink: Callable[[MyrinetPacket], object]) -> None:
        """Register the NIC's receive entry point for host ``name``."""
        port = self.hosts[name]
        port.sink = sink
        for packet in port.queued:
            result = sink(packet)
            if hasattr(result, "__next__"):
                self.env.process(result)
        port.queued.clear()

    def connect(self, a: PortRef, b: PortRef,
                link_params: LinkParams | None = None) -> None:
        """Run a full-duplex cable between two endpoints."""
        params = link_params or self.link_params
        # Distinct RNG streams per link come from the name-derived seed
        # fallback in Link: two hops must never flip the same bit and
        # silently cancel an injected error.
        link_ab = Link(self.env, params, name=f"{a.device}->{b.device}")
        link_ba = Link(self.env, params, name=f"{b.device}->{a.device}")
        self._links += [link_ab, link_ba]
        link_ab.connect(self._sink_of(b))
        link_ba.connect(self._sink_of(a))
        self._outlet_of(a, link_ab)
        self._outlet_of(b, link_ba)
        self.graph.add_edge(a.device, b.device,
                            ports={a.device: a.port, b.device: b.port})

    def _sink_of(self, ref: PortRef) -> Callable[[MyrinetPacket], object]:
        if ref.device in self.switches:
            return self.switches[ref.device].receive
        return self.hosts[ref.device].receive

    def _outlet_of(self, ref: PortRef, link: Link) -> None:
        if ref.device in self.switches:
            self.switches[ref.device].attach_output(ref.port, link)
        else:
            host = self.hosts[ref.device]
            if host.out_link is not None:
                raise ValueError(f"host {ref.device} already cabled")
            host.out_link = link

    # -- use ------------------------------------------------------------------------
    def inject(self, host: str, packet: MyrinetPacket):
        """Process: host NIC puts a packet on its outgoing cable."""
        out = self.hosts[host].out_link
        if out is None:
            raise RuntimeError(f"host {host} is not cabled to the fabric")
        packet.injected_at = self.env.now
        return out.transmit(packet)

    def compute_route(self, src: str, dst: str) -> list[int]:
        """Source-route bytes (one per switch hop) from ``src`` to ``dst``.

        Ground truth used by the mapping LCP; raises if no path exists.
        """
        if src == dst:
            return []
        path = nx.shortest_path(self.graph, src, dst)
        route: list[int] = []
        for here, there in zip(path[1:-1], path[2:]):
            # 'here' is a switch; find its output port toward 'there'.
            ports = self.graph.edges[here, there]["ports"]
            route.append(ports[here])
        # Sanity: intermediate nodes must all be switches.
        for node in path[1:-1]:
            if node not in self.switches:
                raise ValueError(
                    f"path {path} routes through host {node}")
        return route

    def hop_count(self, src: str, dst: str) -> int:
        return len(nx.shortest_path(self.graph, src, dst)) - 1

    @property
    def host_names(self) -> list[str]:
        return sorted(self.hosts)

    # -- fault-injection surface ----------------------------------------------
    @property
    def links(self) -> list[Link]:
        """All unidirectional links in the fabric (fault-injection surface)."""
        return list(self._links)

    def find_link(self, name: str) -> Link:
        """Look up a unidirectional link by its ``src->dst`` name."""
        for link in self._links:
            if link.name == name:
                return link
        raise KeyError(f"no link named {name!r} "
                       f"(have: {[l.name for l in self._links]})")

    def cable_links(self, a: str, b: str) -> list[Link]:
        """Both directions of the full-duplex cable between two devices."""
        found = [l for l in self._links
                 if l.name in (f"{a}->{b}", f"{b}->{a}")]
        if not found:
            raise KeyError(f"no cable between {a!r} and {b!r}")
        return found

    # -- canned topologies ---------------------------------------------------------
    @classmethod
    def single_switch(cls, env: Environment, nhosts: int,
                      link_params: LinkParams | None = None,
                      switch_ports: int = 8) -> "MyrinetNetwork":
        """The paper's testbed: N hosts on one M2F-SW8 switch."""
        if nhosts > switch_ports:
            raise ValueError("more hosts than switch ports")
        net = cls(env, link_params)
        net.add_switch("sw0", nports=switch_ports)
        for i in range(nhosts):
            name = net.add_host(f"node{i}")
            net.connect(PortRef(name, 0), PortRef("sw0", i))
        return net

    @classmethod
    def dual_switch(cls, env: Environment, nhosts: int,
                    link_params: LinkParams | None = None) -> "MyrinetNetwork":
        """Two cascaded 8-port switches (tests multi-hop routing)."""
        net = cls(env, link_params)
        net.add_switch("sw0")
        net.add_switch("sw1")
        net.connect(PortRef("sw0", 7), PortRef("sw1", 7))
        for i in range(nhosts):
            name = net.add_host(f"node{i}")
            switch = "sw0" if i < nhosts // 2 else "sw1"
            net.connect(PortRef(name, 0), PortRef(switch, i % 7))
        return net
