"""Myrinet crossbar switch (the testbed used the 8-port M2F-SW8).

Source routing: each arriving packet surrenders one route byte naming the
output port.  The crossbar is non-blocking — distinct output ports forward
concurrently — but each output port serialises (back-pressure), modelled by
a per-port resource.  Cut-through adds a small per-hop latency.
"""

from __future__ import annotations

from typing import Optional

from repro.sim import Environment, Resource
from repro.sim.trace import emit
from repro.obs.metrics import count
from repro.hw.myrinet.link import Link
from repro.hw.myrinet.packet import MyrinetPacket

#: Per-hop cut-through latency of the crossbar (Myricom quotes ~550 ns
#: including fall-through on this generation of switches).
SWITCH_LATENCY_NS = 550


class PortRangeError(ValueError):
    """A port number is outside a switch's radix.

    Carries ``switch`` (the device name — essential in multi-switch
    fabrics where every crossbar has ports 0..N), ``port``, and
    ``nports`` so callers and tests can discriminate without parsing
    the message.
    """

    def __init__(self, switch: str, port: int, nports: int):
        super().__init__(
            f"{switch}: port {port} out of range 0..{nports - 1}")
        self.switch = switch
        self.port = port
        self.nports = nports


class Switch:
    """An ``nports``-port crossbar with source routing."""

    def __init__(self, env: Environment, nports: int = 8,
                 name: str = "switch", latency_ns: int = SWITCH_LATENCY_NS):
        self.env = env
        self.nports = nports
        self.name = name
        self.latency_ns = latency_ns
        self._out_links: list[Optional[Link]] = [None] * nports
        self._out_ports = [Resource(env, capacity=1) for _ in range(nports)]
        #: port → number of outstanding down-faults (absent == up).
        #: Depth-counted so overlapping campaigns compose: the port only
        #: forwards again once every overlapping fault has cleared.
        self._down_ports: dict[int, int] = {}
        self.packets_forwarded = 0
        self.drops = 0
        self.port_down_drops = 0

    def attach_output(self, port: int, link: Link) -> None:
        """Connect the outgoing side of ``port`` to a link."""
        self._check_port(port)
        self._out_links[port] = link

    # -- fault hooks ----------------------------------------------------------
    def set_port_down(self, port: int) -> None:
        """Disable an output port: worms routed to it are dropped by the
        crossbar exactly like worms naming an unconnected port.
        Depth-counted — each call stacks one down-fault on the port."""
        self._check_port(port)
        self._down_ports[port] = self._down_ports.get(port, 0) + 1
        emit(self.env, f"{self.name}.port_down", port=port,
             depth=self._down_ports[port])

    def set_port_up(self, port: int) -> None:
        """Release one down-fault on ``port``; the port forwards again
        only at depth 0 (stray extra calls are harmless)."""
        self._check_port(port)
        depth = self._down_ports.get(port, 0)
        if depth <= 1:
            self._down_ports.pop(port, None)
        else:
            self._down_ports[port] = depth - 1
        emit(self.env, f"{self.name}.port_up", port=port,
             depth=self._down_ports.get(port, 0))

    def port_down_depth(self, port: int) -> int:
        """How many overlapping down-faults currently hold ``port``."""
        self._check_port(port)
        return self._down_ports.get(port, 0)

    def port_is_up(self, port: int) -> bool:
        self._check_port(port)
        return port not in self._down_ports

    def receive(self, packet: MyrinetPacket):
        """Sink for incoming links: route and forward (generator)."""
        port = packet.next_port()
        self._check_port(port)
        link = self._out_links[port]
        if link is None:
            # Route byte names an unconnected port: the worm is dropped by
            # the hardware (this is what the mapping phase repairs).
            self.drops += 1
            count(self.env, "switch.drops", switch=self.name,
                  reason="unconnected")
            emit(self.env, f"{self.name}.drop", port=port)
            return
        if port in self._down_ports:
            # Faulted output port: the crossbar sinks the worm silently.
            self.drops += 1
            self.port_down_drops += 1
            count(self.env, "switch.drops", switch=self.name,
                  reason="port_down")
            emit(self.env, f"{self.name}.drop_port_down", port=port)
            return
        with self._out_ports[port].request() as req:
            yield req
            yield self.env.timeout(self.latency_ns)
            self.packets_forwarded += 1
            count(self.env, "switch.forwarded", switch=self.name)
            emit(self.env, f"{self.name}.forward", port=port,
                 bytes=packet.wire_bytes)
            yield link.transmit(packet)

    def _check_port(self, port: int) -> None:
        if not 0 <= port < self.nports:
            raise PortRangeError(self.name, port, self.nports)
