"""Myrinet fabric: links, switches, packets, CRC, topology.

Models the properties the paper relies on (section 3):

* point-to-point links delivering 1.28 Gb/s (160 MB/s) each direction,
* source routing — the packet carries one route byte per switch hop,
  consumed on the way (we keep consumed bytes accounted for sizing),
* cut-through (wormhole) switching with a sub-microsecond per-hop latency,
* in-order delivery on any fixed route,
* hardware CRC-8 appended on send and checked on arrival, with a very low
  bit error rate; errors are *detected but not recovered* (section 4.2),
* back-pressure flow control (a blocked output port stalls the worm).

Fabrics beyond the paper's testbed come from the declarative topology
layer (:mod:`repro.hw.myrinet.topology`): fat-tree/Clos and 2-D
mesh/torus generators with per-topology deadlock-free source routing,
proven cycle-free by a channel-dependency-graph check at build time.
"""

from repro.hw.myrinet.crc import crc8
from repro.hw.myrinet.packet import MyrinetPacket, PacketHeader
from repro.hw.myrinet.link import Link, LinkParams
from repro.hw.myrinet.switch import PortRangeError, Switch
from repro.hw.myrinet.network import MyrinetNetwork, PortRef, natural_key
from repro.hw.myrinet.topology import (
    DualSwitchSpec,
    FatTreeSpec,
    MeshSpec,
    RoutingDeadlockError,
    SingleSwitchSpec,
    TopologyError,
    TopologySpec,
)

__all__ = [
    "DualSwitchSpec",
    "FatTreeSpec",
    "Link",
    "LinkParams",
    "MeshSpec",
    "MyrinetNetwork",
    "MyrinetPacket",
    "PacketHeader",
    "PortRangeError",
    "PortRef",
    "RoutingDeadlockError",
    "SingleSwitchSpec",
    "Switch",
    "TopologyError",
    "TopologySpec",
    "crc8",
    "natural_key",
]
