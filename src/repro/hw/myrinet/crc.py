"""CRC-8 as computed by the Myrinet link hardware.

Myrinet appends an 8-bit CRC to every packet on send and checks it on
arrival (paper section 3).  We use the CRC-8/ATM (HEC) polynomial
x^8 + x^2 + x + 1 (0x07), table-driven, computed over the real bytes the
packet carries — so wire-level bit-flip injection is genuinely detected.
"""

from __future__ import annotations

import numpy as np

_POLY = 0x07


def _build_table() -> np.ndarray:
    table = np.zeros(256, dtype=np.uint8)
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = ((crc << 1) ^ _POLY) & 0xFF if crc & 0x80 else (crc << 1) & 0xFF
        table[byte] = crc
    return table


_TABLE = _build_table()

# -- vectorized evaluation --------------------------------------------------
# The table step crc' = T[crc ^ b] is GF(2)-affine with T[0] == 0, so T is
# linear: T[a ^ b] == T[a] ^ T[b].  Unrolling n steps,
#
#     crc_n = T^n[initial]  ^  XOR_{i<n} T^(n-i)[data[i]]
#
# i.e. each byte's contribution is independent — a gather from the
# power-table stack Z[k] = T^k followed by an XOR reduction, which numpy
# does in bulk.  Buffers longer than the stack are folded chunk by chunk
# (crc' = Z[m][crc] ^ contributions), so the stack stays at
# ``(_CHUNK + 1) * 256`` bytes (~1 MB) regardless of message size.  This
# is the link pipeline's hot path (every packet is sealed and checked);
# the byte loop below remains as the small-buffer fast path and the
# reference the tests hold the vector form to.

#: Chunk size for the vectorized path == height of the power-table stack.
_CHUNK = 4096
#: Below this the plain Python loop beats numpy's fixed overhead.
_SMALL = 64

_POWERS: np.ndarray | None = None
_DESC = np.arange(_CHUNK, 0, -1)


def _build_powers() -> np.ndarray:
    powers = np.empty((_CHUNK + 1, 256), dtype=np.uint8)
    powers[0] = np.arange(256, dtype=np.uint8)
    for k in range(1, _CHUNK + 1):
        powers[k] = _TABLE[powers[k - 1]]
    return powers


def _crc8_loop(buf: np.ndarray, crc: int) -> int:
    for byte in buf.tolist():
        crc = int(_TABLE[crc ^ byte])
    return crc


def crc8(data: bytes | bytearray | np.ndarray, initial: int = 0) -> int:
    """CRC-8/ATM over ``data``; returns a value in [0, 255]."""
    global _POWERS
    buf = np.frombuffer(bytes(data), dtype=np.uint8) \
        if isinstance(data, (bytes, bytearray)) \
        else np.asarray(data, dtype=np.uint8)
    crc = initial & 0xFF
    if buf.size < _SMALL:
        return _crc8_loop(buf, crc)
    if _POWERS is None:
        _POWERS = _build_powers()
    for start in range(0, buf.size, _CHUNK):
        chunk = buf[start:start + _CHUNK]
        m = chunk.size
        crc = int(_POWERS[m, crc]) ^ int(np.bitwise_xor.reduce(
            _POWERS[_DESC[_CHUNK - m:], chunk]))
    return crc


def crc8_check(data: bytes | np.ndarray, expected: int) -> bool:
    """True iff the CRC of ``data`` equals ``expected``."""
    return crc8(data) == (expected & 0xFF)
