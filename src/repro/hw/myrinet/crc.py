"""CRC-8 as computed by the Myrinet link hardware.

Myrinet appends an 8-bit CRC to every packet on send and checks it on
arrival (paper section 3).  We use the CRC-8/ATM (HEC) polynomial
x^8 + x^2 + x + 1 (0x07), table-driven, computed over the real bytes the
packet carries — so wire-level bit-flip injection is genuinely detected.
"""

from __future__ import annotations

import numpy as np

_POLY = 0x07


def _build_table() -> np.ndarray:
    table = np.zeros(256, dtype=np.uint8)
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = ((crc << 1) ^ _POLY) & 0xFF if crc & 0x80 else (crc << 1) & 0xFF
        table[byte] = crc
    return table


_TABLE = _build_table()


def crc8(data: bytes | bytearray | np.ndarray, initial: int = 0) -> int:
    """CRC-8/ATM over ``data``; returns a value in [0, 255]."""
    buf = np.frombuffer(bytes(data), dtype=np.uint8) \
        if isinstance(data, (bytes, bytearray)) \
        else np.asarray(data, dtype=np.uint8)
    crc = initial & 0xFF
    for byte in buf.tolist():
        crc = int(_TABLE[crc ^ byte])
    return crc


def crc8_check(data: bytes | np.ndarray, expected: int) -> bool:
    """True iff the CRC of ``data`` equals ``expected``."""
    return crc8(data) == (expected & 0xFF)
