"""Destination proxy space (section 2).

Imported receive buffers are mapped into a *destination proxy space* — "a
logically separate special address space in each sender process" (the
Myrinet implementation uses a separate space, not a subset of the sender's
virtual addresses).  Proxy addresses are not backed by local memory; they
only designate transfer destinations and are translated by VMMC (via the
outgoing page table) into a destination machine, process and memory
address.

The proxy space is a simple page-granular allocator over the outgoing
page table's index range: importing an N-page buffer reserves N
consecutive proxy pages, so ``proxy_address = proxy_page * 4096 + offset``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mem.virtual import PAGE_SIZE
from repro.vmmc.errors import ProxyFault


@dataclass(frozen=True)
class ProxyRegion:
    """A consecutive run of proxy pages backing one imported buffer."""

    first_page: int
    npages: int
    nbytes: int

    @property
    def base_address(self) -> int:
        return self.first_page * PAGE_SIZE

    def address(self, offset: int) -> int:
        """Proxy address of ``offset`` bytes into the imported buffer."""
        if not 0 <= offset < self.nbytes:
            raise ProxyFault(
                f"offset {offset} outside imported buffer of {self.nbytes}")
        return self.base_address + offset


class ProxySpace:
    """Per-process proxy-page allocator (bounded by the outgoing table)."""

    def __init__(self, npages: int):
        self.npages = npages
        self._cursor = 0
        self._regions: list[ProxyRegion] = []

    def reserve(self, nbytes: int) -> ProxyRegion:
        """Reserve proxy pages for an ``nbytes`` import."""
        if nbytes <= 0:
            raise ProxyFault("import size must be positive")
        npages = (nbytes + PAGE_SIZE - 1) // PAGE_SIZE
        if self._cursor + npages > self.npages:
            raise ProxyFault(
                f"proxy space exhausted: need {npages} pages, "
                f"{self.npages - self._cursor} left "
                f"(the {self.npages * PAGE_SIZE >> 20} MB import limit)")
        region = ProxyRegion(self._cursor, npages, nbytes)
        self._cursor += npages
        self._regions.append(region)
        return region

    @property
    def pages_reserved(self) -> int:
        return self._cursor

    @staticmethod
    def split(proxy_address: int) -> tuple[int, int]:
        """Proxy address → (proxy page, offset within page)."""
        if proxy_address < 0:
            raise ProxyFault(f"negative proxy address {proxy_address:#x}")
        return proxy_address // PAGE_SIZE, proxy_address % PAGE_SIZE
