"""Destination proxy space (section 2).

Imported receive buffers are mapped into a *destination proxy space* — "a
logically separate special address space in each sender process" (the
Myrinet implementation uses a separate space, not a subset of the sender's
virtual addresses).  Proxy addresses are not backed by local memory; they
only designate transfer destinations and are translated by VMMC (via the
outgoing page table) into a destination machine, process and memory
address.

The proxy space is a simple page-granular allocator over the outgoing
page table's index range: importing an N-page buffer reserves N
consecutive proxy pages, so ``proxy_address = proxy_page * 4096 + offset``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mem.virtual import PAGE_SIZE
from repro.vmmc.errors import ProxyFault


@dataclass(frozen=True)
class ProxyRegion:
    """A consecutive run of proxy pages backing one imported buffer."""

    first_page: int
    npages: int
    nbytes: int

    @property
    def base_address(self) -> int:
        return self.first_page * PAGE_SIZE

    def address(self, offset: int) -> int:
        """Proxy address of ``offset`` bytes into the imported buffer."""
        if not 0 <= offset < self.nbytes:
            raise ProxyFault(
                f"offset {offset} outside imported buffer of {self.nbytes}")
        return self.base_address + offset


class ProxySpace:
    """Per-process proxy-page allocator (bounded by the outgoing table)."""

    def __init__(self, npages: int):
        self.npages = npages
        self._cursor = 0
        self._regions: list[ProxyRegion] = []
        #: Released (first_page, npages) runs, reusable under pressure.
        self._free: list[tuple[int, int]] = []

    def reserve(self, nbytes: int) -> ProxyRegion:
        """Reserve proxy pages for an ``nbytes`` import.

        Virgin pages are preferred (a re-import after an ``unimport`` or
        invalidation lands on a *fresh* proxy range, so raw addresses into
        the dead region can never alias the new one); released runs are
        reused only when the cursor is exhausted.
        """
        if nbytes <= 0:
            raise ProxyFault("import size must be positive")
        npages = (nbytes + PAGE_SIZE - 1) // PAGE_SIZE
        if self._cursor + npages <= self.npages:
            region = ProxyRegion(self._cursor, npages, nbytes)
            self._cursor += npages
        else:
            region = self._reserve_from_free(npages, nbytes)
        self._regions.append(region)
        return region

    def _reserve_from_free(self, npages: int, nbytes: int) -> ProxyRegion:
        """First-fit over released runs (only once virgin space is gone)."""
        for i, (first, run) in enumerate(self._free):
            if run >= npages:
                if run == npages:
                    del self._free[i]
                else:
                    self._free[i] = (first + npages, run - npages)
                return ProxyRegion(first, npages, nbytes)
        raise ProxyFault(
            f"proxy space exhausted: need {npages} pages, "
            f"{self.npages - self.pages_reserved} left "
            f"(the {self.npages * PAGE_SIZE >> 20} MB import limit)")

    def release(self, region: ProxyRegion) -> None:
        """Return a region's pages (``unimport`` / re-import teardown)."""
        if region not in self._regions:
            raise ProxyFault(f"release of unknown region {region}")
        self._regions.remove(region)
        self._free.append((region.first_page, region.npages))

    @property
    def pages_reserved(self) -> int:
        return self._cursor - sum(run for _, run in self._free)

    @property
    def regions_live(self) -> int:
        return len(self._regions)

    @staticmethod
    def split(proxy_address: int) -> tuple[int, int]:
        """Proxy address → (proxy page, offset within page)."""
        if proxy_address < 0:
            raise ProxyFault(f"negative proxy address {proxy_address:#x}")
        return proxy_address // PAGE_SIZE, proxy_address % PAGE_SIZE
