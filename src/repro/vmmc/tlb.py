"""Two-way set-associative software TLB in LANai SRAM (section 4.5).

On long sends the LANai translates the *source* virtual address of every
page it fetches.  The translations live in a per-process software TLB in
SRAM: two-way set associative, large enough to map 8 MB of address space
with 4 KB pages (2048 entries).  On a miss the LANai interrupts the host;
the VMMC driver pins the pages and inserts translations for up to 32 pages
per interrupt.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.hw.lanai.sram import SRAM

#: 8 MB reach / 4 KB pages = 2048 entries (paper: "can keep translations
#: for up to 8 MBytes of address space assuming 4 KByte pages").
DEFAULT_ENTRIES = 2048
WAYS = 2
#: Translations inserted per miss interrupt (section 4.5).
REFILL_BATCH = 32
#: SRAM bytes per entry: tag word + frame word.
_ENTRY_BYTES = 8


@dataclass
class _Way:
    vpage: int = -1
    frame: int = -1
    lru: int = 0


class SoftwareTLB:
    """Per-process V→P cache maintained by the LCP + driver."""

    def __init__(self, pid: int, nentries: int = DEFAULT_ENTRIES,
                 sram: Optional[SRAM] = None):
        if nentries % WAYS != 0:
            raise ValueError("entry count must be a multiple of the ways")
        self.pid = pid
        self.nentries = nentries
        self.nsets = nentries // WAYS
        self._sets = [[_Way(), _Way()] for _ in range(self.nsets)]
        self._clock = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        if sram is not None:
            sram.alloc(f"tlb.pid{pid}", nentries * _ENTRY_BYTES)

    def _set_of(self, vpage: int) -> list[_Way]:
        return self._sets[vpage % self.nsets]

    def lookup(self, vpage: int) -> Optional[int]:
        """Frame number for ``vpage``, or None on miss."""
        self._clock += 1
        for way in self._set_of(vpage):
            if way.vpage == vpage:
                way.lru = self._clock
                self.hits += 1
                return way.frame
        self.misses += 1
        return None

    def insert(self, vpage: int, frame: int) -> None:
        """Install a translation, evicting the LRU way if the set is full."""
        ways = self._set_of(vpage)
        self._clock += 1
        # Overwrite an existing mapping of the same page if present.
        for way in ways:
            if way.vpage == vpage:
                way.frame = frame
                way.lru = self._clock
                return
        victim = min(ways, key=lambda w: w.lru)
        if victim.vpage != -1:
            self.evictions += 1
        victim.vpage = vpage
        victim.frame = frame
        victim.lru = self._clock

    def invalidate(self, vpage: int) -> bool:
        for way in self._set_of(vpage):
            if way.vpage == vpage:
                way.vpage = -1
                way.frame = -1
                return True
        return False

    def flush(self) -> None:
        for ways in self._sets:
            for way in ways:
                way.vpage = -1
                way.frame = -1

    @property
    def occupancy(self) -> int:
        return sum(1 for ways in self._sets for w in ways if w.vpage != -1)

    @property
    def reach_bytes(self) -> int:
        from repro.mem.virtual import PAGE_SIZE

        return self.nentries * PAGE_SIZE
