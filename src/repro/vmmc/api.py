"""The VMMC basic library — the user-level API (section 2, section 4.1).

"A user program must link with it in order to communicate using VMMC
calls."  The library talks to the local daemon for export/import setup and
posts send requests *directly* to the LANai (programmed I/O into the
process's own send queue) — the operating system is not involved in data
transfer.

The library chooses the short or long request format transparently
(section 4.5) and implements synchronous sends by spinning on the per-slot
completion word that the LANai DMAs into pinned user memory.

Typical user code (a simulation generator)::

    def app(env, ep_sender, ep_receiver, recv_buf):
        yield ep_receiver.export(recv_buf, "inbox")
        imported = yield ep_sender.import_buffer("node1", "inbox")
        src = ep_sender.alloc_buffer(4096)
        src.fill(0x42)
        handle = yield ep_sender.send(src, imported, 4096)   # sync
        # data is now in recv_buf on node1, no receive call needed
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

import numpy as np

from repro.sim import Environment, Event
from repro.sim.trace import emit
from repro.obs.metrics import count, observe
from repro.mem.buffers import UserBuffer
from repro.mem.virtual import PAGE_SIZE
from repro.hostos.process import UserProcess
from repro.vmmc.daemon import ExportRecord, VMMCDaemon
from repro.vmmc.driver import VMMCDriver
from repro.vmmc.errors import SendError, VMMCError
from repro.vmmc.lcp import ProcessContext, VmmcLCP
from repro.vmmc.proxy import ProxyRegion
from repro.vmmc.sendqueue import (
    COMPLETION_DONE,
    SHORT_SEND_LIMIT,
    SendRequest,
)

#: Library-side CPU cost of a SendMsg call before any I/O: argument checks,
#: format decision, slot bookkeeping (P166; calibrated so small synchronous
#: sends cost ≈3 µs as in Figure 4).
LIB_SEND_OVERHEAD_NS = 1_700
#: Library-side CPU cost of the status-check fast path.
LIB_CHECK_OVERHEAD_NS = 250
#: Maximum message size: the outgoing page table limits imported space to
#: 8 MB, which also bounds a single transfer (section 4.4).
MAX_MESSAGE_BYTES = 8 * 1024 * 1024


@dataclass
class ExportHandle:
    """A successfully exported receive buffer."""

    name: str
    buffer: UserBuffer
    record: ExportRecord


class ImportedBuffer:
    """A successfully imported remote receive buffer.

    Proxy addresses for sends are derived from it: ``imported.address(off)``.
    """

    def __init__(self, remote_node: str, name: str, region: ProxyRegion):
        self.remote_node = remote_node
        self.name = name
        self.region = region

    @property
    def nbytes(self) -> int:
        return self.region.nbytes

    def address(self, offset: int = 0) -> int:
        """Destination proxy address ``offset`` bytes into the buffer."""
        return self.region.address(offset)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ImportedBuffer({self.remote_node}:{self.name}, "
                f"{self.nbytes}B @proxy {self.region.base_address:#x})")


@dataclass
class SendHandle:
    """Tracks one posted send."""

    slot: int
    length: int
    is_short: bool
    synchronous: bool
    posted_at: int
    completed_event: Optional[Event] = None

    @property
    def buffer_reusable_immediately(self) -> bool:
        """Short sends copy the data at post time, so the send buffer is
        reusable as soon as the call returns (section 5.3)."""
        return self.is_short


Destination = Union[int, ImportedBuffer, tuple[ImportedBuffer, int]]


class VMMCEndpoint:
    """Per-process handle on VMMC: the linked 'basic library'."""

    def __init__(self, env: Environment, node_name: str,
                 process: UserProcess, ctx: ProcessContext,
                 lcp: VmmcLCP, driver: VMMCDriver, daemon: VMMCDaemon,
                 membus):
        self.env = env
        self.node_name = node_name
        self.process = process
        self.ctx = ctx
        self.lcp = lcp
        self.driver = driver
        self.daemon = daemon
        self.membus = membus
        self.sends_posted = 0

    # -- buffer management ---------------------------------------------------
    def alloc_buffer(self, nbytes: int) -> UserBuffer:
        """Allocate a page-aligned buffer in the process's address space."""
        return UserBuffer.alloc(self.process.space, nbytes)

    # -- export / import --------------------------------------------------------
    def export(self, buffer: UserBuffer, name: str,
               allowed_importers: Optional[list[str]] = None,
               notify_handler: Optional[Callable[[dict], object]] = None):
        """Process: export ``buffer`` as a receive buffer named ``name``.

        ``allowed_importers`` restricts who may import (section 2);
        ``notify_handler`` arms per-message notifications on this buffer
        and registers the user-level handler invoked after delivery.
        """
        def run():
            record = yield self.daemon.export(
                self.process, buffer, name,
                allowed_importers=allowed_importers,
                notify=notify_handler is not None)
            if notify_handler is not None:
                self.driver.register_notify_handler(
                    self.process.pid, record.buffer_id, notify_handler)
            return ExportHandle(name=name, buffer=buffer, record=record)

        return self.env.process(run(), name=f"vmmc.export.{name}")

    def unexport(self, handle: ExportHandle):
        return self.daemon.unexport(self.process, handle.name)

    def import_buffer(self, remote_node: str, name: str):
        """Process: import a remote export; value is an
        :class:`ImportedBuffer` usable as a send destination."""
        def run():
            region = yield self.daemon.import_buffer(
                self.process, remote_node, name)
            return ImportedBuffer(remote_node, name, region)

        return self.env.process(run(), name=f"vmmc.import.{name}")

    # -- SendMsg ------------------------------------------------------------------
    def _proxy_address(self, dest: Destination, dest_offset: int) -> int:
        if isinstance(dest, ImportedBuffer):
            return dest.address(dest_offset)
        if isinstance(dest, tuple):
            imported, base = dest
            return imported.address(base + dest_offset)
        return int(dest) + dest_offset

    def send(self, src: UserBuffer, dest: Destination, nbytes: int | None = None,
             src_offset: int = 0, dest_offset: int = 0,
             synchronous: bool = True, notify: bool = False):
        """Process: ``SendMsg(srcAddr, destAddr, nbytes)`` (section 2).

        Value is a :class:`SendHandle`.  ``synchronous=True`` returns only
        when the send buffer is safely reusable (short: at post; long:
        when the last chunk is in LANai memory and the completion word has
        been observed).  ``synchronous=False`` returns right after
        posting; use :meth:`wait_send` / :meth:`check_send`.
        """
        length = src.nbytes - src_offset if nbytes is None else nbytes
        proxy_address = self._proxy_address(dest, dest_offset)
        src_vaddr = src.vaddr + src_offset

        def run():
            t0 = self.env.now
            if length <= 0:
                raise SendError(f"invalid send length {length}")
            if length > MAX_MESSAGE_BYTES:
                raise SendError(
                    f"send of {length} bytes exceeds the 8 MB limit")
            if src_offset + length > src.nbytes:
                raise SendError("send runs past the end of the source buffer")
            # Library prologue: argument checks + protocol selection.
            yield self.env.timeout(LIB_SEND_OVERHEAD_NS)
            # Flow control: wait for a free slot (spin on the completion
            # word of the oldest outstanding request).
            while not self.ctx.queue.slot_available():
                tail_event = self.ctx.completion_events.get(
                    self.ctx.queue.next_slot())
                if tail_event is not None and not tail_event.triggered:
                    yield tail_event
                else:
                    yield self.env.timeout(500)
                yield self.membus.cacheline_fill()
            slot = self.ctx.queue.reserve()
            completion = self.env.event()
            self.ctx.completion_events[slot] = completion
            is_short = length <= SHORT_SEND_LIMIT
            if is_short:
                data = src.read(src_offset, length)
                request = SendRequest(
                    slot=slot, length=length, proxy_address=proxy_address,
                    is_short=True, inline_data=data, notify=notify,
                    posted_at=self.env.now)
            else:
                request = SendRequest(
                    slot=slot, length=length, proxy_address=proxy_address,
                    is_short=False, src_vaddr=src_vaddr, notify=notify,
                    posted_at=self.env.now)
            # Post with programmed I/O: control words + inline data words.
            yield self.lcp.nic.bus.mmio_write(
                request.control_words + request.data_words)
            self.ctx.queue.post(request)
            self.lcp.doorbell()
            self.sends_posted += 1
            count(self.env, "vmmc.sends_posted", node=self.node_name,
                  short=is_short)
            emit(self.env, "vmmc.send.posted", node=self.node_name,
                 pid=self.process.pid, slot=slot, length=length,
                 short=is_short)
            handle = SendHandle(slot=slot, length=length, is_short=is_short,
                                synchronous=synchronous,
                                posted_at=self.env.now,
                                completed_event=completion)
            if synchronous and not is_short:
                # Spin on the completion cache location (section 4.5).
                status = yield completion
                yield self.membus.cacheline_fill()
                if status != COMPLETION_DONE:
                    raise SendError(
                        f"send failed with completion status {status}")
            if synchronous:
                observe(self.env, "vmmc.send.sync_ns", self.env.now - t0,
                        node=self.node_name)
            return handle

        return self.env.process(run(), name="vmmc.send")

    def wait_send(self, handle: SendHandle):
        """Process: block until an asynchronous send's buffer is reusable."""
        def run():
            event = handle.completed_event
            if event is not None and not event.triggered:
                status = yield event
            else:
                status = self.ctx.last_status.get(handle.slot,
                                                  COMPLETION_DONE)
            yield self.membus.cacheline_fill()
            if status != COMPLETION_DONE and status is not None:
                raise SendError(
                    f"send failed with completion status {status}")

        return self.env.process(run(), name="vmmc.wait_send")

    def check_send(self, handle: SendHandle):
        """Process: non-blocking completion probe; value is a bool.

        Reads the completion word from (cached) host memory — no device
        access, just the library fast path.
        """
        def run():
            yield self.env.timeout(LIB_CHECK_OVERHEAD_NS)
            event = handle.completed_event
            return handle.is_short or (event is not None and event.triggered)

        return self.env.process(run(), name="vmmc.check_send")

    # -- receive-side helpers -------------------------------------------------------
    def watch(self, buffer: UserBuffer, offset: int = 0,
              nbytes: int | None = None) -> Event:
        """Event that fires when a device write lands in the given range of
        an exported buffer — the primitive behind spin-waiting receivers.

        VMMC has no receive *operation*; a receiver that passes control
        simply spins on the memory it exported.  The returned event models
        the moment the spinner's cache line is invalidated by the DMA.
        """
        span = buffer.nbytes - offset if nbytes is None else nbytes
        event = self.env.event()
        memory = self.process.space.memory
        # The watched virtual range may span physically scattered frames.
        for paddr, length in buffer.space.physical_extents(
                buffer.vaddr + offset, span):
            memory.add_watch(paddr, length, event)
        return event

    def spin_recv(self, buffer: UserBuffer, offset: int = 0,
                  nbytes: int | None = None):
        """Process: spin until data is deposited in the watched range,
        charging the cache-line fill the spinner pays to observe it."""
        watch_event = self.watch(buffer, offset, nbytes)

        def run():
            yield watch_event
            yield self.membus.cacheline_fill()

        return self.env.process(run(), name="vmmc.spin_recv")
