"""The VMMC basic library — the user-level API (section 2, section 4.1).

"A user program must link with it in order to communicate using VMMC
calls."  The library talks to the local daemon for export/import setup and
posts send requests *directly* to the LANai (programmed I/O into the
process's own send queue) — the operating system is not involved in data
transfer.

The library chooses the short or long request format transparently
(section 4.5) and implements synchronous sends by spinning on the per-slot
completion word that the LANai DMAs into pinned user memory.

Import/export lifecycle (extension beyond the paper)
----------------------------------------------------
Export-import relations are no longer fire-and-forget.  Both
:class:`ExportHandle` and :class:`ImportedBuffer` carry a
:class:`LifecycleState`::

    ACTIVE ──(peer/local daemon cold restart)──> STALE ──┬─> REESTABLISHED
       │                                                 │   (reimport())
       └───────────────(unimport/unexport)───────────────┴─> REVOKED

Sends to a non-usable import fail *fast* with a typed
:class:`~repro.vmmc.errors.ImportStale` — before any I/O, so data can
never be written through a dangling proxy mapping.  Endpoints can register
``imported.on_invalidate(callback)`` to react to invalidations, and
``imported.reimport()`` re-establishes the relation (fresh proxy region,
fresh outgoing page-table entries, the exporter's current epoch).

Typical user code (a simulation generator)::

    def app(env, ep_sender, ep_receiver, recv_buf):
        yield ep_receiver.export(recv_buf, "inbox")
        imported = yield ep_sender.import_buffer("node1", "inbox")
        src = ep_sender.alloc_buffer(4096)
        src.fill(0x42)
        handle = yield ep_sender.send(src, imported.at(0), 4096)   # sync
        # data is now in recv_buf on node1, no receive call needed
"""

from __future__ import annotations

import enum
import warnings
from dataclasses import dataclass, field
from typing import Callable, Optional, Union

import numpy as np

from repro.sim import Environment, Event
from repro.sim.trace import emit
from repro.obs.metrics import count, observe
from repro.mem.buffers import UserBuffer
from repro.mem.virtual import PAGE_SIZE
from repro.hostos.process import UserProcess
from repro.vmmc.daemon import ExportRecord, ImportGrant, VMMCDaemon
from repro.vmmc.driver import VMMCDriver
from repro.vmmc.errors import (
    CompletionError,
    ImportStale,
    InvalidSendError,
    SendError,
    VMMCError,
)
from repro.vmmc.lcp import ProcessContext, VmmcLCP
from repro.vmmc.proxy import ProxyRegion
from repro.vmmc.sendqueue import (
    COMPLETION_DONE,
    SHORT_SEND_LIMIT,
    SendRequest,
)

#: Library-side CPU cost of a SendMsg call before any I/O: argument checks,
#: format decision, slot bookkeeping (P166; calibrated so small synchronous
#: sends cost ≈3 µs as in Figure 4).
LIB_SEND_OVERHEAD_NS = 1_700
#: Library-side CPU cost of the status-check fast path.
LIB_CHECK_OVERHEAD_NS = 250
#: Maximum message size: the outgoing page table limits imported space to
#: 8 MB, which also bounds a single transfer (section 4.4).
MAX_MESSAGE_BYTES = 8 * 1024 * 1024


class LifecycleState(enum.Enum):
    """Lifecycle of an export-import relation (see module docstring)."""

    ACTIVE = "active"
    STALE = "stale"
    REVOKED = "revoked"
    REESTABLISHED = "reestablished"

    @property
    def usable(self) -> bool:
        return self in (LifecycleState.ACTIVE, LifecycleState.REESTABLISHED)


@dataclass
class ExportHandle:
    """A successfully exported receive buffer (lifecycle-aware)."""

    name: str
    buffer: UserBuffer
    record: ExportRecord
    state: LifecycleState = LifecycleState.ACTIVE
    #: Times this export was re-registered after a daemon cold boot.
    reestablishments: int = 0

    @property
    def usable(self) -> bool:
        return self.state.usable

    def reestablish(self, record: ExportRecord) -> None:
        """Daemon cold boot re-registered this export under a fresh buffer
        id.  Notification arming does **not** survive (the old buffer id's
        registration is dropped) — re-export with a handler to re-arm."""
        self.record = record
        self.state = LifecycleState.REESTABLISHED
        self.reestablishments += 1

    def mark_lost(self) -> None:
        """Daemon cold boot lost this export's registration.  Under lazy
        re-registration (the default) it stays STALE until the first
        import RPC that names it re-installs it (→ REESTABLISHED)."""
        self.state = LifecycleState.STALE

    def revoke(self) -> None:
        self.state = LifecycleState.REVOKED


class ImportedBuffer:
    """A successfully imported remote receive buffer.

    Typed destinations for sends are derived from it:
    ``imported.at(offset)`` (a :class:`ProxyAddress`).  The raw-integer
    form ``imported.address(offset)`` still exists but is deprecated —
    raw addresses cannot be checked for staleness.
    """

    def __init__(self, endpoint: "VMMCEndpoint", remote_node: str,
                 name: str, grant: ImportGrant):
        self._ep = endpoint
        self.remote_node = remote_node
        self.name = name
        self.region: ProxyRegion = grant.region
        #: Exporter-side buffer identity and daemon epoch at grant time.
        self.buffer_id = grant.buffer_id
        self.epoch = grant.epoch
        self.state = LifecycleState.ACTIVE
        #: Why the import went stale (diagnostics; "" while usable).
        self.stale_reason = ""
        #: Completed reimport() count.
        self.reestablishments = 0
        self._invalidate_callbacks: list[Callable[[dict], object]] = []

    # -- lifecycle ---------------------------------------------------------
    @property
    def usable(self) -> bool:
        return self.state.usable

    def on_invalidate(self, callback: Callable[[dict], object]
                      ) -> Callable[[dict], object]:
        """Register a callback fired when this import is invalidated.

        The callback receives ``{"remote_node", "name", "epoch",
        "reason"}``; it runs synchronously at invalidation time (keep it
        cheap — typically it flags the import for re-establishment)."""
        self._invalidate_callbacks.append(callback)
        return callback

    def _mark_stale(self, reason: str, epoch: Optional[int]) -> None:
        self.state = LifecycleState.STALE
        self.stale_reason = reason
        info = {"remote_node": self.remote_node, "name": self.name,
                "epoch": epoch, "reason": reason}
        for callback in self._invalidate_callbacks:
            callback(info)

    def _revoke(self) -> None:
        self.state = LifecycleState.REVOKED
        self.stale_reason = "unimported"

    def _rebind(self, grant: ImportGrant) -> None:
        self.region = grant.region
        self.buffer_id = grant.buffer_id
        self.epoch = grant.epoch
        self.state = LifecycleState.REESTABLISHED
        self.stale_reason = ""
        self.reestablishments += 1

    def reimport(self, timeout_ns: Optional[int] = None):
        """Process: re-establish a stale import (fresh proxy region and
        outgoing entries at the exporter's current epoch).  Convenience
        for :meth:`VMMCEndpoint.reimport`."""
        return self._ep.reimport(self, timeout_ns=timeout_ns)

    # -- addressing --------------------------------------------------------
    @property
    def nbytes(self) -> int:
        return self.region.nbytes

    def at(self, offset: int = 0) -> "ProxyAddress":
        """Typed send destination ``offset`` bytes into the buffer.

        The returned :class:`ProxyAddress` re-resolves through the
        current proxy region on every send, so it stays valid across a
        ``reimport()`` (unlike a raw integer address)."""
        if not 0 <= offset < self.region.nbytes:
            raise VMMCError(
                f"offset {offset} outside imported buffer of "
                f"{self.region.nbytes} bytes")
        return ProxyAddress(self, offset)

    def address(self, offset: int = 0) -> int:
        """Raw destination proxy address (deprecated: prefer :meth:`at`;
        integers cannot fail fast when the import goes stale)."""
        if not self.usable:
            raise ImportStale(
                f"import {self.remote_node}:{self.name} is "
                f"{self.state.value} ({self.stale_reason})",
                remote_node=self.remote_node, name=self.name,
                state=self.state.value, epoch=self.epoch)
        return self.region.address(offset)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ImportedBuffer({self.remote_node}:{self.name}, "
                f"{self.region.nbytes}B @proxy "
                f"{self.region.base_address:#x}, {self.state.value})")


@dataclass(frozen=True)
class ProxyAddress:
    """A typed send destination: an :class:`ImportedBuffer` plus a byte
    offset.  Replaces the untyped ``Union[int, ImportedBuffer, tuple]``
    destination forms (which remain accepted behind a deprecation shim)."""

    imported: ImportedBuffer
    offset: int = 0

    def __add__(self, extra: int) -> "ProxyAddress":
        return ProxyAddress(self.imported, self.offset + extra)

    def resolve(self) -> int:
        """Current raw proxy address (staleness-checked)."""
        return self.imported.address(self.offset)


@dataclass
class SendHandle:
    """Tracks one posted send."""

    slot: int
    length: int
    is_short: bool
    synchronous: bool
    posted_at: int
    completed_event: Optional[Event] = None

    @property
    def buffer_reusable_immediately(self) -> bool:
        """Short sends copy the data at post time, so the send buffer is
        reusable as soon as the call returns (section 5.3)."""
        return self.is_short


Destination = Union[ProxyAddress, ImportedBuffer, int,
                    tuple[ImportedBuffer, int]]


class VMMCEndpoint:
    """Per-process handle on VMMC: the linked 'basic library'."""

    def __init__(self, env: Environment, node_name: str,
                 process: UserProcess, ctx: ProcessContext,
                 lcp: VmmcLCP, driver: VMMCDriver, daemon: VMMCDaemon,
                 membus):
        self.env = env
        self.node_name = node_name
        self.process = process
        self.ctx = ctx
        self.lcp = lcp
        self.driver = driver
        self.daemon = daemon
        self.membus = membus
        self.sends_posted = 0
        self.stale_sends_blocked = 0
        self.reimports = 0
        self._exports: dict[str, ExportHandle] = {}
        self._imports: list[ImportedBuffer] = []
        daemon.register_endpoint(self)

    # -- buffer management ---------------------------------------------------
    def alloc_buffer(self, nbytes: int) -> UserBuffer:
        """Allocate a page-aligned buffer in the process's address space."""
        return UserBuffer.alloc(self.process.space, nbytes)

    # -- export / import --------------------------------------------------------
    def export(self, buffer: UserBuffer, name: str,
               allowed_importers: Optional[list[str]] = None,
               notify_handler: Optional[Callable[[dict], object]] = None):
        """Process: export ``buffer`` as a receive buffer named ``name``.

        ``allowed_importers`` restricts who may import (section 2);
        ``notify_handler`` arms per-message notifications on this buffer
        and registers the user-level handler invoked after delivery.
        """
        def run():
            record = yield self.daemon.export(
                self.process, buffer, name,
                allowed_importers=allowed_importers,
                notify=notify_handler is not None)
            if notify_handler is not None:
                self.driver.register_notify_handler(
                    self.process.pid, record.buffer_id, notify_handler)
            handle = ExportHandle(name=name, buffer=buffer, record=record)
            self._exports[name] = handle
            return handle

        return self.env.process(run(), name=f"vmmc.export.{name}")

    def unexport(self, handle: ExportHandle):
        """Process: withdraw an export and revoke reception rights."""
        def run():
            yield self.daemon.unexport(self.process, handle.name)
            handle.revoke()
            self._exports.pop(handle.name, None)

        return self.env.process(run(), name=f"vmmc.unexport.{handle.name}")

    def export_handles(self) -> list[ExportHandle]:
        """Live export handles (used by the daemon's cold-boot recovery)."""
        return list(self._exports.values())

    def import_buffer(self, remote_node: str, name: str,
                      timeout_ns: Optional[int] = None):
        """Process: import a remote export; value is an
        :class:`ImportedBuffer` usable as a send destination.

        ``timeout_ns`` bounds the wait for the exporting daemon
        (:class:`~repro.vmmc.errors.ImportTimeout` on expiry)."""
        def run():
            grant = yield self.daemon.import_buffer(
                self.process, remote_node, name, timeout_ns=timeout_ns)
            imported = ImportedBuffer(self, remote_node, name, grant)
            self._imports.append(imported)
            return imported

        return self.env.process(run(), name=f"vmmc.import.{name}")

    def unimport(self, imported: ImportedBuffer):
        """Process: release an import (mirror of :meth:`unexport`): clear
        its outgoing page-table entries, return its proxy pages, and mark
        the handle ``REVOKED`` — subsequent sends raise
        :class:`~repro.vmmc.errors.ImportStale`, and a fresh
        :meth:`import_buffer` of the same export yields a fresh region."""
        def run():
            if imported.state is LifecycleState.REVOKED:
                raise VMMCError(
                    f"{imported.remote_node}:{imported.name} is already "
                    "unimported")
            yield self.daemon.unimport(self.process, imported.region)
            imported._revoke()
            if imported in self._imports:
                self._imports.remove(imported)
            count(self.env, "vmmc.unimports", node=self.node_name)
            emit(self.env, "vmmc.import.revoked", node=self.node_name,
                 remote=imported.remote_node, name=imported.name)

        return self.env.process(run(), name=f"vmmc.unimport.{imported.name}")

    def reimport(self, imported: ImportedBuffer,
                 timeout_ns: Optional[int] = None):
        """Process: re-establish a (typically stale) import.

        Acquires a fresh grant from the exporting daemon (new proxy
        region, current epoch), releases the old quarantined region, and
        flips the handle to ``REESTABLISHED`` — existing
        :class:`ProxyAddress` destinations derived from it become valid
        again.  Raises ``ImportDenied``/``ImportTimeout`` when the
        exporter cannot serve (yet); the import stays stale and the call
        may be retried."""
        def run():
            if imported.state is LifecycleState.REVOKED:
                raise ImportStale(
                    f"{imported.remote_node}:{imported.name} was revoked; "
                    "import it afresh with import_buffer()",
                    remote_node=imported.remote_node, name=imported.name,
                    state=imported.state.value, epoch=imported.epoch)
            if imported.usable:
                # Voluntary re-establishment: tear down the live entries
                # first so the old region never aliases the new grant.
                yield self.driver.clear_outgoing_entries(
                    self.process.pid, imported.region.first_page,
                    imported.region.npages)
            old_region = imported.region
            grant = yield self.daemon.import_buffer(
                self.process, imported.remote_node, imported.name,
                timeout_ns=timeout_ns)
            self.ctx.proxy.release(old_region)
            imported._rebind(grant)
            self.reimports += 1
            count(self.env, "vmmc.reimports", node=self.node_name)
            emit(self.env, "vmmc.import.reimport", node=self.node_name,
                 remote=imported.remote_node, name=imported.name,
                 epoch=grant.epoch)
            return imported

        return self.env.process(run(), name=f"vmmc.reimport.{imported.name}")

    # -- invalidation fan-in (called by the local daemon) -------------------
    def invalidate_imports(self, remote_node: Optional[str] = None,
                           epoch: Optional[int] = None,
                           reason: str = "invalidated") -> int:
        """Mark matching live imports ``STALE``: fire their
        ``on_invalidate`` callbacks and tear down their outgoing
        page-table entries.  ``remote_node=None`` matches every import
        (local daemon cold restart); an ``epoch`` guard skips imports
        already granted at-or-after the invalidating epoch (re-delivered
        invalidations are idempotent).  Returns the number invalidated."""
        invalidated = 0
        for imported in list(self._imports):
            if not imported.usable:
                continue
            if remote_node is not None and \
                    imported.remote_node != remote_node:
                continue
            if epoch is not None and remote_node is not None \
                    and imported.epoch >= epoch:
                continue
            imported._mark_stale(reason, epoch)
            # Outgoing entries die with the relation; the proxy region is
            # quarantined (not reused) until reimport()/unimport().
            self.driver.clear_outgoing_entries(
                self.process.pid, imported.region.first_page,
                imported.region.npages)
            invalidated += 1
            count(self.env, "vmmc.imports_invalidated",
                  node=self.node_name)
            emit(self.env, "vmmc.import.stale", node=self.node_name,
                 remote=imported.remote_node, name=imported.name,
                 reason=reason)
        return invalidated

    # -- SendMsg ------------------------------------------------------------------
    def _resolve_destination(self, dest: Destination, dest_offset: int
                             ) -> tuple[int, Optional[ImportedBuffer]]:
        """Destination → (raw proxy address, originating import or None).

        Typed forms (:class:`ProxyAddress`, :class:`ImportedBuffer`) are
        staleness-checked; the legacy raw-integer and tuple forms are
        accepted behind a deprecation shim but cannot fail fast."""
        if isinstance(dest, ProxyAddress):
            origin, offset = dest.imported, dest.offset + dest_offset
        elif isinstance(dest, ImportedBuffer):
            origin, offset = dest, dest_offset
        elif isinstance(dest, tuple):
            warnings.warn(
                "(ImportedBuffer, offset) tuple destinations are "
                "deprecated; use imported.at(offset)",
                DeprecationWarning, stacklevel=4)
            origin, offset = dest[0], dest[1] + dest_offset
        else:
            warnings.warn(
                "raw integer proxy addresses are deprecated (they cannot "
                "be checked for staleness); use imported.at(offset)",
                DeprecationWarning, stacklevel=4)
            return int(dest) + dest_offset, None
        # address() raises ImportStale on a non-usable import — the
        # fail-fast that keeps data out of dangling proxy mappings.
        return origin.address(offset), origin

    def send(self, src: UserBuffer, dest: Destination,
             nbytes: int | None = None,
             src_offset: int = 0, dest_offset: int = 0,
             synchronous: bool = True, notify: bool = False):
        """Process: ``SendMsg(srcAddr, destAddr, nbytes)`` (section 2).

        Value is a :class:`SendHandle`.  ``synchronous=True`` returns only
        when the send buffer is safely reusable (short: at post; long:
        when the last chunk is in LANai memory and the completion word has
        been observed).  ``synchronous=False`` returns right after
        posting; use :meth:`wait_send` / :meth:`check_send`.

        Raises (all :class:`~repro.vmmc.errors.SendError` subclasses):
        :class:`~repro.vmmc.errors.InvalidSendError` on malformed
        arguments, :class:`~repro.vmmc.errors.ImportStale` when ``dest``
        is an invalidated/revoked import (fail-fast, before any I/O),
        :class:`~repro.vmmc.errors.CompletionError` when the LANai
        reports an error completion.
        """
        length = src.nbytes - src_offset if nbytes is None else nbytes
        src_vaddr = src.vaddr + src_offset

        def run():
            t0 = self.env.now
            if length <= 0:
                raise InvalidSendError(f"invalid send length {length}")
            if length > MAX_MESSAGE_BYTES:
                raise InvalidSendError(
                    f"send of {length} bytes exceeds the 8 MB limit")
            if src_offset + length > src.nbytes:
                raise InvalidSendError(
                    "send runs past the end of the source buffer")
            try:
                proxy_address, origin = self._resolve_destination(
                    dest, dest_offset)
            except ImportStale:
                self.stale_sends_blocked += 1
                count(self.env, "vmmc.sends_stale_blocked",
                      node=self.node_name)
                emit(self.env, "vmmc.send.stale_blocked",
                     node=self.node_name, pid=self.process.pid)
                raise
            # Library prologue: argument checks + protocol selection.
            yield self.env.timeout(LIB_SEND_OVERHEAD_NS)
            # Flow control: wait for a free slot (spin on the completion
            # word of the oldest outstanding request).
            while not self.ctx.queue.slot_available():
                tail_event = self.ctx.completion_events.get(
                    self.ctx.queue.next_slot())
                if tail_event is not None and not tail_event.triggered:
                    yield tail_event
                else:
                    yield self.env.timeout(500)
                yield self.membus.cacheline_fill()
            slot = self.ctx.queue.reserve()
            completion = self.env.event()
            self.ctx.completion_events[slot] = completion
            is_short = length <= SHORT_SEND_LIMIT
            if is_short:
                data = src.read(src_offset, length)
                request = SendRequest(
                    slot=slot, length=length, proxy_address=proxy_address,
                    is_short=True, inline_data=data, notify=notify,
                    posted_at=self.env.now)
            else:
                request = SendRequest(
                    slot=slot, length=length, proxy_address=proxy_address,
                    is_short=False, src_vaddr=src_vaddr, notify=notify,
                    posted_at=self.env.now)
            # Post with programmed I/O: control words + inline data words.
            yield self.lcp.nic.bus.mmio_write(
                request.control_words + request.data_words)
            self.ctx.queue.post(request)
            self.lcp.doorbell()
            self.sends_posted += 1
            count(self.env, "vmmc.sends_posted", node=self.node_name,
                  short=is_short)
            emit(self.env, "vmmc.send.posted", node=self.node_name,
                 pid=self.process.pid, slot=slot, length=length,
                 short=is_short)
            handle = SendHandle(slot=slot, length=length, is_short=is_short,
                                synchronous=synchronous,
                                posted_at=self.env.now,
                                completed_event=completion)
            if synchronous and not is_short:
                # Spin on the completion cache location (section 4.5).
                status = yield completion
                yield self.membus.cacheline_fill()
                if status != COMPLETION_DONE:
                    raise CompletionError(
                        f"send failed with completion status {status}",
                        status=status)
            if synchronous:
                observe(self.env, "vmmc.send.sync_ns", self.env.now - t0,
                        node=self.node_name)
            return handle

        return self.env.process(run(), name="vmmc.send")

    def wait_send(self, handle: SendHandle):
        """Process: block until an asynchronous send's buffer is reusable."""
        def run():
            event = handle.completed_event
            if event is not None and not event.triggered:
                status = yield event
            else:
                status = self.ctx.last_status.get(handle.slot,
                                                  COMPLETION_DONE)
            yield self.membus.cacheline_fill()
            if status != COMPLETION_DONE and status is not None:
                raise CompletionError(
                    f"send failed with completion status {status}",
                    status=status)

        return self.env.process(run(), name="vmmc.wait_send")

    def check_send(self, handle: SendHandle):
        """Process: non-blocking completion probe; value is a bool.

        Reads the completion word from (cached) host memory — no device
        access, just the library fast path.
        """
        def run():
            yield self.env.timeout(LIB_CHECK_OVERHEAD_NS)
            event = handle.completed_event
            return handle.is_short or (event is not None and event.triggered)

        return self.env.process(run(), name="vmmc.check_send")

    # -- receive-side helpers -------------------------------------------------------
    def watch(self, buffer: UserBuffer, offset: int = 0,
              nbytes: int | None = None) -> Event:
        """Event that fires when a device write lands in the given range of
        an exported buffer — the primitive behind spin-waiting receivers.

        VMMC has no receive *operation*; a receiver that passes control
        simply spins on the memory it exported.  The returned event models
        the moment the spinner's cache line is invalidated by the DMA.
        """
        span = buffer.nbytes - offset if nbytes is None else nbytes
        event = self.env.event()
        memory = self.process.space.memory
        # The watched virtual range may span physically scattered frames.
        for paddr, length in buffer.space.physical_extents(
                buffer.vaddr + offset, span):
            memory.add_watch(paddr, length, event)
        return event

    def spin_recv(self, buffer: UserBuffer, offset: int = 0,
                  nbytes: int | None = None):
        """Process: spin until data is deposited in the watched range,
        charging the cache-line fill the spinner pays to observe it."""
        watch_event = self.watch(buffer, offset, nbytes)

        def run():
            yield watch_event
            yield self.membus.cacheline_fill()

        return self.env.process(run(), name="vmmc.spin_recv")
