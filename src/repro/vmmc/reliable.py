"""Reliable delivery over VMMC (extension beyond the paper).

The paper's VMMC assumes a reliable network: a corrupted packet is
"detected, counted, dropped — never recovered" (section 4.2), which is the
right call for a clean-room Myrinet (BER < 1e-15) but not for a fabric with
failing cables or for the PM-style deployments that ship ACK/NACK recovery
(section 7 / DESIGN S11).  This module layers at-least-once retransmission
with exactly-once payload application on top of the *unmodified* VMMC API,
using only VMMC-idiomatic machinery:

* the receiver exports a **message ring** (sequence-stamped slots); the
  sender deposits ``[header | payload]`` with plain ``SendMsg`` — the
  header carries a payload CRC-32 so a partially-arrived multi-chunk
  message is distinguishable from a complete one;
* the sender exports a one-word **ACK buffer**; the receiver acknowledges
  by remote-memory write into it (the same trick :mod:`repro.mp` uses for
  credits) — there are no receiver-side protocol messages, just one
  ``SendMsg`` of 4 bytes;
* the sender spins on its ACK word with a **timeout**; on expiry it
  retransmits the whole slot, doubling the timeout (bounded exponential
  backoff) up to a retry budget, after which
  :class:`~repro.vmmc.errors.RetriesExhausted` surfaces as an error
  completion — the thing base VMMC never provides;
* the receiver applies a payload exactly once (monotone sequence check +
  CRC) and **re-acknowledges** whenever a write lands that does not
  complete the expected message — that covers lost/corrupted ACKs, since
  the sender's retransmission itself provokes a fresh ACK.

Both ends are deterministic: no RNG, integer-ns timers, and all traffic is
ordinary VMMC sends, so a run under a seeded
:class:`~repro.faults.campaign.FaultCampaign` reproduces exactly.

Wire format of one ring slot (``slot_bytes`` total)::

    [0:4)    u32 seq      (written first on the wire, but validity is
                           established by the CRC, not by ordering)
    [4:8)    u32 payload length
    [8:12)   u32 CRC-32 of the payload bytes
    [12:16)  u32 reserved
    [16:..)  payload

A message is *complete* at the receiver iff ``seq == expected`` and the
CRC over ``length`` payload bytes verifies.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.sim import AnyOf, Environment, Resource
from repro.sim.trace import emit
from repro.obs.metrics import count, observe
from repro.mem.buffers import UserBuffer
from repro.vmmc.api import ImportedBuffer, VMMCEndpoint
from repro.vmmc.errors import (ImportDenied, ImportStale, RetriesExhausted,
                               VMMCError)

#: Slot header bytes (seq, length, crc, reserved).
HEADER_BYTES = 16
#: Default ring geometry: 8 slots of 4 KB payload each.
DEFAULT_SLOTS = 8
DEFAULT_SLOT_BYTES = HEADER_BYTES + 4096
#: Initial retransmission timeout.  A stop-and-wait round trip (data +
#: remote-write ACK) is ~25–60 µs on the paper testbed; 150 µs gives lossy
#: runs headroom without making recovery glacial.
DEFAULT_TIMEOUT_NS = 150_000
#: Exponential backoff cap.
DEFAULT_MAX_TIMEOUT_NS = 2_000_000
#: Retry budget before an error completion is surfaced.
DEFAULT_MAX_RETRIES = 10


class ReliableError(VMMCError):
    """Misuse of the reliable layer (oversized payload, unopened channel)."""


@dataclass
class ReliableStats:
    """Per-channel-end counters (sender and receiver keep their own)."""

    messages_sent: int = 0
    messages_delivered: int = 0
    retransmits: int = 0
    timeouts: int = 0
    send_failures: int = 0
    acks_sent: int = 0
    acks_resent: int = 0
    duplicates_suppressed: int = 0
    #: Sends blocked because the destination import went stale (a peer
    #: daemon cold-restarted); each is followed by a transparent reimport.
    stale_transmits: int = 0
    #: Successful transparent re-imports of a stale destination.
    reimports: int = 0

    def as_dict(self) -> dict[str, int]:
        return {k: getattr(self, k) for k in (
            "messages_sent", "messages_delivered", "retransmits",
            "timeouts", "send_failures", "acks_sent", "acks_resent",
            "duplicates_suppressed", "stale_transmits", "reimports")}


def _u32(value: int) -> bytes:
    return np.uint32(value & 0xFFFFFFFF).tobytes()


def _read_u32(buffer: UserBuffer, offset: int) -> int:
    return int(np.frombuffer(buffer.read(offset, 4).tobytes(),
                             dtype=np.uint32)[0])


def _reimport_with_backoff(env: Environment, imported: ImportedBuffer,
                           channel: str, stats: ReliableStats, *,
                           timeout_ns: int, max_timeout_ns: int,
                           max_retries: int):
    """Generator: re-establish a stale import, retrying with exponential
    backoff while the peer daemon reboots.

    A cold-restarting daemon re-registers its endpoints' exports *during*
    boot, so the first re-import attempts may be denied (export not yet
    back) or time out (daemon still dead); both subclass
    :class:`ImportDenied` and are retried until the budget is spent.
    """
    backoff = timeout_ns
    attempts = 0
    while True:
        attempts += 1
        try:
            yield imported.reimport(timeout_ns=backoff)
        except ImportDenied:
            if attempts > max_retries:
                raise RetriesExhausted(
                    f"{channel}: import of {imported.name!r} not "
                    f"re-established after {attempts} attempts",
                    retries=attempts)
            backoff = min(backoff * 2, max_timeout_ns)
            continue
        stats.reimports += 1
        count(env, "rel.reimports", channel=channel)
        emit(env, "rel.reimport", channel=channel, name=imported.name,
             attempts=attempts)
        return


class ReliableSender:
    """Sending end of one reliable channel ``me → remote``."""

    def __init__(self, ep: VMMCEndpoint, name: str,
                 nslots: int = DEFAULT_SLOTS,
                 slot_bytes: int = DEFAULT_SLOT_BYTES,
                 timeout_ns: int = DEFAULT_TIMEOUT_NS,
                 max_timeout_ns: int = DEFAULT_MAX_TIMEOUT_NS,
                 max_retries: int = DEFAULT_MAX_RETRIES):
        if slot_bytes <= HEADER_BYTES:
            raise ReliableError("slot too small for the header")
        self.ep = ep
        self.env: Environment = ep.env
        self.name = name
        self.nslots = nslots
        self.slot_bytes = slot_bytes
        self.payload_per_slot = slot_bytes - HEADER_BYTES
        self.timeout_ns = timeout_ns
        self.max_timeout_ns = max_timeout_ns
        self.max_retries = max_retries
        self.stats = ReliableStats()
        #: Local, exported; the receiver remote-writes the cumulative ACK.
        self.ack_buf: UserBuffer = ep.alloc_buffer(4096)
        self.ack_buf.write(_u32(0))
        #: Staging for one outgoing slot image.
        self._scratch: UserBuffer = ep.alloc_buffer(slot_bytes)
        self._ring: Optional[ImportedBuffer] = None
        self._next_seq = 1
        self._lock = Resource(self.env, capacity=1)

    # -- wiring ---------------------------------------------------------------
    def export_ack(self):
        """Process: export the ACK word (do this before the receiver's
        import of it)."""
        return self.ep.export(self.ack_buf, f"rel.ack.{self.name}")

    def import_ring(self, remote_node: str):
        """Process: import the receiver's ring (after it is exported)."""
        def run():
            self._ring = yield self.ep.import_buffer(
                remote_node, f"rel.ring.{self.name}")
            if self._ring.nbytes < self.nslots * self.slot_bytes:
                raise ReliableError(
                    f"remote ring too small for {self.nslots}x"
                    f"{self.slot_bytes}B slots")

        return self.env.process(run(), name=f"rel.import_ring.{self.name}")

    # -- protocol -------------------------------------------------------------
    @property
    def acked(self) -> int:
        """Highest sequence number the receiver has acknowledged."""
        return _read_u32(self.ack_buf, 0)

    def _transmit(self, seq: int, base: int, data: bytes):
        """Generator: deposit one complete slot image in the remote ring."""
        header = (_u32(seq) + _u32(len(data))
                  + _u32(zlib.crc32(data)) + _u32(0))
        self._scratch.write(header, offset=0)
        if data:
            self._scratch.write(data, offset=HEADER_BYTES)
        yield self.ep.send(self._scratch, self._ring.at(base),
                           HEADER_BYTES + len(data))

    def _transmit_recovering(self, seq: int, base: int, data: bytes):
        """Generator: like :meth:`_transmit`, but when the ring import has
        gone stale (receiver's daemon cold-restarted) transparently
        re-import it and replay the slot — the retransmission machinery
        above us never notices the outage."""
        attempts = 0
        while True:
            try:
                yield from self._transmit(seq, base, data)
                return
            except ImportStale:
                attempts += 1
                self.stats.stale_transmits += 1
                count(self.env, "rel.stale_transmits", channel=self.name)
                emit(self.env, "rel.transmit.stale", channel=self.name,
                     seq=seq, attempt=attempts)
                if attempts > self.max_retries:
                    self.stats.send_failures += 1
                    raise RetriesExhausted(
                        f"{self.name}: seq {seq} kept hitting a stale "
                        f"ring import after {attempts} recoveries",
                        seq=seq, retries=attempts)
                yield from _reimport_with_backoff(
                    self.env, self._ring, self.name, self.stats,
                    timeout_ns=self.timeout_ns,
                    max_timeout_ns=self.max_timeout_ns,
                    max_retries=self.max_retries)

    def send(self, payload: bytes | np.ndarray):
        """Process: deliver ``payload`` reliably; value is its sequence
        number.  Raises :class:`RetriesExhausted` when the retry budget is
        spent without an acknowledgement."""
        data = bytes(payload) if isinstance(payload, (bytes, bytearray)) \
            else np.asarray(payload).tobytes()

        def run():
            if self._ring is None:
                raise ReliableError(f"channel {self.name} not opened")
            if len(data) > self.payload_per_slot:
                raise ReliableError(
                    f"payload of {len(data)}B exceeds the "
                    f"{self.payload_per_slot}B slot capacity")
            grant = self._lock.request()
            yield grant
            try:
                seq = self._next_seq
                self._next_seq += 1
                base = ((seq - 1) % self.nslots) * self.slot_bytes
                self.stats.messages_sent += 1
                emit(self.env, "rel.send", channel=self.name, seq=seq,
                     nbytes=len(data))
                t0 = self.env.now
                yield from self._transmit_recovering(seq, base, data)
                timeout = self.timeout_ns
                deadline = self.env.now + timeout
                retries = 0
                while True:
                    # Arm the watch *before* checking (race-free idiom).
                    watch = self.ep.watch(self.ack_buf, 0, 4)
                    yield self.ep.membus.cacheline_fill()
                    if self.acked >= seq:
                        break
                    remaining = deadline - self.env.now
                    if remaining <= 0:
                        self.stats.timeouts += 1
                        count(self.env, "rel.timeouts", channel=self.name)
                        if retries >= self.max_retries:
                            self.stats.send_failures += 1
                            emit(self.env, "rel.send.failed",
                                 channel=self.name, seq=seq,
                                 retries=retries)
                            raise RetriesExhausted(
                                f"{self.name}: seq {seq} unacknowledged "
                                f"after {retries} retransmissions",
                                seq=seq, retries=retries)
                        retries += 1
                        self.stats.retransmits += 1
                        count(self.env, "rel.retransmits", channel=self.name)
                        emit(self.env, "rel.retransmit", channel=self.name,
                             seq=seq, attempt=retries)
                        yield from self._transmit_recovering(seq, base, data)
                        timeout = min(timeout * 2, self.max_timeout_ns)
                        deadline = self.env.now + timeout
                        continue
                    yield AnyOf(self.env,
                                [watch, self.env.timeout(remaining)])
                self.stats.messages_delivered += 1
                observe(self.env, "rel.rtt_ns", self.env.now - t0,
                        channel=self.name)
                emit(self.env, "rel.delivered", channel=self.name, seq=seq,
                     retransmits=retries)
                return seq
            finally:
                self._lock.release(grant)

        return self.env.process(run(), name=f"rel.send.{self.name}")


class ReliableReceiver:
    """Receiving end of one reliable channel ``remote → me``."""

    def __init__(self, ep: VMMCEndpoint, name: str,
                 nslots: int = DEFAULT_SLOTS,
                 slot_bytes: int = DEFAULT_SLOT_BYTES):
        if slot_bytes <= HEADER_BYTES:
            raise ReliableError("slot too small for the header")
        self.ep = ep
        self.env: Environment = ep.env
        self.name = name
        self.nslots = nslots
        self.slot_bytes = slot_bytes
        self.payload_per_slot = slot_bytes - HEADER_BYTES
        self.stats = ReliableStats()
        #: Local, exported; the sender deposits slot images here.
        self.ring: UserBuffer = ep.alloc_buffer(nslots * slot_bytes)
        self.ring.fill(0)
        #: Staging for outgoing ACK remote-writes.
        self._ack_scratch: UserBuffer = ep.alloc_buffer(4096)
        self._ack_at_sender: Optional[ImportedBuffer] = None
        self._next_seq = 1

    # -- wiring ---------------------------------------------------------------
    def export_ring(self):
        """Process: export the message ring (do this before the sender's
        import of it)."""
        return self.ep.export(self.ring, f"rel.ring.{self.name}")

    def import_ack(self, remote_node: str):
        """Process: import the sender's ACK word (after it is exported)."""
        def run():
            self._ack_at_sender = yield self.ep.import_buffer(
                remote_node, f"rel.ack.{self.name}")

        return self.env.process(run(), name=f"rel.import_ack.{self.name}")

    # -- protocol -------------------------------------------------------------
    @property
    def delivered(self) -> int:
        """Highest sequence number applied (exactly once) so far."""
        return self._next_seq - 1

    def _send_ack(self, seq: int, resend: bool = False):
        """Generator: remote-write the cumulative ACK into the sender.

        If the ACK import went stale (the *sender's* daemon cold-
        restarted) recover it transparently — a swallowed ACK would only
        provoke a retransmission, but re-importing here keeps the channel
        from degenerating into a retransmit storm."""
        self._ack_scratch.write(_u32(seq))
        if resend:
            self.stats.acks_resent += 1
        self.stats.acks_sent += 1
        emit(self.env, "rel.ack", channel=self.name, seq=seq, resend=resend)
        attempts = 0
        while True:
            try:
                yield self.ep.send(self._ack_scratch,
                                   self._ack_at_sender.at(0), 4)
                return
            except ImportStale:
                attempts += 1
                self.stats.stale_transmits += 1
                count(self.env, "rel.stale_transmits", channel=self.name)
                emit(self.env, "rel.transmit.stale", channel=self.name,
                     seq=seq, attempt=attempts, ack=True)
                if attempts > DEFAULT_MAX_RETRIES:
                    raise RetriesExhausted(
                        f"{self.name}: ACK import kept going stale after "
                        f"{attempts} recoveries", seq=seq, retries=attempts)
                yield from _reimport_with_backoff(
                    self.env, self._ack_at_sender, self.name, self.stats,
                    timeout_ns=DEFAULT_TIMEOUT_NS,
                    max_timeout_ns=DEFAULT_MAX_TIMEOUT_NS,
                    max_retries=DEFAULT_MAX_RETRIES)

    def _complete(self, base: int, expected: int) -> Optional[bytes]:
        """The expected slot holds a complete message iff seq matches and
        the payload CRC verifies (guards against partially-arrived
        multi-chunk messages whose tail was corrupted on the wire)."""
        if _read_u32(self.ring, base) != expected:
            return None
        length = _read_u32(self.ring, base + 4)
        if length > self.payload_per_slot:
            return None
        payload = self.ring.read(base + HEADER_BYTES, length).tobytes() \
            if length else b""
        if zlib.crc32(payload) != _read_u32(self.ring, base + 8):
            return None
        return payload

    def recv(self):
        """Process: value is the next message's payload bytes, applied
        exactly once and acknowledged."""
        def run():
            if self._ack_at_sender is None:
                raise ReliableError(f"channel {self.name} not opened")
            expected = self._next_seq
            base = ((expected - 1) % self.nslots) * self.slot_bytes
            snapshot = None
            first = True
            while True:
                watch = self.ep.watch(self.ring)
                yield self.ep.membus.cacheline_fill()
                payload = self._complete(base, expected)
                if payload is not None:
                    self._next_seq = expected + 1
                    self.stats.messages_delivered += 1
                    emit(self.env, "rel.recv", channel=self.name,
                         seq=expected, nbytes=len(payload))
                    yield from self._send_ack(expected)
                    return payload
                current = self.ring.read(base, self.slot_bytes).tobytes()
                if not first and current == snapshot:
                    # A write landed somewhere in the ring but the slot we
                    # are waiting on did not change: that is a
                    # retransmission of an already-applied message (its
                    # ACK was lost) — suppress the duplicate and
                    # re-acknowledge so the sender stops.
                    if self.delivered >= 1:
                        self.stats.duplicates_suppressed += 1
                        count(self.env, "rel.duplicates", channel=self.name)
                        yield from self._send_ack(self.delivered,
                                                  resend=True)
                snapshot = current
                first = False
                yield watch

        return self.env.process(run(), name=f"rel.recv.{self.name}")


def open_channel(tx_ep: VMMCEndpoint, rx_ep: VMMCEndpoint, name: str,
                 nslots: int = DEFAULT_SLOTS,
                 slot_bytes: int = DEFAULT_SLOT_BYTES,
                 timeout_ns: int = DEFAULT_TIMEOUT_NS,
                 max_retries: int = DEFAULT_MAX_RETRIES):
    """Process: wire one reliable channel ``tx_ep → rx_ep``; value is the
    ``(ReliableSender, ReliableReceiver)`` pair.

    Export order matters only in that each side's import must follow the
    peer's export; the daemons' Ethernet matchmaking handles the rest.
    """
    sender = ReliableSender(tx_ep, name, nslots=nslots,
                            slot_bytes=slot_bytes, timeout_ns=timeout_ns,
                            max_retries=max_retries)
    receiver = ReliableReceiver(rx_ep, name, nslots=nslots,
                                slot_bytes=slot_bytes)
    env = tx_ep.env

    def run():
        # Both exports first (they are independent), then both imports.
        yield receiver.export_ring()
        yield sender.export_ack()
        yield sender.import_ring(rx_ep.node_name)
        yield receiver.import_ack(tx_ep.node_name)
        return sender, receiver

    return env.process(run(), name=f"rel.open.{name}")
