"""Reliable delivery over VMMC (extension beyond the paper).

The paper's VMMC assumes a reliable network: a corrupted packet is
"detected, counted, dropped — never recovered" (section 4.2), which is the
right call for a clean-room Myrinet (BER < 1e-15) but not for a fabric with
failing cables or for the PM-style deployments that ship ACK/NACK recovery
(section 7 / DESIGN S11).  This module layers at-least-once retransmission
with exactly-once payload application on top of the *unmodified* VMMC API,
using only VMMC-idiomatic machinery:

* the receiver exports a **message ring** (sequence-stamped slots); the
  sender deposits ``[header | payload]`` with plain ``SendMsg`` — the
  header carries a payload CRC-32 so a partially-arrived multi-chunk
  message is distinguishable from a complete one;
* the sender exports a one-word **ACK buffer**; the receiver acknowledges
  by remote-memory write into it (the same trick :mod:`repro.mp` uses for
  credits) — there are no receiver-side protocol messages, just one
  ``SendMsg`` of 4 bytes.  ACKs are **cumulative**: the word always holds
  the highest in-order sequence applied;
* the sender runs **adaptive congestion control** (the default policy):

  - a Jacobson/Karels retransmission-timeout estimator — ``SRTT`` and
    ``RTTVAR`` maintained with integer shift gains, seeded from the first
    measured round trip, with **Karn's rule** (no RTT sample is ever
    taken from a retransmitted slot; the RTO grows only by doubling on a
    timeout, bounded by ``max_timeout_ns``);
  - a **sliding send window** over the slot ring: up to ``cwnd`` slots
    are in flight concurrently, each with its own deadline, completed by
    the cumulative ACK.  The window is **AIMD**-governed — it halves
    (once per window) when a slot times out and grows by one slot per
    clean ACK, never exceeding the ring;
  - **retransmit-pressure pacing**: every timeout raises a pressure
    level that stretches the gap between consecutive transmissions, so
    sustained loss backs the sender off the link instead of hammering
    it; clean ACKs bleed the pressure away;

  the pre-adaptive **static** policy (stop-and-wait, fixed initial
  timeout, blind doubling) is kept behind ``adaptive=False`` as the
  comparison baseline for ``benchmarks/bench_chaos_reliability.py``;
* on expiry of a slot's deadline the sender retransmits that slot, up to
  a retry budget, after which
  :class:`~repro.vmmc.errors.RetriesExhausted` surfaces as an error
  completion — the thing base VMMC never provides;
* the receiver applies a payload exactly once (monotone sequence check +
  CRC) and **re-acknowledges** whenever a write lands that is a
  retransmission of an already-applied message — that covers
  lost/corrupted ACKs, since the sender's retransmission itself provokes
  a fresh ACK.  Out-of-order arrivals of *future* window slots park in
  their ring slots and are deliberately not mistaken for duplicates.

Both ends are deterministic: no RNG, integer-ns timers and estimator
arithmetic, and all traffic is ordinary VMMC sends, so a run under a
seeded :class:`~repro.faults.campaign.FaultCampaign` reproduces exactly —
:class:`ReliableStats` is byte-identical across re-runs of the same seed
(``tests/test_reliable_properties.py`` sweeps this).

Wire format of one ring slot (``slot_bytes`` total)::

    [0:4)    u32 seq      (written first on the wire, but validity is
                           established by the CRC, not by ordering)
    [4:8)    u32 payload length
    [8:12)   u32 CRC-32 of the payload bytes
    [12:16)  u32 reserved
    [16:..)  payload

A message is *complete* at the receiver iff ``seq == expected`` and the
CRC over ``length`` payload bytes verifies.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.sim import AnyOf, Environment, Event, Resource
from repro.sim.trace import emit
from repro.obs.metrics import count, observe, set_gauge
from repro.mem.buffers import UserBuffer
from repro.vmmc.api import ImportedBuffer, VMMCEndpoint
from repro.vmmc.errors import (CompletionError, ImportDenied, ImportStale,
                               RetriesExhausted, VMMCError)

#: Slot header bytes (seq, length, crc, reserved).
HEADER_BYTES = 16
#: Default ring geometry: 8 slots of 4 KB payload each.
DEFAULT_SLOTS = 8
DEFAULT_SLOT_BYTES = HEADER_BYTES + 4096
#: Initial retransmission timeout.  A stop-and-wait round trip (data +
#: remote-write ACK) is ~25–60 µs on the paper testbed; 150 µs gives lossy
#: runs headroom without making recovery glacial.  In adaptive mode this
#: doubles as the default RTO floor (``min_rto_ns``).
DEFAULT_TIMEOUT_NS = 150_000
#: Exponential backoff / RTO cap.
DEFAULT_MAX_TIMEOUT_NS = 2_000_000
#: Retry budget before an error completion is surfaced.
DEFAULT_MAX_RETRIES = 10

# -- adaptive congestion-control constants ------------------------------------
#: Jacobson/Karels estimator gains as right-shifts: SRTT gain 1/8,
#: RTTVAR gain 1/4 (the classic values; overridable per channel).
DEFAULT_RTT_ALPHA_SHIFT = 3
DEFAULT_RTT_BETA_SHIFT = 2
#: RTO = SRTT + max(RTO_GRANULARITY_NS, RTO_K * RTTVAR).
RTO_K = 4
RTO_GRANULARITY_NS = 1_000
#: Pacing: extra inter-transmission gap per unit of retransmit pressure.
DEFAULT_PACE_QUANTUM_NS = 25_000
#: Pressure saturates here, bounding the pacing gap at
#: ``PRESSURE_CAP * pace_quantum_ns``.
PRESSURE_CAP = 8


class ReliableError(VMMCError):
    """Misuse of the reliable layer (oversized payload, unopened channel)."""


@dataclass
class ReliableStats:
    """Per-channel-end counters (sender and receiver keep their own).

    Everything here is an integer derived from the deterministic
    simulation, so two runs of the same seeded campaign produce
    byte-identical ``as_dict()`` output — the regression oracle the
    property harness sweeps.
    """

    messages_sent: int = 0
    messages_delivered: int = 0
    retransmits: int = 0
    timeouts: int = 0
    send_failures: int = 0
    acks_sent: int = 0
    acks_resent: int = 0
    duplicates_suppressed: int = 0
    #: Sends blocked because the destination import went stale (a peer
    #: daemon cold-restarted); each is followed by a transparent reimport.
    stale_transmits: int = 0
    #: Successful transparent re-imports of a stale destination.
    reimports: int = 0
    #: Error completions on an in-flight transmit (the mapping died
    #: *mid-send* during a cold crash, before the stale flag landed);
    #: each is retried after one backoff like any other loss.
    completion_errors: int = 0
    #: RTT samples fed to the Jacobson/Karels estimator.  Karn's rule:
    #: a delivery whose slot was ever retransmitted contributes to
    #: :attr:`retransmitted_deliveries` instead, never here, so
    #: ``rtt_samples + retransmitted_deliveries == messages_delivered``
    #: on an adaptive sender.
    rtt_samples: int = 0
    #: Deliveries that needed at least one retransmission (no RTT sample).
    retransmitted_deliveries: int = 0
    #: Multiplicative window cuts (at most one per in-flight window).
    cwnd_cuts: int = 0
    #: High-water mark of the AIMD congestion window.
    cwnd_max: int = 0
    #: Total transmission delay imposed by retransmit-pressure pacing.
    paced_ns: int = 0

    def as_dict(self) -> dict[str, int]:
        return {k: getattr(self, k) for k in (
            "messages_sent", "messages_delivered", "retransmits",
            "timeouts", "send_failures", "acks_sent", "acks_resent",
            "duplicates_suppressed", "stale_transmits", "reimports",
            "completion_errors", "rtt_samples", "retransmitted_deliveries",
            "cwnd_cuts", "cwnd_max", "paced_ns")}


def _u32(value: int) -> bytes:
    return np.uint32(value & 0xFFFFFFFF).tobytes()


def _read_u32(buffer: UserBuffer, offset: int) -> int:
    return int(np.frombuffer(buffer.read(offset, 4).tobytes(),
                             dtype=np.uint32)[0])


def _reimport_with_backoff(env: Environment, imported: ImportedBuffer,
                           channel: str, stats: ReliableStats, *,
                           timeout_ns: int, max_timeout_ns: int,
                           max_retries: int):
    """Generator: re-establish a stale import, retrying with exponential
    backoff while the peer daemon reboots.

    A cold-restarting daemon re-registers its endpoints' exports *during*
    boot, so the first re-import attempts may be denied (export not yet
    back) or time out (daemon still dead); both subclass
    :class:`ImportDenied` and are retried until the budget is spent.
    """
    backoff = timeout_ns
    attempts = 0
    while True:
        attempts += 1
        try:
            yield imported.reimport(timeout_ns=backoff)
        except ImportDenied:
            if attempts > max_retries:
                raise RetriesExhausted(
                    f"{channel}: import of {imported.name!r} not "
                    f"re-established after {attempts} attempts",
                    retries=attempts)
            backoff = min(backoff * 2, max_timeout_ns)
            continue
        stats.reimports += 1
        count(env, "rel.reimports", channel=channel)
        emit(env, "rel.reimport", channel=channel, name=imported.name,
             attempts=attempts)
        return


class _DeadlineBatcher:
    """Coalesces same-tick retransmit deadlines into one
    :meth:`~repro.sim.core.Environment.timeout_batch` population.

    The adaptive sender's per-slot RTO deadlines are a textbook
    homogeneous timer population: every in-flight slot arms one anonymous
    deadline, nothing observes an individual member, and a full AIMD
    window re-arms in the same tick whenever a cumulative ACK advances.
    Arming them as individual :meth:`Environment.timeout` events kept KV
    traffic off the vector engine's batched deadline ring; routing them
    through ``timeout_batch`` puts the sender's hot timer path on the
    same fast path the ROADMAP's PR-9 follow-on called for.

    Mechanics: the first :meth:`arm` of a tick opens a pending batch and
    schedules a zero-delay flush event behind every process currently
    runnable at this timestamp; later arms in the same tick append to the
    batch.  When the flush pops, one ``timeout_batch`` is armed for the
    whole population and each member's proxy event succeeds from the
    group ``on_fire`` callback.  Proxies whose waiters already woke (the
    ACK watch won the race) still fire harmlessly, exactly like the
    individual timeouts they replace.
    """

    __slots__ = ("env", "_pending")

    def __init__(self, env: Environment):
        self.env = env
        self._pending: Optional[list[tuple[int, Event]]] = None

    def arm(self, delay_ns: int) -> Event:
        """Return an event that succeeds ``delay_ns`` from now."""
        proxy = Event(self.env)
        if self._pending is None:
            self._pending = [(delay_ns, proxy)]
            flush = Event(self.env)
            flush.callbacks.append(self._flush)
            flush.succeed()
        else:
            self._pending.append((delay_ns, proxy))
        return proxy

    def _flush(self, _flush_event: Event) -> None:
        pending, self._pending = self._pending, None
        proxies = [proxy for _, proxy in pending]

        def on_fire(when: int, indices) -> None:
            for i in indices:
                proxies[int(i)].succeed()

        self.env.timeout_batch([delay for delay, _ in pending], on_fire)


class ReliableSender:
    """Sending end of one reliable channel ``me → remote``.

    ``adaptive=True`` (the default) runs the congestion-controlled
    pipelined policy; ``adaptive=False`` keeps the original stop-and-wait
    policy with the static timeout schedule (the bench baseline).

    Adaptive knobs (all integer, all deterministic):

    ``rtt_alpha_shift`` / ``rtt_beta_shift``
        Jacobson/Karels gains as right-shifts (defaults 3 → 1/8 and
        2 → 1/4).
    ``min_rto_ns``
        RTO floor; defaults to ``timeout_ns``, so out of the box
        ``rto_ns`` always stays within ``[timeout_ns, max_timeout_ns]``.
    ``max_window``
        AIMD window ceiling in slots; clamped to the ring size.
    ``pace_quantum_ns``
        Inter-transmission gap added per unit of retransmit pressure.
    """

    def __init__(self, ep: VMMCEndpoint, name: str,
                 nslots: int = DEFAULT_SLOTS,
                 slot_bytes: int = DEFAULT_SLOT_BYTES,
                 timeout_ns: int = DEFAULT_TIMEOUT_NS,
                 max_timeout_ns: int = DEFAULT_MAX_TIMEOUT_NS,
                 max_retries: int = DEFAULT_MAX_RETRIES,
                 adaptive: bool = True,
                 rtt_alpha_shift: int = DEFAULT_RTT_ALPHA_SHIFT,
                 rtt_beta_shift: int = DEFAULT_RTT_BETA_SHIFT,
                 min_rto_ns: Optional[int] = None,
                 max_window: Optional[int] = None,
                 pace_quantum_ns: int = DEFAULT_PACE_QUANTUM_NS):
        if slot_bytes <= HEADER_BYTES:
            raise ReliableError("slot too small for the header")
        if timeout_ns <= 0 or max_timeout_ns < timeout_ns:
            raise ReliableError(
                f"invalid timeout range [{timeout_ns}, {max_timeout_ns}]")
        self.ep = ep
        self.env: Environment = ep.env
        self.name = name
        self.nslots = nslots
        self.slot_bytes = slot_bytes
        self.payload_per_slot = slot_bytes - HEADER_BYTES
        self.timeout_ns = timeout_ns
        self.max_timeout_ns = max_timeout_ns
        self.max_retries = max_retries
        self.adaptive = adaptive
        self.rtt_alpha_shift = rtt_alpha_shift
        self.rtt_beta_shift = rtt_beta_shift
        self.min_rto_ns = timeout_ns if min_rto_ns is None else min_rto_ns
        if not 0 < self.min_rto_ns <= max_timeout_ns:
            raise ReliableError(
                f"min_rto_ns {self.min_rto_ns} outside "
                f"(0, {max_timeout_ns}]")
        self.max_window = nslots if max_window is None \
            else max(1, min(max_window, nslots))
        self.pace_quantum_ns = pace_quantum_ns
        self.stats = ReliableStats()
        #: Local, exported; the receiver remote-writes the cumulative ACK.
        self.ack_buf: UserBuffer = ep.alloc_buffer(4096)
        self.ack_buf.write(_u32(0))
        #: Staging for outgoing slot images — one staging area *per ring
        #: slot*, so pipelined in-flight transmissions never overwrite
        #: each other's frame mid-DMA (the window never holds two
        #: messages in the same slot, so per-slot staging is race-free).
        self._scratch: UserBuffer = ep.alloc_buffer(nslots * slot_bytes)
        self._ring: Optional[ImportedBuffer] = None
        self._next_seq = 1
        self._lock = Resource(self.env, capacity=1)
        # -- adaptive congestion state (all integer-ns, RNG-free) ----------
        #: Smoothed RTT / RTT variance; ``None`` until the first clean
        #: round trip seeds the estimator.
        self.srtt_ns: Optional[int] = None
        self.rttvar_ns: Optional[int] = None
        #: Current retransmission timeout, always within
        #: ``[min_rto_ns, max_timeout_ns]`` (sole mutator: `_set_rto`).
        self.rto_ns = self._clamp_rto(timeout_ns)
        #: AIMD congestion window, in ring slots (sole mutator:
        #: `_set_cwnd`); never exceeds the ring.
        self.cwnd = 1
        self.stats.cwnd_max = 1
        #: Slots currently in flight (transmitted, not yet resolved).
        self.inflight = 0
        #: Retransmit pressure driving the pacing gap.
        self.pressure = 0
        self._next_tx_at = 0
        #: Loss-event guard: one multiplicative cut per in-flight window.
        self._cut_upto = 0
        #: FIFO admission cursor (next sequence allowed to transmit).
        self._admit_next = 1
        self._kick_ev = None
        #: In-progress transparent recovery of the stale ring import
        #: (serialises concurrent in-flight slots onto one reimport).
        self._recovering = None
        #: Same-tick slot deadlines ride one ``timeout_batch`` population
        #: (the vector engine's batched deadline ring).
        self._deadlines = _DeadlineBatcher(self.env)
        set_gauge(self.env, "rel.rto_ns", self.rto_ns, channel=name)
        set_gauge(self.env, "rel.cwnd", self.cwnd, channel=name)
        set_gauge(self.env, "rel.inflight", 0, channel=name)

    # -- wiring ---------------------------------------------------------------
    def export_ack(self):
        """Process: export the ACK word (do this before the receiver's
        import of it)."""
        return self.ep.export(self.ack_buf, f"rel.ack.{self.name}")

    def import_ring(self, remote_node: str):
        """Process: import the receiver's ring (after it is exported)."""
        def run():
            self._ring = yield self.ep.import_buffer(
                remote_node, f"rel.ring.{self.name}")
            if self._ring.nbytes < self.nslots * self.slot_bytes:
                raise ReliableError(
                    f"remote ring too small for {self.nslots}x"
                    f"{self.slot_bytes}B slots")

        return self.env.process(run(), name=f"rel.import_ring.{self.name}")

    # -- congestion-control state transitions ---------------------------------
    def _clamp_rto(self, value: int) -> int:
        return max(self.min_rto_ns, min(int(value), self.max_timeout_ns))

    def _set_rto(self, value: int) -> None:
        """Sole mutator of :attr:`rto_ns` (tests wrap it to assert the
        ``[min_rto_ns, max_timeout_ns]`` invariant holds *always*)."""
        self.rto_ns = self._clamp_rto(value)
        set_gauge(self.env, "rel.rto_ns", self.rto_ns, channel=self.name)

    def _set_cwnd(self, value: int, reason: str) -> None:
        """Sole mutator of :attr:`cwnd`; clamped to ``[1, max_window]``
        (and the ring), traced, and gauge-published."""
        value = max(1, min(value, self.max_window, self.nslots))
        if value == self.cwnd:
            return
        self.cwnd = value
        if value > self.stats.cwnd_max:
            self.stats.cwnd_max = value
        set_gauge(self.env, "rel.cwnd", value, channel=self.name)
        emit(self.env, "rel.cwnd", channel=self.name, cwnd=value,
             reason=reason)
        if reason == "grow":
            self._kick()

    def _set_inflight(self, value: int) -> None:
        self.inflight = value
        set_gauge(self.env, "rel.inflight", value, channel=self.name)

    def _window_limit(self) -> int:
        if not self.adaptive:
            return 1
        return max(1, min(self.cwnd, self.max_window, self.nslots))

    def _on_timeout(self, seq: int) -> None:
        """Loss signal: raise pacing pressure, back the RTO off (Karn:
        doubling is the only growth path), and cut the AIMD window —
        multiplicatively, at most once per in-flight window."""
        self.pressure = min(self.pressure + 1, PRESSURE_CAP)
        self._set_rto(self.rto_ns * 2)
        if seq > self._cut_upto:
            self.stats.cwnd_cuts += 1
            self._cut_upto = self._next_seq - 1
            self._set_cwnd(self.cwnd // 2, reason="cut")

    def _on_clean_ack(self, seq: int, rtt_ns: int) -> None:
        """Clean (never-retransmitted) round trip: feed the
        Jacobson/Karels estimator, grow the window additively, and bleed
        one unit of pacing pressure."""
        self.stats.rtt_samples += 1
        if self.srtt_ns is None:
            # Seed from the first measured round trip (RFC 6298 style).
            self.srtt_ns = int(rtt_ns)
            self.rttvar_ns = int(rtt_ns) // 2
        else:
            err = int(rtt_ns) - self.srtt_ns
            self.rttvar_ns += (abs(err) - self.rttvar_ns) \
                >> self.rtt_beta_shift
            self.srtt_ns += err >> self.rtt_alpha_shift
        set_gauge(self.env, "rel.srtt_ns", self.srtt_ns, channel=self.name)
        set_gauge(self.env, "rel.rttvar_ns", self.rttvar_ns,
                  channel=self.name)
        self._set_rto(self.srtt_ns
                      + max(RTO_GRANULARITY_NS, RTO_K * self.rttvar_ns))
        emit(self.env, "rel.rtt.sample", channel=self.name, seq=seq,
             rtt_ns=int(rtt_ns), srtt_ns=self.srtt_ns,
             rttvar_ns=self.rttvar_ns, rto_ns=self.rto_ns)
        self.pressure = max(0, self.pressure - 1)
        self._set_cwnd(self.cwnd + 1, reason="grow")

    # -- admission / wakeup plumbing ------------------------------------------
    def _kick(self) -> None:
        """Wake every process parked in :meth:`_kick_wait` (window state
        changed: a slot resolved, or the window grew)."""
        if self._kick_ev is not None and not self._kick_ev.triggered:
            event = self._kick_ev
            self._kick_ev = None
            event.succeed()

    def _kick_wait(self):
        if self._kick_ev is None or self._kick_ev.triggered:
            self._kick_ev = self.env.event()
        return self._kick_ev

    # -- protocol -------------------------------------------------------------
    @property
    def acked(self) -> int:
        """Highest sequence number the receiver has acknowledged."""
        return _read_u32(self.ack_buf, 0)

    def _transmit(self, seq: int, base: int, data: bytes):
        """Generator: deposit one complete slot image in the remote ring."""
        header = (_u32(seq) + _u32(len(data))
                  + _u32(zlib.crc32(data)) + _u32(0))
        self._scratch.write(header, offset=base)
        if data:
            self._scratch.write(data, offset=base + HEADER_BYTES)
        yield self.ep.send(self._scratch, self._ring.at(base),
                           HEADER_BYTES + len(data), src_offset=base)

    def _transmit_recovering(self, seq: int, base: int, data: bytes):
        """Generator: like :meth:`_transmit`, but when the ring import has
        gone stale (receiver's daemon cold-restarted) transparently
        re-import it and replay the slot — the retransmission machinery
        above us never notices the outage.  Concurrent in-flight slots
        that hit the same stale import share one recovery."""
        attempts = 0
        while True:
            try:
                yield from self._transmit(seq, base, data)
                return
            except CompletionError:
                # The mapping died *while the send was in flight* (cold
                # crash race: the error completion beats the stale
                # flag).  Back off one timeout; the retry either finds a
                # healthy mapping or hits the ImportStale fast path
                # below and recovers through the reimport machinery.
                attempts += 1
                self.stats.completion_errors += 1
                emit(self.env, "rel.transmit.error", channel=self.name,
                     seq=seq, attempt=attempts)
                if attempts > self.max_retries:
                    self.stats.send_failures += 1
                    raise RetriesExhausted(
                        f"{self.name}: seq {seq} kept failing with error "
                        f"completions after {attempts} attempts",
                        seq=seq, retries=attempts)
                yield self.env.timeout(self.timeout_ns)
            except ImportStale:
                attempts += 1
                self.stats.stale_transmits += 1
                count(self.env, "rel.stale_transmits", channel=self.name)
                emit(self.env, "rel.transmit.stale", channel=self.name,
                     seq=seq, attempt=attempts)
                if attempts > self.max_retries:
                    self.stats.send_failures += 1
                    raise RetriesExhausted(
                        f"{self.name}: seq {seq} kept hitting a stale "
                        f"ring import after {attempts} recoveries",
                        seq=seq, retries=attempts)
                if self._recovering is not None:
                    # Another in-flight slot is already re-importing the
                    # ring; piggyback on its recovery (a second reimport
                    # of the same handle would race the first).
                    yield self._recovering
                    continue
                self._recovering = self.env.event()
                try:
                    yield from _reimport_with_backoff(
                        self.env, self._ring, self.name, self.stats,
                        timeout_ns=self.timeout_ns,
                        max_timeout_ns=self.max_timeout_ns,
                        max_retries=self.max_retries)
                finally:
                    event = self._recovering
                    self._recovering = None
                    event.succeed()

    def _pace(self, seq: int):
        """Generator: delay this transmission behind the pacing gate,
        then reserve the next transmission's earliest start according to
        the current retransmit pressure."""
        wait = self._next_tx_at - self.env.now
        if wait > 0:
            self.stats.paced_ns += wait
            emit(self.env, "rel.pace", channel=self.name, seq=seq,
                 wait_ns=wait, pressure=self.pressure)
            yield self.env.timeout(wait)
        self._next_tx_at = self.env.now \
            + self.pressure * self.pace_quantum_ns

    def send(self, payload: bytes | np.ndarray):
        """Process: deliver ``payload`` reliably; value is its sequence
        number.  Raises :class:`RetriesExhausted` when the retry budget is
        spent without an acknowledgement.

        Concurrent ``send()`` calls pipeline through the AIMD window in
        FIFO order (adaptive mode) or serialise stop-and-wait (static
        mode); either way payloads are delivered exactly once, in call
        order.
        """
        data = bytes(payload) if isinstance(payload, (bytes, bytearray)) \
            else np.asarray(payload).tobytes()

        def run():
            if self._ring is None:
                raise ReliableError(f"channel {self.name} not opened")
            if len(data) > self.payload_per_slot:
                raise ReliableError(
                    f"payload of {len(data)}B exceeds the "
                    f"{self.payload_per_slot}B slot capacity")
            if self.adaptive:
                return (yield from self._send_windowed(data))
            return (yield from self._send_stop_and_wait(data))

        return self.env.process(run(), name=f"rel.send.{self.name}")

    def _send_windowed(self, data: bytes):
        """Generator: the adaptive policy — admission through the AIMD
        window, per-slot deadline from the RTO estimator, cumulative-ACK
        completion, pacing on every (re)transmission."""
        seq = self._next_seq
        self._next_seq += 1
        base = ((seq - 1) % self.nslots) * self.slot_bytes
        # FIFO admission: wait for both the window and our turn, so slots
        # enter the ring in sequence order and never overwrite a live
        # predecessor (window <= ring slots).
        while seq != self._admit_next or self.inflight >= \
                self._window_limit():
            yield self._kick_wait()
        self._admit_next = seq + 1
        self._set_inflight(self.inflight + 1)
        self._kick()
        self.stats.messages_sent += 1
        emit(self.env, "rel.send", channel=self.name, seq=seq,
             nbytes=len(data))
        retries = 0
        retransmitted = False
        try:
            yield from self._pace(seq)
            t0 = self.env.now
            yield from self._transmit_recovering(seq, base, data)
            slot_rto = self.rto_ns
            deadline = self.env.now + slot_rto
            last_ack = self.acked
            while True:
                # Arm the watch *before* checking (race-free idiom).
                watch = self.ep.watch(self.ack_buf, 0, 4)
                yield self.ep.membus.cacheline_fill()
                ack = self.acked
                if ack >= seq:
                    break
                if ack > last_ack:
                    # Cumulative progress: the window is draining in
                    # order, so restart this slot's timer instead of
                    # retransmitting a message that is merely queued
                    # behind the advancing ACK.
                    last_ack = ack
                    deadline = self.env.now + slot_rto
                remaining = deadline - self.env.now
                if remaining <= 0:
                    self.stats.timeouts += 1
                    count(self.env, "rel.timeouts", channel=self.name)
                    if retries >= self.max_retries:
                        self.stats.send_failures += 1
                        emit(self.env, "rel.send.failed",
                             channel=self.name, seq=seq, retries=retries)
                        raise RetriesExhausted(
                            f"{self.name}: seq {seq} unacknowledged "
                            f"after {retries} retransmissions",
                            seq=seq, retries=retries)
                    retries += 1
                    retransmitted = True
                    self.stats.retransmits += 1
                    count(self.env, "rel.retransmits", channel=self.name)
                    emit(self.env, "rel.retransmit", channel=self.name,
                         seq=seq, attempt=retries)
                    self._on_timeout(seq)
                    slot_rto = self.rto_ns
                    yield from self._pace(seq)
                    yield from self._transmit_recovering(seq, base, data)
                    deadline = self.env.now + slot_rto
                    continue
                yield AnyOf(self.env,
                            [watch, self._deadlines.arm(remaining)])
            self.stats.messages_delivered += 1
            rtt = self.env.now - t0
            observe(self.env, "rel.rtt_ns", rtt, channel=self.name)
            if retransmitted:
                # Karn's rule: a retransmitted slot's round trip is
                # ambiguous (which copy was ACKed?) — never sample it.
                self.stats.retransmitted_deliveries += 1
            else:
                self._on_clean_ack(seq, rtt)
            emit(self.env, "rel.delivered", channel=self.name, seq=seq,
                 retransmits=retries)
            return seq
        finally:
            self._set_inflight(self.inflight - 1)
            self._kick()

    def _send_stop_and_wait(self, data: bytes):
        """Generator: the pre-adaptive static policy — one slot in flight,
        fixed initial timeout, blind doubling (kept as the comparison
        baseline; ``adaptive=False``)."""
        grant = self._lock.request()
        yield grant
        try:
            seq = self._next_seq
            self._next_seq += 1
            base = ((seq - 1) % self.nslots) * self.slot_bytes
            self.stats.messages_sent += 1
            emit(self.env, "rel.send", channel=self.name, seq=seq,
                 nbytes=len(data))
            t0 = self.env.now
            yield from self._transmit_recovering(seq, base, data)
            timeout = self.timeout_ns
            deadline = self.env.now + timeout
            retries = 0
            while True:
                # Arm the watch *before* checking (race-free idiom).
                watch = self.ep.watch(self.ack_buf, 0, 4)
                yield self.ep.membus.cacheline_fill()
                if self.acked >= seq:
                    break
                remaining = deadline - self.env.now
                if remaining <= 0:
                    self.stats.timeouts += 1
                    count(self.env, "rel.timeouts", channel=self.name)
                    if retries >= self.max_retries:
                        self.stats.send_failures += 1
                        emit(self.env, "rel.send.failed",
                             channel=self.name, seq=seq,
                             retries=retries)
                        raise RetriesExhausted(
                            f"{self.name}: seq {seq} unacknowledged "
                            f"after {retries} retransmissions",
                            seq=seq, retries=retries)
                    retries += 1
                    self.stats.retransmits += 1
                    count(self.env, "rel.retransmits", channel=self.name)
                    emit(self.env, "rel.retransmit", channel=self.name,
                         seq=seq, attempt=retries)
                    yield from self._transmit_recovering(seq, base, data)
                    timeout = min(timeout * 2, self.max_timeout_ns)
                    deadline = self.env.now + timeout
                    continue
                yield AnyOf(self.env,
                            [watch, self.env.timeout(remaining)])
            self.stats.messages_delivered += 1
            observe(self.env, "rel.rtt_ns", self.env.now - t0,
                    channel=self.name)
            emit(self.env, "rel.delivered", channel=self.name, seq=seq,
                 retransmits=retries)
            return seq
        finally:
            self._lock.release(grant)


class ReliableReceiver:
    """Receiving end of one reliable channel ``remote → me``.

    ``timeout_ns`` / ``max_timeout_ns`` / ``max_retries`` govern the
    receiver's own recovery machinery (re-importing a stale ACK word
    while the sender's daemon cold-reboots); :func:`open_channel` plumbs
    the channel's configured values through, so a non-default
    ``timeout_ns`` shapes *both* ends.
    """

    def __init__(self, ep: VMMCEndpoint, name: str,
                 nslots: int = DEFAULT_SLOTS,
                 slot_bytes: int = DEFAULT_SLOT_BYTES,
                 timeout_ns: int = DEFAULT_TIMEOUT_NS,
                 max_timeout_ns: int = DEFAULT_MAX_TIMEOUT_NS,
                 max_retries: int = DEFAULT_MAX_RETRIES):
        if slot_bytes <= HEADER_BYTES:
            raise ReliableError("slot too small for the header")
        self.ep = ep
        self.env: Environment = ep.env
        self.name = name
        self.nslots = nslots
        self.slot_bytes = slot_bytes
        self.payload_per_slot = slot_bytes - HEADER_BYTES
        self.timeout_ns = timeout_ns
        self.max_timeout_ns = max_timeout_ns
        self.max_retries = max_retries
        self.stats = ReliableStats()
        #: Local, exported; the sender deposits slot images here.
        self.ring: UserBuffer = ep.alloc_buffer(nslots * slot_bytes)
        self.ring.fill(0)
        #: Staging for outgoing ACK remote-writes.
        self._ack_scratch: UserBuffer = ep.alloc_buffer(4096)
        self._ack_at_sender: Optional[ImportedBuffer] = None
        self._next_seq = 1
        #: Last-seen image of every ring slot, for telling a duplicate
        #: retransmission (seq <= delivered landing again) from a future
        #: window slot arriving out of order.
        self._slot_snapshots: list[Optional[bytes]] = [None] * nslots

    # -- wiring ---------------------------------------------------------------
    def export_ring(self):
        """Process: export the message ring (do this before the sender's
        import of it)."""
        return self.ep.export(self.ring, f"rel.ring.{self.name}")

    def import_ack(self, remote_node: str):
        """Process: import the sender's ACK word (after it is exported)."""
        def run():
            self._ack_at_sender = yield self.ep.import_buffer(
                remote_node, f"rel.ack.{self.name}")

        return self.env.process(run(), name=f"rel.import_ack.{self.name}")

    # -- protocol -------------------------------------------------------------
    @property
    def delivered(self) -> int:
        """Highest sequence number applied (exactly once) so far."""
        return self._next_seq - 1

    def _send_ack(self, seq: int, resend: bool = False):
        """Generator: remote-write the cumulative ACK into the sender.

        If the ACK import went stale (the *sender's* daemon cold-
        restarted) recover it transparently — a swallowed ACK would only
        provoke a retransmission, but re-importing here keeps the channel
        from degenerating into a retransmit storm."""
        self._ack_scratch.write(_u32(seq))
        if resend:
            self.stats.acks_resent += 1
        self.stats.acks_sent += 1
        emit(self.env, "rel.ack", channel=self.name, seq=seq, resend=resend)
        attempts = 0
        while True:
            try:
                yield self.ep.send(self._ack_scratch,
                                   self._ack_at_sender.at(0), 4)
                return
            except CompletionError:
                # ACK write completed with an error (the sender's
                # mapping died mid-flight during a cold crash).  Back
                # off and retry; a genuinely stale import surfaces as
                # ImportStale on the next attempt.
                attempts += 1
                self.stats.completion_errors += 1
                emit(self.env, "rel.transmit.error", channel=self.name,
                     seq=seq, attempt=attempts, ack=True)
                if attempts > self.max_retries:
                    raise RetriesExhausted(
                        f"{self.name}: ACK write kept failing with error "
                        f"completions after {attempts} attempts",
                        seq=seq, retries=attempts)
                yield self.env.timeout(self.timeout_ns)
            except ImportStale:
                attempts += 1
                self.stats.stale_transmits += 1
                count(self.env, "rel.stale_transmits", channel=self.name)
                emit(self.env, "rel.transmit.stale", channel=self.name,
                     seq=seq, attempt=attempts, ack=True)
                if attempts > self.max_retries:
                    raise RetriesExhausted(
                        f"{self.name}: ACK import kept going stale after "
                        f"{attempts} recoveries", seq=seq, retries=attempts)
                yield from _reimport_with_backoff(
                    self.env, self._ack_at_sender, self.name, self.stats,
                    timeout_ns=self.timeout_ns,
                    max_timeout_ns=self.max_timeout_ns,
                    max_retries=self.max_retries)

    def _complete_at(self, base: int, expected: int) -> Optional[bytes]:
        """The slot at ``base`` holds a complete image of message
        ``expected`` iff the seq matches and the payload CRC verifies
        (guards against partially-arrived multi-chunk messages whose tail
        was corrupted on the wire)."""
        if _read_u32(self.ring, base) != expected:
            return None
        length = _read_u32(self.ring, base + 4)
        if length > self.payload_per_slot:
            return None
        payload = self.ring.read(base + HEADER_BYTES, length).tobytes() \
            if length else b""
        if zlib.crc32(payload) != _read_u32(self.ring, base + 8):
            return None
        return payload

    def _refresh_snapshots(self) -> list[int]:
        """Update the per-slot images; returns the indices that changed
        since the previous wake."""
        changed = []
        for i in range(self.nslots):
            base = i * self.slot_bytes
            current = self.ring.read(base, self.slot_bytes).tobytes()
            if current != self._slot_snapshots[i]:
                self._slot_snapshots[i] = current
                changed.append(i)
        return changed

    def _duplicate_in(self, changed: list[int]) -> bool:
        """True if any freshly-changed slot holds a *complete* image of an
        already-applied message — a late retransmission whose payload
        differs from what last occupied the slot (e.g. it was since
        overwritten by a wrapped sequence)."""
        for i in changed:
            base = i * self.slot_bytes
            seq = _read_u32(self.ring, base)
            if 0 < seq <= self.delivered and \
                    self._complete_at(base, seq) is not None:
                return True
        return False

    def recv(self):
        """Process: value is the next message's payload bytes, applied
        exactly once and acknowledged.

        Future window slots arriving ahead of ``expected`` (the adaptive
        sender pipelines up to ``cwnd`` slots) simply park in the ring;
        only genuine duplicates — retransmissions of already-applied
        messages, provoked by a lost ACK — are suppressed and re-ACKed.
        """
        def run():
            if self._ack_at_sender is None:
                raise ReliableError(f"channel {self.name} not opened")
            expected = self._next_seq
            base = ((expected - 1) % self.nslots) * self.slot_bytes
            first = True
            while True:
                watch = self.ep.watch(self.ring)
                yield self.ep.membus.cacheline_fill()
                changed = self._refresh_snapshots()
                payload = self._complete_at(base, expected)
                if payload is not None:
                    self._next_seq = expected + 1
                    self.stats.messages_delivered += 1
                    emit(self.env, "rel.recv", channel=self.name,
                         seq=expected, nbytes=len(payload))
                    yield from self._send_ack(expected)
                    return payload
                # Duplicate suppression.  Two shapes of lost-ACK fallout:
                # a retransmission that *changed* some slot back to an
                # already-applied seq, or an *identical* rewrite of an
                # applied slot (the common case: same header, same
                # payload, so the watch fired but no byte moved).  Both
                # deserve a re-ACK so the sender stops; a changed slot
                # carrying a *future* seq is the pipeline at work and is
                # left alone.
                duplicate = self._duplicate_in(changed) or (
                    not first and not changed and self.delivered >= 1)
                if duplicate:
                    self.stats.duplicates_suppressed += 1
                    count(self.env, "rel.duplicates", channel=self.name)
                    yield from self._send_ack(self.delivered, resend=True)
                first = False
                yield watch

        return self.env.process(run(), name=f"rel.recv.{self.name}")


def open_channel(tx_ep: VMMCEndpoint, rx_ep: VMMCEndpoint, name: str,
                 nslots: int = DEFAULT_SLOTS,
                 slot_bytes: int = DEFAULT_SLOT_BYTES,
                 timeout_ns: int = DEFAULT_TIMEOUT_NS,
                 max_timeout_ns: int = DEFAULT_MAX_TIMEOUT_NS,
                 max_retries: int = DEFAULT_MAX_RETRIES,
                 adaptive: bool = True,
                 **adaptive_knobs):
    """Process: wire one reliable channel ``tx_ep → rx_ep``; value is the
    ``(ReliableSender, ReliableReceiver)`` pair.

    ``adaptive`` selects the congestion-controlled policy (default) or
    the static stop-and-wait baseline; ``adaptive_knobs`` pass through to
    :class:`ReliableSender` (``rtt_alpha_shift``, ``rtt_beta_shift``,
    ``min_rto_ns``, ``max_window``, ``pace_quantum_ns``).  The configured
    ``timeout_ns``/``max_timeout_ns``/``max_retries`` shape *both* ends —
    the receiver uses them for its own stale-ACK recovery backoff.

    Export order matters only in that each side's import must follow the
    peer's export; the daemons' Ethernet matchmaking handles the rest.
    """
    sender = ReliableSender(tx_ep, name, nslots=nslots,
                            slot_bytes=slot_bytes, timeout_ns=timeout_ns,
                            max_timeout_ns=max_timeout_ns,
                            max_retries=max_retries, adaptive=adaptive,
                            **adaptive_knobs)
    receiver = ReliableReceiver(rx_ep, name, nslots=nslots,
                                slot_bytes=slot_bytes,
                                timeout_ns=timeout_ns,
                                max_timeout_ns=max_timeout_ns,
                                max_retries=max_retries)
    env = tx_ep.env

    def run():
        # Both exports first (they are independent), then both imports.
        yield receiver.export_ring()
        yield sender.export_ack()
        yield sender.import_ring(rx_ep.node_name)
        yield receiver.import_ack(tx_ep.node_name)
        return sender, receiver

    return env.process(run(), name=f"rel.open.{name}")
