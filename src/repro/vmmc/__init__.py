"""Virtual memory-mapped communication (VMMC) — the paper's contribution.

VMMC transfers data directly between the sender's and receiver's virtual
address spaces (section 2):

* a receiver **exports** regions of its address space as receive buffers;
* a sender **imports** them (subject to the exporter's restrictions) into
  its *destination proxy space*;
* ``SendMsg(srcAddr, destProxyAddr, nbytes)`` moves bytes from local
  virtual memory straight into the imported remote buffer — no receive
  operation, no receiver CPU involvement, no copies;
* optional **notifications** invoke a user-level handler in the receiving
  process after delivery.

Implementation pieces (section 4):

====================  =====================================================
module                role
====================  =====================================================
``pagetables``        incoming (per interface) and outgoing (per process)
                      page tables kept in LANai SRAM
``proxy``             destination proxy address space management
``tlb``               two-way set-associative software TLB in SRAM
``sendqueue``         per-process send queues in SRAM; short/long formats
``lcp``               the VMMC LANai control program (the firmware)
``mapping_lcp``       boot-time network mapping producing static routes
``driver``            the loadable kernel driver (TLB refill interrupts,
                      notification delivery via signals)
``daemon``            the per-node VMMC daemon (export/import matchmaking
                      over Ethernet)
``api``               the user-level VMMC basic library; lifecycle-aware
                      export/import handles and typed ``ProxyAddress``
                      send destinations (see docs/API.md)
``reliable``          retransmission layer over the API (extension): ACK
                      by remote-memory write, timeout + backoff + bounded
                      retries, exactly-once payload application
====================  =====================================================
"""

from repro.vmmc.errors import (
    CompletionError,
    ExportError,
    ImportDenied,
    ImportStale,
    ImportTimeout,
    InvalidSendError,
    ProxyFault,
    RetriesExhausted,
    SendError,
    VMMCError,
)
from repro.vmmc.api import (
    ExportHandle,
    ImportedBuffer,
    LifecycleState,
    ProxyAddress,
    SendHandle,
    VMMCEndpoint,
)
from repro.vmmc.daemon import ImportGrant
from repro.vmmc.pagetables import IncomingPageTable, OutgoingPageTable
from repro.vmmc.proxy import ProxySpace
from repro.vmmc.tlb import SoftwareTLB
from repro.vmmc.sendqueue import SendQueue, SHORT_SEND_LIMIT
from repro.vmmc.reliable import (
    ReliableReceiver,
    ReliableSender,
    ReliableStats,
    open_channel,
)

__all__ = [
    "CompletionError",
    "ExportError",
    "ExportHandle",
    "ImportDenied",
    "ImportGrant",
    "ImportStale",
    "ImportTimeout",
    "ImportedBuffer",
    "IncomingPageTable",
    "InvalidSendError",
    "LifecycleState",
    "OutgoingPageTable",
    "ProxyAddress",
    "ProxyFault",
    "ProxySpace",
    "ReliableReceiver",
    "ReliableSender",
    "ReliableStats",
    "RetriesExhausted",
    "SHORT_SEND_LIMIT",
    "SendError",
    "SendHandle",
    "SendQueue",
    "SoftwareTLB",
    "VMMCEndpoint",
    "VMMCError",
    "open_channel",
]
