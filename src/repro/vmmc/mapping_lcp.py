"""Boot-time network mapping (section 4.3).

"When the system boots, each VMMC daemon loads a special LANai control
program ... that automatically maps the network ... After each node has
mapped the entire network, each VMMC daemon extracts the routing
information, and then replaces the mapping LCP with an LCP that implements
VMMC.  When the VMMC LCP operates, no dynamic remapping of the network
takes place and all the routing information resides in static tables."

We model exactly that life cycle: a mapping phase that runs *before* the
VMMC LCPs start, computes candidate routes, and **verifies each route by
sending a probe packet along it through the real simulated fabric** and
checking it arrives at the right node.  The verified routes become the
static tables installed into each VMMC LCP.  The topology is assumed
static afterwards (section 4.2); :meth:`MappingPhase.remap_required`
exposes the restart-on-topology-change policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sim import Environment
from repro.sim.trace import emit
from repro.hw.lanai.nic import LanaiNIC
from repro.hw.myrinet.network import MyrinetNetwork, natural_key
from repro.hw.myrinet.packet import MyrinetPacket, PacketHeader
from repro.hw.myrinet.topology import DeadlockReport, check_deadlock_free


class MappingError(RuntimeError):
    """A probe did not arrive where the candidate route claimed."""


@dataclass
class MappingResult:
    """Static routing state handed to each node's VMMC LCP."""

    #: node name → (destination node index → route bytes)
    routes: dict[str, dict[int, list[int]]]
    #: node name → node index (the cluster-wide numbering).
    indices: dict[str, int]
    probes_sent: int = 0
    mapping_time_ns: int = 0
    #: Deadlock-freedom proof of the fabric's installed routing function
    #: (None for hand-built fabrics with no installed route table).
    deadlock: Optional[DeadlockReport] = None


class MappingPhase:
    """Runs the mapping protocol over the simulated fabric.

    ``indices`` is the authoritative node numbering (the cluster passes
    ``{node.name: node.index}``); when omitted, names are numbered in
    natural order (``node9`` before ``node10``) so routing tables line up
    with host indices on fabrics of any size.
    """

    def __init__(self, env: Environment, network: MyrinetNetwork,
                 nics: dict[str, LanaiNIC],
                 indices: Optional[dict[str, int]] = None):
        self.env = env
        self.network = network
        self.nics = nics
        if indices is not None and set(indices) != set(nics):
            raise ValueError("indices must cover exactly the mapped NICs")
        self.indices = indices
        self._topology_version = 0

    def run(self):
        """Process: map the network; value is a :class:`MappingResult`."""
        def mapping():
            start = self.env.now
            if self.indices is not None:
                indices = dict(self.indices)
                names = sorted(indices, key=indices.get)
            else:
                names = sorted(self.nics, key=natural_key)
                indices = {name: i for i, name in enumerate(names)}
            # Before trusting the fabric's routing function, prove it
            # cannot wedge the wormhole network: the channel dependency
            # graph of every installed route table must be cycle-free.
            report = None
            if self.network.route_table is not None:
                report = check_deadlock_free(self.network)
            routes: dict[str, dict[int, list[int]]] = {n: {} for n in names}
            probes = 0
            n = len(names)
            # All-pairs probe verification in n-1 rounds of n parallel
            # probes: round r pairs every src with the dst r steps ahead,
            # so each round targets every destination exactly once (one
            # inflight probe per inbox) while loading the fabric the way
            # real traffic will.
            for r in range(1, n):
                round_probes = []
                for i, src in enumerate(names):
                    dst = names[(i + r) % n]
                    candidate = self.network.compute_route(src, dst)
                    routes[src][indices[dst]] = candidate
                    round_probes.append(self.env.process(
                        self._verify_route(src, dst, candidate)))
                for proc in round_probes:
                    yield proc
                probes += n
            duration = self.env.now - start
            emit(self.env, "mapping.done", probes=probes,
                 duration_ns=duration,
                 topology=type(self.network.topology).__name__
                 if self.network.topology is not None else "manual",
                 channels=report.channels if report else 0,
                 channel_deps=report.dependencies if report else 0)
            return MappingResult(routes=routes, indices=indices,
                                 probes_sent=probes,
                                 mapping_time_ns=duration,
                                 deadlock=report)

        return self.env.process(mapping(), name="mapping_phase")

    def _verify_route(self, src: str, dst: str, route: list[int]):
        """Send a probe along ``route`` and confirm it lands on ``dst``."""
        probe = MyrinetPacket(
            list(route),
            PacketHeader("map_probe", {"src": src, "claimed_dst": dst},
                         wire_bytes=8),
            b"")
        probe.seal()
        yield self.nics[src].net_send.send(probe)
        # Wait for the probe to surface in the claimed destination's inbox.
        arrived = yield self.nics[dst].net_recv.inbox.get()
        if arrived.header.kind != "map_probe" \
                or arrived.header["claimed_dst"] != dst \
                or not arrived.route_exhausted:
            raise MappingError(
                f"probe {src}->{dst} misrouted: got "
                f"{arrived.header.fields}")

    def remap_required(self) -> bool:
        """The VMMC LCP performs no dynamic remapping; adding/removing
        nodes requires restarting the system software (section 4.2)."""
        return self._topology_version > 0

    def topology_changed(self) -> None:
        self._topology_version += 1
