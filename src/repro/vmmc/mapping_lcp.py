"""Boot-time network mapping (section 4.3).

"When the system boots, each VMMC daemon loads a special LANai control
program ... that automatically maps the network ... After each node has
mapped the entire network, each VMMC daemon extracts the routing
information, and then replaces the mapping LCP with an LCP that implements
VMMC.  When the VMMC LCP operates, no dynamic remapping of the network
takes place and all the routing information resides in static tables."

We model exactly that life cycle: a mapping phase that runs *before* the
VMMC LCPs start, computes candidate routes, and **verifies each route by
sending a probe packet along it through the real simulated fabric** and
checking it arrives at the right node.  The verified routes become the
static tables installed into each VMMC LCP.  The topology is assumed
static afterwards (section 4.2); :meth:`MappingPhase.remap_required`
exposes the restart-on-topology-change policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim import Environment
from repro.sim.trace import emit
from repro.hw.lanai.nic import LanaiNIC
from repro.hw.myrinet.network import MyrinetNetwork
from repro.hw.myrinet.packet import MyrinetPacket, PacketHeader


class MappingError(RuntimeError):
    """A probe did not arrive where the candidate route claimed."""


@dataclass
class MappingResult:
    """Static routing state handed to each node's VMMC LCP."""

    #: node name → (destination node index → route bytes)
    routes: dict[str, dict[int, list[int]]]
    #: node name → node index (the cluster-wide numbering).
    indices: dict[str, int]
    probes_sent: int = 0
    mapping_time_ns: int = 0


class MappingPhase:
    """Runs the mapping protocol over the simulated fabric."""

    def __init__(self, env: Environment, network: MyrinetNetwork,
                 nics: dict[str, LanaiNIC]):
        self.env = env
        self.network = network
        self.nics = nics
        self._topology_version = 0

    def run(self):
        """Process: map the network; value is a :class:`MappingResult`."""
        def mapping():
            start = self.env.now
            names = sorted(self.nics)
            indices = {name: i for i, name in enumerate(names)}
            routes: dict[str, dict[int, list[int]]] = {n: {} for n in names}
            probes = 0
            for src in names:
                for dst in names:
                    if src == dst:
                        continue
                    candidate = self.network.compute_route(src, dst)
                    yield self.env.process(
                        self._verify_route(src, dst, candidate))
                    routes[src][indices[dst]] = candidate
                    probes += 1
            duration = self.env.now - start
            emit(self.env, "mapping.done", probes=probes,
                 duration_ns=duration)
            return MappingResult(routes=routes, indices=indices,
                                 probes_sent=probes,
                                 mapping_time_ns=duration)

        return self.env.process(mapping(), name="mapping_phase")

    def _verify_route(self, src: str, dst: str, route: list[int]):
        """Send a probe along ``route`` and confirm it lands on ``dst``."""
        probe = MyrinetPacket(
            list(route),
            PacketHeader("map_probe", {"src": src, "claimed_dst": dst},
                         wire_bytes=8),
            b"")
        probe.seal()
        yield self.nics[src].net_send.send(probe)
        # Wait for the probe to surface in the claimed destination's inbox.
        arrived = yield self.nics[dst].net_recv.inbox.get()
        if arrived.header.kind != "map_probe" \
                or arrived.header["claimed_dst"] != dst \
                or not arrived.route_exhausted:
            raise MappingError(
                f"probe {src}->{dst} misrouted: got "
                f"{arrived.header.fields}")

    def remap_required(self) -> bool:
        """The VMMC LCP performs no dynamic remapping; adding/removing
        nodes requires restarting the system software (section 4.2)."""
        return self._topology_version > 0

    def topology_changed(self) -> None:
        self._topology_version += 1
