"""The VMMC LANai Control Program — the firmware at the heart of the paper.

The LCP is a single-threaded state machine on the 33 MHz LANai (section
4.5).  Its main loop services incoming packets first, then scans the send
queues of *all* attached processes round-robin (this scan is the structural
cost SHRIMP's hardware state machine avoids, section 6).

Send side
---------
* **short** requests (≤128 B): the data is already in the queue entry
  (PIO-copied by the host); the LANai resolves the proxy address through
  the sender's outgoing page table, builds a header with up to two
  physical destination addresses (the receive-side page-boundary scatter),
  copies the data into a network staging buffer, and fires the net-send
  DMA.  No host DMA at all.
* **long** requests (≤8 MB): the entry carries the *virtual* source
  address.  The LANai translates each source page through the per-process
  software TLB (interrupting the host driver on a miss), fetches the data
  page-by-page with the host DMA engine into double staging buffers, and
  pipelines host-DMA of chunk *k+1* with net-DMA of chunk *k*, preparing
  the next header while DMAs are in flight — the three optimisations the
  paper credits for reaching 98 % of the hardware limit (section 5.3).
  When the last chunk is safely in LANai memory a one-word completion
  status is DMA'd back to user space so the sender can spin on a cache
  location.

The **tight sending loop vs. main loop** distinction (section 5.3) is
modelled explicitly: while streaming a long message with no incoming
traffic the LCP stays in the tight loop (small per-chunk overhead); if a
packet arrives it abandons the tight loop, services the packet, and pays
the full main-loop cost — which is why simultaneous bidirectional traffic
tops out at 91 MB/s aggregate rather than 2×98 MB/s.

Receive side
------------
Arriving packets carry physical destination extents in their header.  The
LCP validates every touched frame against the incoming page table (drop +
count on violation — data can never land outside an exported buffer),
fires the host-DMA scatter, and raises a notification interrupt if the
destination pages ask for one.  CRC errors are detected and counted but
not recovered (section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.sim import AllOf, Environment, Event
from repro.sim.trace import emit
from repro.obs.metrics import count, observe
from repro.mem.virtual import PAGE_SIZE
from repro.hw.lanai.nic import LanaiNIC
from repro.hw.myrinet.packet import MyrinetPacket, PacketHeader
from repro.vmmc.pagetables import (
    DEFAULT_OUTGOING_PAGES,
    IncomingPageTable,
    OutgoingPageTable,
)
from repro.vmmc.proxy import ProxySpace
from repro.vmmc.sendqueue import (
    COMPLETION_DONE,
    COMPLETION_ERROR,
    SendQueue,
    SendRequest,
)
from repro.vmmc.tlb import REFILL_BATCH, SoftwareTLB


@dataclass(frozen=True)
class LCPCosts:
    """Firmware step costs in LANai cycles (30 ns each at 33 MHz).

    Calibrated so the assembled system reproduces the paper's section-5
    aggregates: pickup + header preparation + net-DMA start ≈ 2.5 µs on
    the send side, ≈ 2 µs software on the receive side before the host
    DMA, 9.8 µs one-way latency for one word, and ≥ 2× SHRIMP's 2–3 µs
    send initiation.
    """

    #: One main-loop iteration: poll receive status, check doorbells.
    main_loop: int = 10
    #: Scanning one process send queue head (×, per attached process).
    scan_per_queue: int = 6
    #: Reading + decoding a posted entry.
    pickup: int = 18
    #: Outgoing page-table index + bounds check for one proxy page.
    proxy_lookup: int = 12
    #: Computing scatter lengths + writing one packet header.
    header_build: int = 24
    #: Fetching the precomputed route bytes for the destination node.
    route_fetch: int = 4
    #: Copying one 32-bit word of short data queue→staging (LANai copy).
    short_copy_per_word: int = 2
    #: Programming any DMA engine.
    start_dma: int = 10
    #: Non-overlapped bookkeeping per long-message chunk in the tight loop.
    tight_loop_per_chunk: int = 16
    #: Full pass through the main-loop state machine when the tight
    #: sending loop is abandoned for an incoming packet (section 5.3's
    #: bidirectional-traffic cost: dispatch tables, state save/restore).
    main_loop_full: int = 225
    #: Software TLB probe.
    tlb_lookup: int = 8
    #: Raising + synchronising on a host interrupt (LANai side only).
    raise_interrupt: int = 60
    #: Parsing an arrived packet's header + CRC status.
    recv_parse: int = 20
    #: Incoming page-table check per destination extent.
    incoming_check: int = 12
    #: Preparing the one-word completion-status DMA.
    completion_write: int = 25
    #: Per-request epilogue after injection: slot retire, queue pointer
    #: update, statistics (off the latency-critical path).
    send_epilogue: int = 12
    #: Ablation switches for the section-4.5 optimisations.  With
    #: ``pipeline_dma`` off, each chunk's net DMA must finish before the
    #: next chunk may start (no host/net overlap).  With
    #: ``precompute_headers`` off, header preparation happens serially
    #: after the host DMA instead of overlapping it.
    pipeline_dma: bool = True
    precompute_headers: bool = True


@dataclass
class ProcessContext:
    """Per attached process state resident on the NIC."""

    pid: int
    queue: SendQueue
    outgoing: OutgoingPageTable
    tlb: SoftwareTLB
    proxy: ProxySpace
    #: Physical address of the process's pinned completion-word array.
    completion_paddr: int
    #: Per-slot events the user library waits on (sync sends).
    completion_events: dict[int, Event] = field(default_factory=dict)
    #: Per-slot status mirror for test introspection.
    last_status: dict[int, int] = field(default_factory=dict)


#: Number of 4 KB double-buffered send staging buffers in SRAM.
_SEND_STAGING = 2


class VmmcLCP:
    """The VMMC control program running on one NIC."""

    def __init__(self, env: Environment, nic: LanaiNIC, node_index: int,
                 nframes: int, costs: LCPCosts | None = None,
                 name: str = ""):
        self.env = env
        self.nic = nic
        self.node_index = node_index
        self.costs = costs or LCPCosts()
        self.name = name or f"lcp{node_index}"
        self.incoming = IncomingPageTable(nframes, sram=nic.sram)
        self.routes: dict[int, list[int]] = {}
        self.processes: dict[int, ProcessContext] = {}
        self._scan_order: list[int] = []
        self._scan_cursor = 0
        self._doorbell: Optional[Event] = None
        self._running = False
        # LCP code + data + staging buffers, resident in SRAM.
        nic.sram.alloc("lcp_code_data", 48 * 1024)
        self._staging = [
            nic.sram.alloc(f"send_staging.{i}", PAGE_SIZE)
            for i in range(_SEND_STAGING)
        ]
        nic.sram.alloc("recv_staging", 4 * PAGE_SIZE)
        nic.net_recv.on_arrival = self._ring_doorbell
        # counters
        self.sends_processed = 0
        self.short_sends = 0
        self.long_sends = 0
        self.chunks_sent = 0
        self.packets_delivered = 0
        self.crc_drops = 0
        self.protection_violations = 0
        self.proxy_faults = 0
        self.tlb_miss_interrupts = 0
        self.notifications_raised = 0
        self.tight_loop_breaks = 0

    # ------------------------------------------------------------------ setup
    def install_routes(self, routes: dict[int, list[int]]) -> None:
        """Static routing table produced by the mapping phase (section 4.3).

        Route bytes also live in SRAM (a few bytes per destination)."""
        self.routes = dict(routes)
        region = f"route_table"
        if region not in self.nic.sram.regions:
            self.nic.sram.alloc(region, max(64, 8 * max(1, len(routes))))

    def register_process(self, pid: int, completion_paddr: int,
                         outgoing_pages: int = DEFAULT_OUTGOING_PAGES
                         ) -> ProcessContext:
        """Attach a process: allocate its queue, outgoing table and TLB.

        This is where the section-6 "more network interface resources"
        cost lands: ~29 KB of SRAM per attached process.
        """
        if pid in self.processes:
            raise ValueError(f"pid {pid} already attached to {self.name}")
        ctx = ProcessContext(
            pid=pid,
            queue=SendQueue(pid, sram=self.nic.sram),
            outgoing=OutgoingPageTable(pid, outgoing_pages,
                                       sram=self.nic.sram),
            tlb=SoftwareTLB(pid, sram=self.nic.sram),
            proxy=ProxySpace(outgoing_pages),
            completion_paddr=completion_paddr,
        )
        self.processes[pid] = ctx
        self._scan_order.append(pid)
        return ctx

    def start(self) -> None:
        if self._running:
            raise RuntimeError(f"{self.name} already running")
        self._running = True
        self.env.process(self._main_loop(), name=f"{self.name}.main")

    # ------------------------------------------------------------- wakeups
    def _ring_doorbell(self) -> None:
        if self._doorbell is not None and not self._doorbell.triggered:
            self._doorbell.succeed()

    def doorbell(self) -> None:
        """Called by the user library after posting a send request."""
        self._ring_doorbell()

    # ------------------------------------------------------------ main loop
    def _work_pending(self) -> bool:
        if self.nic.net_recv.pending():
            return True
        return any(self.processes[pid].queue.peek() is not None
                   for pid in self._scan_order)

    def _main_loop(self):
        cpu = self.nic.processor
        costs = self.costs
        while True:
            if not self._work_pending():
                self._doorbell = self.env.event()
                yield self._doorbell
                self._doorbell = None
            # One iteration of the main loop: poll receive side, then scan
            # every attached process's queue head (section 6: "picking up a
            # send request in Myrinet requires scanning send queues of all
            # possible senders").
            yield cpu.cycles(costs.main_loop
                             + costs.scan_per_queue
                             * max(1, len(self._scan_order)))
            if self.nic.net_recv.pending():
                packet = yield self.nic.net_recv.inbox.get()
                yield from self._handle_receive(packet)
                continue
            picked = self._scan()
            if picked is not None:
                ctx, request = picked
                yield from self._process_send(ctx, request)

    def _scan(self) -> Optional[tuple[ProcessContext, SendRequest]]:
        """Round-robin scan of process queues; returns a picked request."""
        n = len(self._scan_order)
        for i in range(n):
            pid = self._scan_order[(self._scan_cursor + i) % n]
            ctx = self.processes[pid]
            if ctx.queue.peek() is not None:
                self._scan_cursor = (self._scan_cursor + i + 1) % n
                return ctx, ctx.queue.pickup()
        return None

    # ------------------------------------------------------------- send path
    def _process_send(self, ctx: ProcessContext, request: SendRequest):
        cpu = self.nic.processor
        t0 = self.env.now
        yield cpu.cycles(self.costs.pickup)
        self.sends_processed += 1
        emit(self.env, f"{self.name}.send.pickup", pid=ctx.pid,
             slot=request.slot, length=request.length,
             short=request.is_short)
        if request.is_short:
            count(self.env, "lcp.sends", lcp=self.name, kind="short")
            yield from self._send_short(ctx, request)
        else:
            count(self.env, "lcp.sends", lcp=self.name, kind="long")
            yield from self._send_long(ctx, request)
        observe(self.env, "lcp.send.service_ns", self.env.now - t0,
                lcp=self.name)

    def _resolve_destination(self, ctx: ProcessContext, proxy_address: int,
                             nbytes: int
                             ) -> Optional[tuple[int, list[tuple[int, int]]]]:
        """Proxy address → (destination node, ≤2 physical extents).

        Returns None on a proxy fault (unmapped page, cross-node span);
        the caller reports an error completion — data never leaves the
        node with an invalid destination.
        """
        proxy_page, offset = ProxySpace.split(proxy_address)
        try:
            first = ctx.outgoing.lookup(proxy_page)
        except ValueError:
            first = None
        if first is None:
            return None
        node, phys_page = first
        len1 = min(nbytes, PAGE_SIZE - offset)
        extents = [(phys_page * PAGE_SIZE + offset, len1)]
        if len1 < nbytes:
            try:
                second = ctx.outgoing.lookup(proxy_page + 1)
            except ValueError:
                second = None
            if second is None or second[0] != node:
                return None
            extents.append((second[1] * PAGE_SIZE, nbytes - len1))
        return node, extents

    def _make_packet(self, ctx: ProcessContext, node: int,
                     extents: list[tuple[int, int]], payload: np.ndarray,
                     notify: bool, last: bool, msg_len: int
                     ) -> MyrinetPacket:
        header = PacketHeader("vmmc_data", {
            "length": int(payload.size),
            "msg_length": msg_len,
            "extents": tuple(extents),
            "notify": notify,
            "last": last,
            "src_node": self.node_index,
            "src_pid": ctx.pid,
        })
        return MyrinetPacket(list(self.routes[node]), header, payload)

    def _send_short(self, ctx: ProcessContext, request: SendRequest):
        cpu = self.nic.processor
        costs = self.costs
        resolved = self._resolve_destination(
            ctx, request.proxy_address, request.length)
        yield cpu.cycles(costs.proxy_lookup)
        if resolved is None:
            self.proxy_faults += 1
            count(self.env, "lcp.proxy_faults", lcp=self.name)
            yield from self._write_completion(ctx, request.slot,
                                              COMPLETION_ERROR)
            return
        node, extents = resolved
        words = (request.length + 3) // 4
        yield cpu.cycles(costs.short_copy_per_word * words
                         + costs.header_build + costs.route_fetch
                         + costs.start_dma)
        packet = self._make_packet(ctx, node, extents, request.inline_data,
                                   request.notify, last=True,
                                   msg_len=request.length)
        self.short_sends += 1
        self.chunks_sent += 1
        count(self.env, "lcp.chunks", lcp=self.name)
        # The net-send engine streams autonomously; the LCP moves on.
        self.nic.net_send.send(packet)
        yield cpu.cycles(costs.send_epilogue)
        # Slot is consumed (data copied out) — report completion.
        yield from self._write_completion(ctx, request.slot, COMPLETION_DONE)

    def _plan_chunks(self, src_vaddr: int, length: int
                     ) -> list[tuple[int, int]]:
        """Chunk a long message: first chunk runs to the first source page
        boundary, the rest are whole pages (section 4.5)."""
        chunks = []
        cursor = src_vaddr
        remaining = length
        first = min(remaining, PAGE_SIZE - (src_vaddr % PAGE_SIZE))
        chunks.append((cursor, first))
        cursor += first
        remaining -= first
        while remaining > 0:
            size = min(PAGE_SIZE, remaining)
            chunks.append((cursor, size))
            cursor += size
            remaining -= size
        return chunks

    def _translate(self, ctx: ProcessContext, vaddr: int):
        """Generator: V→P through the software TLB; interrupts the host
        driver on a miss.  Returns the physical address or None."""
        cpu = self.nic.processor
        vpage = vaddr // PAGE_SIZE
        yield cpu.cycles(self.costs.tlb_lookup)
        frame = ctx.tlb.lookup(vpage)
        if frame is None:
            self.tlb_miss_interrupts += 1
            count(self.env, "lcp.tlb_miss_interrupts", lcp=self.name)
            yield cpu.cycles(self.costs.raise_interrupt)
            ok = yield self.nic.raise_interrupt(
                "tlb_miss",
                {"pid": ctx.pid, "vaddr": vaddr, "count": REFILL_BATCH})
            yield cpu.cycles(self.costs.tlb_lookup)
            frame = ctx.tlb.lookup(vpage)
            if not ok or frame is None:
                return None
        return frame * PAGE_SIZE + (vaddr % PAGE_SIZE)

    def _send_long(self, ctx: ProcessContext, request: SendRequest):
        cpu = self.nic.processor
        costs = self.costs
        chunks = self._plan_chunks(request.src_vaddr, request.length)
        proxy_cursor = request.proxy_address
        # Per-staging-buffer events: the net DMA that last used each buffer.
        net_busy: list[Optional[Event]] = [None] * _SEND_STAGING
        host_pending: Optional[tuple[Event, int, int, int]] = None
        error = False
        self.long_sends += 1

        for index, (vaddr, clen) in enumerate(chunks):
            paddr = yield from self._translate(ctx, vaddr)
            if paddr is None:
                error = True
                break
            resolved = self._resolve_destination(ctx, proxy_cursor, clen)
            yield cpu.cycles(costs.proxy_lookup)
            if resolved is None:
                self.proxy_faults += 1
                count(self.env, "lcp.proxy_faults", lcp=self.name)
                error = True
                break
            node, extents = resolved
            buf = index % _SEND_STAGING
            # Double buffering: wait until the net DMA that last streamed
            # from this staging buffer has finished.
            if net_busy[buf] is not None and not net_busy[buf].triggered:
                yield net_busy[buf]
            # Fire the host DMA for this chunk, then do the header
            # preparation *while it is in flight* — the overlap that buys
            # the last few MB/s (section 5.3).
            host_dma = self.nic.host_dma.to_sram(
                paddr, self._staging[buf].base, clen)
            prep_cycles = (costs.header_build + costs.route_fetch
                           + costs.start_dma + costs.tight_loop_per_chunk)
            if costs.precompute_headers:
                yield AllOf(self.env, [host_dma, cpu.cycles(prep_cycles)])
            else:
                # Ablation: prepare the header only after the data is in
                # SRAM — the prep cost lands on the critical path.
                yield host_dma
                yield cpu.cycles(prep_cycles)
            payload = self.nic.sram.read(self._staging[buf].base, clen)
            packet = self._make_packet(
                ctx, node, extents, payload, request.notify,
                last=(index == len(chunks) - 1), msg_len=request.length)
            net_busy[buf] = self.nic.net_send.send(packet)
            if not costs.pipeline_dma:
                # Ablation: no host/net overlap — wait for the wire before
                # fetching the next chunk.
                yield net_busy[buf]
            self.chunks_sent += 1
            count(self.env, "lcp.chunks", lcp=self.name)
            proxy_cursor += clen
            # Responsiveness: if traffic arrived, abandon the tight loop,
            # service it through the main loop, and come back (this is the
            # bidirectional-bandwidth cost of section 5.3).
            if self.nic.net_recv.pending():
                self.tight_loop_breaks += 1
                count(self.env, "lcp.tight_loop_breaks", lcp=self.name)
                yield cpu.cycles(costs.main_loop_full)
                pkt = yield self.nic.net_recv.inbox.get()
                yield from self._handle_receive(pkt)
        # Completion: the last chunk is safely in LANai memory as soon as
        # its host DMA finished (which the loop above awaited).
        yield from self._write_completion(
            ctx, request.slot,
            COMPLETION_ERROR if error else COMPLETION_DONE)

    def _write_completion(self, ctx: ProcessContext, slot: int, status: int):
        """Generator: DMA the one-word completion status to user space."""
        cpu = self.nic.processor
        yield cpu.cycles(self.costs.completion_write)
        word = np.frombuffer(
            np.uint32(status).tobytes(), dtype=np.uint8)
        paddr = ctx.completion_paddr + 4 * slot
        dma = self.nic.host_dma.write_host(word, paddr)
        ctx.last_status[slot] = status
        # Capture the waiter now (synchronously with this slot's request) so
        # a later re-post of the same slot cannot alias into this writeback.
        event = ctx.completion_events.pop(slot, None)

        def finish():
            yield dma
            if event is not None and not event.triggered:
                event.succeed(status)

        # The writeback proceeds in the background; the LCP does not stall.
        self.env.process(finish(), name=f"{self.name}.completion")

    # ----------------------------------------------------------- receive path
    def _handle_receive(self, packet: MyrinetPacket):
        cpu = self.nic.processor
        costs = self.costs
        yield cpu.cycles(costs.recv_parse)
        if not packet.meta.get("crc_ok", True):
            # Detected, counted, dropped — never recovered (section 4.2).
            self.crc_drops += 1
            count(self.env, "lcp.crc_drops", lcp=self.name)
            emit(self.env, f"{self.name}.recv.crc_drop")
            return
        header = packet.header
        extents = list(header["extents"])
        yield cpu.cycles(costs.incoming_check * max(1, len(extents)))
        for paddr, length in extents:
            if length == 0:
                continue
            first_frame = paddr // PAGE_SIZE
            last_frame = (paddr + length - 1) // PAGE_SIZE
            for frame in range(first_frame, last_frame + 1):
                if not self.incoming.writable(frame):
                    self.protection_violations += 1
                    count(self.env, "lcp.protection_violations",
                          lcp=self.name)
                    emit(self.env, f"{self.name}.recv.protection_violation",
                         frame=frame)
                    return
        yield cpu.cycles(costs.start_dma)
        self.packets_delivered += 1
        count(self.env, "lcp.packets_delivered", lcp=self.name)
        delivery = self.nic.host_dma.write_host_scatter(
            packet.payload, extents)
        notify = bool(header.get("notify")) or any(
            self.incoming.lookup(paddr // PAGE_SIZE).notify
            for paddr, length in extents if length)
        if notify and header.get("last"):
            entry = self.incoming.lookup(extents[0][0] // PAGE_SIZE)
            info = {
                "pid": entry.owner_pid,
                "buffer_id": entry.buffer_id,
                "src_node": header.get("src_node"),
                "length": header.get("msg_length"),
            }
            self.notifications_raised += 1
            count(self.env, "lcp.notifications", lcp=self.name)

            def deliver_then_notify():
                yield delivery
                yield self.nic.processor.cycles(self.costs.raise_interrupt)
                yield self.nic.raise_interrupt("notification", info)

            self.env.process(deliver_then_notify(),
                             name=f"{self.name}.notify")
        # The LCP continues; the host DMA engine delivers in the background.
