"""The per-node VMMC daemon (sections 4.1, 4.4) + cold-restart recovery.

"User programs submit export and import requests to a local VMMC daemon.
Daemons communicate with each other over Ethernet to match export and
import requests and establish export-import relation by setting up data
structures in the LANai control program."

The daemon is trusted system software: it is the only path by which page
tables on the NIC get populated, which is what makes user-level sends safe.
Export: lock the buffer's pages, mark their frames writable (± notify) in
the incoming page table.  Import: ask the exporting node's daemon for the
buffer's physical pages (enforcing the exporter's importer restrictions on
the exporting side), then install outgoing-page-table entries for the
importing process and hand back a proxy region.

Cold-restart recovery (extension beyond the paper)
--------------------------------------------------
The paper assumes daemons stay up; a *warm* restart (:meth:`restart`)
resumes with the export table intact on the NIC, so established pairs keep
working.  ``restart(cold=True)`` models the harder failure — the daemon
loses its export table and the NIC's incoming/outgoing page-table state —
and drives the recovery protocol:

1. **epoch bump** — every daemon carries a monotonically increasing
   *epoch*, stamped on all its Ethernet RPCs.  A cold boot increments it.
2. **local teardown** — incoming entries of every lost export are revoked
   (pages unlocked) and every local import's outgoing entries are cleared;
   local :class:`~repro.vmmc.api.ImportedBuffer` s go ``STALE``.
3. **re-registration** — the user libraries attached to this daemon
   re-register their surviving :class:`~repro.vmmc.api.ExportHandle` s
   (new buffer ids; notification arming does *not* survive, mirroring
   lost signal registrations after a NIC reset).
4. **invalidate broadcast** — a datagram carrying the new epoch goes to
   every peer daemon; peers mark proxy regions importing from this node
   stale, clear their outgoing entries, and fire ``on_invalidate``
   callbacks.  Because the epoch also rides on ordinary RPCs, a peer that
   *missed* the broadcast still detects the cold boot on the next message
   and runs the same invalidation (cf. APENet-style link-error recovery).
5. **re-import** — stale imports are re-established lazily by
   ``imported.reimport()`` (the reliable layer does this transparently).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.sim import AnyOf, Environment, Store
from repro.sim.trace import emit
from repro.obs.metrics import count
from repro.mem.buffers import UserBuffer
from repro.mem.virtual import PAGE_SIZE
from repro.hostos.ethernet import EthernetNetwork
from repro.hostos.kernel import Kernel
from repro.hostos.process import UserProcess
from repro.vmmc.driver import VMMCDriver
from repro.vmmc.errors import ExportError, ImportDenied, ImportTimeout
from repro.vmmc.proxy import ProxyRegion

#: Local IPC (unix-socket round trip) between library and daemon.
LOCAL_IPC_NS = 60_000

_buffer_ids = itertools.count(1)


@dataclass
class ExportRecord:
    """One exported receive buffer on the exporting node."""

    buffer_id: int
    name: str
    owner_pid: int
    vaddr: int
    nbytes: int
    frames: list[int]
    allowed_importers: Optional[frozenset[str]]
    notify: bool

    @property
    def phys_pages(self) -> list[int]:
        return list(self.frames)


@dataclass
class ImportGrant:
    """What an import RPC yields: the proxy region plus the exporter-side
    identity (node index, buffer id) and the exporter daemon's *epoch* at
    grant time — the staleness reference for the invalidation protocol."""

    region: ProxyRegion
    nbytes: int
    node_index: int
    buffer_id: int
    epoch: int


class VMMCDaemon:
    """One daemon per node, addressed ``daemon.<node>`` on the Ethernet."""

    def __init__(self, env: Environment, node_name: str, kernel: Kernel,
                 driver: VMMCDriver, ether: EthernetNetwork):
        self.env = env
        self.node_name = node_name
        self.kernel = kernel
        self.driver = driver
        self.ether = ether
        self.address = f"daemon.{node_name}"
        ether.register(self.address)
        self.exports: dict[str, ExportRecord] = {}
        self._pending_replies: dict[int, Any] = {}
        self._reply_seq = itertools.count(1)
        self.exports_served = 0
        self.imports_served = 0
        self.imports_denied = 0
        self.unimports_served = 0
        self._started = False
        self._crashed = False
        #: Number of overlapping crash-faults currently holding the
        #: daemon down (0 == alive).  Concurrent campaigns nest.
        self._crash_depth = 0
        #: A deferred restart asked for ``cold=True`` — cold dominates
        #: warm, so the eventual restart (depth → 0) is cold.
        self._pending_cold = False
        self.crashes = 0
        self.requests_dropped_crashed = 0
        #: Monotone cold-boot counter, stamped on every daemon RPC.
        self.epoch = 0
        self.cold_restarts = 0
        #: Last epoch observed per peer node name.
        self._peer_epochs: dict[str, int] = {}
        #: User libraries attached on this node (for invalidation fan-out
        #: and cold-boot export re-registration).
        self.endpoints: list = []
        self.invalidations_rx = 0
        self.imports_invalidated = 0
        self.exports_reestablished = 0
        #: Re-register lost exports lazily, on the first import RPC that
        #: names them, instead of eagerly during cold boot.  Lazy is the
        #: default: a cold boot then costs O(1) regardless of how many
        #: exports the node carries (a large DSM frame table restarts
        #: cheap), and exports nobody re-imports are never re-installed.
        self.lazy_reexport = True
        #: name → (endpoint, handle) of exports lost in a cold restart,
        #: awaiting their first import request.
        self._lazy_pending: dict[str, tuple] = {}
        self.lazy_reexports = 0

    def start(self) -> None:
        if self._started:
            raise RuntimeError(f"{self.address} already started")
        self._started = True
        self.env.process(self._serve(), name=f"{self.address}.serve")

    def register_endpoint(self, endpoint) -> None:
        """Attach a user library instance (called by VMMCEndpoint)."""
        self.endpoints.append(endpoint)

    # -- fault hooks ----------------------------------------------------------
    @property
    def crashed(self) -> bool:
        return self._crashed

    @property
    def crash_depth(self) -> int:
        """How many overlapping crash-faults currently hold the daemon."""
        return self._crash_depth

    def crash(self) -> None:
        """Kill the daemon process: requests arriving while it is down are
        lost (Ethernet datagrams to a dead peer get no reply).  Established
        export/import state survives — it lives on the NIC, and data
        transfer does not involve the daemon (section 4.1).

        Crashes **nest**: each call stacks one crash-fault, and the daemon
        only comes back up when :meth:`restart` has been called once per
        crash (concurrent fault campaigns compose instead of clobbering
        each other's state)."""
        self._crash_depth += 1
        self._crashed = True
        self.crashes += 1
        count(self.env, "daemon.crashes", node=self.node_name)
        emit(self.env, f"{self.address}.crash", depth=self._crash_depth)

    def restart(self, cold: bool = False) -> None:
        """Bring the daemon back up.

        *Warm* (default): the export table is rebuilt from the surviving
        NIC state, so previously-matched pairs keep working and *new*
        requests are serviced again.

        *Cold* (``cold=True``): the export table and the NIC's
        incoming/outgoing page-table state are lost.  The daemon bumps its
        epoch and drives the recovery protocol (module docstring): local
        teardown, export re-registration from the attached libraries, and
        an invalidate broadcast that turns peer imports stale.

        With nested crashes (overlapping campaigns) each ``restart``
        releases one crash-fault; the daemon actually restarts only when
        the last one is released, and **cold dominates warm** — if *any*
        overlapping fault asked for a cold restart, the eventual restart
        is cold.  A ``restart`` with no outstanding crash proceeds
        immediately (an administrative reboot of a live daemon).
        """
        if self._crash_depth > 1:
            # Inner restart of a nested crash: stay down, remember cold.
            self._crash_depth -= 1
            self._pending_cold = self._pending_cold or cold
            count(self.env, "daemon.restarts_deferred", node=self.node_name)
            emit(self.env, f"{self.address}.restart_deferred",
                 depth=self._crash_depth,
                 cold_pending=self._pending_cold or cold)
            return
        self._crash_depth = 0
        cold = cold or self._pending_cold
        self._pending_cold = False
        self._crashed = False
        count(self.env, "daemon.restarts", node=self.node_name)
        emit(self.env, f"{self.address}.restart")
        if not cold:
            return
        self.epoch += 1
        self.cold_restarts += 1
        lost = self.exports
        self.exports = {}
        count(self.env, "daemon.cold_restarts", node=self.node_name)
        emit(self.env, f"{self.address}.cold_restart", epoch=self.epoch,
             exports_lost=len(lost))
        self.env.process(self._cold_boot(lost),
                         name=f"{self.address}.cold_boot")

    def _cold_boot(self, lost: dict[str, ExportRecord]):
        """Process: teardown + re-registration + invalidate broadcast."""
        # 1. Tear down the lost exports' incoming entries and unlock their
        #    pages; drop notification registrations (new buffer ids will
        #    not match, and arming does not survive a cold boot).
        for record in lost.values():
            yield self.driver.revoke_incoming_entries(record.frames)
            process = self.driver.process(record.owner_pid)
            if process is not None:
                yield self.kernel.unlock_pages(
                    process.space, record.vaddr, record.nbytes)
            if record.notify:
                self.driver.drop_notify_handler(record.owner_pid,
                                                record.buffer_id)
        # 2. Outgoing page-table state is gone too: every local import is
        #    now stale (entries cleared, lifecycle STALE, callbacks fire).
        for endpoint in self.endpoints:
            n = endpoint.invalidate_imports(reason="local_cold_restart")
            self.imports_invalidated += n
        # 3. Re-register surviving exports from the attached libraries.
        #    Lazy (default): only *note* the lost exports; each is
        #    re-installed by the first import RPC that names it
        #    (`_serve_import`), so cold boot is O(1) in the export count.
        #    Eager (``lazy_reexport=False``): re-install everything now,
        #    before the broadcast, so peers that re-import immediately
        #    find the export back in place.
        for endpoint in self.endpoints:
            for handle in endpoint.export_handles():
                if handle.name not in lost:
                    continue
                if self.lazy_reexport:
                    handle.mark_lost()
                    self._lazy_pending[handle.name] = (endpoint, handle)
                    continue
                record = yield self._install_export(
                    endpoint.process, handle.buffer, handle.name,
                    allowed_importers=handle.record.allowed_importers,
                    notify=False)
                handle.reestablish(record)
                self.exports_reestablished += 1
                count(self.env, "daemon.exports_reestablished",
                      node=self.node_name)
                emit(self.env, f"{self.address}.reexport",
                     name=handle.name, buffer_id=record.buffer_id)
        if self._lazy_pending:
            emit(self.env, f"{self.address}.reexport_deferred",
                 pending=len(self._lazy_pending))
        # 4. Broadcast the invalidation (new epoch) to every peer daemon.
        for peer in self.ether.endpoints():
            if peer == self.address or not peer.startswith("daemon."):
                continue
            yield self.ether.send(
                self.address, peer,
                {"op": "invalidate", "src_node": self.node_name,
                 "epoch": self.epoch},
                nbytes=64)
        emit(self.env, f"{self.address}.invalidate_tx", epoch=self.epoch)

    # -- local requests (called by the user library) ----------------------------
    def _install_export(self, process: UserProcess, buffer: UserBuffer,
                        name: str,
                        allowed_importers=None, notify: bool = False):
        """Process: lock pages + install incoming entries + record."""
        def run():
            frames = yield self.kernel.lock_pages(
                process.space, buffer.vaddr, buffer.nbytes)
            record = ExportRecord(
                buffer_id=next(_buffer_ids),
                name=name,
                owner_pid=process.pid,
                vaddr=buffer.vaddr,
                nbytes=buffer.nbytes,
                frames=frames,
                allowed_importers=(None if allowed_importers is None
                                   else frozenset(allowed_importers)),
                notify=notify,
            )
            yield self.driver.install_incoming_entries(
                frames, process.pid, record.buffer_id, notify)
            self.exports[name] = record
            return record

        return self.env.process(run(), name=f"{self.address}.install_export")

    def export(self, process: UserProcess, buffer: UserBuffer, name: str,
               allowed_importers: Optional[list[str]] = None,
               notify: bool = False):
        """Process: export ``buffer`` under ``name``; value is the record.

        The daemon locks the receive buffer's pages in main memory and
        sets up incoming-page-table entries allowing data reception
        (section 4.4).
        """
        def run():
            yield self.env.timeout(LOCAL_IPC_NS)
            if name in self.exports or name in self._lazy_pending:
                raise ExportError(
                    f"{self.node_name}: export name {name!r} already in use")
            if buffer.space is not process.space:
                raise ExportError("buffer does not belong to the exporter")
            record = yield self._install_export(
                process, buffer, name,
                allowed_importers=allowed_importers, notify=notify)
            self.exports_served += 1
            count(self.env, "daemon.exports", node=self.node_name)
            emit(self.env, "daemon.export", node=self.node_name, name=name,
                 nbytes=buffer.nbytes)
            return record

        return self.env.process(run(), name=f"{self.address}.export")

    def unexport(self, process: UserProcess, name: str):
        """Process: withdraw an export and revoke reception rights."""
        def run():
            yield self.env.timeout(LOCAL_IPC_NS)
            record = self.exports.get(name)
            if record is None and name in self._lazy_pending:
                # Lost in a cold restart, never re-imported since: the
                # pages are already unlocked and the incoming entries
                # already revoked (cold-boot teardown) — just forget it.
                _, handle = self._lazy_pending.pop(name)
                if handle.record.owner_pid == process.pid:
                    return
                raise ExportError(f"no export {name!r} owned by caller")
            if record is None or record.owner_pid != process.pid:
                raise ExportError(f"no export {name!r} owned by caller")
            yield self.driver.revoke_incoming_entries(record.frames)
            yield self.kernel.unlock_pages(
                process.space, record.vaddr, record.nbytes)
            del self.exports[name]

        return self.env.process(run(), name=f"{self.address}.unexport")

    def import_buffer(self, process: UserProcess, remote_node: str,
                      name: str, timeout_ns: Optional[int] = None):
        """Process: import a remote export; value is an
        :class:`ImportGrant` (proxy region + exporter identity/epoch).

        "On an import request, the importing node daemon obtains the
        physical addresses of receive buffer pages from the daemon on the
        exporting node.  Next, the importing node daemon sets up outgoing
        page table entries for the importing process that point to receive
        buffer pages on [the] remote node." (section 4.4)

        ``timeout_ns`` bounds the wait for the exporting daemon's reply;
        on expiry :class:`~repro.vmmc.errors.ImportTimeout` is raised
        (the exporting daemon is dead or unreachable).  Without it, the
        request waits forever — the paper's daemons never crash.
        """
        def run():
            yield self.env.timeout(LOCAL_IPC_NS)
            seq = next(self._reply_seq)
            reply_box: Store = Store(self.env)
            self._pending_replies[seq] = reply_box
            yield self.ether.send(
                self.address, f"daemon.{remote_node}",
                {"op": "import_req", "seq": seq, "name": name,
                 "importer_node": self.node_name,
                 "importer_pid": process.pid,
                 "src_node": self.node_name, "epoch": self.epoch},
                nbytes=128)
            get_reply = reply_box.get()
            if timeout_ns is None:
                reply = yield get_reply
            else:
                fired = yield AnyOf(self.env,
                                    [get_reply, self.env.timeout(timeout_ns)])
                if get_reply not in fired:
                    del self._pending_replies[seq]
                    count(self.env, "daemon.import_timeouts",
                          node=self.node_name)
                    emit(self.env, f"{self.address}.import_timeout",
                         remote=remote_node, name=name)
                    raise ImportTimeout(
                        f"import of {remote_node}:{name} got no reply "
                        f"within {timeout_ns} ns")
                reply = fired[get_reply]
            del self._pending_replies[seq]
            if not reply["ok"]:
                self.imports_denied += 1
                raise ImportDenied(
                    f"import of {remote_node}:{name} denied: "
                    f"{reply['error']}")
            ctx = self.driver.lcp.processes[process.pid]
            region = ctx.proxy.reserve(reply["nbytes"])
            node_index = reply["node_index"]
            yield self.driver.install_outgoing_entries(
                process.pid, region.first_page, node_index,
                reply["phys_pages"])
            self.imports_served += 1
            count(self.env, "daemon.imports", node=self.node_name)
            emit(self.env, "daemon.import", node=self.node_name,
                 remote=remote_node, name=name)
            return ImportGrant(region=region, nbytes=reply["nbytes"],
                               node_index=node_index,
                               buffer_id=reply["buffer_id"],
                               epoch=reply.get("epoch", 0))

        return self.env.process(run(), name=f"{self.address}.import")

    def unimport(self, process: UserProcess, region: ProxyRegion):
        """Process: release an import — clear its outgoing page-table
        entries and return the proxy pages (mirror of :meth:`unexport`)."""
        def run():
            yield self.env.timeout(LOCAL_IPC_NS)
            yield self.driver.clear_outgoing_entries(
                process.pid, region.first_page, region.npages)
            ctx = self.driver.lcp.processes[process.pid]
            ctx.proxy.release(region)
            self.unimports_served += 1
            count(self.env, "daemon.unimports", node=self.node_name)
            emit(self.env, "daemon.unimport", node=self.node_name,
                 first_page=region.first_page, npages=region.npages)

        return self.env.process(run(), name=f"{self.address}.unimport")

    # -- epoch tracking / peer invalidation --------------------------------------
    def _note_peer_epoch(self, src_node: str, epoch: int) -> None:
        """Epoch carried on a daemon RPC: a jump reveals a peer cold boot
        even when the invalidate broadcast was lost."""
        known = self._peer_epochs.get(src_node)
        if known is None:
            self._peer_epochs[src_node] = epoch
        elif epoch > known:
            self._invalidate_peer(src_node, epoch)

    def _invalidate_peer(self, src_node: str, epoch: int) -> None:
        """Mark every local import from ``src_node`` (older than ``epoch``)
        stale: proxy regions keep their pages (quarantined until
        re-import/unimport) but the outgoing entries are torn down and
        ``on_invalidate`` callbacks fire."""
        self._peer_epochs[src_node] = epoch
        invalidated = 0
        for endpoint in self.endpoints:
            invalidated += endpoint.invalidate_imports(
                remote_node=src_node, epoch=epoch,
                reason="peer_cold_restart")
        self.invalidations_rx += 1
        self.imports_invalidated += invalidated
        count(self.env, "daemon.invalidations", node=self.node_name)
        count(self.env, "daemon.imports_invalidated", invalidated,
              node=self.node_name)
        emit(self.env, f"{self.address}.invalidate_rx", src=src_node,
             epoch=epoch, imports=invalidated)

    # -- the Ethernet service loop -------------------------------------------------
    def _serve(self):
        while True:
            datagram = yield self.ether.receive(self.address)
            message = datagram.payload
            if self._crashed:
                # Dead daemon: the datagram is consumed by the NIC but no
                # process reads it — the requester sees silence.
                self.requests_dropped_crashed += 1
                count(self.env, "daemon.requests_dropped",
                      node=self.node_name)
                emit(self.env, f"{self.address}.drop_crashed",
                     op=message.get("op"))
                continue
            src_node = message.get("src_node")
            if src_node is not None and "epoch" in message:
                self._note_peer_epoch(src_node, message["epoch"])
            op = message.get("op")
            if op == "import_req":
                yield self.env.process(
                    self._serve_import(datagram.src, message))
            elif op == "import_reply":
                box = self._pending_replies.get(message["seq"])
                if box is not None:
                    box.put(message)
            elif op == "invalidate":
                self._invalidate_peer(message["src_node"], message["epoch"])
            else:
                emit(self.env, "daemon.unknown_op", op=op)

    def _lazy_reestablish(self, name: str):
        """Process body: first import RPC naming a lazily-deferred lost
        export — re-install it now (fresh buffer id, pages re-locked,
        incoming entries back) and flip the surviving handle to
        REESTABLISHED.  This is the restart-cheap half of the recovery
        protocol: the re-registration cost is paid per *re-imported*
        export, not per cold boot."""
        endpoint, handle = self._lazy_pending.pop(name)
        if not handle.usable and handle.state.value == "revoked":
            return  # unexported while pending; stay gone
        record = yield self._install_export(
            endpoint.process, handle.buffer, name,
            allowed_importers=handle.record.allowed_importers,
            notify=False)
        handle.reestablish(record)
        self.exports_reestablished += 1
        self.lazy_reexports += 1
        count(self.env, "daemon.exports_reestablished",
              node=self.node_name)
        count(self.env, "daemon.lazy_reexports", node=self.node_name)
        emit(self.env, f"{self.address}.reexport", name=name,
             buffer_id=record.buffer_id, lazy=True)

    def _serve_import(self, reply_to: str, message: dict):
        if message["name"] not in self.exports \
                and message["name"] in self._lazy_pending:
            yield from self._lazy_reestablish(message["name"])
        record = self.exports.get(message["name"])
        node_index = self.driver.lcp.node_index
        if record is None:
            reply = {"op": "import_reply", "seq": message["seq"],
                     "ok": False, "error": "no such export"}
        elif (record.allowed_importers is not None
              and message["importer_node"] not in record.allowed_importers):
            reply = {"op": "import_reply", "seq": message["seq"],
                     "ok": False, "error": "importer not permitted"}
        else:
            reply = {"op": "import_reply", "seq": message["seq"], "ok": True,
                     "nbytes": record.nbytes,
                     "phys_pages": record.phys_pages,
                     "node_index": node_index,
                     "buffer_id": record.buffer_id}
        reply["src_node"] = self.node_name
        reply["epoch"] = self.epoch
        yield self.ether.send(self.address, reply_to, reply, nbytes=256)
