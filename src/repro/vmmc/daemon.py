"""The per-node VMMC daemon (sections 4.1, 4.4).

"User programs submit export and import requests to a local VMMC daemon.
Daemons communicate with each other over Ethernet to match export and
import requests and establish export-import relation by setting up data
structures in the LANai control program."

The daemon is trusted system software: it is the only path by which page
tables on the NIC get populated, which is what makes user-level sends safe.
Export: lock the buffer's pages, mark their frames writable (± notify) in
the incoming page table.  Import: ask the exporting node's daemon for the
buffer's physical pages (enforcing the exporter's importer restrictions on
the exporting side), then install outgoing-page-table entries for the
importing process and hand back a proxy region.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.sim import Environment, Store
from repro.sim.trace import emit
from repro.obs.metrics import count
from repro.mem.buffers import UserBuffer
from repro.mem.virtual import PAGE_SIZE
from repro.hostos.ethernet import EthernetNetwork
from repro.hostos.kernel import Kernel
from repro.hostos.process import UserProcess
from repro.vmmc.driver import VMMCDriver
from repro.vmmc.errors import ExportError, ImportDenied
from repro.vmmc.proxy import ProxyRegion

#: Local IPC (unix-socket round trip) between library and daemon.
LOCAL_IPC_NS = 60_000

_buffer_ids = itertools.count(1)


@dataclass
class ExportRecord:
    """One exported receive buffer on the exporting node."""

    buffer_id: int
    name: str
    owner_pid: int
    vaddr: int
    nbytes: int
    frames: list[int]
    allowed_importers: Optional[frozenset[str]]
    notify: bool

    @property
    def phys_pages(self) -> list[int]:
        return list(self.frames)


class VMMCDaemon:
    """One daemon per node, addressed ``daemon.<node>`` on the Ethernet."""

    def __init__(self, env: Environment, node_name: str, kernel: Kernel,
                 driver: VMMCDriver, ether: EthernetNetwork):
        self.env = env
        self.node_name = node_name
        self.kernel = kernel
        self.driver = driver
        self.ether = ether
        self.address = f"daemon.{node_name}"
        ether.register(self.address)
        self.exports: dict[str, ExportRecord] = {}
        self._pending_replies: dict[int, Any] = {}
        self._reply_seq = itertools.count(1)
        self.exports_served = 0
        self.imports_served = 0
        self.imports_denied = 0
        self._started = False
        self._crashed = False
        self.crashes = 0
        self.requests_dropped_crashed = 0

    def start(self) -> None:
        if self._started:
            raise RuntimeError(f"{self.address} already started")
        self._started = True
        self.env.process(self._serve(), name=f"{self.address}.serve")

    # -- fault hooks ----------------------------------------------------------
    @property
    def crashed(self) -> bool:
        return self._crashed

    def crash(self) -> None:
        """Kill the daemon process: requests arriving while it is down are
        lost (Ethernet datagrams to a dead peer get no reply).  Established
        export/import state survives — it lives on the NIC, and data
        transfer does not involve the daemon (section 4.1)."""
        self._crashed = True
        self.crashes += 1
        count(self.env, "daemon.crashes", node=self.node_name)
        emit(self.env, f"{self.address}.crash")

    def restart(self) -> None:
        """Bring the daemon back up; its export table is rebuilt from the
        surviving NIC state, so previously-matched pairs keep working and
        *new* requests are serviced again."""
        self._crashed = False
        count(self.env, "daemon.restarts", node=self.node_name)
        emit(self.env, f"{self.address}.restart")

    # -- local requests (called by the user library) ----------------------------
    def export(self, process: UserProcess, buffer: UserBuffer, name: str,
               allowed_importers: Optional[list[str]] = None,
               notify: bool = False):
        """Process: export ``buffer`` under ``name``; value is the record.

        The daemon locks the receive buffer's pages in main memory and
        sets up incoming-page-table entries allowing data reception
        (section 4.4).
        """
        def run():
            yield self.env.timeout(LOCAL_IPC_NS)
            if name in self.exports:
                raise ExportError(
                    f"{self.node_name}: export name {name!r} already in use")
            if buffer.space is not process.space:
                raise ExportError("buffer does not belong to the exporter")
            frames = yield self.kernel.lock_pages(
                process.space, buffer.vaddr, buffer.nbytes)
            record = ExportRecord(
                buffer_id=next(_buffer_ids),
                name=name,
                owner_pid=process.pid,
                vaddr=buffer.vaddr,
                nbytes=buffer.nbytes,
                frames=frames,
                allowed_importers=(None if allowed_importers is None
                                   else frozenset(allowed_importers)),
                notify=notify,
            )
            yield self.driver.install_incoming_entries(
                frames, process.pid, record.buffer_id, notify)
            self.exports[name] = record
            self.exports_served += 1
            count(self.env, "daemon.exports", node=self.node_name)
            emit(self.env, "daemon.export", node=self.node_name, name=name,
                 nbytes=buffer.nbytes)
            return record

        return self.env.process(run(), name=f"{self.address}.export")

    def unexport(self, process: UserProcess, name: str):
        """Process: withdraw an export and revoke reception rights."""
        def run():
            yield self.env.timeout(LOCAL_IPC_NS)
            record = self.exports.get(name)
            if record is None or record.owner_pid != process.pid:
                raise ExportError(f"no export {name!r} owned by caller")
            yield self.driver.revoke_incoming_entries(record.frames)
            yield self.kernel.unlock_pages(
                process.space, record.vaddr, record.nbytes)
            del self.exports[name]

        return self.env.process(run(), name=f"{self.address}.unexport")

    def import_buffer(self, process: UserProcess, remote_node: str,
                      name: str):
        """Process: import a remote export; value is a
        :class:`~repro.vmmc.proxy.ProxyRegion` for the importing process.

        "On an import request, the importing node daemon obtains the
        physical addresses of receive buffer pages from the daemon on the
        exporting node.  Next, the importing node daemon sets up outgoing
        page table entries for the importing process that point to receive
        buffer pages on [the] remote node." (section 4.4)
        """
        def run():
            yield self.env.timeout(LOCAL_IPC_NS)
            seq = next(self._reply_seq)
            reply_box: Store = Store(self.env)
            self._pending_replies[seq] = reply_box
            yield self.ether.send(
                self.address, f"daemon.{remote_node}",
                {"op": "import_req", "seq": seq, "name": name,
                 "importer_node": self.node_name,
                 "importer_pid": process.pid},
                nbytes=128)
            reply = yield reply_box.get()
            del self._pending_replies[seq]
            if not reply["ok"]:
                self.imports_denied += 1
                raise ImportDenied(
                    f"import of {remote_node}:{name} denied: "
                    f"{reply['error']}")
            ctx = self.driver.lcp.processes[process.pid]
            region = ctx.proxy.reserve(reply["nbytes"])
            node_index = reply["node_index"]
            yield self.driver.install_outgoing_entries(
                process.pid, region.first_page, node_index,
                reply["phys_pages"])
            self.imports_served += 1
            count(self.env, "daemon.imports", node=self.node_name)
            emit(self.env, "daemon.import", node=self.node_name,
                 remote=remote_node, name=name)
            return region

        return self.env.process(run(), name=f"{self.address}.import")

    # -- the Ethernet service loop -------------------------------------------------
    def _serve(self):
        while True:
            datagram = yield self.ether.receive(self.address)
            message = datagram.payload
            if self._crashed:
                # Dead daemon: the datagram is consumed by the NIC but no
                # process reads it — the requester sees silence.
                self.requests_dropped_crashed += 1
                count(self.env, "daemon.requests_dropped",
                      node=self.node_name)
                emit(self.env, f"{self.address}.drop_crashed",
                     op=message.get("op"))
                continue
            op = message.get("op")
            if op == "import_req":
                yield self.env.process(
                    self._serve_import(datagram.src, message))
            elif op == "import_reply":
                box = self._pending_replies.get(message["seq"])
                if box is not None:
                    box.put(message)
            else:
                emit(self.env, "daemon.unknown_op", op=op)

    def _serve_import(self, reply_to: str, message: dict):
        record = self.exports.get(message["name"])
        node_index = self.driver.lcp.node_index
        if record is None:
            reply = {"op": "import_reply", "seq": message["seq"],
                     "ok": False, "error": "no such export"}
        elif (record.allowed_importers is not None
              and message["importer_node"] not in record.allowed_importers):
            reply = {"op": "import_reply", "seq": message["seq"],
                     "ok": False, "error": "importer not permitted"}
        else:
            reply = {"op": "import_reply", "seq": message["seq"], "ok": True,
                     "nbytes": record.nbytes,
                     "phys_pages": record.phys_pages,
                     "node_index": node_index,
                     "buffer_id": record.buffer_id}
        yield self.ether.send(self.address, reply_to, reply, nbytes=256)
