"""VMMC on SHRIMP — the paper's original implementation (section 6).

The model API is identical to the Myrinet implementation (export / import /
SendMsg, deliberate update only); what differs is everything below it:

* the destination proxy space is a *subset of the sender's virtual address
  space*, with OS-maintained proxy mappings providing protection;
* a user process initiates a ≤page transfer with **two memory-mapped I/O
  instructions** — the hardware state machine does permission checks,
  outgoing-table lookup, packet build and DMA start in 2–3 µs;
* a message spanning N source pages costs the host N two-instruction
  initiations (Myrinet posts a single request and lets the LANai walk the
  pages — lower host overhead for very long sends, section 6);
* export/import matchmaking uses the same daemon protocol ("in fact the
  same daemon code is used in both cases") — here the daemon logic is
  inlined with the same Ethernet exchange and page-locking costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.sim import AllOf, Environment, Event
from repro.mem.buffers import UserBuffer
from repro.mem.physical import PhysicalMemory
from repro.mem.virtual import AddressSpace, PAGE_SIZE
from repro.hw.bus.eisa import EISABus, EISAParams
from repro.hw.bus.membus import MemoryBus, MemoryBusParams
from repro.hw.myrinet import topology
from repro.hw.shrimp import ShrimpNIC, ShrimpParams
from repro.hostos.kernel import Kernel, KernelParams
from repro.vmmc.errors import ImportDenied, SendError
from repro.vmmc.proxy import ProxyRegion, ProxySpace

#: Thin user-level library: the send path is "just two memory-mapped I/O
#: instructions" plus negligible bookkeeping.
LIB_SEND_OVERHEAD_NS = 400


class ShrimpNode:
    """One SHRIMP multicomputer node."""

    def __init__(self, env: Environment, name: str, index: int,
                 fabric: MyrinetNetwork, memory_mb: int = 64,
                 params: ShrimpParams | None = None):
        self.env = env
        self.name = name
        self.index = index
        self.memory = PhysicalMemory(memory_mb * 1024 * 1024,
                                     reserved_frames=64)
        self.bus = EISABus(env, name=f"{name}.eisa")
        self.membus = MemoryBus(env)
        self.kernel = Kernel(env, name=f"{name}.kernel")
        self.nic = ShrimpNIC(env, fabric, name, index, self.bus,
                             self.memory, params)
        self.exports: dict[str, dict] = {}


class ShrimpEndpoint:
    """Per-process VMMC handle on a SHRIMP node (same model API)."""

    def __init__(self, node: ShrimpNode, name: str = "proc"):
        self.env = node.env
        self.node = node
        self.space = AddressSpace(node.memory, name=name)
        #: Proxy pages live in the sender's own address space on SHRIMP.
        self.proxy = ProxySpace(npages=2048)
        self._imports: dict[int, tuple[int, list[int]]] = {}
        self.sends_posted = 0

    def alloc_buffer(self, nbytes: int) -> UserBuffer:
        return UserBuffer.alloc(self.space, nbytes)

    # -- export/import (same daemon protocol; costs mirrored) -----------------
    def export(self, buffer: UserBuffer, name: str, notify: bool = False):
        def run():
            frames = yield self.node.kernel.lock_pages(
                self.space, buffer.vaddr, buffer.nbytes)
            for frame in frames:
                self.node.nic.incoming.allow(frame, owner_pid=0, buffer_id=0,
                                             notify=notify)
            self.node.exports[name] = {
                "frames": frames, "nbytes": buffer.nbytes}
            return name

        return self.env.process(run(), name="shrimp.export")

    def import_buffer(self, remote: ShrimpNode, name: str):
        """Process: import from a peer node; value is a ProxyRegion.

        On SHRIMP the kernel must additionally create the special proxy
        *mappings* in the sender's address space — the extra OS support
        the section-6 comparison charges this platform with.
        """
        def run():
            record = remote.exports.get(name)
            if record is None:
                raise ImportDenied(f"no export {name!r} on {remote.name}")
            region = self.proxy.reserve(record["nbytes"])
            # Kernel sets up one proxy mapping per page (syscall + mapping
            # maintenance — the OS cost unique to SHRIMP).
            yield self.node.kernel.syscall(
                work_ns=2_000 * len(record["frames"]))
            for i, frame in enumerate(record["frames"]):
                self.node.nic.outgoing.set_entry(
                    region.first_page + i, remote.index, frame)
            self._imports[region.first_page] = (remote.index,
                                                record["frames"])
            return region

        return self.env.process(run(), name="shrimp.import")

    # -- SendMsg over deliberate update ------------------------------------------
    def send(self, src: UserBuffer, region: ProxyRegion, nbytes: int,
             src_offset: int = 0, dest_offset: int = 0,
             synchronous: bool = True):
        """Process: deliberate-update send; value is the per-page count.

        The host issues **two I/O writes per source page** (N initiations
        for an N-page message); each initiation's data fetch and injection
        runs in the hardware state machine.  A synchronous send returns
        when the last page's data has left host memory.
        """
        outgoing = self.node.nic.outgoing

        def run():
            if nbytes <= 0 or src_offset + nbytes > src.nbytes:
                raise SendError("bad send arguments")
            yield self.env.timeout(LIB_SEND_OVERHEAD_NS)
            cursor_v = src.vaddr + src_offset
            proxy_cursor = region.address(dest_offset)
            remaining = nbytes
            initiations = 0
            last_sm = None
            while remaining > 0:
                chunk = min(remaining, PAGE_SIZE - (cursor_v % PAGE_SIZE))
                # Two memory-mapped I/O instructions per initiation.
                yield self.node.bus.mmio_write(
                    self.node.nic.params.initiation_writes)
                # Permission check + V->P translation via the sender's own
                # page tables happen in the state machine using the proxy
                # mapping; resolve destination extents like the LCP does.
                src_paddr = self.space.translate(cursor_v)
                proxy_page = proxy_cursor // PAGE_SIZE
                offset = proxy_cursor % PAGE_SIZE
                first = outgoing.lookup(proxy_page)
                if first is None:
                    raise SendError("invalid proxy page")
                node_index, phys_page = first
                len1 = min(chunk, PAGE_SIZE - offset)
                extents = [(phys_page * PAGE_SIZE + offset, len1)]
                if len1 < chunk:
                    second = outgoing.lookup(proxy_page + 1)
                    if second is None or second[0] != node_index:
                        raise SendError("send crosses out of the import")
                    extents.append((second[1] * PAGE_SIZE, chunk - len1))
                remaining -= chunk
                last_sm = self.node.nic.state_machine.deliberate_update(
                    src_paddr, extents, node_index, chunk,
                    last=(remaining == 0))
                initiations += 1
                cursor_v += chunk
                proxy_cursor += chunk
            if synchronous and last_sm is not None:
                yield last_sm
                yield self.node.membus.cacheline_fill()
            self.sends_posted += 1
            return initiations

        return self.env.process(run(), name="shrimp.send")

    # -- automatic update (footnote 3 — SHRIMP-only extension) ----------------
    def map_automatic(self, buffer: UserBuffer, remote: ShrimpNode,
                      name: str):
        """Process: bind ``buffer`` to a remote export in *automatic
        update* mode: subsequent :meth:`au_write` stores to it are snooped
        off the memory bus and propagate with zero send instructions."""
        def run():
            record = remote.exports.get(name)
            if record is None:
                raise ImportDenied(f"no export {name!r} on {remote.name}")
            npages = min(buffer.npages, len(record["frames"]))
            # The kernel creates the snoop mappings (more OS support — the
            # section-6 cost of SHRIMP's fancier hardware).
            yield self.node.kernel.syscall(work_ns=2_500 * npages)
            frames = self.space.pin_range(buffer.vaddr,
                                          npages * PAGE_SIZE)
            for i, local_frame in enumerate(frames):
                self.node.nic.au.map_page(local_frame, remote.index,
                                          record["frames"][i])
            return npages

        return self.env.process(run(), name="shrimp.au_map")

    def au_write(self, buffer: UserBuffer, payload: bytes | np.ndarray,
                 offset: int = 0):
        """Process: an ordinary store to automatic-update-mapped memory.

        The CPU just writes its own memory; the snooping hardware does the
        communication.  Completion means the *local* write finished — the
        update propagates asynchronously (SHRIMP's automatic-update
        consistency model).
        """
        data = np.frombuffer(bytes(payload), dtype=np.uint8) \
            if isinstance(payload, (bytes, bytearray)) \
            else np.asarray(payload, dtype=np.uint8)

        def run():
            # The store itself (normal memory-write cost).
            yield self.node.membus.bcopy(int(data.size))
            buffer.write(data, offset=offset)
            # Each physically contiguous piece appears on the memory bus
            # as its own burst; the snooper sees them in order.
            cursor = 0
            for paddr, length in self.space.physical_extents(
                    buffer.vaddr + offset, int(data.size)):
                yield self.node.nic.au.snoop(
                    paddr, data[cursor:cursor + length])
                cursor += length

        return self.env.process(run(), name="shrimp.au_write")

    def watch(self, buffer: UserBuffer, offset: int = 0,
              nbytes: int | None = None) -> Event:
        span = buffer.nbytes - offset if nbytes is None else nbytes
        event = self.env.event()
        for paddr, length in self.space.physical_extents(
                buffer.vaddr + offset, span):
            self.node.memory.add_watch(paddr, length, event)
        return event


class ShrimpCluster:
    """A small SHRIMP multicomputer for the section-6 comparison."""

    def __init__(self, nnodes: int = 2, memory_mb: int = 16,
                 params: ShrimpParams | None = None,
                 env: Environment | None = None):
        self.env = env or Environment()
        self.params = params or ShrimpParams()
        self.fabric = topology.build(
            topology.SingleSwitchSpec(nhosts_=nnodes),
            self.env, self.params.link)
        self.nodes = [
            ShrimpNode(self.env, f"node{i}", i, self.fabric,
                       memory_mb=memory_mb, params=self.params)
            for i in range(nnodes)
        ]
        names = [n.name for n in self.nodes]
        for node in self.nodes:
            node.nic.install_routes({
                other.index: self.fabric.compute_route(node.name, other.name)
                for other in self.nodes if other is not node
            })

    def endpoint(self, index: int, name: str = "") -> ShrimpEndpoint:
        return ShrimpEndpoint(self.nodes[index],
                              name or f"proc{index}")
