"""Per-process send queues in LANai SRAM (sections 4.4–4.5).

"Each process has a separate send queue allocated in LANai SRAM" — this is
the protection mechanism that lets multiple senders share one interface
without gang scheduling (the advantage over FM/PM argued in section 7).

There are two request formats, transparent to user programs:

* **short** (≤128 bytes): the data itself is copied into the queue entry
  with programmed I/O — no host DMA at all;
* **long** (≤8 MB): the entry carries only the *virtual* address of the
  send buffer; the LANai translates and fetches the data itself.

The queue is a ring; each slot has a matching completion word in pinned
user memory that the LANai DMAs a status into, so user code can spin on a
cache location instead of reading device registers (section 4.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.hw.lanai.sram import SRAM, SRAMRegion

#: Short/long protocol threshold (section 4.5: "currently up to 128 bytes",
#: chosen so that synchronous-send overhead stays low without burning SRAM).
SHORT_SEND_LIMIT = 128

#: Slots per process queue.
QUEUE_SLOTS = 32

#: SRAM bytes per slot: 16 control + room for inline short data.
SLOT_BYTES = 16 + SHORT_SEND_LIMIT

#: Completion word states.
COMPLETION_FREE = 0
COMPLETION_PENDING = 1
COMPLETION_DONE = 2
COMPLETION_ERROR = 3


@dataclass
class SendRequest:
    """One posted send-queue entry."""

    slot: int
    length: int
    proxy_address: int
    is_short: bool
    #: Long sends: virtual address of the send buffer.
    src_vaddr: int = 0
    #: Short sends: the inline payload (already PIO-copied to SRAM).
    inline_data: Optional[np.ndarray] = None
    #: Request a notification at the receiver for this message.
    notify: bool = False
    posted_at: int = 0

    @property
    def control_words(self) -> int:
        """32-bit PIO writes needed to post the control part of the entry
        (length+flags, proxy address, src vaddr, valid/doorbell)."""
        return 4

    @property
    def data_words(self) -> int:
        """PIO writes needed for inline short data."""
        return 0 if not self.is_short else (self.length + 3) // 4


class SendQueue:
    """The ring of send slots for one process, resident in SRAM."""

    def __init__(self, pid: int, sram: Optional[SRAM] = None,
                 nslots: int = QUEUE_SLOTS):
        self.pid = pid
        self.nslots = nslots
        self._slots: list[Optional[SendRequest]] = [None] * nslots
        self._reserved: set[int] = set()
        self._head = 0  # next slot the LCP will scan
        self._tail = 0  # next slot the host will fill
        self.posted = 0
        self.picked_up = 0
        self.region: Optional[SRAMRegion] = None
        if sram is not None:
            self.region = sram.alloc(f"sendq.pid{pid}", nslots * SLOT_BYTES)

    # -- host side ------------------------------------------------------------
    def slot_available(self) -> bool:
        return (self._slots[self._tail] is None
                and self._tail not in self._reserved)

    def next_slot(self) -> int:
        return self._tail

    def reserve(self) -> int:
        """Atomically claim the tail slot (the library does this before
        the multi-word PIO fill, so concurrent senders in one process
        never collide on a slot).  The LCP sees the slot as empty until
        :meth:`post` marks it valid, preserving FIFO pickup."""
        if not self.slot_available():
            raise RuntimeError(
                f"send queue of pid {self.pid} overflow (slot {self._tail})")
        slot = self._tail
        self._reserved.add(slot)
        self._tail = (self._tail + 1) % self.nslots
        return slot

    def post(self, request: SendRequest) -> None:
        """Host side: validate a previously reserved slot."""
        if request.slot not in self._reserved:
            raise ValueError(
                f"posting to unreserved slot {request.slot}")
        self._reserved.discard(request.slot)
        self._slots[request.slot] = request
        self.posted += 1

    # -- LANai side ---------------------------------------------------------------
    def peek(self) -> Optional[SendRequest]:
        """LCP: look at the head slot without consuming it."""
        return self._slots[self._head]

    def pickup(self) -> SendRequest:
        """LCP: consume the head slot (frees it for the host)."""
        request = self._slots[self._head]
        if request is None:
            raise RuntimeError("pickup from empty queue")
        self._slots[self._head] = None
        self._head = (self._head + 1) % self.nslots
        self.picked_up += 1
        return request

    @property
    def depth(self) -> int:
        return sum(1 for s in self._slots if s is not None)
