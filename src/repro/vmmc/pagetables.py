"""Incoming and outgoing page tables kept in LANai SRAM (section 4.4).

* The **incoming page table** (one per interface) has one entry per host
  physical memory frame saying whether an incoming message may write that
  frame and whether delivery should raise a notification.  It is consulted
  by the LCP before every receive-side DMA — this is what guarantees that
  "transferred data does not overwrite any memory locations outside the
  destination receive buffer".

* The **outgoing page table** (one per process using the interface) maps
  proxy pages of imported receive buffers to a packed 32-bit value
  encoding the destination node index and the destination physical page.
  Because the table is private to the sending process, "there is no way a
  process can use outgoing page table entries set up for others" — the
  protection argument of section 4.4.

Both tables charge their SRAM footprint against the NIC's 256 KB, which is
the resource-cost side of the section-6 design-tradeoff discussion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.hw.lanai.sram import SRAM

#: Outgoing-table entry packing: high 8 bits node index, low 24 bits
#: physical page number (24 bits of 4 KB pages = 64 GB reach, ample for
#: 1997 hosts).
_NODE_SHIFT = 24
_PAGE_MASK = (1 << _NODE_SHIFT) - 1
_ENTRY_BYTES = 4

#: Paper: "The current limit is 8 MBytes" of imported receive buffers per
#: process — 2048 proxy pages of 4 KB.
DEFAULT_OUTGOING_PAGES = 2048


@dataclass
class IncomingEntry:
    """Receive permission for one physical frame."""

    writable: bool = False
    notify: bool = False
    owner_pid: int = -1
    buffer_id: int = -1


class IncomingPageTable:
    """One per network interface: frame number → receive permission."""

    def __init__(self, nframes: int, sram: Optional[SRAM] = None):
        self.nframes = nframes
        self._entries: dict[int, IncomingEntry] = {}
        if sram is not None:
            # One 32-bit entry per physical frame, resident in SRAM.
            sram.alloc("incoming_page_table", nframes * _ENTRY_BYTES)

    def allow(self, frame: int, owner_pid: int, buffer_id: int,
              notify: bool = False) -> None:
        self._check(frame)
        self._entries[frame] = IncomingEntry(
            writable=True, notify=notify,
            owner_pid=owner_pid, buffer_id=buffer_id)

    def revoke(self, frame: int) -> None:
        self._check(frame)
        self._entries.pop(frame, None)

    def lookup(self, frame: int) -> IncomingEntry:
        self._check(frame)
        return self._entries.get(frame, IncomingEntry())

    def writable(self, frame: int) -> bool:
        return self.lookup(frame).writable

    @property
    def entries_set(self) -> int:
        return len(self._entries)

    def _check(self, frame: int) -> None:
        if not 0 <= frame < self.nframes:
            raise ValueError(f"frame {frame} out of range 0..{self.nframes-1}")


class OutgoingPageTable:
    """One per (process, interface): proxy page → (node, physical page).

    The table size bounds the total imported receive-buffer space — the
    8 MB per-process limit of section 4.4.
    """

    def __init__(self, pid: int, npages: int = DEFAULT_OUTGOING_PAGES,
                 sram: Optional[SRAM] = None):
        self.pid = pid
        self.npages = npages
        self._entries: dict[int, int] = {}
        self._region = None
        if sram is not None:
            self._region = sram.alloc(f"outgoing_pt.pid{pid}",
                                      npages * _ENTRY_BYTES)

    @staticmethod
    def pack(node_index: int, phys_page: int) -> int:
        if not 0 <= node_index < 256:
            raise ValueError(f"node index {node_index} does not fit 8 bits")
        if not 0 <= phys_page <= _PAGE_MASK:
            raise ValueError(f"physical page {phys_page} does not fit 24 bits")
        return (node_index << _NODE_SHIFT) | phys_page

    @staticmethod
    def unpack(entry: int) -> tuple[int, int]:
        return entry >> _NODE_SHIFT, entry & _PAGE_MASK

    def set_entry(self, proxy_page: int, node_index: int,
                  phys_page: int) -> None:
        self._check(proxy_page)
        self._entries[proxy_page] = self.pack(node_index, phys_page)

    def clear_entry(self, proxy_page: int) -> None:
        self._check(proxy_page)
        self._entries.pop(proxy_page, None)

    def lookup(self, proxy_page: int) -> Optional[tuple[int, int]]:
        """(node index, physical page) or None if the proxy page is unmapped."""
        self._check(proxy_page)
        entry = self._entries.get(proxy_page)
        return None if entry is None else self.unpack(entry)

    @property
    def entries_set(self) -> int:
        return len(self._entries)

    @property
    def import_capacity_bytes(self) -> int:
        """Total importable receive-buffer space (the 8 MB limit)."""
        from repro.mem.virtual import PAGE_SIZE

        return self.npages * PAGE_SIZE

    def _check(self, proxy_page: int) -> None:
        if not 0 <= proxy_page < self.npages:
            raise ValueError(
                f"proxy page {proxy_page} out of range 0..{self.npages - 1}")
