"""The loadable VMMC device driver (sections 4.1, 5.1).

"The new kernel-level code we needed is implemented in a loadable device
driver including a function which translates virtual to physical addresses
and code that invokes notifications using signals."

The driver's two interrupt paths:

* ``tlb_miss`` — the LANai hit a missing source translation on a long
  send.  The driver locks up to 32 pages starting at the faulting address
  and writes the translations into the per-process software TLB in SRAM
  with programmed I/O (section 4.5: "On one interrupt, translations for up
  to 32 pages are inserted into the SRAM TLB.  Send pages are locked in
  memory by the VMMC driver when it provides the translations.").
* ``notification`` — a delivered message wants a user-level handler run;
  the driver posts a signal to the owning process (section 5.1).

It also offers the *setup* services the daemon uses: installing incoming
and outgoing page-table entries on the NIC (PIO writes, off the data
path).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim import Environment
from repro.sim.trace import emit
from repro.obs.metrics import count as count_metric
from repro.mem.virtual import PAGE_SIZE, PageFault
from repro.hostos.driver import DeviceDriver
from repro.hostos.kernel import Kernel, SIGIO
from repro.hostos.process import UserProcess
from repro.vmmc.lcp import ProcessContext, VmmcLCP
from repro.vmmc.tlb import REFILL_BATCH


class VMMCDriver(DeviceDriver):
    """Kernel driver for one node's Myrinet interface."""

    def __init__(self, env: Environment, kernel: Kernel, lcp: VmmcLCP,
                 name: str = "vmmc_drv"):
        super().__init__(env, kernel, name)
        self.lcp = lcp
        lcp.nic.set_interrupt_handler(self.isr)
        self._processes: dict[int, UserProcess] = {}
        #: (pid, buffer_id) → user notification handler.
        self._notify_handlers: dict[tuple[int, int],
                                    Callable[[dict], object]] = {}
        self.tlb_refills = 0
        self.pages_locked_for_send = 0
        self.notifications_delivered = 0

    # -- process attachment --------------------------------------------------
    def attach_process(self, process: UserProcess,
                       completion_paddr: int) -> ProcessContext:
        """Open of /dev/vmmc by a user process."""
        self._processes[process.pid] = process
        ctx = self.lcp.register_process(process.pid, completion_paddr)
        # The process dispatches VMMC notifications through one signal.
        process.register_signal_handler(SIGIO, self._dispatch_notification)
        return ctx

    def register_notify_handler(self, pid: int, buffer_id: int,
                                handler: Callable[[dict], object]) -> None:
        self._notify_handlers[(pid, buffer_id)] = handler

    def drop_notify_handler(self, pid: int, buffer_id: int) -> None:
        """Invalidate a notification registration (daemon cold boot: the
        re-registered export gets a new buffer id, so the old arming can
        never fire again — drop it rather than leak it)."""
        self._notify_handlers.pop((pid, buffer_id), None)

    def process(self, pid: int) -> Optional[UserProcess]:
        """The attached process for ``pid`` (None if never attached)."""
        return self._processes.get(pid)

    # -- interrupt service -----------------------------------------------------
    def handle_irq(self, reason: str, payload: Any):
        if reason == "tlb_miss":
            return self._refill_tlb(payload)
        if reason == "notification":
            return self._deliver_notification(payload)
        raise ValueError(f"{self.name}: unknown interrupt {reason!r}")

    def _refill_tlb(self, payload: dict):
        """Pin + translate up to 32 pages and PIO them into the SRAM TLB."""
        pid = payload["pid"]
        vaddr = payload["vaddr"]
        count = payload.get("count", REFILL_BATCH)
        process = self._processes[pid]
        ctx = self.lcp.processes[pid]
        pairs = yield self.kernel.translate_range(process.space, vaddr, count)
        if not pairs:
            emit(self.env, f"{self.name}.tlb_refill.fault", vaddr=vaddr)
            return False
        lock_ns = self.kernel.params.lock_page_ns * len(pairs)
        yield self.env.timeout(lock_ns)
        for vpage, paddr in pairs:
            process.space.memory.pin(paddr // PAGE_SIZE)
            self.pages_locked_for_send += 1
        # Two PIO words per TLB entry (tag + frame).
        yield self.lcp.nic.bus.mmio_write(2 * len(pairs))
        for vpage, paddr in pairs:
            ctx.tlb.insert(vpage, paddr // PAGE_SIZE)
        self.tlb_refills += 1
        count_metric(self.env, "vmmc.tlb_refills", driver=self.name)
        count_metric(self.env, "vmmc.pages_locked", len(pairs),
                     driver=self.name)
        emit(self.env, f"{self.name}.tlb_refill", vaddr=vaddr,
             inserted=len(pairs))
        return True

    def _deliver_notification(self, info: dict):
        """Post SIGIO to the receiving process; its handler dispatches."""
        process = self._processes.get(info["pid"])
        if process is None:
            return False
        self.notifications_delivered += 1
        count_metric(self.env, "vmmc.notifications_delivered",
                     driver=self.name)
        # Signal delivery happens after the ISR returns; don't stall the
        # interrupt (or the LCP) on the user handler.
        self.env.process(
            self._signal_later(process, info), name=f"{self.name}.signal")
        yield self.env.timeout(0)
        return True

    def _signal_later(self, process: UserProcess, info: dict):
        yield self.kernel.deliver_signal(process, SIGIO, info)

    def _dispatch_notification(self, info: dict):
        handler = self._notify_handlers.get(
            (info["pid"], info["buffer_id"]))
        if handler is not None:
            return handler(info)
        return None

    # -- setup services (used by the daemon, off the data path) ------------------
    def install_incoming_entries(self, frames: list[int], owner_pid: int,
                                 buffer_id: int, notify: bool):
        """Process: mark frames writable in the incoming page table."""
        def run():
            yield self.lcp.nic.bus.mmio_write(len(frames))
            for frame in frames:
                self.lcp.incoming.allow(frame, owner_pid, buffer_id,
                                        notify=notify)

        return self.env.process(run(), name=f"{self.name}.incoming_setup")

    def revoke_incoming_entries(self, frames: list[int]):
        def run():
            yield self.lcp.nic.bus.mmio_write(len(frames))
            for frame in frames:
                self.lcp.incoming.revoke(frame)

        return self.env.process(run(), name=f"{self.name}.incoming_revoke")

    def install_outgoing_entries(self, pid: int, first_proxy_page: int,
                                 node_index: int, phys_pages: list[int]):
        """Process: point the importer's outgoing table at remote frames."""
        ctx = self.lcp.processes[pid]

        def run():
            yield self.lcp.nic.bus.mmio_write(len(phys_pages))
            for i, phys_page in enumerate(phys_pages):
                ctx.outgoing.set_entry(first_proxy_page + i, node_index,
                                       phys_page)

        return self.env.process(run(), name=f"{self.name}.outgoing_setup")

    def clear_outgoing_entries(self, pid: int, first_proxy_page: int,
                               npages: int):
        """Process: tear down a proxy region's outgoing entries (unimport /
        invalidation); subsequent sends through these pages proxy-fault."""
        ctx = self.lcp.processes[pid]

        def run():
            yield self.lcp.nic.bus.mmio_write(npages)
            for i in range(npages):
                ctx.outgoing.clear_entry(first_proxy_page + i)

        return self.env.process(run(), name=f"{self.name}.outgoing_clear")
