"""VMMC error types.

The send-side hierarchy is typed (PR 3): every send failure subclasses
:class:`SendError`, so existing ``except SendError`` call sites keep
working while new code can discriminate:

* :class:`InvalidSendError` — the library rejected the arguments before
  any I/O (bad length, source overrun, the 8 MB limit);
* :class:`CompletionError` — the LANai reported an error completion
  status (proxy fault, translation fault) for a posted send;
* :class:`ImportStale` — the destination import is no longer backed by a
  live export-import relation (peer daemon cold-restarted, or the import
  was withdrawn); the send fails fast *before* posting, and the caller
  may re-establish with ``imported.reimport()``.
"""

from __future__ import annotations


class VMMCError(Exception):
    """Base class for VMMC failures."""


class ExportError(VMMCError):
    """Export request rejected (overlap, unpinnable pages, name clash)."""


class ImportDenied(VMMCError):
    """Import rejected: no such export or importer not permitted.

    "An exporter can restrict possible importers of a buffer; VMMC
    enforces the restrictions when an import is attempted" (section 2).
    """


class ImportTimeout(ImportDenied):
    """Import request got no reply within the caller's deadline — the
    exporting node's daemon is dead or unreachable.  Subclasses
    :class:`ImportDenied` so callers that retry denials also retry
    timeouts."""


class ProxyFault(VMMCError):
    """Invalid destination proxy address (unmapped or out of bounds)."""


class SendError(VMMCError):
    """A send could not be performed.  Base of the typed send-error
    hierarchy; catching ``SendError`` catches every subclass below."""


class InvalidSendError(SendError):
    """Malformed send request (bad length, source overrun, >8 MB)."""


class CompletionError(SendError):
    """The LANai wrote an error completion status for a posted send
    (unmapped proxy page, cross-node span, source translation fault)."""

    def __init__(self, message: str, status: int = 0):
        super().__init__(message)
        self.status = status


class ImportStale(SendError):
    """The destination import's lifecycle state is not usable.

    Raised *fast* — before the request is posted — when a send targets an
    :class:`~repro.vmmc.api.ImportedBuffer` whose backing export-import
    relation has been invalidated (peer daemon cold restart) or revoked
    (``unimport``).  ``imported.reimport()`` re-establishes a stale
    import; a revoked one must be imported afresh.
    """

    def __init__(self, message: str, remote_node: str = "",
                 name: str = "", state: str = "", epoch: int = 0):
        super().__init__(message)
        self.remote_node = remote_node
        self.name = name
        self.state = state
        self.epoch = epoch


class RetriesExhausted(VMMCError):
    """Reliable-delivery layer: a message was retransmitted up to the
    retry bound without an acknowledgement — the error completion the
    base protocol never provides (it silently drops, section 4.2)."""

    def __init__(self, message: str, seq: int = 0, retries: int = 0):
        super().__init__(message)
        self.seq = seq
        self.retries = retries
