"""VMMC error types."""

from __future__ import annotations


class VMMCError(Exception):
    """Base class for VMMC failures."""


class ExportError(VMMCError):
    """Export request rejected (overlap, unpinnable pages, name clash)."""


class ImportDenied(VMMCError):
    """Import rejected: no such export or importer not permitted.

    "An exporter can restrict possible importers of a buffer; VMMC
    enforces the restrictions when an import is attempted" (section 2).
    """


class ProxyFault(VMMCError):
    """Invalid destination proxy address (unmapped or out of bounds)."""


class SendError(VMMCError):
    """Malformed send request (bad length, unmapped source...)."""


class RetriesExhausted(VMMCError):
    """Reliable-delivery layer: a message was retransmitted up to the
    retry bound without an acknowledgement — the error completion the
    base protocol never provides (it silently drops, section 4.2)."""

    def __init__(self, message: str, seq: int = 0, retries: int = 0):
        super().__init__(message)
        self.seq = seq
        self.retries = retries
