"""Page-based distributed shared memory over VMMC (extension).

The paper's automatic-update and deliberate-update mappings give
processes windows into each other's memory; this package builds the
classic next step the VMMC authors position the primitive for — a
**shared virtual address space** spanning the cluster, implemented
entirely with the library's own layers:

* page data moves as VMMC remote writes over
  :mod:`repro.vmmc.reliable` channels (crash-hardened, exactly-once);
* coherence is home-based MRSW write-invalidate realising sequential
  consistency (:mod:`repro.dsm.directory`, :mod:`repro.dsm.node`);
* barriers and locks ride on :mod:`repro.mp` in resilient mode
  (:mod:`repro.dsm.sync`);
* every run is audited by a linearizability-witness checker
  (:mod:`repro.dsm.checker`) and can execute under seeded fault
  campaigns (:mod:`repro.dsm.bench`, ``python -m repro dsm-bench``).
"""

from repro.dsm.checker import DsmOp, check_sequential_consistency
from repro.dsm.directory import (DirEntry, DirectoryError, EXCLUSIVE,
                                 PageDirectory, SHARED)
from repro.dsm.node import DsmError, DsmNode, build_dsm, wire_dsm
from repro.dsm.sync import (DsmSegment, LockService, build_dsm_world,
                            wire_dsm_world)
from repro.dsm.bench import run_dsm_sweep, run_dsm_trial

__all__ = [
    "DirEntry",
    "DirectoryError",
    "DsmError",
    "DsmNode",
    "DsmOp",
    "DsmSegment",
    "EXCLUSIVE",
    "LockService",
    "PageDirectory",
    "SHARED",
    "build_dsm",
    "build_dsm_world",
    "check_sequential_consistency",
    "run_dsm_sweep",
    "run_dsm_trial",
    "wire_dsm",
    "wire_dsm_world",
]
