"""Sequential-consistency checking for DSM runs.

The workload records every shared-memory operation as a :class:`DsmOp`
with its **commit time** — the simulation instant the local load/store
actually touched the page (chosen inside the op's ``[start_ns, end_ns]``
real-time interval).  Write values are unique per run, so each read
names exactly the write it observed.  The checker then verifies that
ordering all ops by commit time is a legal serial execution — a
linearizability witness, which implies sequential consistency:

* every read returns the latest write (by commit order) to its location,
  or ``0`` when no write committed before it (pages start zeroed);
* per node, commit times strictly increase (program order is embedded in
  the witness order);
* each op's commit lies inside its real-time interval.

Simultaneous commits (same nanosecond on different nodes) are tolerated
in either order — the event queue's intra-tick ordering is not modelled
— but any *strictly* earlier write must be visible, which is exactly the
stale-read signature an incoherent protocol produces.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DsmOp:
    """One shared-memory access, as recorded by the node that issued it."""
    node: int
    index: int          #: per-node program-order index
    kind: str           #: ``"r"`` or ``"w"``
    page: int
    offset: int         #: byte offset inside the page
    value: int
    start_ns: int       #: op issued
    commit_ns: int      #: local access actually performed
    end_ns: int         #: op returned

    @property
    def location(self) -> tuple[int, int]:
        return (self.page, self.offset)


def check_sequential_consistency(ops: list[DsmOp]) -> list[str]:
    """Returns human-readable violations (empty list ⇔ the run is SC)."""
    violations: list[str] = []

    # Intervals and per-node program order.
    by_node: dict[int, list[DsmOp]] = {}
    for op in ops:
        if not op.start_ns <= op.commit_ns <= op.end_ns:
            violations.append(
                f"node {op.node} op {op.index}: commit {op.commit_ns} "
                f"outside [{op.start_ns}, {op.end_ns}]")
        by_node.setdefault(op.node, []).append(op)
    for node, node_ops in sorted(by_node.items()):
        node_ops.sort(key=lambda op: op.index)
        for prev, cur in zip(node_ops, node_ops[1:]):
            if cur.commit_ns <= prev.commit_ns:
                violations.append(
                    f"node {node}: op {cur.index} commit {cur.commit_ns} "
                    f"not after op {prev.index} commit {prev.commit_ns}")

    # Per-location read validation against the commit-order witness.
    by_location: dict[tuple[int, int], list[DsmOp]] = {}
    for op in ops:
        by_location.setdefault(op.location, []).append(op)
    for location, loc_ops in sorted(by_location.items()):
        writes = sorted((op for op in loc_ops if op.kind == "w"),
                        key=lambda op: op.commit_ns)
        by_value: dict[int, DsmOp] = {}
        for write in writes:
            if write.value in by_value:
                violations.append(
                    f"location {location}: write value {write.value} not "
                    f"unique (nodes {by_value[write.value].node} and "
                    f"{write.node})")
            by_value[write.value] = write
        for read in (op for op in loc_ops if op.kind == "r"):
            if read.value == 0:
                stale = [w for w in writes
                         if w.commit_ns < read.commit_ns]
                if stale:
                    w = stale[-1]
                    violations.append(
                        f"location {location}: node {read.node} op "
                        f"{read.index} read 0 at {read.commit_ns} but "
                        f"node {w.node} wrote {w.value} at {w.commit_ns}")
                continue
            source = by_value.get(read.value)
            if source is None:
                violations.append(
                    f"location {location}: node {read.node} op "
                    f"{read.index} read {read.value}, never written "
                    f"there")
                continue
            if source.commit_ns > read.commit_ns:
                violations.append(
                    f"location {location}: node {read.node} op "
                    f"{read.index} read {read.value} at "
                    f"{read.commit_ns} before its write committed at "
                    f"{source.commit_ns}")
            between = [w for w in writes
                       if source.commit_ns < w.commit_ns < read.commit_ns]
            if between:
                w = between[-1]
                violations.append(
                    f"location {location}: node {read.node} op "
                    f"{read.index} read stale {read.value} at "
                    f"{read.commit_ns} — node {w.node} overwrote with "
                    f"{w.value} at {w.commit_ns}")
    return violations
