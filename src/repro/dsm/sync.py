"""Synchronisation primitives and the application facade.

Barriers and locks ride on :mod:`repro.mp` in **resilient** mode (its
own channel namespace, ``dsm.mp``), so a daemon cold restart can stall
but never wedge a barrier.  Locks are a centralised manager at rank 0 —
acquire/release request messages, grant replies, one FIFO queue per
lock — which is all the MRSW protocol needs from them: mutual exclusion
with SC memory between the grant and the release.

:class:`DsmSegment` is what applications program against: a flat byte
address space over the shared pages with ``alloc`` / ``read`` /
``write`` (page-spanning), word operations, ``barrier`` and
``lock``/``unlock``.
"""

from __future__ import annotations

import numpy as np

from repro.sim import Resource
from repro.sim.trace import emit
from repro.obs.metrics import count
from repro.mp.collectives import barrier as mp_barrier
from repro.mp.comm import wire_world
from repro.dsm.node import DsmError, DsmNode, wire_dsm

#: mp tags for lock traffic — above the collectives' tag space.
TAG_LOCK_REQ = 1 << 21
TAG_LOCK_GRANT = (1 << 21) + 1

_ACQUIRE = 1
_RELEASE = 0


def _u32(value: int) -> bytes:
    return np.uint32(value).tobytes()


class LockService:
    """Centralised locks, managed at rank 0.

    Remote ranks send ``[lock_id, op]`` requests over mp and wait for
    the grant message; rank 0 short-circuits to the local queue (mp has
    no self-channels).  Per-client server loops keep a blocked acquire
    from ever stalling another client's release.
    """

    def __init__(self, comms):
        self.comms = comms
        self.env = comms[0].env
        self._locks: dict[int, Resource] = {}
        self._grants: dict[tuple[int, int], object] = {}
        self._started = False

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        server = self.comms[0]
        for client in range(1, server.size):
            self.env.process(self._serve(server, client),
                             name=f"dsm.locks.client{client}")

    def _serve(self, server, client: int):
        while True:
            raw = yield server.recv(client, tag=TAG_LOCK_REQ)
            words = np.frombuffer(raw, dtype=np.uint32)
            lock_id, op = int(words[0]), int(words[1])
            if op == _ACQUIRE:
                yield from self._acquire_local(client, lock_id)
                yield server.send(client, b"g", tag=TAG_LOCK_GRANT)
            else:
                self._release_local(client, lock_id)

    def _acquire_local(self, holder: int, lock_id: int):
        lock = self._locks.get(lock_id)
        if lock is None:
            lock = self._locks[lock_id] = Resource(self.env, capacity=1)
        grant = lock.request()
        yield grant
        self._grants[(holder, lock_id)] = grant

    def _release_local(self, holder: int, lock_id: int) -> None:
        grant = self._grants.pop((holder, lock_id), None)
        if grant is None:
            raise DsmError(
                f"rank {holder} released lock {lock_id} without "
                f"holding it")
        self._locks[lock_id].release(grant)

    # -- client side --------------------------------------------------------
    def acquire(self, rank: int, lock_id: int):
        """Generator: block until ``rank`` holds ``lock_id``."""
        if rank == 0:
            yield from self._acquire_local(0, lock_id)
        else:
            comm = self.comms[rank]
            yield comm.send(0, _u32(lock_id) + _u32(_ACQUIRE),
                            tag=TAG_LOCK_REQ)
            yield comm.recv(0, tag=TAG_LOCK_GRANT)
        count(self.env, "dsm.lock_acquires", node=rank)
        emit(self.env, "dsm.lock.acquire", node=rank, lock=lock_id)

    def release(self, rank: int, lock_id: int):
        """Generator: release ``lock_id`` (must be held by ``rank``)."""
        if rank == 0:
            self._release_local(0, lock_id)
            if False:
                yield  # pragma: no cover - keeps this a generator
        else:
            yield self.comms[rank].send(
                0, _u32(lock_id) + _u32(_RELEASE), tag=TAG_LOCK_REQ)
        emit(self.env, "dsm.lock.release", node=rank, lock=lock_id)


class DsmSegment:
    """One rank's handle on the shared segment."""

    def __init__(self, node: DsmNode, comm, locks: LockService):
        self.node = node
        self.comm = comm
        self.locks = locks
        self.rank = node.rank
        self.page_bytes = node.page_bytes
        self.nbytes = node.npages * node.page_bytes

    # -- memory -------------------------------------------------------------
    def alloc(self, nbytes: int):
        """Generator: reserve ``nbytes`` (rounded up to whole pages);
        returns the base address."""
        if nbytes <= 0:
            raise DsmError(f"alloc of {nbytes} bytes")
        npages = -(-nbytes // self.page_bytes)
        first = yield from self.node.alloc(npages)
        return first * self.page_bytes

    def _span(self, addr: int, nbytes: int):
        if addr < 0 or addr + nbytes > self.nbytes:
            raise DsmError(
                f"access [{addr}, {addr + nbytes}) beyond segment "
                f"size {self.nbytes}")
        while nbytes:
            page, offset = divmod(addr, self.page_bytes)
            chunk = min(nbytes, self.page_bytes - offset)
            yield page, offset, chunk
            addr += chunk
            nbytes -= chunk

    def read(self, addr: int, nbytes: int):
        """Generator: load ``nbytes`` starting at ``addr`` (may span
        pages; each page access is individually SC)."""
        parts = []
        for page, offset, chunk in self._span(addr, nbytes):
            parts.append(
                (yield from self.node.read_bytes(page, offset, chunk)))
        return b"".join(parts)

    def write(self, addr: int, data: bytes):
        """Generator: store ``data`` starting at ``addr``."""
        data = bytes(data)
        done = 0
        for page, offset, chunk in self._span(addr, len(data)):
            yield from self.node.write_bytes(
                page, offset, data[done:done + chunk])
            done += chunk

    def read_u32(self, addr: int):
        """Generator: SC 4-byte load at ``addr`` (page-aligned access)."""
        page, offset = divmod(addr, self.page_bytes)
        return (yield from self.node.read_u32(page, offset))

    def write_u32(self, addr: int, value: int):
        """Generator: SC 4-byte store at ``addr``."""
        page, offset = divmod(addr, self.page_bytes)
        yield from self.node.write_u32(page, offset, value)

    # -- synchronisation ----------------------------------------------------
    def barrier(self):
        """Generator: dissemination barrier across all ranks."""
        yield from mp_barrier(self.comm)
        count(self.node.env, "dsm.barriers", node=self.rank)
        emit(self.node.env, "dsm.barrier", node=self.rank)

    def lock(self, lock_id: int):
        """Generator: acquire the named global lock."""
        yield from self.locks.acquire(self.rank, lock_id)

    def unlock(self, lock_id: int):
        """Generator: release the named global lock."""
        yield from self.locks.release(self.rank, lock_id)


def wire_dsm_world(cluster, npages: int = 64, page_bytes: int = 256,
                   nslots: int = 4, **channel_knobs):
    """Process: wire the DSM mesh **and** the sync substrate; the
    process's value is the list of :class:`DsmSegment` s (one per
    rank)."""
    env = cluster.env

    def build():
        nodes = yield wire_dsm(cluster, npages=npages,
                               page_bytes=page_bytes, nslots=nslots,
                               **channel_knobs)
        comms = yield wire_world(cluster, nslots=4, slot_bytes=128,
                                 resilient=True, prefix="dsm.mp")
        locks = LockService(comms)
        locks.start()
        return [DsmSegment(node, comm, locks)
                for node, comm in zip(nodes, comms)]

    return env.process(build(), name="dsm.wire_world")


def build_dsm_world(cluster, npages: int = 64, page_bytes: int = 256,
                    nslots: int = 4, **channel_knobs):
    """Blocking variant of :func:`wire_dsm_world`."""
    return cluster.env.run(until=wire_dsm_world(
        cluster, npages=npages, page_bytes=page_bytes, nslots=nslots,
        **channel_knobs))
