"""The home-based page directory — pure state, no simulation.

Each page has exactly one **home** (``page % nranks``); the home's
directory holds the page's authoritative protocol state:

* ``owner`` — the rank holding the authoritative copy (supplier of page
  data for fetches);
* ``mode`` — ``SHARED`` (owner plus zero or more readers, nobody
  writable) or ``EXCLUSIVE`` (owner writable, nobody else has a copy);
* ``copyset`` — every rank holding a valid copy.

This is MRSW write-invalidate: a read fault joins the copyset (the
exclusive owner, if any, is first downgraded); a write fault invalidates
every other copy and migrates ownership to the faulter.  The class is
deliberately simulation-free — ``begin_*`` computes the transition plan,
the caller performs the messaging, ``commit_*`` applies the new state —
so the state machine is unit-testable without a cluster.

Trusting the directory, not the client: a faulter's claim to hold a copy
is ignored — ``needs_data`` is computed from the copyset, because an
invalidation may have raced the fault request (the client believed it
had a copy when it asked; by the time the home serialises the fault the
copy is gone).  Conversely ``requester in copyset`` proves the copy is
still valid: transitions are serialised per page at the home, so no
invalidation targeting the requester can be in flight.
"""

from __future__ import annotations

from dataclasses import dataclass, field

SHARED = "shared"
EXCLUSIVE = "exclusive"

#: Plan actions (what the home asks each involved rank to do).
INVALIDATE = "invalidate"   #: drop your copy
FLUSH = "flush"             #: push the page to the faulter, then drop it
DOWNGRADE = "downgrade"     #: push the page, WRITE → READ, keep it
PUSH = "push"               #: push the page, state unchanged


class DirectoryError(RuntimeError):
    """Protocol invariant violated (a bug, not a runtime condition)."""


@dataclass
class DirEntry:
    owner: int
    mode: str = SHARED
    copyset: set = field(default_factory=set)

    def check(self, page: int) -> None:
        if self.mode == EXCLUSIVE:
            if self.copyset != {self.owner}:
                raise DirectoryError(
                    f"page {page}: exclusive but copyset "
                    f"{sorted(self.copyset)} != owner {self.owner}")
        elif self.owner not in self.copyset:
            raise DirectoryError(
                f"page {page}: shared but owner {self.owner} not in "
                f"copyset {sorted(self.copyset)}")


class PageDirectory:
    """Directory state for the pages homed at one rank."""

    def __init__(self, rank: int, nranks: int, npages: int):
        self.rank = rank
        self.nranks = nranks
        self.entries: dict[int, DirEntry] = {
            page: DirEntry(owner=rank, mode=SHARED, copyset={rank})
            for page in range(npages) if page % nranks == rank
        }

    def entry(self, page: int) -> DirEntry:
        try:
            return self.entries[page]
        except KeyError:
            raise DirectoryError(
                f"page {page} not homed at rank {self.rank}") from None

    # -- read fault ---------------------------------------------------------
    def begin_read(self, page: int, requester: int) -> tuple[int, str]:
        """Plan a read fault: returns ``(supplier, action)`` — the rank
        that must push the page to the requester and what it does to its
        own copy (``DOWNGRADE`` when it was writing, ``PUSH`` when it is
        a shared owner).  Supplier ``== requester`` never happens: the
        owner holds a copy, so it cannot read-fault."""
        entry = self.entry(page)
        if requester == entry.owner:
            raise DirectoryError(
                f"page {page}: owner {requester} read-faulted")
        action = DOWNGRADE if entry.mode == EXCLUSIVE else PUSH
        return entry.owner, action

    def commit_read(self, page: int, requester: int) -> None:
        entry = self.entry(page)
        entry.mode = SHARED
        entry.copyset.add(entry.owner)
        entry.copyset.add(requester)
        entry.check(page)

    # -- write fault --------------------------------------------------------
    def begin_write(self, page: int, requester: int
                    ) -> tuple[list[tuple[int, str]], bool]:
        """Plan a write fault: returns ``(plan, needs_data)``.  ``plan``
        is ``[(rank, action), ...]`` in deterministic (sorted-rank)
        order; the owner gets ``FLUSH`` when the requester needs the page
        bytes, everyone else ``INVALIDATE``.  ``needs_data`` is computed
        from the copyset (see module docstring)."""
        entry = self.entry(page)
        needs_data = (requester not in entry.copyset
                      and entry.owner != requester)
        members = sorted((entry.copyset | {entry.owner}) - {requester})
        plan = [(member,
                 FLUSH if (member == entry.owner and needs_data)
                 else INVALIDATE)
                for member in members]
        return plan, needs_data

    def commit_write(self, page: int, requester: int) -> None:
        entry = self.entry(page)
        entry.owner = requester
        entry.mode = EXCLUSIVE
        entry.copyset = {requester}
        entry.check(page)

    # -- introspection ------------------------------------------------------
    def check_invariants(self) -> None:
        for page, entry in self.entries.items():
            entry.check(page)

    def as_dict(self) -> dict:
        return {
            page: {"owner": entry.owner, "mode": entry.mode,
                   "copyset": sorted(entry.copyset)}
            for page, entry in sorted(self.entries.items())
        }
