"""DSM protocol frames, XDR-encoded (RFC 4506 via :mod:`repro.rpc.xdr`).

Every protocol message on a DSM channel is one frame::

    u32 op        one of the OP_* codes below
    u32 req_id    request correlator (0 for one-way pushes)
    u32 src       sending rank
    u32[]         per-op integer arguments (counted array)
    opaque<>      blob (page data for OP_PAGE, empty otherwise)

The frame is deliberately generic — the per-op meaning of ``ints`` is
documented on each opcode — so the directory protocol can grow ops
without touching the codec.
"""

from __future__ import annotations

from repro.rpc.xdr import XdrDecoder, XdrEncoder

#: Read fault → home.  ints = [page].  Reply ints = [status, xfer]
#: (``xfer`` non-zero when page data is being pushed separately).
OP_READ_FAULT = 1
#: Write fault → home.  ints = [page].  Reply ints = [status, xfer].
OP_WRITE_FAULT = 2
#: Home → copyset member: drop your read copy.  ints = [page].
OP_INVALIDATE = 3
#: Home → owner: push the page to ``to_rank`` then drop it (ownership
#: migrates to the write faulter).  ints = [page, to_rank, xfer].
OP_FLUSH = 4
#: Home → exclusive owner: push the page to ``to_rank`` and downgrade
#: WRITE → READ (a reader joins the copyset).  ints = [page, to_rank,
#: xfer].
OP_DOWNGRADE = 5
#: Home → shared owner: push the page to ``to_rank``, state unchanged.
#: ints = [page, to_rank, xfer].
OP_PUSH = 6
#: Page data push (one-way, may race the grant reply).  ints = [page,
#: xfer]; blob = the page bytes.
OP_PAGE = 7
#: Segment allocation → rank 0's bump allocator.  ints = [npages].
#: Reply ints = [status, first_page].
OP_ALLOC = 8
#: Reply to a request; req_id echoes the request's.  ints = [status,
#: *extras].
OP_REPLY = 9

#: OP_REPLY status codes.
STATUS_OK = 0
STATUS_ERANGE = 1

_OP_NAMES = {
    OP_READ_FAULT: "read_fault", OP_WRITE_FAULT: "write_fault",
    OP_INVALIDATE: "invalidate", OP_FLUSH: "flush",
    OP_DOWNGRADE: "downgrade", OP_PUSH: "push", OP_PAGE: "page",
    OP_ALLOC: "alloc", OP_REPLY: "reply",
}


def op_name(op: int) -> str:
    return _OP_NAMES.get(op, f"op{op}")


def encode(op: int, req_id: int, src: int,
           ints: tuple | list = (), blob: bytes = b"") -> bytes:
    enc = XdrEncoder()
    enc.pack_uint(op)
    enc.pack_uint(req_id)
    enc.pack_uint(src)
    enc.pack_array([int(v) for v in ints], XdrEncoder.pack_uint)
    enc.pack_opaque(bytes(blob))
    return enc.getvalue()


def decode(data: bytes) -> tuple[int, int, int, tuple, bytes]:
    """Returns ``(op, req_id, src, ints, blob)``."""
    dec = XdrDecoder(bytes(data))
    op = dec.unpack_uint()
    req_id = dec.unpack_uint()
    src = dec.unpack_uint()
    ints = tuple(dec.unpack_array(XdrDecoder.unpack_uint))
    blob = dec.unpack_opaque()
    return op, req_id, src, ints, blob
