"""The DSM node: page store, fault handling, and the coherence engine.

Each rank holds one :class:`DsmNode` with:

* a local **page store** (``npages × page_bytes`` of ordinary memory) —
  the rank's cached/authoritative copies of shared pages;
* per-page **access rights** (``INV``/``READ``/``WRITE``) — the software
  page-protection bits a real DSM would keep in the MMU;
* the :class:`~repro.dsm.directory.PageDirectory` for the pages homed at
  this rank, plus per-page locks that serialise their transitions;
* one reliable VMMC channel to every peer (the paper's remote-write
  primitive, hardened by :mod:`repro.vmmc.reliable` so the protocol
  survives daemon cold restarts — invalidations and page pushes replay
  through the reimport path instead of vanishing in a crash window).

Protocol shape: loads and stores hit the local store when access rights
allow (a *local hit*, no messages); otherwise the rank faults to the
page's home, whose directory plans the MRSW write-invalidate transition
— suppliers push page data **directly to the faulter** (three-party
transfer, the grant reply and the data race benignly), invalidations
fan out concurrently and are acknowledged before the grant commits.
Sequential consistency follows from per-page serialisation at the home
plus invalidate-before-grant.

Lifecycle integration: every channel import registers an
``on_invalidate`` callback; when a peer daemon cold-restarts, the
callback conservatively downgrades all non-owned pages to ``INV``
(owned pages are the authoritative copy and live in local memory — they
are never dropped).  The copies were still valid — the next access just
re-faults — so this trades a few refetches for never trusting a page
across a crash window.
"""

from __future__ import annotations

import numpy as np

from repro.sim import Environment, Resource
from repro.sim.trace import emit
from repro.obs.metrics import count, observe
from repro.vmmc.api import ImportedBuffer, VMMCEndpoint
from repro.vmmc.reliable import HEADER_BYTES, open_channel
from repro.dsm import wire
from repro.dsm.checker import DsmOp
from repro.dsm.directory import (
    DOWNGRADE, FLUSH, INVALIDATE, PUSH, PageDirectory,
)

INV = "inv"
READ = "read"
WRITE = "write"

#: Local page-table check + cache access cost per op, ns.
LOCAL_ACCESS_NS = 40
#: XDR framing slack on top of the page payload in a channel slot.
FRAME_OVERHEAD = 64

_ACTION_OPS = {
    INVALIDATE: wire.OP_INVALIDATE,
    FLUSH: wire.OP_FLUSH,
    DOWNGRADE: wire.OP_DOWNGRADE,
    PUSH: wire.OP_PUSH,
}


class DsmError(RuntimeError):
    """DSM misuse or protocol failure surfaced to the application."""


def _u32(value: int) -> bytes:
    return np.uint32(value).tobytes()


class DsmNode:
    """One rank's shared-memory engine."""

    def __init__(self, rank: int, nranks: int, ep: VMMCEndpoint,
                 npages: int, page_bytes: int):
        self.rank = rank
        self.nranks = nranks
        self.ep = ep
        self.env: Environment = ep.env
        self.npages = npages
        self.page_bytes = page_bytes
        self.store = ep.alloc_buffer(npages * page_bytes)
        self.access = [READ if page % nranks == rank else INV
                       for page in range(npages)]
        #: True while this rank is the directory owner of the page (the
        #: authoritative copy — never dropped by lifecycle downgrades).
        self.owned = [page % nranks == rank for page in range(npages)]
        self.directory = PageDirectory(rank, nranks, npages)
        self._tx: dict[int, object] = {}
        self._rx: dict[int, object] = {}
        self._pending: dict[int, object] = {}
        self._req_counter = 0
        self._xfer_counter = 0
        #: Completed page pushes not yet consumed by a fault (the data
        #: may outrun the grant reply — different channels).
        self._pages_received: set[tuple[int, int]] = set()
        self._page_waiters: dict[tuple[int, int], object] = {}
        #: Home-side per-page transition locks.
        self._page_locks: dict[int, Resource] = {}
        #: Requester-side serialisation of local faults per page.
        self._fault_locks: dict[int, Resource] = {}
        #: page → event: grant received, data not yet installed.  Member
        #: actions for the page park on this (the only window where the
        #: directory's view and local state legitimately disagree).
        self._installing: dict[int, object] = {}
        self._alloc_next = 0
        self.history: list[DsmOp] = []
        self.fetch_ns: list[int] = []
        self.read_faults = 0
        self.write_faults = 0
        self.local_hits = 0
        self.pages_fetched = 0
        self.invalidations = 0          #: copies dropped here by protocol
        self.invalidations_sent = 0     #: member messages fanned out (home)
        self.downgrades = 0             #: copies dropped by lifecycle

    # -- topology ----------------------------------------------------------
    def home(self, page: int) -> int:
        return page % self.nranks

    def _check_page(self, page: int, offset: int, nbytes: int) -> None:
        if not 0 <= page < self.npages:
            raise DsmError(f"page {page} out of range")
        if offset < 0 or offset + nbytes > self.page_bytes:
            raise DsmError(
                f"access [{offset}, {offset + nbytes}) beyond page size "
                f"{self.page_bytes}")

    def _lock(self, table: dict, page: int) -> Resource:
        lock = table.get(page)
        if lock is None:
            lock = table[page] = Resource(self.env, capacity=1)
        return lock

    # -- messaging ---------------------------------------------------------
    def start(self) -> None:
        """Start one pump process per incoming channel."""
        for peer, receiver in sorted(self._rx.items()):
            self.env.process(self._pump(peer, receiver),
                             name=f"dsm.pump.{peer}->{self.rank}")

    def _pump(self, peer: int, receiver):
        while True:
            raw = yield receiver.recv()
            op, req_id, src, ints, blob = wire.decode(bytes(raw))
            if op == wire.OP_REPLY:
                waiter = self._pending.pop(req_id, None)
                if waiter is not None and not waiter.triggered:
                    waiter.succeed(ints)
            elif op == wire.OP_PAGE:
                self._page_arrived(src, ints[0], ints[1], blob)
            else:
                self.env.process(
                    self._dispatch(op, req_id, src, ints),
                    name=f"dsm.{wire.op_name(op)}.{self.rank}")

    def _page_arrived(self, src: int, page: int, xfer: int,
                      blob: bytes) -> None:
        self.store.write(blob, offset=page * self.page_bytes)
        self.pages_fetched += 1
        count(self.env, "dsm.pages_fetched", node=self.rank)
        emit(self.env, "dsm.fetch", node=self.rank, page=page,
             xfer=xfer, supplier=src)
        key = (page, xfer)
        self._pages_received.add(key)
        waiter = self._page_waiters.pop(key, None)
        if waiter is not None and not waiter.triggered:
            waiter.succeed()

    def _dispatch(self, op: int, req_id: int, src: int, ints):
        if op == wire.OP_READ_FAULT:
            result = yield from self._serve_read_fault(src, ints[0])
        elif op == wire.OP_WRITE_FAULT:
            result = yield from self._serve_write_fault(src, ints[0])
        elif op == wire.OP_ALLOC:
            result = self._serve_alloc(src, ints[0])
        elif op in (wire.OP_INVALIDATE, wire.OP_FLUSH,
                    wire.OP_DOWNGRADE, wire.OP_PUSH):
            action = {v: k for k, v in _ACTION_OPS.items()}[op]
            to_rank = ints[1] if len(ints) > 1 else 0
            xfer = ints[2] if len(ints) > 2 else 0
            result = yield from self._member_local(
                action, ints[0], to_rank, xfer)
        else:
            result = [wire.STATUS_ERANGE]
        yield self._tx[src].send(
            wire.encode(wire.OP_REPLY, req_id, self.rank, result))

    def _call(self, dst: int, op: int, ints, blob: bytes = b""):
        """Generator: request/reply to a peer; returns the reply ints."""
        self._req_counter += 1
        req_id = self._req_counter
        waiter = self.env.event()
        self._pending[req_id] = waiter
        yield self._tx[dst].send(
            wire.encode(op, req_id, self.rank, ints, blob))
        result = yield waiter
        return result

    def _push_page(self, page: int, to_rank: int, xfer: int):
        blob = self.store.read(
            page * self.page_bytes, self.page_bytes).tobytes()
        if to_rank == self.rank:
            self._page_arrived(self.rank, page, xfer, blob)
            return
        yield self._tx[to_rank].send(
            wire.encode(wire.OP_PAGE, 0, self.rank, [page, xfer], blob))

    # -- home-side fault service -------------------------------------------
    def _next_xfer(self) -> int:
        self._xfer_counter += 1
        return self._xfer_counter

    def _serve_read_fault(self, src: int, page: int):
        lock = self._lock(self._page_locks, page)
        grant = lock.request()
        yield grant
        try:
            supplier, action = self.directory.begin_read(page, src)
            xfer = self._next_xfer()
            if supplier == self.rank:
                yield from self._member_local(action, page, src, xfer)
            else:
                yield from self._call(
                    supplier, _ACTION_OPS[action], [page, src, xfer])
            self.directory.commit_read(page, src)
        finally:
            lock.release(grant)
        emit(self.env, "dsm.grant", node=self.rank, kind="read",
             page=page, to=src, xfer=xfer)
        return [wire.STATUS_OK, xfer]

    def _serve_write_fault(self, src: int, page: int):
        lock = self._lock(self._page_locks, page)
        grant = lock.request()
        yield grant
        try:
            plan, needs_data = self.directory.begin_write(page, src)
            xfer = self._next_xfer() if needs_data else 0
            self.invalidations_sent += len(plan)
            if plan:
                count(self.env, "dsm.invalidations_sent", n=len(plan),
                      node=self.rank)
            children = [
                self.env.process(
                    self._member(member, action, page, src, xfer),
                    name=f"dsm.{action}.{member}")
                for member, action in plan
            ]
            for child in children:
                yield child
            self.directory.commit_write(page, src)
        finally:
            lock.release(grant)
        emit(self.env, "dsm.grant", node=self.rank, kind="write",
             page=page, to=src, xfer=xfer)
        return [wire.STATUS_OK, xfer]

    def _serve_alloc(self, src: int, want: int) -> list:
        if self._alloc_next + want > self.npages:
            return [wire.STATUS_ERANGE, 0]
        first = self._alloc_next
        self._alloc_next += want
        emit(self.env, "dsm.alloc", node=self.rank, to=src,
             first_page=first, npages=want)
        return [wire.STATUS_OK, first]

    def _member(self, member: int, action: str, page: int, to_rank: int,
                xfer: int):
        if member == self.rank:
            yield from self._member_local(action, page, to_rank, xfer)
        else:
            ints = ([page] if action == INVALIDATE
                    else [page, to_rank, xfer])
            yield from self._call(member, _ACTION_OPS[action], ints)

    def _member_local(self, action: str, page: int, to_rank: int,
                      xfer: int):
        """Generator: perform one member action on the local copy.
        Parks while a just-granted fault on the page is still installing
        its data — the one window where local state lags the directory."""
        pending = self._installing.get(page)
        while pending is not None:
            yield pending
            pending = self._installing.get(page)
        if action in (FLUSH, DOWNGRADE, PUSH):
            yield from self._push_page(page, to_rank, xfer)
        if action in (FLUSH, INVALIDATE):
            if self.access[page] != INV:
                self.access[page] = INV
                self.invalidations += 1
                count(self.env, "dsm.invalidations", node=self.rank)
                emit(self.env, "dsm.invalidate", node=self.rank,
                     page=page)
            self.owned[page] = False
        elif action == DOWNGRADE:
            if self.access[page] == WRITE:
                self.access[page] = READ
        return [wire.STATUS_OK]

    # -- requester-side faults ---------------------------------------------
    def _fault(self, kind: str, page: int):
        """Generator: resolve one access fault; returns when the page is
        readable (``kind == "r"``) or writable (``kind == "w"``)."""
        lock = self._lock(self._fault_locks, page)
        grant = lock.request()
        yield grant
        try:
            want = READ if kind == "r" else WRITE
            if self.access[page] == want or self.access[page] == WRITE:
                return  # a concurrent local fault already resolved it
            started = self.env.now
            if kind == "r":
                self.read_faults += 1
                count(self.env, "dsm.read_faults", node=self.rank)
            else:
                self.write_faults += 1
                count(self.env, "dsm.write_faults", node=self.rank)
            emit(self.env, "dsm.fault", node=self.rank, kind=kind,
                 page=page)
            fault_op = (wire.OP_READ_FAULT if kind == "r"
                        else wire.OP_WRITE_FAULT)
            home = self.home(page)
            if home == self.rank:
                if kind == "r":
                    result = yield from self._serve_read_fault(
                        self.rank, page)
                else:
                    result = yield from self._serve_write_fault(
                        self.rank, page)
            else:
                result = yield from self._call(home, fault_op, [page])
            status, xfer = result[0], result[1]
            if status != wire.STATUS_OK:
                raise DsmError(
                    f"rank {self.rank}: fault on page {page} denied "
                    f"(status {status})")
            # From here to install completion no yields may intervene
            # before _installing is set — member actions for later
            # transitions must find the flag.
            if xfer:
                key = (page, xfer)
                if key not in self._pages_received:
                    install = self.env.event()
                    self._installing[page] = install
                    yield self._page_waiter(key)
                    del self._installing[page]
                    install.succeed()
                self._pages_received.discard(key)
            if kind == "w":
                self.access[page] = WRITE
                self.owned[page] = True
            elif self.access[page] == INV:
                self.access[page] = READ
            self.fetch_ns.append(self.env.now - started)
            observe(self.env, "dsm.fault.fetch_ns",
                    self.env.now - started, node=self.rank, kind=kind)
        finally:
            lock.release(grant)

    def _page_waiter(self, key):
        waiter = self._page_waiters.get(key)
        if waiter is None:
            waiter = self._page_waiters[key] = self.env.event()
        return waiter

    # -- application operations --------------------------------------------
    def read_u32(self, page: int, offset: int):
        """Generator: sequentially-consistent 4-byte load."""
        self._check_page(page, offset, 4)
        started = self.env.now
        faulted = False
        while True:
            yield self.env.timeout(LOCAL_ACCESS_NS)
            if self.access[page] != INV:
                value = int(np.frombuffer(
                    self.store.read(page * self.page_bytes + offset,
                                    4).tobytes(), dtype=np.uint32)[0])
                committed = self.env.now
                break
            faulted = True
            yield from self._fault("r", page)
        if not faulted:
            self.local_hits += 1
            count(self.env, "dsm.local_hits", node=self.rank)
        count(self.env, "dsm.ops", node=self.rank, kind="read")
        self.history.append(DsmOp(
            node=self.rank, index=len(self.history), kind="r", page=page,
            offset=offset, value=value, start_ns=started,
            commit_ns=committed, end_ns=self.env.now))
        return value

    def write_u32(self, page: int, offset: int, value: int):
        """Generator: sequentially-consistent 4-byte store."""
        self._check_page(page, offset, 4)
        started = self.env.now
        faulted = False
        while True:
            yield self.env.timeout(LOCAL_ACCESS_NS)
            if self.access[page] == WRITE:
                self.store.write(_u32(value),
                                 offset=page * self.page_bytes + offset)
                committed = self.env.now
                break
            faulted = True
            yield from self._fault("w", page)
        if not faulted:
            self.local_hits += 1
            count(self.env, "dsm.local_hits", node=self.rank)
        count(self.env, "dsm.ops", node=self.rank, kind="write")
        self.history.append(DsmOp(
            node=self.rank, index=len(self.history), kind="w", page=page,
            offset=offset, value=value, start_ns=started,
            commit_ns=committed, end_ns=self.env.now))

    def read_bytes(self, page: int, offset: int, nbytes: int):
        """Generator: byte-range load within one page (not recorded in
        the SC history — the checker tracks the u32 ops)."""
        self._check_page(page, offset, nbytes)
        while True:
            yield self.env.timeout(LOCAL_ACCESS_NS)
            if self.access[page] != INV:
                return self.store.read(
                    page * self.page_bytes + offset, nbytes).tobytes()
            yield from self._fault("r", page)

    def write_bytes(self, page: int, offset: int, data: bytes):
        """Generator: byte-range store within one page."""
        data = bytes(data)
        self._check_page(page, offset, len(data))
        while True:
            yield self.env.timeout(LOCAL_ACCESS_NS)
            if self.access[page] == WRITE:
                self.store.write(data,
                                 offset=page * self.page_bytes + offset)
                return
            yield from self._fault("w", page)

    def alloc(self, npages: int):
        """Generator: reserve ``npages`` contiguous pages from the
        segment-wide bump allocator (homed at rank 0); returns the first
        page number."""
        if self.rank == 0:
            result = self._serve_alloc(self.rank, npages)
        else:
            result = yield from self._call(0, wire.OP_ALLOC, [npages])
        if result[0] != wire.STATUS_OK:
            raise DsmError(
                f"rank {self.rank}: alloc of {npages} pages denied")
        return result[1]

    # -- lifecycle ----------------------------------------------------------
    def watch_import(self, imported: ImportedBuffer) -> None:
        imported.on_invalidate(self._imports_invalidated)

    def _imports_invalidated(self, info: dict) -> None:
        """A peer daemon invalidated one of our channel imports (cold
        restart).  Conservatively downgrade every non-owned page: the
        copies are still byte-valid, but re-faulting them is cheap and
        this node then re-enters the directory's view through the normal
        (crash-hardened) fault path."""
        dropped = 0
        for page in range(self.npages):
            if not self.owned[page] and self.access[page] != INV:
                self.access[page] = INV
                dropped += 1
        if dropped:
            self.downgrades += dropped
            count(self.env, "dsm.downgrades", n=dropped, node=self.rank)
            emit(self.env, "dsm.downgrade", node=self.rank,
                 pages=dropped, peer=info.get("remote_node", ""),
                 reason=info.get("reason", ""))

    def counters(self) -> dict:
        return {
            "read_faults": self.read_faults,
            "write_faults": self.write_faults,
            "local_hits": self.local_hits,
            "pages_fetched": self.pages_fetched,
            "invalidations": self.invalidations,
            "invalidations_sent": self.invalidations_sent,
            "downgrades": self.downgrades,
        }


def wire_dsm(cluster, npages: int = 64, page_bytes: int = 256,
             nslots: int = 4, **channel_knobs):
    """Process: build one :class:`DsmNode` per cluster node and a full
    mesh of reliable channels; the process's value is the node list."""
    env = cluster.env
    nranks = len(cluster.nodes)
    if nranks < 2:
        raise DsmError("DSM needs at least two nodes")
    slot_bytes = HEADER_BYTES + FRAME_OVERHEAD + page_bytes

    def build():
        nodes = []
        for rank, cnode in enumerate(cluster.nodes):
            _, ep = cnode.attach_process(f"dsm.rank{rank}")
            nodes.append(DsmNode(rank, nranks, ep, npages, page_bytes))
        for src in range(nranks):
            for dst in range(nranks):
                if src == dst:
                    continue
                sender, receiver = yield open_channel(
                    nodes[src].ep, nodes[dst].ep, f"dsm.{src}->{dst}",
                    nslots=nslots, slot_bytes=slot_bytes,
                    **channel_knobs)
                nodes[src]._tx[dst] = sender
                nodes[dst]._rx[src] = receiver
                nodes[src].watch_import(sender._ring)
                nodes[dst].watch_import(receiver._ack_at_sender)
        for node in nodes:
            node.start()
        return nodes

    return env.process(build(), name="dsm.wire")


def build_dsm(cluster, npages: int = 64, page_bytes: int = 256,
              nslots: int = 4, **channel_knobs) -> list[DsmNode]:
    """Blocking variant of :func:`wire_dsm` (drives the environment)."""
    return cluster.env.run(until=wire_dsm(
        cluster, npages=npages, page_bytes=page_bytes, nslots=nslots,
        **channel_knobs))
