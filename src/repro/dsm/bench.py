"""Seeded multi-node DSM workload driver (``python -m repro dsm-bench``).

One trial = one cluster, one seed, one chaos scenario:

* **warmup** — every rank writes its home pages (unique values);
* **mixed** — every rank runs a seeded 60/40 read/write stream over the
  whole page space, values unique per (rank, op);
* **drain** — barrier, protocol tails settle.

Rank 0 announces the phases on a
:class:`~repro.faults.injector.PhaseSchedule`, so chaos campaigns are
authored campaign-relative (``phase("mixed") + 20us``) and land inside
the phase they target regardless of how long wiring and warmup took.

Every op is recorded with its commit time and the whole run is fed to
:func:`~repro.dsm.checker.check_sequential_consistency`; the report
carries the violations list (empty ⇔ coherent), per-fault fetch-latency
percentiles, pages/sec, invalidations/write, and the fault campaign's
stats.  Trials are deterministic — integer-ns simulation, all
randomness from the seed — so a clean trial's report is byte-identical
across repeated invocations.
"""

from __future__ import annotations

import random

from repro.cluster import Cluster, TestbedConfig
from repro.obs.metrics import MetricsRegistry
from repro.faults import (DAEMON_COLD_CRASH, FaultCampaign, FaultEvent,
                          FaultInjector, LINK_ERROR_BURST, PhaseSchedule,
                          phase)
from repro.dsm.checker import check_sequential_consistency
from repro.dsm.sync import build_dsm_world

SCENARIOS = ("clean", "error-burst", "daemon-cold-crash")

#: Fraction of mixed-phase ops that are reads.
READ_FRACTION = 0.6


def _pct(values: list[int], q: float) -> int:
    if not values:
        return 0
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1,
                       int(q * (len(ordered) - 1) + 0.5))]


def _campaign_for(scenario: str, seed: int, nnodes: int):
    """The scenario's fault schedule, anchored to the mixed phase.  The
    victim node is seeded, so the sweep exercises different corners."""
    if scenario == "clean":
        return None
    rng = random.Random(seed * 9176 + 13)
    victim = rng.randrange(nnodes)
    if scenario == "error-burst":
        events = []
        for burst in range(2):
            start = phase("mixed") + (15_000 + 90_000 * burst)
            for link in (f"node{victim}->sw0", f"sw0->node{victim}"):
                events.append(FaultEvent(
                    at_ns=start, kind=LINK_ERROR_BURST, target=link,
                    duration_ns=50_000, params={"rate": 1.0}))
        return FaultCampaign(name=f"dsm-burst-s{seed}", seed=seed,
                             events=tuple(events))
    if scenario == "daemon-cold-crash":
        return FaultCampaign(
            name=f"dsm-coldcrash-s{seed}", seed=seed,
            events=(FaultEvent(
                at_ns=phase("mixed") + 25_000, kind=DAEMON_COLD_CRASH,
                target=f"node{victim}", duration_ns=250_000),))
    raise ValueError(f"unknown scenario {scenario!r} "
                     f"(have: {', '.join(SCENARIOS)})")


def run_dsm_trial(seed: int, *, nnodes: int = 4, npages: int = 64,
                  page_bytes: int = 256, ops_per_node: int = 24,
                  scenario: str = "clean") -> dict:
    """One seeded DSM trial; returns a JSON-serialisable report."""
    cluster = Cluster.build(TestbedConfig(nnodes=nnodes, memory_mb=32))
    env = cluster.env
    MetricsRegistry().install(env)
    segments = build_dsm_world(cluster, npages=npages,
                               page_bytes=page_bytes)
    schedule = PhaseSchedule(env)
    injector = FaultInjector(cluster)
    campaign = _campaign_for(scenario, seed, nnodes)
    fault_proc = (injector.run(campaign, phases=schedule)
                  if campaign is not None else None)

    def app(rank: int):
        segment = segments[rank]
        node = segment.node
        writes = 0

        def next_value():
            nonlocal writes
            writes += 1
            return rank * 1_000_000 + writes

        if rank == 0:
            schedule.enter("warmup")
        for page in range(npages):
            if page % nnodes == rank:
                yield from node.write_u32(page, 0, next_value())
        yield from segment.barrier()
        if rank == 0:
            schedule.enter("mixed")
        rng = random.Random(seed * 1_000_003 + rank * 7919)
        for _ in range(ops_per_node):
            page = rng.randrange(npages)
            offset = 4 * rng.randrange(page_bytes // 4)
            if rng.random() < READ_FRACTION:
                yield from node.read_u32(page, offset)
            else:
                yield from node.write_u32(page, offset, next_value())
        yield from segment.barrier()
        if rank == 0:
            schedule.enter("drain")

    apps = [env.process(app(rank), name=f"dsm.app{rank}")
            for rank in range(nnodes)]
    for proc in apps:
        env.run(until=proc)
    elapsed_ns = env.now
    # Active window, wiring excluded — the denominator for rates.
    workload_ns = (schedule.started_at["drain"]
                   - schedule.started_at["warmup"])
    if fault_proc is not None:
        env.run(until=fault_proc)

    nodes = [segment.node for segment in segments]
    for node in nodes:
        node.directory.check_invariants()
    ops = [op for node in nodes for op in node.history]
    violations = check_sequential_consistency(ops)

    counters: dict[str, int] = {}
    for node in nodes:
        for key, value in node.counters().items():
            counters[key] = counters.get(key, 0) + value
    fetches = [ns for node in nodes for ns in node.fetch_ns]
    total_writes = sum(1 for op in ops if op.kind == "w")
    comms = [segment.comm for segment in segments]
    report = {
        "bench": "dsm",
        "scenario": scenario,
        "seed": seed,
        "nnodes": nnodes,
        "npages": npages,
        "page_bytes": page_bytes,
        "ops_per_node": ops_per_node,
        "ops_total": len(ops),
        "elapsed_ns": elapsed_ns,
        "workload_ns": workload_ns,
        "counters": counters,
        "fetch_ns": {
            "n": len(fetches),
            "p50": _pct(fetches, 0.50),
            "p99": _pct(fetches, 0.99),
            "max": max(fetches) if fetches else 0,
        },
        "pages_per_sec": (
            round(counters["pages_fetched"] * 1e9 / workload_ns, 3)
            if workload_ns else 0.0),
        "invalidations_per_write": (
            round(counters["invalidations_sent"] / total_writes, 4)
            if total_writes else 0.0),
        "mp": {
            "redeliveries": sum(c.redeliveries for c in comms),
            "stale_recoveries": sum(c.stale_recoveries for c in comms),
            "credit_reacks": sum(c.credit_reacks for c in comms),
        },
        "phases": dict(sorted(schedule.started_at.items())),
        "sc_violations": violations,
        "faults": (injector.stats.as_dict()
                   if campaign is not None else None),
    }
    return report


def run_dsm_sweep(seeds, *, nnodes: int = 4, npages: int = 64,
                  page_bytes: int = 256, ops_per_node: int = 24,
                  scenarios=SCENARIOS) -> dict:
    """Trials for every (seed, scenario) pair plus summary aggregates."""
    trials = [
        run_dsm_trial(seed, nnodes=nnodes, npages=npages,
                      page_bytes=page_bytes, ops_per_node=ops_per_node,
                      scenario=scenario)
        for scenario in scenarios
        for seed in seeds
    ]
    fetch_p50 = [t["fetch_ns"]["p50"] for t in trials
                 if t["fetch_ns"]["n"]]
    summary = {
        "trials": len(trials),
        "scenarios": list(scenarios),
        "seeds": list(seeds),
        "sc_violations_total": sum(
            len(t["sc_violations"]) for t in trials),
        "pages_per_sec_median": _pct(
            [int(t["pages_per_sec"]) for t in trials], 0.50),
        "fetch_p50_median_ns": _pct(fetch_p50, 0.50),
    }
    return {"bench": "dsm-sweep", "summary": summary, "trials": trials}
