"""Fault-injection campaigns (extension beyond the paper).

The paper's VMMC assumes a reliable network: CRC errors are "detected,
counted, dropped — never recovered" (section 4.2), and daemons/links are
assumed to stay up.  This package manufactures the opposite world — a
deterministic chaos harness over the simulated cluster:

* :class:`FaultEvent` / :class:`FaultCampaign` — a pure-data schedule of
  timed faults: per-link bit-error bursts, link/switch-port down/up,
  LANai stalls, daemon crash+restart.
* :class:`FaultInjector` — runs a campaign as simulation processes against
  a booted :class:`~repro.cluster.cluster.Cluster`, emitting
  ``fault.<kind>.raise`` / ``fault.<kind>.clear`` trace points; its
  :meth:`~FaultInjector.run_all` drives a whole :class:`CampaignSet`
  **concurrently** (overlapping raises stack in the hardware hooks, a
  conflict guard serializes or rejects incompatible ones
  deterministically).
* :class:`FaultStats` — aggregate counters queryable after the run; equal
  across reruns of the same (campaign, workload) pair, which is what makes
  the chaos experiments debuggable.  :meth:`FaultStats.merge` folds
  several campaigns' stats into one :class:`MergedFaultStats` whose
  per-target fault time counts overlapped intervals once.

Used by ``python -m repro chaos`` and
``benchmarks/bench_chaos_reliability.py`` to prove that
:mod:`repro.vmmc.reliable` delivers byte-exact payloads where base VMMC
silently drops.
"""

from repro.faults.campaign import (
    DAEMON_COLD_CRASH,
    DAEMON_CRASH,
    FAULT_KINDS,
    FaultCampaign,
    FaultEvent,
    FaultStats,
    LANAI_STALL,
    LINK_DOWN,
    LINK_ERROR_BURST,
    MergedFaultStats,
    PhaseAnchor,
    SWITCH_PORT_DOWN,
    phase,
    union_ns,
)
from repro.faults.orchestrator import (
    CampaignConflictError,
    CampaignSet,
    Conflict,
)
from repro.faults.injector import FaultInjector, PhaseSchedule

__all__ = [
    "DAEMON_COLD_CRASH",
    "DAEMON_CRASH",
    "FAULT_KINDS",
    "CampaignConflictError",
    "CampaignSet",
    "Conflict",
    "FaultCampaign",
    "FaultEvent",
    "FaultInjector",
    "FaultStats",
    "LANAI_STALL",
    "LINK_DOWN",
    "LINK_ERROR_BURST",
    "MergedFaultStats",
    "PhaseAnchor",
    "PhaseSchedule",
    "SWITCH_PORT_DOWN",
    "phase",
    "union_ns",
]
