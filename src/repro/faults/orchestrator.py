"""Multi-campaign orchestration: concurrent fault schedules, one cluster.

A :class:`CampaignSet` bundles several seeded :class:`FaultCampaign` s to
be driven **concurrently** against one cluster
(:meth:`repro.faults.injector.FaultInjector.run_all`).  Most overlapping
faults compose in the hardware hooks themselves — link down-depth
counters, per-link error-rate stacks, per-switch-port down counts, daemon
crash nesting with cold-dominates-warm — so two campaigns raising on the
same target simply stack, and the target stays faulted until the *last*
clear.

What cannot compose is a **semantically incompatible** pair of raises:
a *warm* (``daemon_crash``) and a *cold* (``daemon_cold_crash``) crash
overlapping on the same node ask for two different recovery protocols.
The **conflict guard** detects those statically at :meth:`resolve` time
and handles them deterministically by ``(campaign, seed)`` priority
order (campaigns are kept sorted by ``(name, seed)``; the
earlier-ordered campaign wins):

* ``policy="serialize"`` (default): the losing event's ``at_ns`` is
  pushed to 1 ns past the winning event's clear, repeatedly until no
  incompatible overlap remains.  The shift is recorded as a
  :class:`Conflict` so reports can show exactly what moved where.
* ``policy="reject"``: :class:`CampaignConflictError` is raised, listing
  every conflict in a deterministic order.

A conflict with a **permanent** incompatible crash (``duration_ns=None``)
can never be serialized — the loser would wait forever — so it is always
rejected, regardless of policy.

Everything here is pure schedule arithmetic: same campaigns in, same
plan out, byte for byte, which is what keeps multi-campaign chaos runs
reproducible.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.faults.campaign import (
    DAEMON_COLD_CRASH,
    DAEMON_CRASH,
    FaultCampaign,
    FaultEvent,
)

#: Kinds whose overlapping raises on one target can be incompatible.
_CRASH_KINDS = frozenset({DAEMON_CRASH, DAEMON_COLD_CRASH})

#: Conflict-guard policies.
POLICIES = ("serialize", "reject")


class CampaignConflictError(ValueError):
    """Semantically incompatible concurrent raises that the policy (or
    physics: nothing serializes after a permanent fault) refuses."""

    def __init__(self, conflicts: list["Conflict"]):
        self.conflicts = conflicts
        lines = "; ".join(c.describe() for c in conflicts)
        super().__init__(f"incompatible concurrent faults: {lines}")


@dataclass(frozen=True)
class Conflict:
    """One incompatible overlap and how it was (or was not) resolved."""

    target: str
    #: The losing (lower-priority) side.
    campaign: str
    kind: str
    at_ns: int
    #: The winning (higher-priority) side it collided with.
    blocking_campaign: str
    blocking_kind: str
    blocking_at_ns: int
    #: ``serialized`` (shifted to ``resolved_at_ns``) or ``rejected``.
    action: str
    resolved_at_ns: Optional[int] = None

    def describe(self) -> str:
        where = (f"-> {self.resolved_at_ns}"
                 if self.action == "serialized" else "rejected")
        return (f"{self.campaign}/{self.kind}@{self.at_ns} on "
                f"{self.target} vs {self.blocking_campaign}/"
                f"{self.blocking_kind}@{self.blocking_at_ns} [{where}]")

    def as_dict(self) -> dict:
        return {
            "target": self.target,
            "campaign": self.campaign,
            "kind": self.kind,
            "at_ns": self.at_ns,
            "blocking_campaign": self.blocking_campaign,
            "blocking_kind": self.blocking_kind,
            "blocking_at_ns": self.blocking_at_ns,
            "action": self.action,
            "resolved_at_ns": self.resolved_at_ns,
        }


def _overlaps(a_start: int, a_end: Optional[int],
              b_start: int, b_end: Optional[int]) -> bool:
    """Half-open interval overlap; ``None`` end means permanent."""
    after_a = a_end is not None and b_start >= a_end
    after_b = b_end is not None and a_start >= b_end
    return not (after_a or after_b)


@dataclass(frozen=True)
class CampaignSet:
    """A bundle of uniquely-named campaigns to run concurrently.

    Campaigns are canonicalised to ``(name, seed)`` order on
    construction; that order is the conflict-guard **priority** (earlier
    wins).  ``policy`` selects what happens to incompatible overlaps —
    see the module docstring.
    """

    campaigns: tuple[FaultCampaign, ...]
    policy: str = "serialize"

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError(f"unknown conflict policy {self.policy!r} "
                             f"(must be one of {POLICIES})")
        if not self.campaigns:
            raise ValueError("empty campaign set")
        ordered = tuple(sorted(self.campaigns,
                               key=lambda c: (c.name, c.seed)))
        names = [c.name for c in ordered]
        if len(set(names)) != len(names):
            raise ValueError(
                f"campaign names must be unique, got {names}")
        object.__setattr__(self, "campaigns", ordered)

    @classmethod
    def of(cls, campaigns: Iterable[FaultCampaign],
           policy: str = "serialize") -> "CampaignSet":
        return cls(campaigns=tuple(campaigns), policy=policy)

    def __len__(self) -> int:
        return len(self.campaigns)

    def __iter__(self):
        return iter(self.campaigns)

    # -- conflict guard -------------------------------------------------------
    def resolve(self) -> tuple[tuple[FaultCampaign, ...], list[Conflict]]:
        """Deterministic conflict resolution.

        Returns ``(plan, conflicts)`` where ``plan`` is the campaigns
        with serialized events shifted (everything else untouched) and
        ``conflicts`` records each decision.  Raises
        :class:`CampaignConflictError` under ``policy="reject"`` when any
        conflict exists, or under any policy when serialization is
        impossible (permanent incompatible winner).
        """
        # Crash-family events in priority order: (campaign index, event
        # sort key).  All other kinds compose in the hardware hooks.
        queue: list[tuple[int, FaultCampaign, FaultEvent]] = []
        for ci, campaign in enumerate(self.campaigns):
            for event in campaign:
                if event.kind in _CRASH_KINDS:
                    queue.append((ci, campaign, event))
        queue.sort(key=lambda item: (item[0], item[2].sort_key))

        #: target → placed [(start, end|None, kind, campaign)] windows.
        placed: dict[str, list[tuple[int, Optional[int], str, str]]] = {}
        conflicts: list[Conflict] = []
        rejected: list[Conflict] = []
        #: (campaign name, event sort_key) → shifted at_ns.
        moved: dict[tuple[str, tuple], int] = {}

        for _, campaign, event in queue:
            start = event.at_ns
            end = (None if event.duration_ns is None
                   else start + event.duration_ns)
            first_block: Optional[tuple[int, Optional[int], str, str]] = None
            reject: Optional[Conflict] = None
            while True:
                blocker = next(
                    (w for w in placed.get(event.target, [])
                     if w[2] != event.kind
                     and _overlaps(w[0], w[1], start, end)), None)
                if blocker is None:
                    break
                first_block = first_block or blocker
                if blocker[1] is None or event.duration_ns is None:
                    # Permanent incompatible overlap: nothing to wait
                    # for (or the loser itself never clears) — reject.
                    reject = Conflict(
                        target=event.target, campaign=campaign.name,
                        kind=event.kind, at_ns=event.at_ns,
                        blocking_campaign=blocker[3],
                        blocking_kind=blocker[2],
                        blocking_at_ns=blocker[0], action="rejected")
                    break
                start = blocker[1] + 1
                end = start + event.duration_ns
            if reject is not None:
                rejected.append(reject)
                continue
            placed.setdefault(event.target, []).append(
                (start, end, event.kind, campaign.name))
            if start != event.at_ns:
                assert first_block is not None
                conflicts.append(Conflict(
                    target=event.target, campaign=campaign.name,
                    kind=event.kind, at_ns=event.at_ns,
                    blocking_campaign=first_block[3],
                    blocking_kind=first_block[2],
                    blocking_at_ns=first_block[0],
                    action="serialized", resolved_at_ns=start))
                moved[(campaign.name, event.sort_key)] = start

        if rejected:
            raise CampaignConflictError(rejected)
        if conflicts and self.policy == "reject":
            raise CampaignConflictError([
                dataclasses.replace(c, action="rejected",
                                    resolved_at_ns=None)
                for c in conflicts])

        if not moved:
            return self.campaigns, conflicts
        plan = []
        for campaign in self.campaigns:
            events = tuple(
                dataclasses.replace(
                    e, at_ns=moved[(campaign.name, e.sort_key)])
                if (campaign.name, e.sort_key) in moved else e
                for e in campaign)
            plan.append(FaultCampaign(name=campaign.name, events=events,
                                      seed=campaign.seed))
        return tuple(plan), conflicts
