"""Deterministic fault campaigns: *what* goes wrong and *when*.

A :class:`FaultCampaign` is a pure-data schedule of timed
:class:`FaultEvent` s — raise a bit-error burst on a link, take a cable or
a switch port down, stall a LANai, crash a node's daemon — that the
:class:`~repro.faults.injector.FaultInjector` drives as simulation
processes.  Campaigns are deterministic by construction: the schedule is a
plain list, and the randomised builders draw every choice from one seeded
``numpy`` generator, so the same ``(topology, seed)`` pair always yields
the same fault sequence, packet for packet.

The paper's VMMC explicitly assumes a reliable network (CRC errors are
detected, counted and dropped — section 4.2); this module manufactures the
unreliable networks against which :mod:`repro.vmmc.reliable` earns its
keep.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Union

import numpy as np

#: The fault kinds the injector understands.
LINK_ERROR_BURST = "link_error_burst"
LINK_DOWN = "link_down"
SWITCH_PORT_DOWN = "switch_port_down"
LANAI_STALL = "lanai_stall"
DAEMON_CRASH = "daemon_crash"
DAEMON_COLD_CRASH = "daemon_cold_crash"

FAULT_KINDS = frozenset({
    LINK_ERROR_BURST,
    LINK_DOWN,
    SWITCH_PORT_DOWN,
    LANAI_STALL,
    DAEMON_CRASH,
    DAEMON_COLD_CRASH,
})


@dataclass(frozen=True)
class PhaseAnchor:
    """A point in time relative to a *named workload phase* instead of the
    absolute clock: ``phase("warmup") + 10_000`` is 10 µs after the
    workload announces the start of its ``warmup`` phase.

    Campaigns authored against phases survive workload-timing changes
    (cluster boot got slower, a barrier moved) that would silently shift
    absolute-ns campaigns off their intended target — the carry-over the
    DSM bench needed, where "crash the daemon mid-write-storm" is a
    statement about the ``mixed`` phase, not about nanosecond 2_400_000.
    """

    phase: str
    offset_ns: int = 0

    def __post_init__(self) -> None:
        if not self.phase:
            raise ValueError("phase anchor needs a phase name")
        if self.offset_ns < 0:
            raise ValueError(
                f"negative offset {self.offset_ns} from phase "
                f"{self.phase!r}")

    def __add__(self, extra_ns: int) -> "PhaseAnchor":
        return PhaseAnchor(self.phase, self.offset_ns + int(extra_ns))

    __radd__ = __add__


def phase(name: str, offset_ns: int = 0) -> PhaseAnchor:
    """Author a :class:`FaultEvent` time as ``phase("mixed") + 50_000``."""
    return PhaseAnchor(name, offset_ns)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``target`` names the victim:

    =====================  ==================================================
    kind                   target
    =====================  ==================================================
    ``link_error_burst``   link name (``"node0->sw0"``, or a
                           generated-topology link such as
                           ``"ft0:edge[0][0]->ft0:agg[0][1]"``);
                           ``params["rate"]`` is the per-packet corruption
                           probability while the burst is active
    ``link_down``          link name (same forms)
    ``switch_port_down``   ``"<switch>:<port>"`` — the port may carry a
                           ``p`` prefix, and the switch may be a
                           generated-topology name with its own colons:
                           ``"sw0:3"``, ``"ft0:agg[0][1]:p3"``,
                           ``"mesh0:sw[1][2]:0"``
    ``lanai_stall``        node name (``"node1"``); the LANai freezes for
                           ``duration_ns``
    ``daemon_crash``       node name; the daemon is dead for ``duration_ns``
                           then restarted (warm: NIC state survives)
    ``daemon_cold_crash``  node name; the daemon is dead for ``duration_ns``
                           then *cold*-restarted: the export table and the
                           NIC page-table state are lost, the epoch bumps,
                           and the invalidation/recovery protocol runs
                           (:meth:`repro.vmmc.daemon.VMMCDaemon.restart`)
    =====================  ==================================================

    ``duration_ns`` of ``None`` means the fault is raised and never
    cleared (a permanent failure for the rest of the run).  For
    ``lanai_stall`` the duration *is* the fault, so it must be given.

    ``at_ns`` may be a :class:`PhaseAnchor` (``phase("warmup") + 10_000``)
    instead of an absolute time: the anchor's phase name lands in
    :attr:`phase` and its offset in :attr:`at_ns`, and the injector fires
    the event ``at_ns`` after the workload's
    :class:`~repro.faults.injector.PhaseSchedule` enters that phase.
    Phase-relative events are immune to :meth:`FaultCampaign.shifted`
    (they are already relative to a moving origin).
    """

    at_ns: Union[int, "PhaseAnchor"]
    kind: str
    target: str
    duration_ns: Optional[int] = None
    params: dict[str, Any] = field(default_factory=dict)
    #: Workload phase this event is anchored to (``None`` = absolute ns).
    phase: Optional[str] = None

    def __post_init__(self) -> None:
        if isinstance(self.at_ns, PhaseAnchor):
            object.__setattr__(self, "phase", self.at_ns.phase)
            object.__setattr__(self, "at_ns", self.at_ns.offset_ns)
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} "
                             f"(must be one of {sorted(FAULT_KINDS)})")
        if self.at_ns < 0:
            raise ValueError(f"fault scheduled at negative time {self.at_ns}")
        if self.duration_ns is not None and self.duration_ns < 0:
            raise ValueError(f"negative fault duration {self.duration_ns}")
        if self.kind == LANAI_STALL and self.duration_ns is None:
            raise ValueError("lanai_stall requires a duration")
        if self.kind == LINK_ERROR_BURST and "rate" not in self.params:
            raise ValueError("link_error_burst requires params['rate']")

    @property
    def sort_key(self) -> tuple:
        """A **total** ordering key: ``(phase, at_ns, kind, target)`` ties
        are broken by duration (permanent faults last) and a canonical
        params repr, so same-seed campaigns sort bit-identically
        regardless of the order the events were constructed in.
        Absolute events (empty phase) sort before phase-anchored ones."""
        return (self.phase or "", self.at_ns, self.kind, self.target,
                self.duration_ns is None, self.duration_ns or 0,
                repr(sorted(self.params.items(), key=lambda kv: kv[0])))


@dataclass(frozen=True)
class FaultCampaign:
    """A named, seeded schedule of faults."""

    name: str
    events: tuple[FaultEvent, ...]
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "events",
                           tuple(sorted(self.events,
                                        key=lambda e: e.sort_key)))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def horizon_ns(self) -> int:
        """Time by which every scheduled fault has been raised *and*
        cleared (permanent faults count only their raise time)."""
        horizon = 0
        for event in self.events:
            end = event.at_ns + (event.duration_ns or 0)
            horizon = max(horizon, end)
        return horizon

    def shifted(self, offset_ns: int) -> "FaultCampaign":
        """A copy with every event delayed by ``offset_ns`` — campaigns
        are authored relative to t=0 and shifted to the workload's start
        time at run time (events scheduled in the past would otherwise
        all fire immediately, collapsing their relative timing).

        Phase-anchored events are left untouched: their origin is the
        phase start, which moves with the workload by construction."""
        if offset_ns == 0:
            return self
        return FaultCampaign(
            name=self.name,
            events=tuple(e if e.phase is not None
                         else dataclasses.replace(e, at_ns=e.at_ns
                                                  + offset_ns)
                         for e in self.events),
            seed=self.seed)

    # -- builders -------------------------------------------------------------
    @classmethod
    def of(cls, name: str, events: Iterable[FaultEvent],
           seed: int = 0) -> "FaultCampaign":
        return cls(name=name, events=tuple(events), seed=seed)

    @classmethod
    def random_link_bursts(cls, link_names: list[str], *, seed: int,
                           nbursts: int = 4, rate: float = 0.25,
                           start_ns: int = 50_000, window_ns: int = 2_000_000,
                           burst_ns: int = 100_000,
                           name: str = "random_link_bursts"
                           ) -> "FaultCampaign":
        """Clustered bit-error bursts on random links (section 4.2's
        "errors occur in bursts when a hardware component is about to
        fail"), deterministically drawn from ``seed``."""
        if not link_names:
            raise ValueError("no links to burst")
        rng = np.random.default_rng(seed)
        events = []
        for _ in range(nbursts):
            link = link_names[int(rng.integers(0, len(link_names)))]
            at = start_ns + int(rng.integers(0, max(1, window_ns)))
            events.append(FaultEvent(at_ns=at, kind=LINK_ERROR_BURST,
                                     target=link, duration_ns=burst_ns,
                                     params={"rate": rate}))
        return cls(name=name, events=tuple(events), seed=seed)


def union_ns(intervals: Iterable[tuple[int, int]]) -> int:
    """Total length of the union of half-open ``(start, end)`` intervals —
    overlapping stretches are counted **once**.  Used by
    :meth:`FaultStats.merge` so a target double-faulted by two campaigns
    is not charged twice for the overlap."""
    total = 0
    cur_start = cur_end = None
    for start, end in sorted(intervals):
        if cur_end is None or start > cur_end:
            if cur_end is not None:
                total += cur_end - cur_start
            cur_start, cur_end = start, end
        else:
            cur_end = max(cur_end, end)
    if cur_end is not None:
        total += cur_end - cur_start
    return total


@dataclass
class FaultStats:
    """Aggregate counters filled in by the injector, queryable after a run.

    Everything here is derived from the (deterministic) campaign schedule
    and the simulation clock, so two runs of the same campaign against the
    same workload produce identical stats — the acceptance test for
    reproducible chaos.
    """

    campaign: str = ""
    seed: int = 0
    faults_raised: int = 0
    faults_cleared: int = 0
    #: kind → number of raises.
    by_kind: dict[str, int] = field(default_factory=dict)
    #: target → total ns spent faulted.  Cleared faults are charged their
    #: raise-to-clear span; **permanent** faults (``duration_ns=None``)
    #: are charged ``now - raised_at`` when :meth:`finalize` is called at
    #: run end (the injector finalizes at campaign completion; callers may
    #: re-finalize later to extend the charge to the true end of the
    #: measurement window).
    fault_ns_by_target: dict[str, int] = field(default_factory=dict)
    #: target → list of (raised_at, charged_until) fault intervals, in
    #: clear order; the raw material for :meth:`merge`'s overlap-once
    #: accounting.  Open (permanent) faults appear after finalize().
    intervals_by_target: dict[str, list[tuple[int, int]]] = \
        field(default_factory=dict)
    #: (kind, target, at_ns) log of raises, in raise order.
    log: list[tuple[str, str, int]] = field(default_factory=list)
    #: Clock value of the last finalize() (None: never finalized).
    finalized_at: Optional[int] = None
    #: Still-open raises: mutable [kind, target, raised_at,
    #: charged_interval-or-None] entries (internal bookkeeping).
    _open: list[list] = field(default_factory=list, repr=False,
                              compare=False)

    def record_raise(self, event: FaultEvent, now: int) -> None:
        self.faults_raised += 1
        self.by_kind[event.kind] = self.by_kind.get(event.kind, 0) + 1
        self.log.append((event.kind, event.target, now))
        self._open.append([event.kind, event.target, now, None])

    def _pop_open(self, kind: str, target: str, raised_at: int):
        for i, entry in enumerate(self._open):
            if entry[0] == kind and entry[1] == target \
                    and entry[2] == raised_at:
                return self._open.pop(i)
        return None

    def _charge(self, target: str, raised_at: int, until: int,
                prev: Optional[tuple[int, int]]) -> tuple[int, int]:
        """Extend ``target``'s fault interval ``(raised_at, …)`` to
        ``until``, charging only the not-yet-charged span."""
        already = (prev[1] - prev[0]) if prev else 0
        self.fault_ns_by_target[target] = \
            self.fault_ns_by_target.get(target, 0) \
            + (until - raised_at) - already
        intervals = self.intervals_by_target.setdefault(target, [])
        interval = (raised_at, until)
        if prev is None:
            intervals.append(interval)
        else:
            intervals[intervals.index(prev)] = interval
        return interval

    def record_clear(self, event: FaultEvent, raised_at: int,
                     now: int) -> None:
        self.faults_cleared += 1
        entry = self._pop_open(event.kind, event.target, raised_at)
        self._charge(event.target, raised_at, now,
                     entry[3] if entry else None)

    def finalize(self, now: int) -> "FaultStats":
        """Charge every still-open (permanent) fault up to ``now`` —
        without this, permanent faults would never appear in
        ``fault_ns_by_target`` and merged goodput-vs-fault-time tables
        would be skewed.  Idempotent and extendable: calling again with a
        later clock re-charges only the new span."""
        for entry in self._open:
            kind, target, raised_at, prev = entry
            until = max(now, prev[1] if prev else raised_at)
            entry[3] = self._charge(target, raised_at, until, prev)
        self.finalized_at = now
        return self

    @property
    def open_faults(self) -> int:
        """Faults raised and never cleared (permanent, or still active)."""
        return len(self._open)

    def as_dict(self) -> dict[str, Any]:
        """Canonical, comparable form (determinism assertions)."""
        return {
            "campaign": self.campaign,
            "seed": self.seed,
            "faults_raised": self.faults_raised,
            "faults_cleared": self.faults_cleared,
            "open_faults": self.open_faults,
            "finalized_at": self.finalized_at,
            "by_kind": dict(sorted(self.by_kind.items())),
            "fault_ns_by_target":
                dict(sorted(self.fault_ns_by_target.items())),
            "intervals_by_target":
                {target: list(intervals) for target, intervals
                 in sorted(self.intervals_by_target.items())},
            "log": list(self.log),
        }

    @staticmethod
    def merge(parts: Iterable["FaultStats"]) -> "MergedFaultStats":
        """Canonical cross-campaign aggregate of several campaigns' stats.

        Per-campaign sub-stats are preserved untouched (sorted by
        ``(campaign, seed)``); counters and ``by_kind`` are summed; the
        merged ``fault_ns_by_target`` is the **union** of every
        campaign's fault intervals per target, so a stretch of time in
        which two campaigns both held the same target faulted is counted
        once (``overlap_ns_by_target`` reports the double-covered time
        that was deduplicated).  Campaign names must be unique.
        """
        ordered = tuple(sorted(parts, key=lambda s: (s.campaign, s.seed)))
        names = [s.campaign for s in ordered]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate campaign names in merge: {names}")
        by_kind: dict[str, int] = {}
        intervals: dict[str, list[tuple[int, int]]] = {}
        for stats in ordered:
            for kind, n in stats.by_kind.items():
                by_kind[kind] = by_kind.get(kind, 0) + n
            for target, spans in stats.intervals_by_target.items():
                intervals.setdefault(target, []).extend(spans)
        fault_ns = {target: union_ns(spans)
                    for target, spans in intervals.items()}
        overlap = {
            target: sum(end - start for start, end in spans)
            - fault_ns[target]
            for target, spans in intervals.items()}
        log = sorted(
            ((at, stats.campaign, kind, target)
             for stats in ordered
             for kind, target, at in stats.log))
        return MergedFaultStats(
            campaigns=ordered,
            faults_raised=sum(s.faults_raised for s in ordered),
            faults_cleared=sum(s.faults_cleared for s in ordered),
            by_kind=by_kind,
            fault_ns_by_target=fault_ns,
            overlap_ns_by_target=overlap,
            log=log)


@dataclass(frozen=True)
class MergedFaultStats:
    """Cross-campaign aggregate produced by :meth:`FaultStats.merge`.

    ``fault_ns_by_target`` counts overlapped intervals **once** per
    target; ``overlap_ns_by_target`` is the deduplicated double-coverage
    (sum-of-spans minus union), i.e. how long ≥2 campaigns held the same
    target simultaneously.  The per-campaign :class:`FaultStats` survive
    untouched in ``campaigns``.
    """

    campaigns: tuple[FaultStats, ...]
    faults_raised: int
    faults_cleared: int
    by_kind: dict[str, int]
    fault_ns_by_target: dict[str, int]
    overlap_ns_by_target: dict[str, int]
    #: (at_ns, campaign, kind, target) raises across all campaigns,
    #: sorted — a single reproducible timeline.
    log: list[tuple[int, str, str, str]]

    def stats_for(self, campaign: str) -> FaultStats:
        for stats in self.campaigns:
            if stats.campaign == campaign:
                return stats
        raise KeyError(f"no campaign named {campaign!r} in merge")

    def as_dict(self) -> dict[str, Any]:
        """Canonical, comparable form (determinism assertions)."""
        return {
            "campaigns": [s.as_dict() for s in self.campaigns],
            "faults_raised": self.faults_raised,
            "faults_cleared": self.faults_cleared,
            "by_kind": dict(sorted(self.by_kind.items())),
            "fault_ns_by_target":
                dict(sorted(self.fault_ns_by_target.items())),
            "overlap_ns_by_target":
                dict(sorted(self.overlap_ns_by_target.items())),
            "log": list(self.log),
        }
