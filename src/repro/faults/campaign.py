"""Deterministic fault campaigns: *what* goes wrong and *when*.

A :class:`FaultCampaign` is a pure-data schedule of timed
:class:`FaultEvent` s — raise a bit-error burst on a link, take a cable or
a switch port down, stall a LANai, crash a node's daemon — that the
:class:`~repro.faults.injector.FaultInjector` drives as simulation
processes.  Campaigns are deterministic by construction: the schedule is a
plain list, and the randomised builders draw every choice from one seeded
``numpy`` generator, so the same ``(topology, seed)`` pair always yields
the same fault sequence, packet for packet.

The paper's VMMC explicitly assumes a reliable network (CRC errors are
detected, counted and dropped — section 4.2); this module manufactures the
unreliable networks against which :mod:`repro.vmmc.reliable` earns its
keep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

import numpy as np

#: The fault kinds the injector understands.
LINK_ERROR_BURST = "link_error_burst"
LINK_DOWN = "link_down"
SWITCH_PORT_DOWN = "switch_port_down"
LANAI_STALL = "lanai_stall"
DAEMON_CRASH = "daemon_crash"
DAEMON_COLD_CRASH = "daemon_cold_crash"

FAULT_KINDS = frozenset({
    LINK_ERROR_BURST,
    LINK_DOWN,
    SWITCH_PORT_DOWN,
    LANAI_STALL,
    DAEMON_CRASH,
    DAEMON_COLD_CRASH,
})


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``target`` names the victim:

    =====================  ==================================================
    kind                   target
    =====================  ==================================================
    ``link_error_burst``   link name (``"node0->sw0"``); ``params["rate"]``
                           is the per-packet corruption probability while
                           the burst is active
    ``link_down``          link name
    ``switch_port_down``   ``"<switch>:<port>"`` (``"sw0:3"``)
    ``lanai_stall``        node name (``"node1"``); the LANai freezes for
                           ``duration_ns``
    ``daemon_crash``       node name; the daemon is dead for ``duration_ns``
                           then restarted (warm: NIC state survives)
    ``daemon_cold_crash``  node name; the daemon is dead for ``duration_ns``
                           then *cold*-restarted: the export table and the
                           NIC page-table state are lost, the epoch bumps,
                           and the invalidation/recovery protocol runs
                           (:meth:`repro.vmmc.daemon.VMMCDaemon.restart`)
    =====================  ==================================================

    ``duration_ns`` of ``None`` means the fault is raised and never
    cleared (a permanent failure for the rest of the run).  For
    ``lanai_stall`` the duration *is* the fault, so it must be given.
    """

    at_ns: int
    kind: str
    target: str
    duration_ns: Optional[int] = None
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} "
                             f"(must be one of {sorted(FAULT_KINDS)})")
        if self.at_ns < 0:
            raise ValueError(f"fault scheduled at negative time {self.at_ns}")
        if self.duration_ns is not None and self.duration_ns < 0:
            raise ValueError(f"negative fault duration {self.duration_ns}")
        if self.kind == LANAI_STALL and self.duration_ns is None:
            raise ValueError("lanai_stall requires a duration")
        if self.kind == LINK_ERROR_BURST and "rate" not in self.params:
            raise ValueError("link_error_burst requires params['rate']")


@dataclass(frozen=True)
class FaultCampaign:
    """A named, seeded schedule of faults."""

    name: str
    events: tuple[FaultEvent, ...]
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "events",
                           tuple(sorted(self.events,
                                        key=lambda e: (e.at_ns, e.kind,
                                                       e.target))))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def horizon_ns(self) -> int:
        """Time by which every scheduled fault has been raised *and*
        cleared (permanent faults count only their raise time)."""
        horizon = 0
        for event in self.events:
            end = event.at_ns + (event.duration_ns or 0)
            horizon = max(horizon, end)
        return horizon

    # -- builders -------------------------------------------------------------
    @classmethod
    def of(cls, name: str, events: Iterable[FaultEvent],
           seed: int = 0) -> "FaultCampaign":
        return cls(name=name, events=tuple(events), seed=seed)

    @classmethod
    def random_link_bursts(cls, link_names: list[str], *, seed: int,
                           nbursts: int = 4, rate: float = 0.25,
                           start_ns: int = 50_000, window_ns: int = 2_000_000,
                           burst_ns: int = 100_000,
                           name: str = "random_link_bursts"
                           ) -> "FaultCampaign":
        """Clustered bit-error bursts on random links (section 4.2's
        "errors occur in bursts when a hardware component is about to
        fail"), deterministically drawn from ``seed``."""
        if not link_names:
            raise ValueError("no links to burst")
        rng = np.random.default_rng(seed)
        events = []
        for _ in range(nbursts):
            link = link_names[int(rng.integers(0, len(link_names)))]
            at = start_ns + int(rng.integers(0, max(1, window_ns)))
            events.append(FaultEvent(at_ns=at, kind=LINK_ERROR_BURST,
                                     target=link, duration_ns=burst_ns,
                                     params={"rate": rate}))
        return cls(name=name, events=tuple(events), seed=seed)


@dataclass
class FaultStats:
    """Aggregate counters filled in by the injector, queryable after a run.

    Everything here is derived from the (deterministic) campaign schedule
    and the simulation clock, so two runs of the same campaign against the
    same workload produce identical stats — the acceptance test for
    reproducible chaos.
    """

    campaign: str = ""
    seed: int = 0
    faults_raised: int = 0
    faults_cleared: int = 0
    #: kind → number of raises.
    by_kind: dict[str, int] = field(default_factory=dict)
    #: target → total ns spent faulted (permanent faults: until run end is
    #: unknowable, so they contribute only once cleared — i.e. never).
    fault_ns_by_target: dict[str, int] = field(default_factory=dict)
    #: (kind, target, at_ns) log of raises, in raise order.
    log: list[tuple[str, str, int]] = field(default_factory=list)

    def record_raise(self, event: FaultEvent, now: int) -> None:
        self.faults_raised += 1
        self.by_kind[event.kind] = self.by_kind.get(event.kind, 0) + 1
        self.log.append((event.kind, event.target, now))

    def record_clear(self, event: FaultEvent, raised_at: int,
                     now: int) -> None:
        self.faults_cleared += 1
        self.fault_ns_by_target[event.target] = \
            self.fault_ns_by_target.get(event.target, 0) + (now - raised_at)

    def as_dict(self) -> dict[str, Any]:
        """Canonical, comparable form (determinism assertions)."""
        return {
            "campaign": self.campaign,
            "seed": self.seed,
            "faults_raised": self.faults_raised,
            "faults_cleared": self.faults_cleared,
            "by_kind": dict(sorted(self.by_kind.items())),
            "fault_ns_by_target":
                dict(sorted(self.fault_ns_by_target.items())),
            "log": list(self.log),
        }
