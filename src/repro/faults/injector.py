"""The fault injector: drives campaigns against a booted cluster.

One simulation process per scheduled :class:`FaultEvent` sleeps until the
event's time, applies the fault through the hardware/daemon hooks, emits a
``fault.<kind>.raise`` trace point, sleeps the fault's duration, clears it
(``fault.<kind>.clear``), and accounts everything in a
:class:`~repro.faults.campaign.FaultStats`.

The injector touches only public fault hooks:

* ``Link.set_error_rate`` / ``set_down`` / ``set_up``
* ``Switch.set_port_down`` / ``set_port_up``
* ``LANaiProcessor.stall``
* ``VMMCDaemon.crash`` / ``restart``

so it composes with any workload that runs on the same cluster — the chaos
benchmark runs VMMC traffic while the injector pulls cables out.

Campaigns compose too: :meth:`FaultInjector.run_all` drives a whole
:class:`~repro.faults.orchestrator.CampaignSet` concurrently.  Overlapping
raises on one target stack in the hardware hooks (down-depth counters,
error-rate stacks, crash nesting — the target stays faulted until the
*last* clear), incompatible raises are serialized or rejected by the
set's conflict guard before anything runs, and the per-campaign
:class:`FaultStats` are preserved in :attr:`FaultInjector.stats_by_campaign`
while the ``run_all`` process's value is the canonical
:class:`~repro.faults.campaign.MergedFaultStats` aggregate.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

from repro.sim import Environment, Process
from repro.sim.trace import emit
from repro.obs.metrics import count, observe
from repro.faults.campaign import (
    DAEMON_COLD_CRASH,
    DAEMON_CRASH,
    FaultCampaign,
    FaultEvent,
    FaultStats,
    MergedFaultStats,
    LANAI_STALL,
    LINK_DOWN,
    LINK_ERROR_BURST,
    SWITCH_PORT_DOWN,
)
from repro.faults.orchestrator import CampaignSet


class PhaseSchedule:
    """Named workload phases that phase-anchored :class:`FaultEvent` s
    wait on.

    The workload calls :meth:`enter` as it crosses each phase boundary;
    the injector parks every ``phase("name") + offset`` event until the
    phase is entered, then counts ``offset`` ns from the *actual* entry
    time.  Entry times are recorded in :attr:`started_at` (the bench
    reports them, so a campaign's placement is auditable after the run).
    """

    def __init__(self, env: Environment):
        self.env = env
        #: phase name → absolute ns at which the workload entered it.
        self.started_at: dict[str, int] = {}
        self._waiters: dict[str, object] = {}

    def enter(self, name: str) -> None:
        """Announce that the workload just entered phase ``name``."""
        if name in self.started_at:
            raise ValueError(f"phase {name!r} entered twice")
        self.started_at[name] = self.env.now
        count(self.env, "faults.phases_entered")
        emit(self.env, "workload.phase", phase=name)
        waiter = self._waiters.pop(name, None)
        if waiter is not None and not waiter.triggered:
            waiter.succeed()

    def _pending(self, name: str):
        """Event that fires when ``name`` is entered (injector-side)."""
        waiter = self._waiters.get(name)
        if waiter is None:
            waiter = self.env.event()
            self._waiters[name] = waiter
        return waiter


class FaultInjector:
    """Applies :class:`FaultCampaign` s to one cluster."""

    def __init__(self, cluster):
        self.cluster = cluster
        self.env: Environment = cluster.env
        #: Stats of the most recently *started* campaign.  With several
        #: campaigns in flight this reference moves — use
        #: :attr:`stats_by_campaign` (or the run process's value) for
        #: anything multi-campaign.
        self.stats: Optional[FaultStats] = None
        #: campaign name → its :class:`FaultStats`; one entry per
        #: :meth:`run` call, never clobbered by later campaigns.
        self.stats_by_campaign: dict[str, FaultStats] = {}
        #: The last :meth:`run_all` aggregate (set when it completes).
        self.merged_stats: Optional[MergedFaultStats] = None

    # -- target resolution ---------------------------------------------------
    def _node(self, name: str):
        return self.cluster.node(name)

    def _switch_port(self, target: str):
        """Resolve a ``switch_port_down`` target to (switch, port).

        The target is ``<switch>:<port>``; the port token may carry a
        ``p`` prefix.  Generated-topology switch names contain colons
        themselves (``ft0:agg[0][1]:p3``, ``mesh0:sw[1][2]:3``), so only
        the *last* colon splits off the port.
        """
        switch_name, sep, port = target.rpartition(":")
        token = port[1:] if port[:1] == "p" else port
        if not sep or not token.isdigit():
            raise ValueError(
                f"bad switch_port_down target {target!r} "
                "(want '<switch>:<port>', e.g. 'sw0:3' or "
                "'ft0:agg[0][1]:p3')")
        if switch_name not in self.cluster.fabric.switches:
            raise KeyError(
                f"no switch {switch_name!r} in fabric (target {target!r}); "
                f"have: {sorted(self.cluster.fabric.switches)}")
        return self.cluster.fabric.switches[switch_name], int(token)

    def _apply(self, event: FaultEvent):
        """Raise one fault (instantaneous state flip).  Returns an opaque
        handle that :meth:`_clear` needs to release exactly this raise
        (e.g. the link error-rate stack token)."""
        fabric = self.cluster.fabric
        if event.kind == LINK_ERROR_BURST:
            return fabric.find_link(event.target).set_error_rate(
                float(event.params["rate"]))
        if event.kind == LINK_DOWN:
            fabric.find_link(event.target).set_down()
        elif event.kind == SWITCH_PORT_DOWN:
            switch, port = self._switch_port(event.target)
            switch.set_port_down(port)
        elif event.kind == LANAI_STALL:
            self._node(event.target).nic.processor.stall(event.duration_ns)
        elif event.kind in (DAEMON_CRASH, DAEMON_COLD_CRASH):
            self._node(event.target).daemon.crash()
        else:  # pragma: no cover - FaultEvent validates kinds
            raise ValueError(f"unknown fault kind {event.kind!r}")
        return None

    def _clear(self, event: FaultEvent, handle=None) -> None:
        """Clear one fault (inverse state flip)."""
        fabric = self.cluster.fabric
        if event.kind == LINK_ERROR_BURST:
            fabric.find_link(event.target).clear_error_rate(handle)
        elif event.kind == LINK_DOWN:
            fabric.find_link(event.target).set_up()
        elif event.kind == SWITCH_PORT_DOWN:
            switch, port = self._switch_port(event.target)
            switch.set_port_up(port)
        elif event.kind == LANAI_STALL:
            pass  # the stall expires on its own inside the processor
        elif event.kind == DAEMON_CRASH:
            self._node(event.target).daemon.restart()
        elif event.kind == DAEMON_COLD_CRASH:
            self._node(event.target).daemon.restart(cold=True)

    # -- execution ------------------------------------------------------------
    def run(self, campaign: FaultCampaign,
            phases: Optional[PhaseSchedule] = None) -> Process:
        """Process: drive the whole campaign; value is its
        :class:`FaultStats`.  One child process per event, so overlapping
        faults on different targets proceed independently.

        Phase-anchored events require ``phases`` — the
        :class:`PhaseSchedule` the workload announces its phases on; a
        campaign with anchored events but no schedule is refused up front
        (the event would otherwise wait forever).

        The campaign's stats live in ``stats_by_campaign[campaign.name]``
        from the moment this returns; at campaign end they are
        :meth:`~FaultStats.finalize` d so permanent faults are charged up
        to the campaign's completion time (re-finalize with a later clock
        to extend the charge to a longer measurement window)."""
        anchored = [e for e in campaign if e.phase is not None]
        if anchored and phases is None:
            raise ValueError(
                f"campaign {campaign.name!r} has phase-anchored events "
                f"({sorted({e.phase for e in anchored})}) but no "
                f"PhaseSchedule was given")
        stats = FaultStats(campaign=campaign.name, seed=campaign.seed)
        self.stats = stats
        self.stats_by_campaign[campaign.name] = stats
        count(self.env, "faults.campaigns")

        def drive_one(event: FaultEvent):
            if event.phase is not None:
                if event.phase not in phases.started_at:
                    yield phases._pending(event.phase)
                delay = (phases.started_at[event.phase] + event.at_ns
                         - self.env.now)
            else:
                delay = event.at_ns - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            raised_at = self.env.now
            handle = self._apply(event)
            stats.record_raise(event, raised_at)
            count(self.env, "faults.raised", kind=event.kind)
            emit(self.env, f"fault.{event.kind}.raise",
                 target=event.target, duration_ns=event.duration_ns,
                 campaign=campaign.name, **event.params)
            if event.duration_ns is None and event.kind != LANAI_STALL:
                return  # permanent fault — never cleared
            yield self.env.timeout(event.duration_ns)
            self._clear(event, handle)
            stats.record_clear(event, raised_at, self.env.now)
            count(self.env, "faults.cleared", kind=event.kind)
            observe(self.env, "faults.duration_ns",
                    self.env.now - raised_at, kind=event.kind)
            emit(self.env, f"fault.{event.kind}.clear",
                 target=event.target, campaign=campaign.name)

        def drive_all():
            children = [
                self.env.process(drive_one(event),
                                 name=f"fault.{event.kind}.{event.target}")
                for event in campaign
            ]
            for child in children:
                yield child
            stats.finalize(self.env.now)
            return stats

        return self.env.process(drive_all(),
                                name=f"faults.campaign.{campaign.name}")

    def run_all(self,
                campaigns: Union[CampaignSet, Iterable[FaultCampaign]],
                policy: str = "serialize",
                phases: Optional[PhaseSchedule] = None) -> Process:
        """Process: drive several campaigns **concurrently**; value is the
        canonical :class:`MergedFaultStats` aggregate (also stored in
        :attr:`merged_stats` at completion).

        ``campaigns`` is a :class:`CampaignSet` or any iterable of
        campaigns (wrapped with the given conflict ``policy``).  The
        set's conflict guard runs *before* anything is scheduled:
        serialized shifts are emitted as ``fault.set.conflict`` trace
        points and counted in ``faults.conflicts{action}``; rejections
        raise :class:`~repro.faults.orchestrator.CampaignConflictError`
        synchronously, so a bad schedule never half-runs.
        """
        cset = (campaigns if isinstance(campaigns, CampaignSet)
                else CampaignSet.of(campaigns, policy=policy))
        plan, conflicts = cset.resolve()
        for conflict in conflicts:
            count(self.env, "faults.conflicts", action=conflict.action)
            emit(self.env, "fault.set.conflict", **conflict.as_dict())
        emit(self.env, "fault.set.start", campaigns=len(plan),
             conflicts=len(conflicts), policy=cset.policy)

        def drive_set():
            procs = [self.run(campaign, phases=phases) for campaign in plan]
            parts = []
            for proc in procs:
                parts.append((yield proc))
            merged = FaultStats.merge(parts)
            self.merged_stats = merged
            emit(self.env, "fault.set.done", campaigns=len(plan),
                 faults_raised=merged.faults_raised)
            return merged

        return self.env.process(drive_set(), name="faults.set")
