"""The fault injector: drives a campaign against a booted cluster.

One simulation process per scheduled :class:`FaultEvent` sleeps until the
event's time, applies the fault through the hardware/daemon hooks, emits a
``fault.<kind>.raise`` trace point, sleeps the fault's duration, clears it
(``fault.<kind>.clear``), and accounts everything in a
:class:`~repro.faults.campaign.FaultStats`.

The injector touches only public fault hooks:

* ``Link.set_error_rate`` / ``set_down`` / ``set_up``
* ``Switch.set_port_down`` / ``set_port_up``
* ``LANaiProcessor.stall``
* ``VMMCDaemon.crash`` / ``restart``

so it composes with any workload that runs on the same cluster — the chaos
benchmark runs VMMC traffic while the injector pulls cables out.
"""

from __future__ import annotations

from typing import Optional

from repro.sim import Environment, Process
from repro.sim.trace import emit
from repro.obs.metrics import count, observe
from repro.faults.campaign import (
    DAEMON_COLD_CRASH,
    DAEMON_CRASH,
    FaultCampaign,
    FaultEvent,
    FaultStats,
    LANAI_STALL,
    LINK_DOWN,
    LINK_ERROR_BURST,
    SWITCH_PORT_DOWN,
)


class FaultInjector:
    """Applies :class:`FaultCampaign` s to one cluster."""

    def __init__(self, cluster):
        self.cluster = cluster
        self.env: Environment = cluster.env
        self.stats: Optional[FaultStats] = None

    # -- target resolution ---------------------------------------------------
    def _node(self, name: str):
        return self.cluster.node(name)

    def _apply(self, event: FaultEvent) -> None:
        """Raise one fault (instantaneous state flip)."""
        fabric = self.cluster.fabric
        if event.kind == LINK_ERROR_BURST:
            fabric.find_link(event.target).set_error_rate(
                float(event.params["rate"]))
        elif event.kind == LINK_DOWN:
            fabric.find_link(event.target).set_down()
        elif event.kind == SWITCH_PORT_DOWN:
            switch_name, port = event.target.rsplit(":", 1)
            fabric.switches[switch_name].set_port_down(int(port))
        elif event.kind == LANAI_STALL:
            self._node(event.target).nic.processor.stall(event.duration_ns)
        elif event.kind in (DAEMON_CRASH, DAEMON_COLD_CRASH):
            self._node(event.target).daemon.crash()
        else:  # pragma: no cover - FaultEvent validates kinds
            raise ValueError(f"unknown fault kind {event.kind!r}")

    def _clear(self, event: FaultEvent) -> None:
        """Clear one fault (inverse state flip)."""
        fabric = self.cluster.fabric
        if event.kind == LINK_ERROR_BURST:
            fabric.find_link(event.target).clear_error_rate()
        elif event.kind == LINK_DOWN:
            fabric.find_link(event.target).set_up()
        elif event.kind == SWITCH_PORT_DOWN:
            switch_name, port = event.target.rsplit(":", 1)
            fabric.switches[switch_name].set_port_up(int(port))
        elif event.kind == LANAI_STALL:
            pass  # the stall expires on its own inside the processor
        elif event.kind == DAEMON_CRASH:
            self._node(event.target).daemon.restart()
        elif event.kind == DAEMON_COLD_CRASH:
            self._node(event.target).daemon.restart(cold=True)

    # -- execution ------------------------------------------------------------
    def run(self, campaign: FaultCampaign) -> Process:
        """Process: drive the whole campaign; value is its
        :class:`FaultStats`.  One child process per event, so overlapping
        faults on different targets proceed independently."""
        stats = FaultStats(campaign=campaign.name, seed=campaign.seed)
        self.stats = stats

        def drive_one(event: FaultEvent):
            delay = event.at_ns - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            raised_at = self.env.now
            self._apply(event)
            stats.record_raise(event, raised_at)
            count(self.env, "faults.raised", kind=event.kind)
            emit(self.env, f"fault.{event.kind}.raise",
                 target=event.target, duration_ns=event.duration_ns,
                 **event.params)
            if event.duration_ns is None and event.kind != LANAI_STALL:
                return  # permanent fault — never cleared
            yield self.env.timeout(event.duration_ns)
            self._clear(event)
            stats.record_clear(event, raised_at, self.env.now)
            count(self.env, "faults.cleared", kind=event.kind)
            observe(self.env, "faults.duration_ns",
                    self.env.now - raised_at, kind=event.kind)
            emit(self.env, f"fault.{event.kind}.clear", target=event.target)

        def drive_all():
            children = [
                self.env.process(drive_one(event),
                                 name=f"fault.{event.kind}.{event.target}")
                for event in campaign
            ]
            for child in children:
                yield child
            return stats

        return self.env.process(drive_all(),
                                name=f"faults.campaign.{campaign.name}")
