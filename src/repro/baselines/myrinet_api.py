"""Myricom's stock Myrinet API (section 7).

"The Myrinet API supports multi-channel communication, message checksums,
dynamic network configuration and scatter/gather operations; however, it
does not support flow control or reliable message delivery.  On our
hardware platform the Myrinet API has a latency of 63 microseconds for a
4 byte packet and a peak ping-pong bandwidth of ~30 MBytes per second for
an 8 KByte message."

The structure that produces those numbers: a heavyweight user library
(channel demux, software checksums, descriptor rings) on both sides, DMA
from registered memory (scatter/gather, so no send copy), and a mandatory
receive-side copy from the API's receive ring into user data structures.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.sim import Store
from repro.mem.buffers import UserBuffer
from repro.baselines.common import ProtocolPair

#: Per-message library cost on each side: channel lookup, descriptor
#: management, software checksum bookkeeping, completion handling.
TX_OVERHEAD_NS = 27_000
RX_OVERHEAD_NS = 27_000
#: Per-message LANai firmware cost (descriptor fetch + header).
FIRMWARE_NS = 2_400


class MyrinetAPIPair(ProtocolPair):
    """Two nodes talking over the stock API."""

    protocol = "myrinet_api"

    def __init__(self, **kw):
        self._inboxes = None
        self._seq = itertools.count(1)
        super().__init__(**kw)

    def _start_firmware(self) -> None:
        self._inboxes = [Store(self.env), Store(self.env)]
        for node in self.nodes:
            self.env.process(self._recv_loop(node.index),
                             name=f"api.fw{node.index}")

    def _recv_loop(self, index: int):
        node = self.nodes[index]
        while True:
            packet = yield node.nic.net_recv.inbox.get()
            if not packet.meta.get("crc_ok", True):
                continue  # unreliable: silently lost (no recovery)
            # NIC DMAs the packet into the API's pinned receive ring.
            yield node.nic.host_dma.write_host(
                packet.payload, 4096)  # ring slot in low memory
            # Host-side: receive call overhead + copy into user structures.
            yield self.env.timeout(RX_OVERHEAD_NS)
            yield node.membus.bcopy(packet.payload_bytes)
            self._inboxes[index].put(
                (packet.header["seq"], packet.payload_bytes))

    def deliveries(self, dst_index: int) -> Store:
        return self._inboxes[dst_index]

    def send(self, src_index: int, payload_buffer: UserBuffer, nbytes: int):
        node = self.nodes[src_index]

        def run():
            yield self.env.timeout(TX_OVERHEAD_NS)
            # Post a gather descriptor (no copy — memory is registered).
            yield node.bus.mmio_write(4)
            yield node.nic.processor.work_ns(FIRMWARE_NS)
            # LANai fetches the data page-by-page (registered user memory
            # is as scattered as anyone's: 4 KB DMA transfer units).
            fetched = 0
            while fetched < nbytes:
                chunk = min(4096, nbytes - fetched)
                paddr = node.space.translate(
                    payload_buffer.vaddr + (fetched % payload_buffer.nbytes))
                yield node.nic.host_dma.to_sram(paddr, 0, chunk)
                fetched += chunk
            packet = self.make_packet(
                src_index, "api_msg",
                {"seq": next(self._seq), "length": nbytes},
                payload_buffer.read(0, min(nbytes, payload_buffer.nbytes)))
            yield node.nic.net_send.send(packet)

        return self.env.process(run(), name="api.send")
