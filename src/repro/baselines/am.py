"""Active Messages (section 7).

"In Active Messages each communication is formed by a request/reply pair.
Request messages include the address of a handler function at the
destination node and a fixed size payload that is passed as an argument to
the handler.  Notification is done using either waiting for response,
polling or interrupts.  The current implementation of active messages does
not support channels or threads.  Active Messages does not yet run on our
hardware."

Because AM had no numbers on the paper's platform, this model exists for
structural completeness (the section-7 bench reports its figures as
supplementary): request/reply pairs, handler dispatch at the destination,
a small fixed argument payload with a bulk variant (``am_store``) that
moves data into a remote pinned segment.
"""

from __future__ import annotations

import itertools
from typing import Callable

from repro.sim import Store
from repro.mem.buffers import UserBuffer
from repro.baselines.common import ProtocolPair

#: Library cost per request/reply injection.
TX_OVERHEAD_NS = 2_000
#: Handler dispatch at the destination (poll + call).
HANDLER_NS = 3_000
#: Firmware cost per packet.
FIRMWARE_NS = 1_100
#: Bulk fragment size for am_store.
STORE_FRAGMENT = 4096


class ActiveMessagesPair(ProtocolPair):
    """Two single-process nodes running an AM layer."""

    protocol = "am"

    def __init__(self, **kw):
        self._inboxes = None
        self._seq = itertools.count(1)
        self.handlers: list[dict[str, Callable]] = [{}, {}]
        super().__init__(**kw)

    def _start_firmware(self) -> None:
        self._inboxes = [Store(self.env), Store(self.env)]
        self._partial: list[dict[int, int]] = [{}, {}]
        for node in self.nodes:
            self.env.process(self._recv_loop(node.index),
                             name=f"am.fw{node.index}")

    def register_handler(self, index: int, name: str,
                         handler: Callable) -> None:
        self.handlers[index][name] = handler

    def _recv_loop(self, index: int):
        node = self.nodes[index]
        partial = self._partial[index]
        while True:
            packet = yield node.nic.net_recv.inbox.get()
            if not packet.meta.get("crc_ok", True):
                continue
            yield node.nic.processor.work_ns(FIRMWARE_NS)
            yield node.nic.host_dma.write_host(packet.payload, 12288)
            seq = packet.header["seq"]
            got = partial.get(seq, 0) + packet.payload_bytes
            if got < packet.header["msg_length"]:
                partial[seq] = got
                continue
            partial.pop(seq, None)
            yield self.env.timeout(HANDLER_NS)
            handler = self.handlers[index].get(
                packet.header.get("handler", ""))
            if handler is not None:
                result = handler(packet.header.get("args", ()))
                if hasattr(result, "__next__"):
                    yield self.env.process(result)
            self._inboxes[index].put((seq, packet.header["msg_length"]))

    def deliveries(self, dst_index: int) -> Store:
        return self._inboxes[dst_index]

    def send(self, src_index: int, payload_buffer: UserBuffer, nbytes: int):
        """Process: am_store of ``nbytes`` (or a bare request for tiny
        payloads) to the peer."""
        node = self.nodes[src_index]
        seq = next(self._seq)

        def run():
            yield self.env.timeout(TX_OVERHEAD_NS)
            sent = 0
            while sent < nbytes:
                frag = min(STORE_FRAGMENT, nbytes - sent)
                yield node.bus.mmio_write(4)
                yield node.nic.processor.work_ns(FIRMWARE_NS)
                paddr = node.space.translate(
                    payload_buffer.vaddr
                    + (sent % max(1, payload_buffer.nbytes - frag + 1)))
                yield node.nic.host_dma.to_sram(paddr, 0, frag)
                packet = self.make_packet(
                    src_index, "am_request",
                    {"seq": seq, "msg_length": nbytes, "offset": sent,
                     "handler": "store"},
                    payload_buffer.read(0, frag))
                node.nic.net_send.send(packet)
                sent += frag

        return self.env.process(run(), name="am.send")

    def request(self, src_index: int, handler: str, args: tuple = ()):
        """Process: a 4-word AM request invoking ``handler`` remotely."""
        node = self.nodes[src_index]
        seq = next(self._seq)

        def run():
            yield self.env.timeout(TX_OVERHEAD_NS)
            yield node.bus.mmio_write(6)
            yield node.nic.processor.work_ns(FIRMWARE_NS)
            packet = self.make_packet(
                src_index, "am_request",
                {"seq": seq, "msg_length": 16, "offset": 0,
                 "handler": handler, "args": args},
                b"\0" * 16)
            yield node.nic.net_send.send(packet)

        return self.env.process(run(), name="am.request")
