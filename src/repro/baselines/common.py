"""Shared scaffolding for the baseline protocols.

Every baseline runs on the same simulated parts as VMMC: a two-node
single-switch Myrinet with LANai NICs on PCI buses.  A
:class:`ProtocolPair` builds that substrate; each protocol subclass wires
its own firmware loop and exposes ``send``/latency/bandwidth drivers with
a common shape so the section-7 bench can sweep them uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim import Environment, Store
from repro.mem.buffers import UserBuffer
from repro.mem.physical import PhysicalMemory
from repro.mem.virtual import AddressSpace
from repro.hw.bus.membus import MemoryBus
from repro.hw.bus.pci import PCIBus
from repro.hw.lanai.nic import LanaiNIC
from repro.hw.myrinet import topology
from repro.hw.myrinet.packet import MyrinetPacket, PacketHeader


@dataclass
class ProtocolNode:
    """One host running a baseline protocol."""

    name: str
    index: int
    memory: PhysicalMemory
    space: AddressSpace
    bus: PCIBus
    membus: MemoryBus
    nic: LanaiNIC


class ProtocolPair:
    """Two nodes + fabric; subclasses add the protocol firmware."""

    #: Subclasses set a human-readable protocol name.
    protocol = "base"

    def __init__(self, memory_mb: int = 16,
                 env: Environment | None = None):
        self.env = env or Environment()
        self.fabric = topology.build(topology.SingleSwitchSpec(nhosts_=2),
                                     self.env)
        self.nodes: list[ProtocolNode] = []
        for i in range(2):
            name = f"node{i}"
            memory = PhysicalMemory(memory_mb * 1024 * 1024,
                                    reserved_frames=32)
            bus = PCIBus(self.env, name=f"{name}.pci")
            node = ProtocolNode(
                name=name, index=i, memory=memory,
                space=AddressSpace(memory, name=f"{name}.app"),
                bus=bus, membus=MemoryBus(self.env),
                nic=LanaiNIC(self.env, self.fabric, name, bus, memory))
            self.nodes.append(node)
        self.routes = {
            (a.index, b.index): self.fabric.compute_route(a.name, b.name)
            for a in self.nodes for b in self.nodes if a is not b
        }
        self._start_firmware()

    # -- protocol hooks ---------------------------------------------------------
    def _start_firmware(self) -> None:
        """Subclasses start per-NIC firmware processes here."""

    def send(self, src_index: int, payload_buffer: UserBuffer,
             nbytes: int):
        """Process: protocol send of ``nbytes`` to the peer node."""
        raise NotImplementedError

    def deliveries(self, dst_index: int) -> Store:
        """Store of delivered (seq, nbytes) records at the destination."""
        raise NotImplementedError

    # -- shared helpers ------------------------------------------------------------
    def make_packet(self, src_index: int, kind: str, fields: dict,
                    payload) -> MyrinetPacket:
        dst = 1 - src_index
        return MyrinetPacket(list(self.routes[(src_index, dst)]),
                             PacketHeader(kind, fields), payload)

    def alloc(self, index: int, nbytes: int) -> UserBuffer:
        return UserBuffer.alloc(self.nodes[index].space, nbytes)

    # -- uniform measurement drivers -------------------------------------------------
    def pingpong_latency_us(self, size: int, iterations: int = 10) -> float:
        """One-way latency via request/response alternation."""
        env = self.env
        result = {}

        def side_a():
            start = env.now
            buf = self.alloc(0, max(size, 4096))
            inbox = self.deliveries(0)
            for i in range(iterations):
                yield self.send(0, buf, size)
                yield inbox.get()
            result["elapsed"] = env.now - start

        def side_b():
            buf = self.alloc(1, max(size, 4096))
            inbox = self.deliveries(1)
            for i in range(iterations):
                yield inbox.get()
                yield self.send(1, buf, size)

        done = env.process(side_a())
        env.process(side_b())
        env.run(until=done)
        return result["elapsed"] / (2 * iterations) / 1000.0

    def pingpong_bandwidth_mbps(self, size: int,
                                iterations: int = 6) -> float:
        lat_us = self.pingpong_latency_us(size, iterations)
        return size / lat_us if lat_us else 0.0

    def oneway_bandwidth_mbps(self, size: int, iterations: int = 8) -> float:
        """Pipelined one-way stream (PM's 'peak pipelined bandwidth')."""
        env = self.env
        result = {}

        def sender():
            buf = self.alloc(0, max(size, 4096))
            for i in range(iterations):
                yield self.send(0, buf, size)

        def receiver():
            inbox = self.deliveries(1)
            yield inbox.get()
            start = env.now
            for _ in range(iterations - 1):
                yield inbox.get()
            result["elapsed"] = env.now - start

        env.process(sender())
        done = env.process(receiver())
        env.run(until=done)
        return size * (iterations - 1) / result["elapsed"] * 1000.0
