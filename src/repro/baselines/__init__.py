"""Contemporary Myrinet messaging layers (section 7's related work).

Each baseline is implemented over the *same* simulated hardware as VMMC
(PCI bus, LANai NIC, 160 MB/s fabric) with its documented protocol
structure, so the section-7 comparison is apples-to-apples:

* :mod:`myrinet_api` — Myricom's stock API: heavyweight library, buffer
  copies on both sides, no flow control (63 µs latency, ≈30 MB/s).
* :mod:`am` — Active Messages: request/reply pairs carrying a handler
  address; one process per node assumed ("does not yet run on our
  hardware" in the paper — our numbers are supplementary).
* :mod:`fm` — Fast Messages 2.0: programmed-I/O sends of 128-byte
  fragments (no sender-side pinning, PIO-bound bandwidth ≈33 MB/s),
  receive-side handler copies, reliable delivery, no protection.
* :mod:`pm` — PM: preallocated pinned send/receive buffers (8 KB transfer
  units beat the page-size DMA limit: 118 MB/s pipelined, *excluding* the
  sender-side copy), Modified ACK/NACK flow control, gang scheduling
  required for protection.
"""

from repro.baselines.common import ProtocolPair
from repro.baselines.myrinet_api import MyrinetAPIPair
from repro.baselines.am import ActiveMessagesPair
from repro.baselines.fm import FastMessagesPair
from repro.baselines.pm import PMPair

__all__ = [
    "ActiveMessagesPair",
    "FastMessagesPair",
    "MyrinetAPIPair",
    "PMPair",
    "ProtocolPair",
]
