"""PM from the Real World Computing Partnership (section 7).

"In PM's model the user first allocates special send buffer space, then
copies data into the buffer, and finally, sends the buffer contents to the
destination node ...  PM can use transfer size bigger than a page size
because it sends data only from special pre-allocated send buffers.  As a
result, a user must often copy data on sender side before transmitting it.
The cost of this copy is not included in the peak bandwidth number ...  PM
achieves slightly lower latency than VMMC because it allows the current
sender exclusive access to the network interface" (gang scheduling
provides protection; channel state save/restore makes context switches
expensive).

Model highlights:

* send buffers are *physically contiguous* pinned regions, so the NIC can
  DMA 8 KB transfer units — beating the 4 KB page limit that caps VMMC,
  hence 118 vs 98 MB/s pipelined;
* the sender-side copy is parameterised (``include_copy``) so both the
  paper's peak number (copy excluded) and the honest user-to-user number
  (copy included) can be reported;
* exclusive NIC access: no send-queue scanning, immediate pickup —
  slightly lower small-message latency than VMMC (7.2 µs);
* Modified ACK/NACK flow control with a credit window.
"""

from __future__ import annotations

import itertools

from repro.sim import Store
from repro.mem.buffers import UserBuffer
from repro.baselines.common import ProtocolPair

#: PM's transfer unit out of the preallocated send buffer.
TRANSFER_UNIT = 8 * 1024
#: Library cost per send (channel check, descriptor fill).
TX_OVERHEAD_NS = 500
#: Firmware pickup: exclusive access, no scanning.
FIRMWARE_NS = 700
#: Receive-side firmware + credit bookkeeping.
RX_FIRMWARE_NS = 800
#: Flow-control credit window (messages in flight before an ACK is needed).
CREDIT_WINDOW = 16


class PMPair(ProtocolPair):
    """Two gang-scheduled nodes running PM."""

    protocol = "pm"

    def __init__(self, include_copy: bool = False, **kw):
        self.include_copy = include_copy
        self._inboxes = None
        self._seq = itertools.count(1)
        super().__init__(**kw)

    def _start_firmware(self) -> None:
        self._inboxes = [Store(self.env), Store(self.env)]
        self._credits = [CREDIT_WINDOW, CREDIT_WINDOW]
        self._credit_waiters: list[list] = [[], []]
        self._partial: list[dict[int, int]] = [{}, {}]
        for node in self.nodes:
            self.env.process(self._recv_loop(node.index),
                             name=f"pm.fw{node.index}")
        # Preallocated, physically contiguous, pinned send buffers.
        self._send_bufs = []
        for node in self.nodes:
            vaddr = node.space.mmap(256 * 1024, contiguous_physical=True)
            node.space.pin_range(vaddr, 256 * 1024)
            self._send_bufs.append(vaddr)

    def _recv_loop(self, index: int):
        node = self.nodes[index]
        partial = self._partial[index]
        while True:
            packet = yield node.nic.net_recv.inbox.get()
            if not packet.meta.get("crc_ok", True):
                continue
            if packet.header.kind == "pm_ack":
                # An ACK arriving here replenishes *this* node's credits.
                self._grant_credit(index, packet.header["count"])
                continue
            yield node.nic.processor.work_ns(RX_FIRMWARE_NS)
            # DMA into the preallocated pinned receive buffer (contiguous:
            # full transfer-unit DMAs).
            yield node.nic.host_dma.write_host(packet.payload, 16384)
            seq = packet.header["seq"]
            got = partial.get(seq, 0) + packet.payload_bytes
            if got >= packet.header["msg_length"]:
                partial.pop(seq, None)
                self._inboxes[index].put((seq, packet.header["msg_length"]))
                # Modified ACK/NACK: acknowledge received messages in bulk.
                ack = self.make_packet(index, "pm_ack", {"count": 1}, b"")
                self.env.process(self._send_ack(node, ack),
                                 name="pm.ack")
            else:
                partial[seq] = got

    def _send_ack(self, node, ack):
        yield node.nic.net_send.send(ack)

    def _grant_credit(self, index: int, count: int) -> None:
        self._credits[index] += count
        waiters = self._credit_waiters[index]
        while waiters and self._credits[index] > 0:
            self._credits[index] -= 1
            waiters.pop(0).succeed()

    def _take_credit(self, index: int):
        if self._credits[index] > 0:
            self._credits[index] -= 1
            event = self.env.event()
            event.succeed()
            return event
        event = self.env.event()
        self._credit_waiters[index].append(event)
        return event

    def deliveries(self, dst_index: int) -> Store:
        return self._inboxes[dst_index]

    def send(self, src_index: int, payload_buffer: UserBuffer, nbytes: int):
        node = self.nodes[src_index]
        seq = next(self._seq)

        def run():
            yield self.env.timeout(TX_OVERHEAD_NS)
            if self.include_copy:
                # The user copies into the preallocated send buffer — the
                # cost PM's peak number excludes (section 7).
                yield node.membus.bcopy(nbytes)
            yield self._take_credit(src_index)
            yield node.bus.mmio_write(3)  # descriptor: addr, len, doorbell
            sent = 0
            send_vaddr = self._send_bufs[src_index]
            while sent < nbytes:
                unit = min(TRANSFER_UNIT, nbytes - sent)
                yield node.nic.processor.work_ns(FIRMWARE_NS)
                # Contiguous pinned buffer: one DMA per 8 KB unit.
                paddr = node.space.translate(
                    send_vaddr + (sent % (256 * 1024 - unit + 1)))
                yield node.nic.host_dma.to_sram(paddr, 0, unit)
                payload = payload_buffer.read(
                    sent % max(1, payload_buffer.nbytes - unit + 1), unit)
                packet = self.make_packet(
                    src_index, "pm_msg",
                    {"seq": seq, "msg_length": nbytes, "offset": sent},
                    payload)
                # Network injection overlaps the next unit's host DMA (the
                # net-send engine serialises packets in FIFO order).
                node.nic.net_send.send(packet)
                sent += unit

        return self.env.process(run(), name="pm.send")
