"""Illinois Fast Messages 2.0 (section 7).

"FM ... is a user-level communication interface which does not provide
protection, i.e. only one user process per node is assumed ...  FM design
favors low latency ...  The low latency is achieved by using a small
buffer size (128 bytes) and programmed I/O on the sending side.  Using
programmed I/O avoids the need for pinning pages on the sender side.  On
the receiver side, DMA is used to move the message data from the LANai to
the receive buffers, which are located in pinned memory.  The handlers
then copy the data from the receive buffers to the user's data
structures."

Consequences reproduced by this model:

* sends are PIO-bound: 128-byte fragments written one 32-bit word at a
  time across PCI (0.121 µs each) — a hard ≈33 MB/s ceiling;
* small-message latency is excellent (≈11.7 µs at 8 bytes);
* the receiver pays one copy per message (VMMC's zero-copy advantage);
* reliable delivery and a streaming gather/scatter interface, but no
  inter-process protection.
"""

from __future__ import annotations

import itertools

from repro.sim import Store
from repro.mem.buffers import UserBuffer
from repro.baselines.common import ProtocolPair

#: FM fragment (packet) payload size.
FRAGMENT_BYTES = 128
#: Library cost per send call (stream open/close, ordering bookkeeping).
TX_OVERHEAD_NS = 2_200
#: Per-fragment header words written with PIO besides the payload words.
HEADER_WORDS = 2
#: LANai forwarding cost per fragment.
FIRMWARE_NS = 900
#: Host extract()/handler dispatch cost per message.
HANDLER_DISPATCH_NS = 4_500


class FastMessagesPair(ProtocolPair):
    """Two single-process nodes running FM 2.0."""

    protocol = "fm"

    def __init__(self, **kw):
        self._inboxes = None
        self._seq = itertools.count(1)
        super().__init__(**kw)

    def _start_firmware(self) -> None:
        self._inboxes = [Store(self.env), Store(self.env)]
        self._partial: list[dict[int, int]] = [{}, {}]
        self._complete = [Store(self.env), Store(self.env)]
        for node in self.nodes:
            self.env.process(self._recv_loop(node.index),
                             name=f"fm.fw{node.index}")
            self.env.process(self._extract_loop(node.index),
                             name=f"fm.extract{node.index}")

    def _recv_loop(self, index: int):
        """NIC firmware: DMA fragments into the pinned receive region and
        hand complete messages to the host's extract loop (which runs on
        the CPU, concurrently with further fragment DMAs)."""
        node = self.nodes[index]
        partial = self._partial[index]
        while True:
            packet = yield node.nic.net_recv.inbox.get()
            if not packet.meta.get("crc_ok", True):
                continue
            # DMA fragment into the pinned receive region.
            yield node.nic.host_dma.write_host(packet.payload, 8192)
            seq = packet.header["seq"]
            got = partial.get(seq, 0) + packet.payload_bytes
            if got >= packet.header["msg_length"]:
                partial.pop(seq, None)
                self._complete[index].put((seq, packet.header["msg_length"]))
            else:
                partial[seq] = got

    def _extract_loop(self, index: int):
        """Host side: fm_extract() dispatches handlers, which copy the
        data from the pinned receive buffers to user structures."""
        node = self.nodes[index]
        while True:
            seq, length = yield self._complete[index].get()
            yield self.env.timeout(HANDLER_DISPATCH_NS)
            yield node.membus.bcopy(length)
            self._inboxes[index].put((seq, length))

    def deliveries(self, dst_index: int) -> Store:
        return self._inboxes[dst_index]

    def send(self, src_index: int, payload_buffer: UserBuffer, nbytes: int):
        """Process: FM_send — PIO-copy 128 B fragments into the NIC."""
        node = self.nodes[src_index]
        seq = next(self._seq)

        def run():
            yield self.env.timeout(TX_OVERHEAD_NS)
            sent = 0
            while sent < nbytes:
                frag = min(FRAGMENT_BYTES, nbytes - sent)
                words = HEADER_WORDS + (frag + 3) // 4
                # The defining cost: every payload word crosses the PCI
                # bus as a programmed-I/O write.  No pinning needed.
                yield node.bus.mmio_write(words)
                payload = payload_buffer.read(
                    sent % max(1, payload_buffer.nbytes - frag + 1), frag)
                packet = self.make_packet(
                    src_index, "fm_frag",
                    {"seq": seq, "msg_length": nbytes, "offset": sent},
                    payload)
                # LANai forwarding overlaps the host's PIO of the next
                # fragment; the send engine keeps fragments in order.
                self.env.process(self._forward(node, packet),
                                 name="fm.fw_send")
                sent += frag

        return self.env.process(run(), name="fm.send")

    def _forward(self, node, packet):
        yield node.nic.processor.work_ns(FIRMWARE_NS)
        yield node.nic.net_send.send(packet)
