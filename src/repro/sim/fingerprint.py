"""Canonical fingerprints of simulation outputs, for engine differencing.

The differential harness (``tests/test_sim_differential.py``, ``python -m
repro engine-diff``) runs the same workload on the scalar and vector
engines and must decide "bit-identical or not" over three kinds of
output: event traces (:class:`~repro.sim.trace.Tracer`), metrics
snapshots, and JSON-serializable trial reports.  This module gives each
a canonical form:

* :func:`trace_fingerprint` — digest of every trace record (time,
  category, payload) in order, plus the record/drop counts;
* :func:`value_fingerprint` — digest of any JSON-serializable value via
  a sorted-keys, exact-float canonical dump;
* :func:`diff_values` — when digests disagree, the first few *paths*
  where two structures diverge, so a CI failure names the divergent
  metric instead of two opaque hashes.

Hashes are sha256 over a deterministic byte serialization — no
repr()-of-floats ambiguity: floats are serialized via ``float.hex`` so
equality means bit equality.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Iterator

from repro.sim.trace import Tracer

__all__ = ["canonical_json", "value_fingerprint", "trace_fingerprint",
           "trace_payload", "diff_values"]


def _canon(value: Any) -> Any:
    """Reduce a value to canonically-serializable primitives.

    Floats become their hex form (exact, so 0.1 + 0.2 != 0.3 survives
    the round trip); ints that numpy handed us become Python ints;
    bytes become hex strings; tuples become lists.
    """
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, float):
        return {"~f": value.hex()}
    if isinstance(value, int):
        return int(value)
    if isinstance(value, (bytes, bytearray)):
        return {"~b": bytes(value).hex()}
    if isinstance(value, dict):
        return {str(k): _canon(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    if hasattr(value, "item") and not hasattr(value, "__len__"):
        return _canon(value.item())        # numpy scalar
    if hasattr(value, "tolist"):
        return _canon(value.tolist())      # numpy array
    return {"~r": repr(value)}


def canonical_json(value: Any) -> str:
    """Deterministic JSON text for ``value`` (sorted keys, exact floats)."""
    return json.dumps(_canon(value), sort_keys=True, separators=(",", ":"))


def value_fingerprint(value: Any) -> str:
    """sha256 hex digest of :func:`canonical_json` of ``value``."""
    return hashlib.sha256(canonical_json(value).encode()).hexdigest()


def trace_payload(tracer: Tracer) -> dict[str, Any]:
    """A tracer reduced to a JSON-serializable structure (records in
    arrival order, plus the drop accounting)."""
    return {
        "records": [[r.time, r.category, _canon(r.payload)]
                    for r in tracer.records],
        "dropped": tracer.dropped,
    }


def trace_fingerprint(tracer: Tracer) -> str:
    """sha256 hex digest of the full ordered trace."""
    return value_fingerprint(trace_payload(tracer))


def _walk_diffs(a: Any, b: Any, path: str) -> Iterator[tuple[str, Any, Any]]:
    if type(a) is not type(b):
        yield (path, a, b)
        return
    if isinstance(a, dict):
        for key in sorted(set(a) | set(b), key=str):
            here = f"{path}.{key}" if path else str(key)
            if key not in a:
                yield (here, "<missing>", b[key])
            elif key not in b:
                yield (here, a[key], "<missing>")
            else:
                yield from _walk_diffs(a[key], b[key], here)
    elif isinstance(a, list):
        if len(a) != len(b):
            yield (f"{path}.length", len(a), len(b))
        for i, (x, y) in enumerate(zip(a, b)):
            yield from _walk_diffs(x, y, f"{path}[{i}]")
    elif a != b:
        yield (path, a, b)


def diff_values(a: Any, b: Any, limit: int = 20) -> list[tuple[str, Any, Any]]:
    """First ``limit`` paths where two structures differ (after
    canonicalization).  Empty list means identical."""
    out = []
    for entry in _walk_diffs(_canon(a), _canon(b), ""):
        out.append(entry)
        if len(out) >= limit:
            break
    return out
