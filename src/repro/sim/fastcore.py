"""The vector engine: a drop-in fast path for :class:`~repro.sim.core.Environment`.

``VectorEnvironment`` keeps the scalar engine's event model byte for byte
— same heap, same ``(time, priority, seq)`` total order, same callback
semantics — and buys its speed from two mechanical changes:

* **an inlined drain loop** — :meth:`VectorEnvironment.run` fuses
  ``while queue: step()`` into one frame, eliminating a Python method
  call, an attribute reload and a bounds re-check per event.  This is
  where the dominant Timeout→resume→Timeout chains of the LANai, DMA and
  link pipelines spend their time; the chain itself cannot be elided
  (user generator code runs between the timeouts) but its per-event
  engine tax can.
* **array-backed deadline rings** — :meth:`Environment.timeout_batch`
  populations stay in numpy.  Where the scalar oracle materialises one
  heap entry per member, the vector engine reserves the member sequence
  block arithmetically and pushes **one** group entry per distinct
  expiry timestamp, at exactly the heap position the oracle's last group
  member would occupy.  A thousand same-tick DMA completion deadlines
  cost one pop instead of a thousand.

An earlier prototype replaced the heap with a literal calendar queue
(dict-of-buckets, rotating cursor); measured on this repo's workloads it
was *slower* than CPython's C ``heapq`` (0.2–0.8x) because the bucket
bookkeeping is pure-Python bytecode.  The lesson is recorded in
DESIGN.md: in a Python DES the win is fewer bytecodes per event, not a
better asymptotic queue — hence batching (fewer pops) and inlining
(cheaper pops), with the heap kept as the ordering ground truth.  That
choice is also what makes bit-identity with the oracle a structural
property rather than a testing aspiration: both engines push through the
same ``_schedule`` and pop the same tuples.

Selection is ``Environment(engine="vector")`` or
``REPRO_SIM_ENGINE=vector``; see :func:`repro.sim.core.resolve_engine`.
The differential harness (``tests/test_sim_differential.py``) replays
the chaos, fig3, DSM-smoke and fabric-smoke workloads on both engines
and asserts identical traces, metrics and artifacts.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from repro.sim.core import (_PENDING, BatchTimeout, Environment, Event,
                            SimulationError, _batch_groups)

__all__ = ["VectorEnvironment"]


class _BatchGroup(Event):
    """One heap entry standing in for a same-timestamp batch-member group.

    Never exposed to user code: it is pushed directly onto the queue at
    the position of its group's last member and exists only to run the
    group's fire action when popped.
    """

    __slots__ = ()


class VectorEnvironment(Environment):
    """Vectorized engine; see the module docstring for the design.

    Everything not overridden here — scheduling, ``step()``, ``peek()``,
    event factories, process semantics — is inherited verbatim from the
    scalar engine, which is the point: the engines differ only in how
    fast they drain the queue, never in what order.
    """

    engine = "vector"

    # -- batched deadline rings -------------------------------------------
    def _arm_batch(self, batch: BatchTimeout, members: Any,
                   on_fire: Optional[Callable[[int, Any], None]]) -> None:
        """Vector batch arming: one heap entry per distinct timestamp.

        The scalar oracle creates members in index order, so member ``i``
        gets sequence number ``start + i``; a group therefore sits in the
        total order at the seq of its last member.  We reproduce that
        arithmetically: reserve the whole block from the counter, then
        push one group event at ``start + indices[-1]``.
        """
        start = next(self._seq)
        self._seq = itertools.count(start + batch.total)
        push, queue, prio = heapq.heappush, self._queue, self.PRIORITY_NORMAL
        for when, indices in _batch_groups(self._now, members):
            group = _BatchGroup(self)
            group._scheduled = True
            group.callbacks.append(
                lambda _ev, w=when, ix=indices:
                    self._batch_group_fired(batch, w, ix, on_fire))
            push(queue, (when, prio, start + int(indices[-1]), group))

    def _batch_group_fired(self, batch: BatchTimeout, when: int, indices: Any,
                           on_fire: Optional[Callable[[int, Any], None]],
                           ) -> None:
        # The pop itself counted one event; the rest of the group's
        # members are accounted here, so events_processed totals match
        # the oracle's one-pop-per-member count at every point foreign
        # code can observe (member seq blocks are contiguous, so no
        # foreign event interleaves a partially-counted group).
        self.events_processed += len(indices) - 1
        batch._group_fired(when, indices, on_fire)

    # -- inlined drain loop -------------------------------------------------
    def run(self, until: Optional[Any] = None) -> Any:
        """Scalar :meth:`Environment.run` semantics, one frame, no calls.

        The body of :meth:`Environment.step` is fused into each loop so
        the per-event cost is a heappop, a callback dispatch and the
        unobserved-failure check — nothing else.  ``events_processed``
        is bumped per pop (not batched locally) so callbacks observe the
        same counts they would under the oracle.
        """
        queue = self._queue
        pop = heapq.heappop
        if isinstance(until, Event):
            stop = until
            while queue and stop.callbacks is not None:
                when, _prio, _seq, event = pop(queue)
                self._now = when
                self.events_processed += 1
                callbacks = event.callbacks
                event.callbacks = None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused and not callbacks:
                    raise event._value
            if stop._value is _PENDING:
                raise SimulationError(
                    f"run(until={stop!r}): queue drained before it fired "
                    f"(deadlock at t={self._now} ns?)")
            if stop._ok:
                return stop._value
            stop._defused = True
            raise stop._value
        deadline = None if until is None else int(until)
        while queue:
            if deadline is not None and queue[0][0] > deadline:
                self._now = deadline
                return None
            when, _prio, _seq, event = pop(queue)
            self._now = when
            self.events_processed += 1
            callbacks = event.callbacks
            event.callbacks = None
            for callback in callbacks:
                callback(event)
            if not event._ok and not event._defused and not callbacks:
                raise event._value
        if deadline is not None:
            self._now = deadline
        return None
