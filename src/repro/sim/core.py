"""Core of the discrete-event engine: clock, events, processes.

Time is an integer number of **nanoseconds**.  All hardware cost models in
:mod:`repro.hw` produce integer nanosecond durations, so simulations are
exactly reproducible and there is no floating-point event-ordering jitter.

Events at the same timestamp are processed in FIFO scheduling order (a
monotonically increasing sequence number breaks ties), which matches the
intuition that a cause scheduled earlier fires earlier.

Two engines share this event model (see DESIGN.md, "Two engines, one
contract"):

* the **scalar** engine — this module's :class:`Environment`, one heap
  pop and one callback dispatch per event.  It is the *correctness
  oracle*: deliberately simple, every event individually materialised.
* the **vector** engine — :class:`repro.sim.fastcore.VectorEnvironment`,
  a drop-in subclass that keeps the identical ``(time, priority, seq)``
  total order but drains the queue in an inlined loop and processes
  homogeneous deadline populations (:meth:`Environment.timeout_batch`)
  as numpy array rings, one pop per *distinct timestamp* instead of one
  per member.

``Environment(engine="vector")`` — or ``REPRO_SIM_ENGINE=vector`` in the
environment — selects the engine at construction; everything downstream
(cluster boot, benches, campaigns, the CLI) goes through this switch.
The differential harness (``tests/test_sim_differential.py``) holds the
two engines to bit-identical traces, metrics and artifacts.
"""

from __future__ import annotations

import heapq
import itertools
import os
from typing import Any, Callable, Generator, Iterable, Optional, Sequence

#: Environment variable consulted when no explicit ``engine=`` is given.
ENGINE_ENV_VAR = "REPRO_SIM_ENGINE"
#: The engines ``Environment(engine=...)`` accepts.
ENGINES = ("scalar", "vector")


def resolve_engine(engine: Optional[str] = None) -> str:
    """The engine to use: explicit argument, else $REPRO_SIM_ENGINE,
    else ``"scalar"``.  Raises :class:`SimulationError` on unknown names
    (including a bad environment variable, so typos fail loudly)."""
    value = engine or os.environ.get(ENGINE_ENV_VAR) or "scalar"
    if value not in ENGINES:
        source = ("engine argument" if engine
                  else f"${ENGINE_ENV_VAR}")
        raise SimulationError(
            f"unknown simulation engine {value!r} (from {source}); "
            f"expected one of {ENGINES}")
    return value

#: One nanosecond (the base unit of simulated time).
NS = 1
#: One microsecond in nanoseconds.
US = 1_000
#: One millisecond in nanoseconds.
MS = 1_000_000
#: One second in nanoseconds.
SEC = 1_000_000_000


def us(value: float) -> int:
    """Convert microseconds (possibly fractional) to integer nanoseconds."""
    return int(round(value * US))


def ns_to_us(value: int) -> float:
    """Convert integer nanoseconds to (float) microseconds."""
    return value / US


class SimulationError(RuntimeError):
    """Raised for misuse of the engine (double triggering, bad yields...)."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries whatever object the interrupter passed;
    the VMMC LCP uses this to preempt its tight sending loop when an
    incoming packet arrives (paper section 5.3).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Sentinel distinguishing "not yet triggered" from "triggered with None".
_PENDING = object()


class Event:
    """A one-shot occurrence that processes may wait on.

    An event is *triggered* once, either successfully (:meth:`succeed`) with
    an optional value, or unsuccessfully (:meth:`fail`) with an exception.
    Callbacks attached before triggering run when the environment processes
    the event; callbacks attached afterwards run immediately.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_scheduled", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok = True
        self._scheduled = False
        self._defused = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been given a value (or an exception)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        if not self.triggered:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event was triggered with."""
        if self._value is _PENDING:
            raise SimulationError("event not yet triggered")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        A waiting process receives the exception via ``throw``.  If nobody
        ever waits on a failed event the environment re-raises it when the
        event is processed, so programming errors cannot vanish silently —
        unless :meth:`defuse` was called.
        """
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another event (chaining)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.defused_fail(event._value)

    def defuse(self) -> None:
        """Mark a failed event as handled so it will not escalate."""
        self._defused = True

    def defused_fail(self, exception: BaseException) -> "Event":
        """Fail, pre-defused (used internally for chained failures)."""
        self.fail(exception)
        self._defused = True
        return self

    # -- composition -------------------------------------------------------
    def __and__(self, other: "Event") -> "Event":
        from repro.sim.conditions import AllOf

        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "Event":
        from repro.sim.conditions import AnyOf

        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` nanoseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: int, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        super().__init__(env)
        self.delay = int(delay)
        self._ok = True
        self._value = value
        env._schedule(self, delay=self.delay)


class BatchTimeout(Event):
    """A homogeneous population of member deadlines, waited on as one.

    Created by :meth:`Environment.timeout_batch`.  Semantically the batch
    is ``len(delays)`` anonymous member timeouts (the pre-vectorization
    shape of slot-ring deadlines, DMA-completion timers and link-hop
    arrivals): each member expires ``delays[i]`` ns from creation, and
    the members have **no individually observable effect**.  The
    observable contract, identical on both engines:

    * ``on_fire(when, indices)`` runs once per *distinct* expiry
      timestamp, at the queue position of that group's **last** member
      (``indices`` is the member-index array for the group, in creation
      order, as an ``int64`` ndarray);
    * the batch event itself succeeds with the member count once every
      member has expired;
    * every member counts toward :attr:`Environment.events_processed`.

    The scalar engine materialises one real :class:`Timeout` per member
    (the oracle path); the vector engine keeps the population in numpy
    arrays and pops one group per distinct timestamp.  The differential
    harness holds the two to identical observable behaviour.
    """

    __slots__ = ("total", "fired")

    def __init__(self, env: "Environment"):
        super().__init__(env)
        self.total = 0
        self.fired = 0

    def _group_fired(self, when: int, indices, on_fire) -> None:
        if on_fire is not None:
            on_fire(when, indices)
        self.fired += len(indices)
        if self.fired == self.total:
            self.succeed(self.total)


def _batch_groups(now: int, delays) -> list[tuple[int, Any]]:
    """Group member deadlines by absolute expiry time.

    Returns ``[(when, indices), ...]`` in ascending ``when`` order, with
    ``indices`` the member indices expiring then, in creation order
    (guaranteed by the stable sort).  Shared by both engines so the
    grouping — and therefore ``on_fire``'s arguments — is identical.
    """
    import numpy as np

    times = now + delays
    order = np.argsort(times, kind="stable")
    sorted_times = times[order]
    starts = np.flatnonzero(
        np.concatenate(([True], sorted_times[1:] != sorted_times[:-1])))
    bounds = list(starts) + [len(sorted_times)]
    return [(int(sorted_times[bounds[g]]), order[bounds[g]:bounds[g + 1]])
            for g in range(len(starts))]


class Initialize(Event):
    """Internal event that starts a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        env._schedule(self)


class Process(Event):
    """Wraps a generator; the process is also an event that fires when the
    generator returns (with its return value) or raises.

    Processes yield events to wait for them; the event's value becomes the
    result of the ``yield`` expression.  Yielding a failed event re-raises
    the exception inside the generator.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: "Environment", generator: Generator,
                 name: str = ""):
        if not hasattr(generator, "throw"):
            raise SimulationError(
                f"process requires a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished {self!r}")
        interruption = Event(self.env)
        interruption._ok = False
        interruption._value = Interrupt(cause)
        interruption._defused = True
        interruption.callbacks.append(self._resume)
        self.env._schedule(interruption, priority=Environment.PRIORITY_URGENT)

    def _resume(self, event: Event) -> None:
        self.env._active_process = self
        while True:
            if event._ok:
                try:
                    target = self._generator.send(event._value)
                except StopIteration as exc:
                    self._finish_ok(exc.value)
                    break
                except BaseException as exc:
                    self._finish_fail(exc)
                    break
            else:
                # Deliver the failure into the generator.
                event._defused = True
                try:
                    target = self._generator.throw(event._value)
                except StopIteration as exc:
                    self._finish_ok(exc.value)
                    break
                except BaseException as exc:
                    if exc is event._value:
                        # The generator did not handle it; propagate as our
                        # own failure rather than crashing the engine.
                        self._finish_fail(exc)
                        break
                    self._finish_fail(exc)
                    break
            if not isinstance(target, Event):
                exc = SimulationError(
                    f"process {self.name!r} yielded non-event {target!r}")
                try:
                    self._generator.throw(exc)
                except StopIteration as stop:
                    self._finish_ok(stop.value)
                except BaseException as raised:
                    self._finish_fail(raised)
                break
            if target.processed:
                # Already fired: loop immediately with its value.
                event = target
                continue
            target.callbacks.append(self._resume)
            self._target = target
            break
        self.env._active_process = None

    def _finish_ok(self, value: Any) -> None:
        self._target = None
        if not self.triggered:
            self.succeed(value)

    def _finish_fail(self, exc: BaseException) -> None:
        self._target = None
        if not self.triggered:
            self._ok = False
            self._value = exc
            self.env._schedule(self)


class Environment:
    """Simulation clock plus event queue.

    Usage::

        env = Environment()

        def ping():
            yield env.timeout(5 * US)
            return "done"

        proc = env.process(ping())
        env.run()
        assert proc.value == "done"
    """

    #: Priority used for interrupts so they beat same-time normal events.
    PRIORITY_URGENT = 0
    #: Default scheduling priority.
    PRIORITY_NORMAL = 1

    #: Which engine this class implements (subclasses override).
    engine = "scalar"

    def __new__(cls, initial_time: int = 0, tracer: Optional[Any] = None,
                engine: Optional[str] = None) -> "Environment":
        # ``Environment(...)`` is the single engine switch: it hands back
        # a VectorEnvironment when asked (explicitly or via
        # $REPRO_SIM_ENGINE), so every existing construction site gets
        # engine selection for free.  Direct subclass construction
        # (VectorEnvironment(), test doubles) bypasses the dispatch.
        if cls is Environment and resolve_engine(engine) == "vector":
            from repro.sim.fastcore import VectorEnvironment

            return super().__new__(VectorEnvironment)
        return super().__new__(cls)

    def __init__(self, initial_time: int = 0, tracer: Optional[Any] = None,
                 engine: Optional[str] = None):
        if engine is not None and resolve_engine(engine) != self.engine:
            raise SimulationError(
                f"{type(self).__name__} is the {self.engine!r} engine; "
                f"cannot construct it with engine={engine!r}")
        self._now = int(initial_time)
        self._queue: list[tuple[int, int, int, Event]] = []
        self._seq = itertools.count()
        self._active_process: Optional[Process] = None
        self.tracer = tracer
        #: Events popped so far (batch members count individually), the
        #: numerator of the simcore campaign's events/sec metric.
        self.events_processed = 0

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def now_us(self) -> float:
        """Current simulated time in microseconds."""
        return self._now / US

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- event factories -----------------------------------------------------
    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` ns from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def timeout_batch(self, delays: Sequence[int],
                      on_fire: Optional[Callable[[int, Any], None]] = None,
                      ) -> BatchTimeout:
        """Arm a population of anonymous deadlines as one batch.

        ``delays`` is a 1-D sequence (or ndarray) of non-negative integer
        nanosecond delays, one per member.  See :class:`BatchTimeout` for
        the observable contract.  An empty batch succeeds immediately
        with value 0.
        """
        import numpy as np

        members = np.asarray(delays, dtype=np.int64)
        if members.ndim != 1:
            raise SimulationError(
                f"timeout_batch delays must be 1-D, got shape {members.shape}")
        if members.size and int(members.min()) < 0:
            raise SimulationError(
                f"negative delay {int(members.min())} in timeout_batch")
        batch = BatchTimeout(self)
        batch.total = int(members.size)
        if not members.size:
            batch.succeed(0)
            return batch
        self._arm_batch(batch, members, on_fire)
        return batch

    def _arm_batch(self, batch: BatchTimeout, members: Any,
                   on_fire: Optional[Callable[[int, Any], None]]) -> None:
        """Scalar (oracle) batch arming: one real Timeout per member.

        Timeouts are created in member-index order so they consume
        sequence numbers 0..n-1 of the block — the property the vector
        engine reproduces arithmetically.  The group action rides on the
        group's last member; earlier members are plain no-op pops.
        """
        fire_at = {}
        for when, indices in _batch_groups(self._now, members):
            fire_at[int(indices[-1])] = (when, indices)
        for i in range(batch.total):
            member = Timeout(self, int(members[i]))
            group = fire_at.get(i)
            if group is not None:
                when, indices = group
                member.callbacks.append(
                    lambda _ev, w=when, ix=indices:
                        batch._group_fired(w, ix, on_fire))

    def all_of(self, events: Iterable[Event]) -> Event:
        from repro.sim.conditions import AllOf

        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> Event:
        from repro.sim.conditions import AnyOf

        return AnyOf(self, list(events))

    # -- scheduling / execution ---------------------------------------------
    def _schedule(self, event: Event, delay: int = 0,
                  priority: int = PRIORITY_NORMAL) -> None:
        if event._scheduled:
            raise SimulationError(f"{event!r} scheduled twice")
        event._scheduled = True
        heapq.heappush(
            self._queue, (self._now + delay, priority, next(self._seq), event))

    def peek(self) -> Optional[int]:
        """Time of the next scheduled event, or None if the queue is empty."""
        return self._queue[0][0] if self._queue else None

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise SimulationError("step() on empty event queue")
        when, _prio, _seq, event = heapq.heappop(self._queue)
        self._now = when
        self.events_processed += 1
        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused and not callbacks:
            # A failure nobody observed: escalate so bugs surface.
            raise event._value

    def run(self, until: Optional[Any] = None) -> Any:
        """Run until the queue drains, a deadline passes, or an event fires.

        ``until`` may be ``None`` (drain the queue), an integer time in
        nanoseconds, or an :class:`Event` — in which case its value is
        returned (or its exception raised).
        """
        if isinstance(until, Event):
            stop = until
            while self._queue:
                if stop.processed:
                    break
                self.step()
            if not stop.triggered:
                raise SimulationError(
                    f"run(until={stop!r}): queue drained before it fired "
                    f"(deadlock at t={self._now} ns?)")
            if stop._ok:
                return stop._value
            stop._defused = True
            raise stop._value
        deadline = None if until is None else int(until)
        while self._queue:
            if deadline is not None and self._queue[0][0] > deadline:
                self._now = deadline
                return None
            self.step()
        if deadline is not None:
            self._now = deadline
        return None
