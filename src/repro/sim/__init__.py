"""Discrete-event simulation engine.

This package is the foundation of the whole reproduction: every piece of
simulated hardware (buses, DMA engines, Myrinet links, the LANai processor)
and software (the VMMC LCP, drivers, daemons, user processes) runs as a
generator-based :class:`~repro.sim.core.Process` over a shared
:class:`~repro.sim.core.Environment`.

The engine is deliberately SimPy-like (processes yield events) but written
from scratch, with integer-nanosecond time to keep event ordering exact and
reproducible.

Public surface
--------------

* :class:`Environment` — event queue and clock.
* :class:`Event`, :class:`Timeout`, :class:`Process` — core event types.
* :class:`AllOf`, :class:`AnyOf` — condition events.
* :class:`Interrupt` — exception thrown into interrupted processes.
* :class:`Resource`, :class:`PriorityResource` — capacity-limited resources.
* :class:`Store` — FIFO object queue (used for DMA request queues, NIC
  packet queues, daemon mailboxes...).
* Time helpers: :data:`NS`, :data:`US`, :data:`MS`, :data:`SEC`,
  :func:`us`, :func:`ns_to_us`.
"""

from repro.sim.core import (
    NS,
    US,
    MS,
    SEC,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
    ns_to_us,
    us,
)
from repro.sim.conditions import AllOf, AnyOf
from repro.sim.resources import PriorityResource, Resource, Store
from repro.sim.trace import TraceRecord, Tracer, TracerOverflowWarning

__all__ = [
    "NS",
    "US",
    "MS",
    "SEC",
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "PriorityResource",
    "Process",
    "Resource",
    "SimulationError",
    "Store",
    "Timeout",
    "TraceRecord",
    "Tracer",
    "TracerOverflowWarning",
    "ns_to_us",
    "us",
]
