"""Discrete-event simulation engine.

This package is the foundation of the whole reproduction: every piece of
simulated hardware (buses, DMA engines, Myrinet links, the LANai processor)
and software (the VMMC LCP, drivers, daemons, user processes) runs as a
generator-based :class:`~repro.sim.core.Process` over a shared
:class:`~repro.sim.core.Environment`.

The engine is deliberately SimPy-like (processes yield events) but written
from scratch, with integer-nanosecond time to keep event ordering exact and
reproducible.

Public surface
--------------

* :class:`Environment` — event queue and clock.
* :class:`Event`, :class:`Timeout`, :class:`Process` — core event types.
* :class:`AllOf`, :class:`AnyOf` — condition events.
* :class:`Interrupt` — exception thrown into interrupted processes.
* :class:`Resource`, :class:`PriorityResource` — capacity-limited resources.
* :class:`Store` — FIFO object queue (used for DMA request queues, NIC
  packet queues, daemon mailboxes...).
* Time helpers: :data:`NS`, :data:`US`, :data:`MS`, :data:`SEC`,
  :func:`us`, :func:`ns_to_us`.

Two engines implement this surface (see DESIGN.md): the scalar oracle in
:mod:`repro.sim.core` and the vectorized fast path in
:mod:`repro.sim.fastcore`.  ``Environment(engine="scalar"|"vector")`` —
or the ``REPRO_SIM_ENGINE`` environment variable — picks one;
:func:`resolve_engine` is the resolution rule.
"""

from repro.sim.core import (
    ENGINE_ENV_VAR,
    ENGINES,
    NS,
    US,
    MS,
    SEC,
    BatchTimeout,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
    ns_to_us,
    resolve_engine,
    us,
)
from repro.sim.fastcore import VectorEnvironment
from repro.sim.conditions import AllOf, AnyOf
from repro.sim.resources import PriorityResource, Resource, Store
from repro.sim.trace import TraceRecord, Tracer, TracerOverflowWarning

__all__ = [
    "ENGINE_ENV_VAR",
    "ENGINES",
    "NS",
    "US",
    "MS",
    "SEC",
    "AllOf",
    "AnyOf",
    "BatchTimeout",
    "Environment",
    "Event",
    "Interrupt",
    "PriorityResource",
    "Process",
    "Resource",
    "SimulationError",
    "Store",
    "Timeout",
    "TraceRecord",
    "Tracer",
    "TracerOverflowWarning",
    "VectorEnvironment",
    "ns_to_us",
    "resolve_engine",
    "us",
]
