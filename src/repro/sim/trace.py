"""Lightweight event tracing for debugging and instrumentation.

Hardware and protocol modules emit named trace points (e.g.
``lanai.send.pickup``, ``pci.dma.start``) through the environment's tracer.
Tests assert on trace sequences; the benchmark harness uses traces to break
latency into the per-stage costs reported in section 5.2 of the paper, and
:mod:`repro.obs.perfetto` converts a tracer into a Chrome/Perfetto trace.

Limit semantics
---------------
A tracer constructed with ``limit=N`` keeps the **first N** records that
pass the ``keep`` filter.  Records arriving after the cap are *not*
silently discarded: each one increments :attr:`Tracer.dropped`, and the
first drop emits a one-time :class:`TracerOverflowWarning` so a truncated
trace never masquerades as a complete one.  Records rejected by the
``keep`` filter are *filtered*, not dropped — they do not count.
The Perfetto exporter carries ``dropped`` into the output document's
metadata for the same reason.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional


class TracerOverflowWarning(RuntimeWarning):
    """Emitted (once per tracer) when records are dropped at the limit."""


@dataclass(frozen=True)
class TraceRecord:
    """One trace point: time, category string, free-form payload."""

    time: int
    category: str
    payload: dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceRecord({self.time}ns, {self.category}, {self.payload})"


class Tracer:
    """Collects :class:`TraceRecord` objects, optionally filtered.

    A ``None``/absent tracer is the common (fast) case: emitters call
    :func:`emit` below, which no-ops when the environment has no tracer.

    See the module docstring for the semantics of ``limit``: records past
    it are counted in :attr:`dropped` and warned about once, never lost
    silently.
    """

    def __init__(self, keep: Optional[Callable[[str], bool]] = None,
                 limit: Optional[int] = None):
        self.records: list[TraceRecord] = []
        self._keep = keep
        self._limit = limit
        #: Records that passed the filter but were discarded at the limit.
        self.dropped = 0
        self._warned = False

    def record(self, time: int, category: str, **payload: Any) -> None:
        if self._keep is not None and not self._keep(category):
            return
        if self._limit is not None and len(self.records) >= self._limit:
            self.dropped += 1
            if not self._warned:
                self._warned = True
                warnings.warn(
                    f"tracer limit of {self._limit} records reached; "
                    f"further records are being counted in "
                    f"Tracer.dropped, not stored",
                    TracerOverflowWarning, stacklevel=2)
            return
        self.records.append(TraceRecord(time, category, payload))

    def clear(self) -> None:
        """Discard stored records and reset the drop accounting."""
        self.records.clear()
        self.dropped = 0
        self._warned = False

    def by_category(self, prefix: str) -> list[TraceRecord]:
        """All records whose category starts with ``prefix``."""
        return [r for r in self.records if r.category.startswith(prefix)]

    def categories(self) -> list[str]:
        return [r.category for r in self.records]

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)


def emit(env: Any, category: str, **payload: Any) -> None:
    """Emit a trace point if ``env`` carries a tracer (no-op otherwise)."""
    tracer = getattr(env, "tracer", None)
    if tracer is not None:
        tracer.record(env.now, category, **payload)
