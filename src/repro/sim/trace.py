"""Lightweight event tracing for debugging and instrumentation.

Hardware and protocol modules emit named trace points (e.g.
``lanai.send.pickup``, ``pci.dma.start``) through the environment's tracer.
Tests assert on trace sequences; the benchmark harness uses traces to break
latency into the per-stage costs reported in section 5.2 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One trace point: time, category string, free-form payload."""

    time: int
    category: str
    payload: dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceRecord({self.time}ns, {self.category}, {self.payload})"


class Tracer:
    """Collects :class:`TraceRecord` objects, optionally filtered.

    A ``None``/absent tracer is the common (fast) case: emitters call
    :func:`emit` below, which no-ops when the environment has no tracer.
    """

    def __init__(self, keep: Optional[Callable[[str], bool]] = None,
                 limit: Optional[int] = None):
        self.records: list[TraceRecord] = []
        self._keep = keep
        self._limit = limit

    def record(self, time: int, category: str, **payload: Any) -> None:
        if self._keep is not None and not self._keep(category):
            return
        if self._limit is not None and len(self.records) >= self._limit:
            return
        self.records.append(TraceRecord(time, category, payload))

    def clear(self) -> None:
        self.records.clear()

    def by_category(self, prefix: str) -> list[TraceRecord]:
        """All records whose category starts with ``prefix``."""
        return [r for r in self.records if r.category.startswith(prefix)]

    def categories(self) -> list[str]:
        return [r.category for r in self.records]

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)


def emit(env: Any, category: str, **payload: Any) -> None:
    """Emit a trace point if ``env`` carries a tracer (no-op otherwise)."""
    tracer = getattr(env, "tracer", None)
    if tracer is not None:
        tracer.record(env.now, category, **payload)
