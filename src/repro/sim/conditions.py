"""Condition events: wait for all/any of a set of events.

The value of a fired condition is a dict mapping each *fired* constituent
event to its value, in firing order (dicts preserve insertion order), which
lets callers both test which events fired and read their payloads.
"""

from __future__ import annotations

from typing import Any

from repro.sim.core import Environment, Event, SimulationError


class Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("events", "_results", "_count")

    def __init__(self, env: Environment, events: list[Event]):
        super().__init__(env)
        self.events = list(events)
        for event in self.events:
            if event.env is not env:
                raise SimulationError("condition mixes environments")
        self._results: dict[Event, Any] = {}
        self._count = 0
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event.processed:
                self._observe(event)
            else:
                event.callbacks.append(self._observe)

    def _observe(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event.defuse()
            return
        if not event._ok:
            event.defuse()
            self.defused_fail(event._value)
            # Re-raise at the waiter, not the engine.
            self._defused = False
            return
        self._count += 1
        self._results[event] = event._value
        if self._satisfied():
            self.succeed(dict(self._results))

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(Condition):
    """Fires when every constituent event has fired."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count == len(self.events)


class AnyOf(Condition):
    """Fires when the first constituent event fires."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= 1
