"""Capacity-limited resources and FIFO stores.

These primitives model contended hardware: a :class:`Resource` with
capacity 1 is a bus or a DMA engine (one transaction at a time), a
:class:`PriorityResource` is a bus with arbitration classes, and a
:class:`Store` is any bounded/unbounded queue of objects — packets queued
at a switch port, requests in a send queue, messages in a daemon mailbox.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from repro.sim.core import Environment, Event, SimulationError


class Request(Event):
    """Event that fires when the resource grants this request.

    Usable as a context manager::

        with resource.request() as req:
            yield req
            ... hold the resource ...
        # released on exit
    """

    __slots__ = ("resource", "priority", "_order")

    def __init__(self, resource: "Resource", priority: int = 0):
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        self._order = next(resource._ticket)
        resource._queue.append(self)
        resource._queue.sort(key=lambda r: (r.priority, r._order))
        resource._grant()

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw an ungranted request."""
        if self in self.resource._queue:
            self.resource._queue.remove(self)


class Resource:
    """A resource with integer capacity and FIFO (or priority) granting."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self._queue: list[Request] = []
        self._users: list[Request] = []
        self._ticket = iter(range(1 << 62))

    @property
    def count(self) -> int:
        """Number of requests currently holding the resource."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a grant."""
        return len(self._queue)

    def request(self, priority: int = 0) -> Request:
        """Queue a request; the returned event fires when granted."""
        return Request(self, priority)

    def release(self, request: Request) -> None:
        """Release a previously granted request."""
        if request in self._users:
            self._users.remove(request)
            self._grant()
        else:
            request.cancel()

    def _grant(self) -> None:
        while self._queue and len(self._users) < self.capacity:
            nxt = self._queue.pop(0)
            self._users.append(nxt)
            nxt.succeed(self)


class PriorityResource(Resource):
    """Alias making priority usage explicit at call sites."""


class StoreGet(Event):
    __slots__ = ()


class StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, env: Environment, item: Any):
        super().__init__(env)
        self.item = item


class Store:
    """FIFO queue of arbitrary items with optional capacity.

    ``put`` returns an event that fires when the item is accepted
    (immediately for unbounded stores); ``get`` returns an event that fires
    with the next item.
    """

    def __init__(self, env: Environment, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise SimulationError("store capacity must be >= 1 or None")
        self.env = env
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._getters: deque[StoreGet] = deque()
        self._putters: deque[StorePut] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        event = StorePut(self.env, item)
        self._putters.append(event)
        self._dispatch()
        return event

    def get(self) -> StoreGet:
        event = StoreGet(self.env)
        self._getters.append(event)
        self._dispatch()
        return event

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            # Admit queued puts while there is room.
            while self._putters and (
                    self.capacity is None or len(self.items) < self.capacity):
                put = self._putters.popleft()
                self.items.append(put.item)
                put.succeed(None)
                progress = True
            # Serve queued gets while there are items.
            while self._getters and self.items:
                get = self._getters.popleft()
                get.succeed(self.items.popleft())
                progress = True
