"""Determinism guarantees and remaining edge paths."""

import pytest

from repro import Cluster, TestbedConfig
from repro.bench import VmmcPair
from repro.bench.microbench import (
    vmmc_oneway_bandwidth,
    vmmc_pingpong_latency,
)
from repro.sim import AllOf, Environment, SimulationError


# ---------------------------------------------------------------- determinism
def test_simulation_is_exactly_reproducible():
    """Two identical runs give bit-identical timings — integer time plus
    FIFO tie-breaking leaves no room for jitter."""
    def one_run():
        pair = VmmcPair(TestbedConfig(nnodes=2, memory_mb=8),
                        buffer_bytes=32 * 1024)
        lat = vmmc_pingpong_latency(pair, 4, 6).one_way_us
        bw = vmmc_oneway_bandwidth(pair, 32 * 1024, 5).mbps
        return lat, bw, pair.env.now

    assert one_run() == one_run()


def test_boot_is_reproducible():
    c1 = Cluster.build(TestbedConfig(nnodes=3, memory_mb=8))
    c2 = Cluster.build(TestbedConfig(nnodes=3, memory_mb=8))
    assert c1.env.now == c2.env.now
    assert c1.mapping.routes == c2.mapping.routes
    assert c1.mapping.mapping_time_ns == c2.mapping.mapping_time_ns


# ------------------------------------------------------------- engine edges
def test_run_until_already_processed_event():
    env = Environment()
    ev = env.event()
    ev.succeed("v")
    env.run()
    assert env.run(until=ev) == "v"


def test_condition_with_prefailed_event():
    """A condition built over an already-failed (but unprocessed) event
    delivers the failure to its waiter instead of crashing the engine."""
    env = Environment()
    bad = env.event()
    bad.fail(RuntimeError("early"))
    # Build the condition before the failure is processed: the condition
    # becomes the observer that defuses it and forwards it to the waiter.
    condition = AllOf(env, [env.timeout(5), bad])
    caught = {}

    def waiter():
        try:
            yield condition
        except RuntimeError as exc:
            caught["exc"] = exc

    env.process(waiter())
    env.run()
    assert str(caught["exc"]) == "early"


def test_environment_initial_time():
    env = Environment(initial_time=1000)
    assert env.now == 1000
    done = {}

    def proc():
        yield env.timeout(5)
        done["t"] = env.now

    env.process(proc())
    env.run()
    assert done["t"] == 1005


# --------------------------------------------------------------- config edges
def test_config_with_override_helper():
    base = TestbedConfig(nnodes=2)
    tweaked = base.with_(memory_mb=8, scatter_frames=False)
    assert tweaked.memory_mb == 8
    assert not tweaked.scatter_frames
    assert tweaked.nnodes == 2
    assert base.memory_mb == 64  # original untouched


def test_unknown_topology_rejected():
    with pytest.raises(ValueError):
        Cluster.build(TestbedConfig(nnodes=2, memory_mb=8,
                                    topology="torus"))


def test_contiguous_frames_ablation_config():
    """With scatter_frames=False a long send's source pages happen to be
    physically contiguous — but the LCP still chunks at page size (the
    design assumes the general case, as the paper argues in §5.2)."""
    cluster = Cluster.build(TestbedConfig(nnodes=2, memory_mb=8,
                                          scatter_frames=False))
    env = cluster.env
    _, sender = cluster.nodes[0].attach_process("s")
    _, receiver = cluster.nodes[1].attach_process("r")

    def app():
        inbox = receiver.alloc_buffer(32 * 1024)
        yield receiver.export(inbox, "inbox")
        imported = yield sender.import_buffer("node1", "inbox")
        src = sender.alloc_buffer(32 * 1024)
        yield sender.send(src, imported, 32 * 1024)

    env.run(until=env.process(app()))
    assert cluster.nodes[0].lcp.chunks_sent == 8  # still page-size units


# --------------------------------------------------------------- daemon edges
def test_attach_before_boot_rejected():
    from repro.sim import Environment as Env
    from repro.cluster.cluster import Cluster as RawCluster

    cluster = RawCluster(Env(), TestbedConfig(nnodes=2, memory_mb=8))
    with pytest.raises(RuntimeError):
        cluster.nodes[0].attach_process("early")


def test_double_boot_rejected():
    cluster = Cluster.build(TestbedConfig(nnodes=2, memory_mb=8))
    with pytest.raises(RuntimeError):
        cluster.nodes[0].boot({})
