"""The scalar-oracle differential harness (the issue's headline gate).

Replays the repo's standing workloads — chaos, fig3 bandwidth,
DSM-smoke, fabric-smoke, and the observability contract workload — on
both simulation engines and asserts the full run reports are
bit-identical: event traces, metrics snapshots, simulated times,
protocol counters, bench artifacts.  The scalar engine is the
correctness oracle; any divergence is a vector-engine bug by
definition.

Also pins down the fingerprint helper itself (exact-float canonical
form, divergence paths) so a future "identical" verdict can be trusted.
"""

import pytest

from repro.bench.differential import WORKLOADS, diff_engines, run_workload
from repro.sim import Environment, Tracer
from repro.sim.fingerprint import (canonical_json, diff_values,
                                   trace_fingerprint, value_fingerprint)


# -- the fingerprint helper ------------------------------------------------
def test_canonical_json_is_exact_about_floats():
    assert canonical_json(0.1 + 0.2) != canonical_json(0.3)
    assert canonical_json(0.5) == canonical_json(0.5)
    # sorted keys: dict order must not matter
    assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})


def test_value_fingerprint_handles_numpy_types():
    import numpy as np

    plain = value_fingerprint({"n": 3, "xs": [1, 2], "f": 1.5})
    numpied = value_fingerprint({"n": np.int64(3),
                                 "xs": np.array([1, 2]),
                                 "f": np.float64(1.5)})
    assert plain == numpied


def test_diff_values_names_the_divergent_path():
    a = {"metrics": {"mbps": 100.0, "drops": 1}, "trace": [1, 2, 3]}
    b = {"metrics": {"mbps": 100.0, "drops": 2}, "trace": [1, 2, 4]}
    paths = [p for p, _, _ in diff_values(a, b)]
    assert "metrics.drops" in paths
    assert "trace[2]" in paths
    assert diff_values(a, a) == []


def test_trace_fingerprint_covers_order_and_payload():
    def traced(records):
        tracer = Tracer()
        for t, cat, payload in records:
            tracer.record(t, cat, **payload)
        return trace_fingerprint(tracer)

    base = [(0, "a", {"x": 1}), (5, "b", {"x": 2})]
    assert traced(base) == traced(list(base))
    assert traced(base) != traced(list(reversed(base)))
    assert traced(base) != traced([(0, "a", {"x": 1}), (5, "b", {"x": 3})])


# -- engine differential on the standing workloads -------------------------
def _assert_identical(name):
    scalar = run_workload(name, "scalar")
    vector = run_workload(name, "vector")
    if scalar["fingerprint"] != vector["fingerprint"]:
        divergences = diff_values(scalar["report"], vector["report"], limit=8)
        pytest.fail(f"engines diverged on {name!r}: "
                    + "; ".join(f"{p}: scalar={a!r} vector={b!r}"
                                for p, a, b in divergences))


def test_workload_registry_matches_the_issue_acceptance_list():
    assert {"chaos", "fig3", "dsm-smoke", "fabric-smoke",
            "kv-smoke", "contract"} <= set(WORKLOADS)


def test_chaos_workload_bit_identical_across_engines():
    _assert_identical("chaos")


def test_fig3_workload_bit_identical_across_engines():
    _assert_identical("fig3")


def test_dsm_smoke_workload_bit_identical_across_engines():
    _assert_identical("dsm-smoke")


def test_fabric_smoke_workload_bit_identical_across_engines():
    _assert_identical("fabric-smoke")


def test_kv_smoke_workload_bit_identical_across_engines():
    # The KV chaos trial exercises the reliable sender's batched
    # retransmit deadlines (Environment.timeout_batch) end to end.
    _assert_identical("kv-smoke")


def test_contract_workload_traces_and_metrics_bit_identical():
    scalar = run_workload("contract", "scalar")["report"]
    vector = run_workload("contract", "vector")["report"]
    # Spelled out (not just the top-level hash) because these two are
    # the issue's named deliverables: the event trace and the metrics
    # snapshot.
    assert scalar["trace_fingerprint"] == vector["trace_fingerprint"]
    assert scalar["metrics_fingerprint"] == vector["metrics_fingerprint"]
    assert scalar["trace_records"] == vector["trace_records"]
    assert scalar["metrics"] == vector["metrics"]


def test_diff_engines_reports_per_workload_verdicts():
    result = diff_engines(["fig3"])
    assert result["identical"] is True
    entry = result["workloads"]["fig3"]
    assert entry["identical"] is True
    assert entry["fingerprints"]["scalar"] == entry["fingerprints"]["vector"]
    assert "divergences" not in entry


def test_run_workload_report_is_wall_clock_free():
    # Same engine, run twice: reports must be byte-identical, proving
    # no wall-clock (or other ambient) content leaks into what the
    # differ compares.
    first = run_workload("fig3", "scalar")
    again = run_workload("fig3", "scalar")
    assert first["fingerprint"] == again["fingerprint"]


def test_engine_env_restores_prior_value(monkeypatch):
    import os

    from repro.bench.differential import engine_env
    from repro.sim.core import ENGINE_ENV_VAR

    monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
    with engine_env("vector"):
        assert os.environ[ENGINE_ENV_VAR] == "vector"
        assert type(Environment()).__name__ == "VectorEnvironment"
    assert ENGINE_ENV_VAR not in os.environ
    monkeypatch.setenv(ENGINE_ENV_VAR, "scalar")
    with engine_env("vector"):
        pass
    assert os.environ[ENGINE_ENV_VAR] == "scalar"
