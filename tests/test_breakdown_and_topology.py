"""Tests: trace-based latency breakdown, multi-hop topologies, lifecycle."""

import numpy as np
import pytest

from repro import Cluster, TestbedConfig
from repro.bench.breakdown import measure_breakdown
from repro.bench.microbench import VmmcPair, vmmc_pingpong_latency


# ------------------------------------------------------------- breakdown
def test_breakdown_stages_sum_to_total():
    b = measure_breakdown(4)
    stage_sum = (b.post_us + b.lanai_send_us + b.wire_us
                 + b.lanai_recv_us + b.deliver_us)
    assert stage_sum == pytest.approx(b.total_us, abs=0.01)


def test_breakdown_matches_section_52_budget():
    b = measure_breakdown(4)
    assert b.total_us == pytest.approx(9.8, rel=0.03)
    # Post >= the paper's 0.5 us writes-only floor.
    assert b.post_us >= 0.5
    # Receiving side includes the ~2 us host DMA.
    assert b.lanai_recv_us >= 2.0
    # Spin observation is just a cache-line fill.
    assert b.deliver_us < 0.5
    assert b.rows()[-1][0] == "TOTAL"


def test_breakdown_larger_short_message_grows_post_stage():
    small = measure_breakdown(4)
    big = measure_breakdown(128)
    assert big.post_us > small.post_us + 2.0  # 31 extra PIO words
    assert big.wire_us > small.wire_us        # more bytes on the wire


# ------------------------------------------------------- multi-hop topology
def test_dual_switch_cluster_boots_and_routes():
    cluster = Cluster.build(TestbedConfig(nnodes=4, memory_mb=8,
                                          topology="dual_switch"))
    # node0 (sw0) to node3 (sw1): two switch hops.
    assert len(cluster.mapping.routes["node0"][3]) == 2
    assert len(cluster.mapping.routes["node0"][1]) == 1


def test_transfer_across_two_switches():
    cluster = Cluster.build(TestbedConfig(nnodes=4, memory_mb=8,
                                          topology="dual_switch"))
    env = cluster.env
    _, sender = cluster.nodes[0].attach_process("s")
    _, receiver = cluster.nodes[3].attach_process("r")

    def app():
        inbox = receiver.alloc_buffer(16384)
        yield receiver.export(inbox, "far")
        imported = yield sender.import_buffer("node3", "far")
        src = sender.alloc_buffer(16384)
        src.write(b"across two switches")
        yield sender.send(src, imported, 19)
        yield env.timeout(500_000)
        assert inbox.read(0, 19).tobytes() == b"across two switches"

    env.run(until=env.process(app()))


def test_extra_hop_adds_switch_latency():
    """One more switch hop costs ~one switch fall-through (+route byte)."""
    from repro.bench.microbench import VmmcPair

    near = VmmcPair(TestbedConfig(nnodes=4, memory_mb=8,
                                  topology="dual_switch"),
                    buffer_bytes=16 * 1024)
    lat_near = vmmc_pingpong_latency(near, 4, 8).one_way_us

    # A pair that crosses both switches.
    cluster = Cluster.build(TestbedConfig(nnodes=4, memory_mb=8,
                                          topology="dual_switch"))
    env = cluster.env
    _, a = cluster.nodes[0].attach_process("a")
    _, b = cluster.nodes[3].attach_process("b")
    out = {}

    def app():
        inbox_b = b.alloc_buffer(16384)
        inbox_a = a.alloc_buffer(16384)
        yield b.export(inbox_b, "ib")
        yield a.export(inbox_a, "ia")
        to_b = yield a.import_buffer("node3", "ib")
        to_a = yield b.import_buffer("node0", "ia")
        src_a = a.alloc_buffer(4096)
        src_b = b.alloc_buffer(4096)
        from repro.bench.microbench import _stamp, spin_until_stamp

        t0 = env.now
        for i in range(8):
            _stamp(src_a, 4, i + 1)
            yield a.send(src_a, to_b, 4)
            yield spin_until_stamp(b, inbox_b, 4, i + 1)
            _stamp(src_b, 4, i + 1)
            yield b.send(src_b, to_a, 4)
            yield spin_until_stamp(a, inbox_a, 4, i + 1)
        out["lat"] = (env.now - t0) / 16 / 1000

    env.run(until=env.process(app()))
    extra = out["lat"] - lat_near
    # One extra hop: ~0.55 us switch + ~0.1 us link + a route byte.
    assert 0.3 < extra < 1.5


# ----------------------------------------------------------- export lifecycle
def test_unexport_revokes_reception():
    cluster = Cluster.build(TestbedConfig(nnodes=2, memory_mb=8))
    env = cluster.env
    _, sender = cluster.nodes[0].attach_process("s")
    proc_r, receiver = cluster.nodes[1].attach_process("r")

    def app():
        inbox = receiver.alloc_buffer(8192)
        handle = yield receiver.export(inbox, "temp")
        imported = yield sender.import_buffer("node1", "temp")
        src = sender.alloc_buffer(4096)
        src.write(b"before")
        yield sender.send(src, imported, 6)
        yield env.timeout(200_000)
        assert inbox.read(0, 6).tobytes() == b"before"
        # Withdraw the export: frames become unwritable, pages unpinned.
        yield receiver.unexport(handle)
        src.write(b"after!")
        yield sender.send(src, imported, 6)
        yield env.timeout(200_000)
        # The stale import no longer lands: protection violation instead.
        assert inbox.read(0, 6).tobytes() == b"before"

    env.run(until=env.process(app()))
    assert cluster.nodes[1].lcp.protection_violations == 1
    assert cluster.nodes[1].memory.pinned_frames <= 1  # completion page only


def test_reexport_same_name_after_unexport():
    cluster = Cluster.build(TestbedConfig(nnodes=2, memory_mb=8))
    env = cluster.env
    _, receiver = cluster.nodes[1].attach_process("r")

    def app():
        buf = receiver.alloc_buffer(4096)
        handle = yield receiver.export(buf, "name")
        yield receiver.unexport(handle)
        handle2 = yield receiver.export(buf, "name")   # name reusable
        assert handle2.record.buffer_id != handle.record.buffer_id

    env.run(until=env.process(app()))


# ------------------------------------------------------------------- stress
def test_many_senders_one_receiver_fan_in():
    """Three nodes stream into one receiver's distinct regions; data stays
    intact and per-sender FIFO order is preserved under contention."""
    cluster = Cluster.build(TestbedConfig(nnodes=4, memory_mb=16))
    env = cluster.env
    _, receiver = cluster.nodes[3].attach_process("sink")
    inbox = receiver.alloc_buffer(3 * 64 * 1024)
    senders = []
    for i in range(3):
        _, ep = cluster.nodes[i].attach_process(f"src{i}")
        senders.append(ep)

    def wiring():
        yield receiver.export(inbox, "sink")

    env.run(until=env.process(wiring()))

    def stream(index, ep):
        imported = yield ep.import_buffer("node3", "sink")
        src = ep.alloc_buffer(64 * 1024)
        pattern = np.full(64 * 1024, index + 1, dtype=np.uint8)
        src.write(pattern)
        for _ in range(3):
            yield ep.send(src, imported, 64 * 1024,
                          dest_offset=index * 64 * 1024)

    procs = [env.process(stream(i, ep)) for i, ep in enumerate(senders)]
    for proc in procs:
        env.run(until=proc)
    env.run(until=env.now + 10_000_000)
    for i in range(3):
        region = inbox.read(i * 64 * 1024, 64 * 1024)
        assert set(region.tolist()) == {i + 1}
    assert cluster.nodes[3].lcp.protection_violations == 0
