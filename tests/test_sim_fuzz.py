"""Seeded fuzz: random process/timeout/interrupt programs on both engines.

Each seed generates a random program *spec* (numpy RNG, fixed by the
seed): a handful of processes whose op lists mix sleeps, shared-event
waits and fires, AND/OR combinators, ``timeout_batch`` populations,
process joins, and interrupts of other live processes.  The same spec
is then executed on the scalar and the vector engine, logging every
observable step — start/end of each process, values received, on_fire
group shapes, interrupt catches, timestamps and the events-processed
counter — and the two logs must be equal.

This is what locks in the same-timestamp FIFO tie-break: the programs
deliberately pile many events onto shared timestamps (delays are drawn
from a tiny quantized range), so any divergence in the ``(time,
priority, seq)`` total order between the engines shows up as a
reordered log line.
"""

import numpy as np
import pytest

from repro.sim import Environment, Interrupt

N_SEEDS = 40
OPS = ("sleep", "wait_shared", "fire_shared", "batch", "join",
       "interrupt", "all_of", "any_of")


def _generate_spec(seed):
    """A random program: per-process op lists, all plain data."""
    rng = np.random.default_rng(seed)
    nprocs = int(rng.integers(3, 7))
    nshared = int(rng.integers(2, 5))
    spec = []
    for p in range(nprocs):
        ops = []
        for _ in range(int(rng.integers(4, 9))):
            kind = OPS[int(rng.integers(0, len(OPS)))]
            if kind == "sleep":
                # Tiny quantized delays: maximum same-timestamp pileup.
                ops.append(("sleep", int(rng.integers(0, 6))))
            elif kind == "wait_shared":
                ops.append(("wait_shared", int(rng.integers(0, nshared))))
            elif kind == "fire_shared":
                ops.append(("fire_shared", int(rng.integers(0, nshared)),
                            int(rng.integers(0, 100))))
            elif kind == "batch":
                ops.append(("batch",
                            [int(d) for d in
                             rng.integers(0, 8, size=int(rng.integers(1, 24)))]))
            elif kind == "join":
                ops.append(("join", int(rng.integers(0, nprocs))))
            elif kind == "interrupt":
                ops.append(("interrupt", int(rng.integers(0, nprocs)),
                            int(rng.integers(0, 100))))
            else:  # all_of / any_of over two shared-event timeouts
                ops.append((kind, int(rng.integers(1, 6)),
                            int(rng.integers(1, 6))))
        spec.append(ops)
    return spec


def _execute(spec, engine):
    """Run the spec on one engine; return the observable log."""
    env = Environment(engine=engine)
    log = []
    shared = {}
    procs = {}
    started = set()

    def get_shared(idx):
        if idx not in shared:
            shared[idx] = env.event()
        return shared[idx]

    def body(name, ops):
        started.add(name)
        log.append(("start", name, env.now))
        try:
            for op in ops:
                kind = op[0]
                if kind == "sleep":
                    yield env.timeout(op[1])
                elif kind == "wait_shared":
                    value = yield get_shared(op[1])
                    log.append(("got", name, env.now, value))
                elif kind == "fire_shared":
                    ev = get_shared(op[1])
                    if not ev.triggered:
                        ev.succeed(op[2])
                        log.append(("fired", name, env.now, op[1]))
                elif kind == "batch":
                    n = yield env.timeout_batch(
                        op[1],
                        lambda t, ix: log.append(
                            ("wave", name, t, [int(i) for i in ix])))
                    log.append(("batch", name, env.now, n))
                elif kind == "join":
                    target = f"p{op[1]}"
                    if target in procs and target != name:
                        value = yield procs[target]
                        log.append(("joined", name, env.now, target, value))
                elif kind == "interrupt":
                    target = f"p{op[1]}"
                    victim = procs.get(target)
                    if (target in started and target != name
                            and victim is not None and victim.is_alive):
                        victim.interrupt(op[2])
                        log.append(("poked", name, env.now, target))
                elif kind == "all_of":
                    result = yield (env.timeout(op[1], value="l")
                                    & env.timeout(op[2], value="r"))
                    log.append(("all", name, env.now,
                                sorted(result.values())))
                else:  # any_of
                    result = yield (env.timeout(op[1], value="l")
                                    | env.timeout(op[2], value="r"))
                    log.append(("any", name, env.now,
                                sorted(result.values())))
        except Interrupt as exc:
            log.append(("interrupted", name, env.now, exc.cause))
            return exc.cause
        log.append(("end", name, env.now))
        return name

    for i, ops in enumerate(spec):
        name = f"p{i}"
        procs[name] = env.process(body(name, ops), name=name)
    env.run()
    log.append(("final", env.now, env.events_processed))
    return log


@pytest.mark.parametrize("seed", range(N_SEEDS))
def test_random_program_identical_on_both_engines(seed):
    spec = _generate_spec(seed)
    scalar = _execute(spec, "scalar")
    vector = _execute(spec, "vector")
    assert scalar == vector, (
        f"seed {seed}: first divergence at index "
        f"{next(i for i, (a, b) in enumerate(zip(scalar, vector)) if a != b) if scalar != vector and any(a != b for a, b in zip(scalar, vector)) else min(len(scalar), len(vector))}")


def test_fuzz_covers_the_interesting_ops():
    # The generator must actually exercise interrupts, batches and
    # combinators across the seed range, or the suite proves nothing.
    kinds = set()
    for seed in range(N_SEEDS):
        log = _execute(_generate_spec(seed), "scalar")
        kinds.update(entry[0] for entry in log)
    assert {"interrupted", "wave", "batch", "all", "any", "got",
            "fired", "joined"} <= kinds


def test_scalar_rerun_is_deterministic():
    spec = _generate_spec(123)
    assert _execute(spec, "scalar") == _execute(spec, "scalar")
    assert _execute(spec, "vector") == _execute(spec, "vector")
