"""Tests for the VMMC-based message-passing library (repro.mp)."""

import numpy as np
import pytest

from repro import Cluster, TestbedConfig
from repro.mp import (
    Communicator,
    MPError,
    allreduce,
    alltoall,
    barrier,
    broadcast,
    build_world,
    gather,
    reduce,
    scatter,
)


def make_world(nnodes=2, **kw):
    cluster = Cluster.build(TestbedConfig(nnodes=nnodes, memory_mb=16))
    comms = build_world(cluster, **kw)
    return cluster, comms


def run_ranks(cluster, generators):
    """Run one generator per rank to completion; returns results by rank."""
    env = cluster.env
    results = {}

    def wrap(index, gen):
        value = yield from gen
        results[index] = value

    procs = [env.process(wrap(i, g)) for i, g in enumerate(generators)]
    for proc in procs:
        env.run(until=proc)
    return results


# ----------------------------------------------------------- point-to-point
def test_send_recv_roundtrip():
    cluster, (c0, c1) = make_world()

    def rank0():
        yield c0.send(1, b"hello from rank 0", tag=7)

    def rank1():
        message = yield c1.recv(0, tag=7)
        return message

    results = run_ranks(cluster, [rank0(), rank1()])
    assert results[1] == b"hello from rank 0"
    assert c0.messages_sent == 1
    assert c1.messages_received == 1


def test_empty_message():
    cluster, (c0, c1) = make_world()

    def rank0():
        yield c0.send(1, b"")

    def rank1():
        return (yield c1.recv(0))

    results = run_ranks(cluster, [rank0(), rank1()])
    assert results[1] == b""


def test_large_message_fragments_and_reassembles():
    cluster, (c0, c1) = make_world(slot_bytes=4096)
    payload = np.random.default_rng(0).integers(
        0, 256, 100_000, dtype=np.uint8).tobytes()

    def rank0():
        yield c0.send(1, payload)

    def rank1():
        # A slow consumer: the sender must fill the 8-slot ring and stall
        # on credits before we drain it.
        yield cluster.env.timeout(10_000_000)
        return (yield c1.recv(0))

    results = run_ranks(cluster, [rank0(), rank1()])
    assert results[1] == payload
    assert c0.fragments_sent > 20  # many fragments through an 8-slot ring
    assert c0.flow_control_stalls > 0  # the credit path was exercised


def test_messages_ordered_per_channel():
    cluster, (c0, c1) = make_world()

    def rank0():
        for i in range(10):
            yield c0.send(1, bytes([i]))

    def rank1():
        got = []
        for _ in range(10):
            message = yield c1.recv(0)
            got.append(message[0])
        return got

    results = run_ranks(cluster, [rank0(), rank1()])
    assert results[1] == list(range(10))


def test_tag_matching_buffers_out_of_order_tags():
    cluster, (c0, c1) = make_world()

    def rank0():
        yield c0.send(1, b"first-tag-5", tag=5)
        yield c0.send(1, b"second-tag-9", tag=9)

    def rank1():
        # Ask for tag 9 first: tag-5 message must be buffered, not lost.
        nine = yield c1.recv(0, tag=9)
        five = yield c1.recv(0, tag=5)
        return nine, five

    results = run_ranks(cluster, [rank0(), rank1()])
    assert results[1] == (b"second-tag-9", b"first-tag-5")


def test_bidirectional_concurrent_traffic():
    cluster, (c0, c1) = make_world()

    def rank(me, other, comm):
        send = comm.send(other, f"from {me}".encode())
        got = yield comm.recv(other)
        if not send.triggered:
            yield send
        return got

    results = run_ranks(cluster, [rank(0, 1, c0), rank(1, 0, c1)])
    assert results[0] == b"from 1"
    assert results[1] == b"from 0"


def test_send_array_recv_array():
    cluster, (c0, c1) = make_world()
    vec = np.linspace(0.0, 1.0, 500)

    def rank0():
        yield c0.send_array(1, vec)

    def rank1():
        return (yield c1.recv_array(0, dtype=np.float64))

    results = run_ranks(cluster, [rank0(), rank1()])
    assert np.allclose(results[1], vec)


def test_bad_ranks_rejected():
    cluster, (c0, c1) = make_world()
    with pytest.raises(MPError):
        c0.send(0, b"self")
    with pytest.raises(MPError):
        c0.send(5, b"ghost")
    with pytest.raises(MPError):
        c0.recv(0)


# --------------------------------------------------------------- collectives
def test_broadcast_four_ranks():
    cluster, comms = make_world(nnodes=4)
    payload = b"broadcast me"
    results = run_ranks(cluster, [
        broadcast(c, payload if c.rank == 0 else None, root=0)
        for c in comms])
    assert all(results[i] == payload for i in range(4))


def test_broadcast_nonzero_root():
    cluster, comms = make_world(nnodes=3)
    results = run_ranks(cluster, [
        broadcast(c, b"root2" if c.rank == 2 else None, root=2)
        for c in comms])
    assert all(results[i] == b"root2" for i in range(3))


def test_reduce_sum_to_root():
    cluster, comms = make_world(nnodes=4)
    results = run_ranks(cluster, [
        reduce(c, np.full(100, c.rank + 1, dtype=np.int64), root=0)
        for c in comms])
    assert np.array_equal(results[0], np.full(100, 10, dtype=np.int64))
    assert results[1] is None and results[3] is None


def test_reduce_with_max_op():
    cluster, comms = make_world(nnodes=3)
    results = run_ranks(cluster, [
        reduce(c, np.array([c.rank, 10 - c.rank]), op=np.maximum, root=0)
        for c in comms])
    assert results[0].tolist() == [2, 10]


def test_allreduce_all_ranks_agree():
    cluster, comms = make_world(nnodes=4)
    results = run_ranks(cluster, [
        allreduce(c, np.arange(50, dtype=np.float64) * (c.rank + 1))
        for c in comms])
    expected = np.arange(50, dtype=np.float64) * 10
    for i in range(4):
        assert np.allclose(results[i], expected)


def test_barrier_synchronizes():
    cluster, comms = make_world(nnodes=4)
    env = cluster.env
    after = {}

    def participant(comm, delay):
        yield env.timeout(delay)
        yield from barrier(comm)
        after[comm.rank] = env.now

    procs = [env.process(participant(c, (i + 1) * 50_000))
             for i, c in enumerate(comms)]
    for proc in procs:
        env.run(until=proc)
    # Nobody leaves the barrier before the slowest rank entered.
    assert min(after.values()) >= 4 * 50_000


def test_gather_at_root():
    cluster, comms = make_world(nnodes=3)
    results = run_ranks(cluster, [
        gather(c, f"piece{c.rank}".encode(), root=0) for c in comms])
    assert results[0] == [b"piece0", b"piece1", b"piece2"]
    assert results[1] is None


def test_scatter_from_root():
    cluster, comms = make_world(nnodes=3)
    pieces = [b"a", b"bb", b"ccc"]
    results = run_ranks(cluster, [
        scatter(c, pieces if c.rank == 0 else None, root=0)
        for c in comms])
    assert [results[i] for i in range(3)] == pieces


def test_scatter_requires_pieces_at_root():
    cluster, comms = make_world(nnodes=2)
    with pytest.raises(MPError):
        run_ranks(cluster, [scatter(c, None, root=0) for c in comms])


def test_alltoall_exchanges_everything():
    cluster, comms = make_world(nnodes=3)
    results = run_ranks(cluster, [
        alltoall(c, [f"{c.rank}->{dst}".encode() for dst in range(3)])
        for c in comms])
    for dst in range(3):
        assert results[dst] == [f"{src}->{dst}".encode() for src in range(3)]


def test_collectives_do_not_disturb_pending_app_messages():
    """Application traffic with a low tag survives a barrier in between."""
    cluster, (c0, c1) = make_world()

    def rank0():
        yield c0.send(1, b"app-message", tag=3)
        yield from barrier(c0)

    def rank1():
        yield from barrier(c1)
        return (yield c1.recv(0, tag=3))

    results = run_ranks(cluster, [rank0(), rank1()])
    assert results[1] == b"app-message"
