"""Tests for condition events, resources, stores and tracing."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Resource,
    SimulationError,
    Store,
    Tracer,
    TracerOverflowWarning,
)
from repro.sim.trace import emit


# ---------------------------------------------------------------- conditions
def test_all_of_waits_for_all():
    env = Environment()
    times = {}

    def proc():
        t1 = env.timeout(5, value="a")
        t2 = env.timeout(9, value="b")
        result = yield AllOf(env, [t1, t2])
        times["done"] = env.now
        times["values"] = sorted(result.values())

    env.process(proc())
    env.run()
    assert times["done"] == 9
    assert times["values"] == ["a", "b"]


def test_any_of_fires_on_first():
    env = Environment()
    got = {}

    def proc():
        fast = env.timeout(2, value="fast")
        slow = env.timeout(50, value="slow")
        result = yield AnyOf(env, [fast, slow])
        got["t"] = env.now
        got["values"] = list(result.values())

    env.process(proc())
    env.run()
    assert got["t"] == 2
    assert got["values"] == ["fast"]


def test_and_or_operators():
    env = Environment()
    got = {}

    def proc():
        a = env.timeout(1, value=1)
        b = env.timeout(2, value=2)
        res = yield a & b
        got["and_t"] = env.now
        c = env.timeout(1, value=3)
        d = env.timeout(100, value=4)
        res2 = yield c | d
        got["or_t"] = env.now
        got["or_vals"] = list(res2.values())

    env.process(proc())
    env.run()
    assert got["and_t"] == 2
    assert got["or_t"] == 3
    assert got["or_vals"] == [3]


def test_empty_all_of_fires_immediately():
    env = Environment()
    got = {}

    def proc():
        res = yield AllOf(env, [])
        got["t"] = env.now
        got["res"] = res

    env.process(proc())
    env.run()
    assert got == {"t": 0, "res": {}}


def test_condition_failure_propagates():
    env = Environment()
    caught = {}

    def failer():
        yield env.timeout(1)
        raise RuntimeError("inner failure")

    def waiter():
        try:
            yield AllOf(env, [env.timeout(100), env.process(failer())])
        except RuntimeError as exc:
            caught["exc"] = exc

    env.process(waiter())
    env.run()
    assert "exc" in caught


def test_condition_mixed_environments_rejected():
    env1, env2 = Environment(), Environment()
    with pytest.raises(SimulationError):
        AllOf(env1, [env1.timeout(1), env2.timeout(1)])


# ---------------------------------------------------------------- resources
def test_resource_capacity_one_serializes():
    env = Environment()
    log = []

    def user(res, tag, hold):
        with res.request() as req:
            yield req
            log.append((tag, "in", env.now))
            yield env.timeout(hold)
            log.append((tag, "out", env.now))

    res = Resource(env, capacity=1)
    env.process(user(res, "a", 10))
    env.process(user(res, "b", 10))
    env.run()
    assert log == [
        ("a", "in", 0), ("a", "out", 10),
        ("b", "in", 10), ("b", "out", 20),
    ]


def test_resource_capacity_two_overlaps():
    env = Environment()
    entries = []

    def user(res, tag):
        with res.request() as req:
            yield req
            entries.append((tag, env.now))
            yield env.timeout(10)

    res = Resource(env, capacity=2)
    for tag in "abc":
        env.process(user(res, tag))
    env.run()
    assert entries == [("a", 0), ("b", 0), ("c", 10)]


def test_resource_priority_order():
    env = Environment()
    order = []

    def holder(res):
        with res.request() as req:
            yield req
            yield env.timeout(10)

    def user(res, tag, prio, delay):
        yield env.timeout(delay)
        with res.request(priority=prio) as req:
            yield req
            order.append(tag)

    res = Resource(env, capacity=1)
    env.process(holder(res))
    env.process(user(res, "low", 5, 1))
    env.process(user(res, "high", 0, 2))  # arrives later, higher priority
    env.run()
    assert order == ["high", "low"]


def test_resource_counts():
    env = Environment()
    res = Resource(env, capacity=1)
    snap = {}

    def a():
        with res.request() as req:
            yield req
            yield env.timeout(10)

    def b():
        yield env.timeout(1)
        req = res.request()
        snap["queued"] = res.queue_length
        snap["count"] = res.count
        yield req
        res.release(req)

    env.process(a())
    env.process(b())
    env.run()
    assert snap == {"queued": 1, "count": 1}
    assert res.count == 0


def test_resource_bad_capacity():
    env = Environment()
    with pytest.raises(SimulationError):
        Resource(env, capacity=0)


# ------------------------------------------------------------------- stores
def test_store_fifo_order():
    env = Environment()
    got = []

    def producer(store):
        for i in range(3):
            yield env.timeout(1)
            store.put(i)

    def consumer(store):
        for _ in range(3):
            item = yield store.get()
            got.append((item, env.now))

    s = Store(env)
    env.process(producer(s))
    env.process(consumer(s))
    env.run()
    assert got == [(0, 1), (1, 2), (2, 3)]


def test_store_get_blocks_until_put():
    env = Environment()
    got = {}

    def consumer(store):
        got["item"] = yield store.get()
        got["t"] = env.now

    def producer(store):
        yield env.timeout(42)
        store.put("pkt")

    s = Store(env)
    env.process(consumer(s))
    env.process(producer(s))
    env.run()
    assert got == {"item": "pkt", "t": 42}


def test_bounded_store_put_blocks_when_full():
    env = Environment()
    log = []

    def producer(store):
        for i in range(3):
            yield store.put(i)
            log.append(("put", i, env.now))

    def consumer(store):
        yield env.timeout(10)
        item = yield store.get()
        log.append(("get", item, env.now))

    s = Store(env, capacity=2)
    env.process(producer(s))
    env.process(consumer(s))
    env.run()
    # Third put had to wait for the consumer to drain one item at t=10.
    assert ("put", 0, 0) in log and ("put", 1, 0) in log
    assert ("put", 2, 10) in log


def test_store_len():
    env = Environment()
    s = Store(env)
    s.put("x")
    s.put("y")
    env.run()
    assert len(s) == 2


def test_store_bad_capacity():
    env = Environment()
    with pytest.raises(SimulationError):
        Store(env, capacity=0)


# ------------------------------------------------------------------ tracing
def test_tracer_records_and_filters():
    tracer = Tracer(keep=lambda c: c.startswith("pci."))
    env = Environment(tracer=tracer)

    def proc():
        emit(env, "pci.dma.start", size=4096)
        yield env.timeout(100)
        emit(env, "lanai.loop", n=1)  # filtered out
        emit(env, "pci.dma.done", size=4096)

    env.process(proc())
    env.run()
    assert tracer.categories() == ["pci.dma.start", "pci.dma.done"]
    assert tracer.records[0].time == 0
    assert tracer.records[1].time == 100
    assert tracer.records[0].payload["size"] == 4096
    assert len(tracer.by_category("pci.dma")) == 2


def test_emit_without_tracer_is_noop():
    env = Environment()
    emit(env, "anything", x=1)  # must not raise


def test_tracer_limit():
    tracer = Tracer(limit=2)
    env = Environment(tracer=tracer)
    with pytest.warns(TracerOverflowWarning):
        for i in range(5):
            emit(env, f"cat{i}")
    assert len(tracer) == 2
    assert tracer.dropped == 3         # over-limit records are counted
    tracer.clear()
    assert len(tracer) == 0
    assert tracer.dropped == 0
