"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hw.myrinet.crc import crc8
from repro.mem import AddressSpace, PAGE_SIZE, PhysicalMemory
from repro.mem.virtual import pages_spanned
from repro.rpc.xdr import XdrDecoder, XdrEncoder
from repro.vmmc.pagetables import OutgoingPageTable
from repro.vmmc.proxy import ProxySpace
from repro.vmmc.tlb import SoftwareTLB


# --------------------------------------------------------------------- CRC-8
@given(st.binary(min_size=0, max_size=512))
def test_crc8_in_byte_range(data):
    assert 0 <= crc8(data) <= 255


@given(st.binary(min_size=1, max_size=256),
       st.integers(min_value=0, max_value=255 * 8 - 1))
def test_crc8_detects_any_single_bitflip(data, bit):
    """CRC-8 detects every single-bit error (Hamming distance ≥ 2)."""
    flipped = bytearray(data)
    idx = (bit // 8) % len(flipped)
    flipped[idx] ^= 1 << (bit % 8)
    if bytes(flipped) != data:
        assert crc8(bytes(flipped)) != crc8(data)


@given(st.binary(max_size=256))
def test_crc8_deterministic(data):
    assert crc8(data) == crc8(data)


# ----------------------------------------------------------- outgoing packing
@given(st.integers(min_value=0, max_value=255),
       st.integers(min_value=0, max_value=(1 << 24) - 1))
def test_outgoing_pack_unpack_is_identity(node, page):
    assert OutgoingPageTable.unpack(OutgoingPageTable.pack(node, page)) \
        == (node, page)


@given(st.integers(min_value=0, max_value=255),
       st.integers(min_value=0, max_value=(1 << 24) - 1),
       st.integers(min_value=0, max_value=255),
       st.integers(min_value=0, max_value=(1 << 24) - 1))
def test_outgoing_pack_injective(n1, p1, n2, p2):
    if (n1, p1) != (n2, p2):
        assert OutgoingPageTable.pack(n1, p1) != OutgoingPageTable.pack(n2, p2)


# ------------------------------------------------------------------ proxy math
@given(st.integers(min_value=0, max_value=(1 << 30)))
def test_proxy_split_reassembles(addr):
    page, off = ProxySpace.split(addr)
    assert page * PAGE_SIZE + off == addr
    assert 0 <= off < PAGE_SIZE


@given(st.lists(st.integers(min_value=1, max_value=64 * 1024), min_size=1,
                max_size=10))
def test_proxy_reservations_disjoint_and_ordered(sizes):
    space = ProxySpace(npages=1 << 16)
    regions = [space.reserve(size) for size in sizes]
    for earlier, later in zip(regions, regions[1:]):
        assert earlier.first_page + earlier.npages <= later.first_page
    for region, size in zip(regions, sizes):
        assert region.npages * PAGE_SIZE >= size


# ------------------------------------------------------------------------ TLB
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=4095),
                          st.integers(min_value=0, max_value=1 << 20)),
                max_size=200))
def test_tlb_lookup_returns_last_inserted_or_none(ops):
    """A hit always returns the most recent mapping inserted for the page."""
    tlb = SoftwareTLB(pid=1, nentries=64)
    latest = {}
    for vpage, frame in ops:
        tlb.insert(vpage, frame)
        latest[vpage] = frame
    for vpage, frame in latest.items():
        got = tlb.lookup(vpage)
        assert got is None or got == frame


@given(st.lists(st.integers(min_value=0, max_value=1023), max_size=300))
def test_tlb_occupancy_bounded_by_capacity(vpages):
    tlb = SoftwareTLB(pid=1, nentries=16)
    for vpage in vpages:
        tlb.insert(vpage, vpage + 7)
    assert tlb.occupancy <= 16
    assert tlb.hits + tlb.misses == 0  # inserts alone never count lookups


# --------------------------------------------------------------- address space
@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=6),
       st.integers(min_value=0, max_value=PAGE_SIZE - 1),
       st.binary(min_size=1, max_size=3 * PAGE_SIZE))
def test_virtual_rw_roundtrip_any_offset(npages, offset, payload):
    mem = PhysicalMemory(64 * PAGE_SIZE)
    space = AddressSpace(mem)
    vaddr = space.mmap(npages * PAGE_SIZE)
    length = min(len(payload), npages * PAGE_SIZE - offset)
    if length <= 0:
        return
    space.write(vaddr + offset, payload[:length])
    assert space.read(vaddr + offset, length).tobytes() == payload[:length]


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=PAGE_SIZE - 1),
       st.integers(min_value=1, max_value=5 * PAGE_SIZE))
def test_physical_extents_partition_exactly(offset, nbytes):
    """Extents cover the byte range exactly, in order, page-bounded."""
    mem = PhysicalMemory(64 * PAGE_SIZE)
    space = AddressSpace(mem)
    vaddr = space.mmap(6 * PAGE_SIZE)
    extents = space.physical_extents(vaddr + offset, nbytes)
    assert sum(length for _, length in extents) == nbytes
    assert all(length > 0 for _, length in extents)
    # No extent crosses a frame boundary unless frames were contiguous.
    for paddr, length in extents:
        if length > PAGE_SIZE:
            first = paddr // PAGE_SIZE
            last = (paddr + length - 1) // PAGE_SIZE
            assert list(range(first, last + 1)) == \
                sorted(range(first, last + 1))


@given(st.integers(min_value=0, max_value=1 << 24),
       st.integers(min_value=0, max_value=1 << 16))
def test_pages_spanned_consistent_with_manual_count(vaddr, nbytes):
    if nbytes == 0:
        assert pages_spanned(vaddr, nbytes) == 0
    else:
        expected = (vaddr + nbytes - 1) // PAGE_SIZE - vaddr // PAGE_SIZE + 1
        assert pages_spanned(vaddr, nbytes) == expected


# ------------------------------------------------------------------------- XDR
@given(st.lists(st.binary(max_size=200), max_size=10))
def test_xdr_opaque_sequence_roundtrip(blobs):
    enc = XdrEncoder()
    for blob in blobs:
        enc.pack_opaque(blob)
    dec = XdrDecoder(enc.getvalue())
    assert [dec.unpack_opaque() for _ in blobs] == blobs
    assert dec.done()


@given(st.lists(st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1),
                max_size=50))
def test_xdr_int_list_roundtrip(values):
    enc = XdrEncoder().pack_array(values, lambda e, v: e.pack_int(v))
    assert XdrDecoder(enc.getvalue()).unpack_array(
        lambda d: d.unpack_int()) == values


@given(st.binary(max_size=128))
def test_xdr_stream_always_word_aligned(blob):
    enc = XdrEncoder().pack_opaque(blob)
    assert len(enc.getvalue()) % 4 == 0


# ---------------------------------------------------------- end-to-end payload
@settings(max_examples=5, deadline=None)
@given(st.binary(min_size=1, max_size=30_000),
       st.integers(min_value=0, max_value=PAGE_SIZE - 1))
def test_vmmc_delivers_arbitrary_payloads_intact(payload, dest_offset):
    """Whatever the bytes, size or destination alignment: what the sender
    wrote is exactly what lands in the exported buffer."""
    from repro import Cluster, TestbedConfig

    cluster = Cluster.build(TestbedConfig(nnodes=2, memory_mb=8))
    env = cluster.env
    _, sender = cluster.nodes[0].attach_process("s")
    _, receiver = cluster.nodes[1].attach_process("r")

    def app():
        inbox = receiver.alloc_buffer(64 * 1024)
        yield receiver.export(inbox, "inbox")
        imported = yield sender.import_buffer("node1", "inbox")
        src = sender.alloc_buffer(64 * 1024)
        src.write(payload)
        yield sender.send(src, imported, len(payload),
                          dest_offset=dest_offset)
        yield env.timeout(5_000_000)
        assert inbox.read(dest_offset, len(payload)).tobytes() == payload

    env.run(until=env.process(app()))
