"""Tests for XDR, SunRPC/UDP and vRPC (section 5.4)."""

import pytest

from repro import Cluster, TestbedConfig
from repro.sim import Environment
from repro.hostos.ethernet import EthernetNetwork
from repro.rpc import (
    RPCError,
    RPCProgram,
    SunRPCServer,
    UDPRPCClient,
    VRPCClient,
    VRPCServer,
    XdrDecoder,
    XdrEncoder,
    XdrError,
)
from repro.rpc import sunrpc


# ----------------------------------------------------------------------- XDR
def test_xdr_uint_roundtrip():
    data = XdrEncoder().pack_uint(0).pack_uint(12345).pack_uint(
        (1 << 32) - 1).getvalue()
    dec = XdrDecoder(data)
    assert [dec.unpack_uint() for _ in range(3)] == [0, 12345, (1 << 32) - 1]
    assert dec.done()


def test_xdr_int_negative():
    data = XdrEncoder().pack_int(-1).pack_int(-(1 << 31)).getvalue()
    dec = XdrDecoder(data)
    assert dec.unpack_int() == -1
    assert dec.unpack_int() == -(1 << 31)


def test_xdr_range_checks():
    with pytest.raises(XdrError):
        XdrEncoder().pack_uint(-1)
    with pytest.raises(XdrError):
        XdrEncoder().pack_uint(1 << 32)
    with pytest.raises(XdrError):
        XdrEncoder().pack_int(1 << 31)


def test_xdr_opaque_padding_to_4():
    data = XdrEncoder().pack_opaque(b"abcde").getvalue()
    assert len(data) == 4 + 8  # length word + 5 bytes padded to 8
    assert XdrDecoder(data).unpack_opaque() == b"abcde"


def test_xdr_string_utf8():
    data = XdrEncoder().pack_string("héllo").getvalue()
    assert XdrDecoder(data).unpack_string() == "héllo"


def test_xdr_bool_and_hyper():
    data = XdrEncoder().pack_bool(True).pack_bool(False) \
        .pack_uhyper(1 << 40).getvalue()
    dec = XdrDecoder(data)
    assert dec.unpack_bool() is True
    assert dec.unpack_bool() is False
    assert dec.unpack_uhyper() == 1 << 40


def test_xdr_array():
    data = XdrEncoder().pack_array(
        [1, 2, 3], lambda e, v: e.pack_uint(v)).getvalue()
    assert XdrDecoder(data).unpack_array(
        lambda d: d.unpack_uint()) == [1, 2, 3]


def test_xdr_underrun_detected():
    with pytest.raises(XdrError):
        XdrDecoder(b"\0\0").unpack_uint()


def test_xdr_bad_bool():
    with pytest.raises(XdrError):
        XdrDecoder(XdrEncoder().pack_uint(7).getvalue()).unpack_bool()


# ----------------------------------------------------------- SunRPC messages
def test_call_reply_roundtrip():
    args = XdrEncoder().pack_string("arg").getvalue()
    raw = sunrpc.encode_call(42, 100, 1, 7, args)
    xid, prog, vers, proc, dec = sunrpc.decode_call(raw)
    assert (xid, prog, vers, proc) == (42, 100, 1, 7)
    assert dec.unpack_string() == "arg"

    reply = sunrpc.encode_reply(42, sunrpc.SUCCESS,
                                XdrEncoder().pack_uint(9).getvalue())
    rxid, status, rdec = sunrpc.decode_reply(reply)
    assert (rxid, status) == (42, sunrpc.SUCCESS)
    assert rdec.unpack_uint() == 9


def test_decode_call_rejects_reply():
    reply = sunrpc.encode_reply(1, sunrpc.SUCCESS)
    with pytest.raises(XdrError):
        sunrpc.decode_call(reply)


# --------------------------------------------------------------- UDP baseline
def make_udp_pair():
    env = Environment()
    ether = EthernetNetwork(env)
    prog = RPCProgram(0x20000001, 1)
    prog.register(0, lambda dec: b"")
    prog.register(1, lambda dec: XdrEncoder().pack_uint(
        dec.unpack_uint() + 1).getvalue())
    server = SunRPCServer(env, ether, "srv", prog)
    client = UDPRPCClient(env, ether, "cli", "srv", prog.number, 1)
    return env, server, client


def test_udp_rpc_roundtrip():
    env, server, client = make_udp_pair()
    got = {}

    def app():
        dec = yield client.call(1, XdrEncoder().pack_uint(41).getvalue())
        got["result"] = dec.unpack_uint()

    env.run(until=env.process(app()))
    assert got["result"] == 42
    assert server.calls_served == 1


def test_udp_rpc_unknown_proc():
    env, server, client = make_udp_pair()

    def app():
        with pytest.raises(RPCError):
            yield client.call(99)

    env.run(until=env.process(app()))


def test_udp_null_rpc_takes_hundreds_of_us():
    env, server, client = make_udp_pair()
    times = {}

    def app():
        t0 = env.now
        yield client.call(0)
        times["rt"] = env.now - t0

    env.run(until=env.process(app()))
    assert times["rt"] > 300_000  # > 300 us


# ----------------------------------------------------------------------- vRPC
def make_vrpc(region_bytes=256 * 1024):
    cluster = Cluster.build(TestbedConfig(nnodes=2, memory_mb=32))
    env = cluster.env
    _, client_ep = cluster.nodes[0].attach_process("client")
    _, server_ep = cluster.nodes[1].attach_process("server")
    prog = RPCProgram(0x20000001, 1)
    prog.register(0, lambda dec: b"")
    prog.register(1, lambda dec: XdrEncoder().pack_uint(
        dec.unpack_uint() * 2).getvalue())
    prog.register(2, lambda dec: XdrEncoder().pack_uint(
        dec.unpack_uint()).getvalue())  # bulk: echo declared length
    server = VRPCServer(server_ep, "node1", prog, region_bytes=region_bytes)
    state = {}

    def setup():
        chan = yield server.accept(client_ep, "node0", "t")
        state["client"] = VRPCClient(chan, prog.number, prog.version)

    env.run(until=env.process(setup()))
    return cluster, env, server, state["client"], client_ep


def test_vrpc_call_roundtrip():
    cluster, env, server, client, _ = make_vrpc()
    got = {}

    def app():
        dec = yield client.call(1, XdrEncoder().pack_uint(21).getvalue())
        got["result"] = dec.unpack_uint()

    env.run(until=env.process(app()))
    assert got["result"] == 42
    assert server.calls_served == 1


def test_vrpc_many_sequential_calls():
    cluster, env, server, client, _ = make_vrpc()
    results = []

    def app():
        for i in range(10):
            dec = yield client.call(1, XdrEncoder().pack_uint(i).getvalue())
            results.append(dec.unpack_uint())

    env.run(until=env.process(app()))
    assert results == [2 * i for i in range(10)]


def test_vrpc_null_roundtrip_near_66us():
    """The headline vRPC number: 66 us round trip on Myrinet VMMC."""
    cluster, env, server, client, _ = make_vrpc()
    times = {}

    def app():
        yield client.call(0)  # warm
        t0 = env.now
        for _ in range(8):
            yield client.call(0)
        times["rt_us"] = (env.now - t0) / 8 / 1000

    env.run(until=env.process(app()))
    assert times["rt_us"] == pytest.approx(66, rel=0.08)


def test_vrpc_bulk_bandwidth_copy_limited():
    """One receive-side copy at ~50 MB/s against a 98 MB/s transport:
    sustained bulk bandwidth lands near 33 MB/s — far below peak VMMC,
    far above SunRPC/UDP."""
    cluster, env, server, client, client_ep = make_vrpc()
    res = {}

    def app():
        bulk = client_ep.alloc_buffer(128 * 1024)
        args = XdrEncoder().pack_uint(128 * 1024).getvalue()
        yield client.call(2, args=args, bulk=bulk, bulk_nbytes=128 * 1024)
        t0 = env.now
        for _ in range(4):
            yield client.call(2, args=args, bulk=bulk,
                              bulk_nbytes=128 * 1024)
        res["mbps"] = 4 * 128 * 1024 / (env.now - t0) * 1000

    env.run(until=env.process(app()))
    assert 25 <= res["mbps"] <= 40
    # Below VMMC peak (98.4), above the UDP baseline (<10).
    assert res["mbps"] < 90


def test_vrpc_unknown_proc_raises():
    cluster, env, server, client, _ = make_vrpc()

    def app():
        with pytest.raises(RPCError):
            yield client.call(42)

    env.run(until=env.process(app()))
