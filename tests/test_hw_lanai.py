"""Tests for the LANai NIC hardware: SRAM, processor, DMA engines, NIC."""

import numpy as np
import pytest

from repro.sim import Environment
from repro.mem import PhysicalMemory
from repro.hw.bus import PCIBus, PCIParams
from repro.hw.lanai import (
    LANaiProcessor,
    LanaiNIC,
    SRAM,
    SRAMExhausted,
)
from repro.hw.lanai.sram import SRAM_SIZE
from repro.hw.myrinet import MyrinetPacket, PacketHeader, topology


# ---------------------------------------------------------------------- SRAM
def test_sram_is_256kb():
    assert SRAM().size == 256 * 1024 == SRAM_SIZE


def test_sram_alloc_and_usage_report():
    sram = SRAM()
    sram.alloc("lcp_code", 64 * 1024)
    sram.alloc("sendq.p0", 4096)
    report = sram.usage_report()
    assert report == {"lcp_code": 65536, "sendq.p0": 4096}
    assert sram.used == 65536 + 4096
    assert sram.free_bytes == SRAM_SIZE - sram.used


def test_sram_exhaustion():
    sram = SRAM()
    sram.alloc("big", 200 * 1024)
    with pytest.raises(SRAMExhausted):
        sram.alloc("too_big", 100 * 1024)


def test_sram_duplicate_region_rejected():
    sram = SRAM()
    sram.alloc("x", 16)
    with pytest.raises(ValueError):
        sram.alloc("x", 16)
    with pytest.raises(ValueError):
        sram.alloc("y", 0)


def test_sram_rw_and_bounds():
    sram = SRAM()
    sram.write(100, b"abc")
    assert sram.read(100, 3).tobytes() == b"abc"
    with pytest.raises(ValueError):
        sram.read(SRAM_SIZE - 1, 2)


def test_sram_view_mutates():
    sram = SRAM()
    sram.view(0, 4)[:] = [9, 8, 7, 6]
    assert sram.read(0, 4).tolist() == [9, 8, 7, 6]


# ------------------------------------------------------------------ processor
def test_processor_cycle_time_is_33mhz():
    env = Environment()
    cpu = LANaiProcessor(env)
    done = {}

    def proc():
        yield cpu.cycles(100)
        done["t"] = env.now

    env.process(proc())
    env.run()
    assert done["t"] == 100 * 30  # 30 ns per cycle at 33 MHz
    assert cpu.cycles_charged == 100
    assert cpu.busy_time_ns == 3000


def test_processor_work_ns_rounds_up_to_cycles():
    env = Environment()
    cpu = LANaiProcessor(env)

    def proc():
        yield cpu.work_ns(45)  # 1.5 cycles -> 2 cycles

    env.process(proc())
    env.run()
    assert env.now == 60


# ----------------------------------------------------------------- NIC + DMA
def make_nic_pair():
    env = Environment()
    net = topology.build(topology.SingleSwitchSpec(nhosts_=2), env)
    mem0 = PhysicalMemory(1024 * 1024)
    mem1 = PhysicalMemory(1024 * 1024)
    nic0 = LanaiNIC(env, net, "node0", PCIBus(env), mem0)
    nic1 = LanaiNIC(env, net, "node1", PCIBus(env), mem1)
    return env, net, (nic0, mem0), (nic1, mem1)


def test_host_dma_to_sram_moves_real_bytes():
    env, _, (nic, mem), _ = make_nic_pair()
    payload = np.arange(4096, dtype=np.uint8) % 251
    mem.write(8192, payload)
    done = {}

    def proc():
        yield nic.host_dma.to_sram(8192, 1000, 4096)
        done["t"] = env.now

    env.process(proc())
    env.run()
    assert np.array_equal(nic.sram.read(1000, 4096), payload)
    assert done["t"] == PCIParams().dma_time_ns(4096)
    assert nic.host_dma.bytes_to_sram == 4096


def test_host_dma_to_host_roundtrip():
    env, _, (nic, mem), _ = make_nic_pair()
    nic.sram.write(500, b"from sram")

    def proc():
        yield nic.host_dma.to_host(500, 4096, 9)

    env.process(proc())
    env.run()
    assert mem.read(4096, 9).tobytes() == b"from sram"


def test_host_dma_scatter_two_extents():
    env, _, (nic, mem), _ = make_nic_pair()
    nic.sram.write(0, bytes(range(100)))

    def proc():
        yield nic.host_dma.scatter_to_host(0, [(1000, 60), (5000, 40)])

    env.process(proc())
    env.run()
    assert mem.read(1000, 60).tobytes() == bytes(range(60))
    assert mem.read(5000, 40).tobytes() == bytes(range(60, 100))


def test_host_dma_serializes_transfers():
    env, _, (nic, mem), _ = make_nic_pair()
    times = []

    def proc():
        a = nic.host_dma.to_sram(0, 0, 1024)
        b = nic.host_dma.to_sram(4096, 2048, 1024)
        yield a
        times.append(env.now)
        yield b
        times.append(env.now)

    env.process(proc())
    env.run()
    one = PCIParams().dma_time_ns(1024)
    assert times == [one, 2 * one]


def test_net_send_to_recv_through_fabric():
    env, net, (nic0, _), (nic1, _) = make_nic_pair()
    nic0.sram.write(0, b"wire payload!")

    def sender():
        pkt = MyrinetPacket(net.compute_route("node0", "node1"),
                            PacketHeader("test", {}),
                            nic0.sram.read(0, 13))
        yield nic0.net_send.send(pkt)

    env.process(sender())
    env.run()
    assert nic1.net_recv.pending() == 1
    assert nic0.net_send.packets_sent == 1
    assert nic1.net_recv.packets_received == 1
    assert nic1.net_recv.crc_errors == 0

    got = {}

    def drain():
        pkt = yield nic1.net_recv.inbox.get()
        got["payload"] = bytes(pkt.payload)
        got["crc_ok"] = pkt.meta["crc_ok"]

    env.process(drain())
    env.run()
    assert got == {"payload": b"wire payload!", "crc_ok": True}


def test_host_mmio_sram_write_and_read():
    env, _, (nic, _), _ = make_nic_pair()
    got = {}

    def proc():
        yield nic.host_write_sram(64, b"posted!!")  # 2 words
        got["t_write"] = env.now
        data = yield nic.host_read_sram(64, 8)
        got["t_read"] = env.now
        got["data"] = bytes(data)

    env.process(proc())
    env.run()
    assert got["data"] == b"posted!!"
    assert got["t_write"] == 2 * 121
    assert got["t_read"] - got["t_write"] == 2 * 422


def test_interrupt_requires_driver():
    env, _, (nic, _), _ = make_nic_pair()
    with pytest.raises(RuntimeError):
        nic.raise_interrupt("tlb_miss")


def test_interrupt_dispatch_to_handler():
    env, _, (nic, _), _ = make_nic_pair()
    seen = []

    def handler(reason, payload):
        seen.append((reason, payload, env.now))
        if False:  # plain callable, not generator
            yield

    nic.set_interrupt_handler(lambda r, p: seen.append((r, p, env.now)))

    def proc():
        yield nic.raise_interrupt("tlb_miss", {"vpage": 3})

    env.process(proc())
    env.run()
    assert seen == [("tlb_miss", {"vpage": 3}, 0)]
    assert nic.interrupts_raised == 1
