"""Tests for the experiment-campaign layer (`repro.campaign`).

Covers the ISSUE-7 checklist: spec parsing/validation errors, grid x
seed expansion, resume-after-kill picking up exactly the unfinished
cells (byte-identical aggregate artifact), aggregation math against
hand-computed fixtures, and the `campaign diff` pass/fail thresholds —
plus the CLI surface CI drives.
"""

import copy
import json
import math

import pytest

from repro.campaign import (
    CampaignSpec,
    IncompleteRunError,
    Metric,
    SpecError,
    aggregate_cell,
    aggregate_values,
    build_artifact,
    cell_key,
    diff_artifacts,
    get_campaign,
    register,
    run_campaign,
    state_dir_for,
    unregister,
    write_artifact,
)
from repro.cli import main

GIT = {"commit": "test", "branch": "main", "dirty": False}


def _trial(params, seed):
    return {"metrics": {"value": params["x"] * 10 + seed},
            "gates": {"ok": True}}


def _spec(**overrides):
    kwargs = dict(
        name="tiny", area="TINY", title="tiny test campaign",
        paper_ref="none", trial=_trial,
        grid={"x": (1, 2), "y": ("a", "b")},
        seeds=(0, 1, 2),
        metrics=(Metric("value", "units", "higher", 10.0),),
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


@pytest.fixture
def tiny():
    spec = register(_spec())
    yield spec
    unregister("tiny")


# ------------------------------------------------------------ spec validation
def test_spec_rejects_bad_name_and_area():
    with pytest.raises(SpecError, match="kebab-case"):
        _spec(name="Bad Name")
    with pytest.raises(SpecError, match="UPPER_SNAKE"):
        _spec(area="lower")


def test_spec_rejects_empty_grid_values_and_duplicates():
    with pytest.raises(SpecError, match="has no values"):
        _spec(grid={"x": ()})
    with pytest.raises(SpecError, match="duplicate values"):
        _spec(grid={"x": (1, 1)})


def test_spec_rejects_bad_seeds():
    with pytest.raises(SpecError, match="empty"):
        _spec(seeds=())
    with pytest.raises(SpecError, match="duplicate"):
        _spec(seeds=(1, 1))
    with pytest.raises(SpecError, match="ints"):
        _spec(seeds=(0, "x"))


def test_spec_rejects_metric_problems():
    with pytest.raises(SpecError, match="no metrics"):
        _spec(metrics=())
    with pytest.raises(SpecError, match="duplicate metric"):
        _spec(metrics=(Metric("v", "u"), Metric("v", "u")))
    with pytest.raises(SpecError, match="direction"):
        Metric("v", "u", "sideways")
    with pytest.raises(SpecError, match="positive"):
        Metric("v", "u", "higher", -5.0)


def test_spec_rejects_smoke_and_fixed_conflicts():
    with pytest.raises(SpecError, match="not in the full grid"):
        _spec(smoke_grid={"z": (1,)})
    with pytest.raises(SpecError, match="both grid and fixed"):
        _spec(fixed={"x": 9})


def test_unknown_campaign_is_a_spec_error():
    with pytest.raises(SpecError, match="unknown campaign"):
        get_campaign("does-not-exist")


def test_register_rejects_name_and_area_collisions(tiny):
    with pytest.raises(SpecError, match="already registered"):
        register(_spec())
    with pytest.raises(SpecError, match="artifacts would collide"):
        register(_spec(name="tiny2"))


# ------------------------------------------------------- grid/seed expansion
def test_cells_are_sorted_params_row_major(tiny):
    assert tiny.cells(smoke=False) == [
        {"x": 1, "y": "a"}, {"x": 1, "y": "b"},
        {"x": 2, "y": "a"}, {"x": 2, "y": "b"},
    ]


def test_trials_cross_cells_with_seeds(tiny):
    trials = tiny.trials(smoke=False)
    assert len(trials) == 4 * 3
    assert trials[0] == (0, {"x": 1, "y": "a"}, 0)
    assert trials[2] == (0, {"x": 1, "y": "a"}, 2)
    assert trials[3] == (1, {"x": 1, "y": "b"}, 0)
    # Every (cell, seed) pair exactly once.
    assert len({(i, s) for i, _, s in trials}) == 12


def test_smoke_shape_overrides_grid_and_seeds():
    spec = _spec(smoke_grid={"x": (1,)}, smoke_seeds=(0,))
    assert spec.cells(smoke=True) == [{"x": 1, "y": "a"},
                                      {"x": 1, "y": "b"}]
    assert spec.resolved_seeds(smoke=True) == [0]
    # Full shape untouched.
    assert len(spec.trials(smoke=False)) == 12


def test_fixed_params_are_merged_into_trial_params():
    spec = _spec(grid={"x": (1,)}, fixed={"k": 7})
    assert spec.trial_params({"x": 1}) == {"k": 7, "x": 1}


def test_cell_key_is_canonical_and_safe():
    assert cell_key({"b": 2, "a": 1}) == "a=1,b=2"
    assert cell_key({}) == "cell"
    assert "/" not in cell_key({"p": "a/b c"})


# ------------------------------------------------------------ aggregation math
def test_aggregate_values_hand_computed_even_n():
    # values 1,2,3,4: mean 2.5, median 2.5, sample stdev sqrt(5/3),
    # ci95 = 1.96 * sqrt(5/3) / sqrt(4) = 1.2651746...
    agg = aggregate_values([1, 2, 3, 4])
    assert agg["n"] == 4
    assert agg["min"] == 1.0 and agg["max"] == 4.0
    assert agg["mean"] == 2.5 and agg["median"] == 2.5
    assert agg["ci95"] == round(1.96 * math.sqrt(5 / 3) / 2, 6)
    assert agg["ci95"] == pytest.approx(1.265175, abs=1e-6)


def test_aggregate_values_odd_n_and_singleton():
    agg = aggregate_values([3, 1, 2])
    assert agg["median"] == 2.0 and agg["mean"] == 2.0
    single = aggregate_values([42])
    assert single["ci95"] == 0.0
    assert single["min"] == single["max"] == single["median"] == 42.0
    with pytest.raises(ValueError):
        aggregate_values([])


def test_aggregate_cell_folds_metrics_and_gates():
    reports = [
        {"seed": 0, "metrics": {"v": 10.0}, "gates": {"g": True}},
        {"seed": 1, "metrics": {"v": 20.0}, "gates": {"g": False,
                                                      "h": False}},
    ]
    cell = aggregate_cell(reports)
    assert cell["seeds"] == [0, 1]
    assert cell["metrics"]["v"]["median"] == 15.0
    assert cell["gates_failed"] == ["g", "h"]
    with pytest.raises(ValueError, match="disagree"):
        aggregate_cell([{"seed": 0, "metrics": {"v": 1}},
                        {"seed": 1, "metrics": {"w": 1}}])


# ----------------------------------------------------------------- the runner
def _counting_spec(tmp_path, name="counting"):
    counter = tmp_path / "calls.log"

    def trial(params, seed):
        with open(counter, "a", encoding="utf-8") as fh:
            fh.write(f"{cell_key(params)},s{seed}\n")
        return {"metrics": {"value": params["x"] * 10 + seed}}

    spec = register(_spec(name=name, area=name.upper().replace("-", "_"),
                          trial=trial,
                          metrics=(Metric("value", "u", "higher", 10.0),)))
    return spec, counter


def test_run_executes_full_grid_and_aggregates(tmp_path):
    spec, counter = _counting_spec(tmp_path)
    try:
        summary = run_campaign(spec, jobs=1, state_root=tmp_path / "s")
        assert summary["complete"]
        assert summary["trials_executed"] == 12
        assert len(counter.read_text().splitlines()) == 12
        artifact = build_artifact(spec, state_root=tmp_path / "s", git=GIT)
        assert artifact["schema_version"] == 1
        assert artifact["artifact"] == "BENCH_COUNTING.json"
        assert len(artifact["cells"]) == 4
        # x=2 cells: values 20,21,22 across seeds -> median 21.
        x2a = artifact["cells"][2]
        assert x2a["params"] == {"x": 2, "y": "a"}
        assert x2a["metrics"]["value"]["median"] == 21.0
        assert artifact["cells_with_failed_gates"] == 0
    finally:
        unregister(spec.name)


def test_resume_after_kill_runs_only_unfinished_trials(tmp_path):
    """A run stopped mid-grid (``max_trials`` models the kill) is
    completed by ``resume`` without recomputing finished cells, and the
    aggregate artifact is byte-identical to an uninterrupted run."""
    spec, counter = _counting_spec(tmp_path)
    try:
        # Uninterrupted reference run.
        run_campaign(spec, jobs=1, state_root=tmp_path / "ref")
        reference = build_artifact(spec, state_root=tmp_path / "ref",
                                   git=GIT)

        # Killed run: only 5 of 12 trials finish.
        summary = run_campaign(spec, jobs=1, state_root=tmp_path / "s",
                               max_trials=5)
        assert not summary["complete"]
        assert summary["trials_executed"] == 5
        with pytest.raises(IncompleteRunError, match="7 trial"):
            build_artifact(spec, state_root=tmp_path / "s", git=GIT)

        counter.write_text("")          # count only the resume's work
        resumed = run_campaign(spec, jobs=1, state_root=tmp_path / "s",
                               resume=True)
        assert resumed["complete"]
        assert resumed["trials_skipped"] == 5
        assert resumed["trials_executed"] == 7
        assert len(counter.read_text().splitlines()) == 7   # no recompute

        artifact = build_artifact(spec, state_root=tmp_path / "s", git=GIT)
        as_bytes = lambda a: json.dumps(a, indent=2, sort_keys=True)  # noqa: E731
        assert as_bytes(artifact) == as_bytes(reference)
    finally:
        unregister(spec.name)


def test_resume_refuses_a_changed_shape(tmp_path):
    spec, _ = _counting_spec(tmp_path)
    try:
        run_campaign(spec, jobs=1, state_root=tmp_path / "s",
                     max_trials=2)
    finally:
        unregister(spec.name)
    changed = register(_spec(name="counting", area="COUNTING",
                             seeds=(0, 1)))
    try:
        with pytest.raises(SpecError, match="different shape"):
            run_campaign(changed, jobs=1, state_root=tmp_path / "s",
                         resume=True)
    finally:
        unregister("counting")


def test_run_rejects_undeclared_trial_metrics(tmp_path):
    spec = register(_spec(name="broken", area="BROKEN",
                          trial=lambda p, s: {"metrics": {"wrong": 1}}))
    try:
        with pytest.raises(SpecError, match="declared"):
            run_campaign(spec, jobs=1, state_root=tmp_path / "s")
    finally:
        unregister("broken")


def test_pool_run_matches_inline_run(tmp_path):
    """The multiprocess path produces the same artifact as inline (the
    builtin ``dma`` campaign is pure arithmetic — cheap)."""
    spec = get_campaign("dma")
    run_campaign(spec, jobs=1, state_root=tmp_path / "inline")
    run_campaign(spec, jobs=3, state_root=tmp_path / "pool")
    inline = build_artifact(spec, state_root=tmp_path / "inline", git=GIT)
    pooled = build_artifact(spec, state_root=tmp_path / "pool", git=GIT)
    assert inline == pooled


def test_failed_gates_surface_in_artifact(tmp_path):
    spec = register(_spec(
        name="gated", area="GATED",
        grid={"x": (1,)}, seeds=(0, 1),
        trial=lambda p, s: {"metrics": {"value": 1.0},
                            "gates": {"always": s == 0}}))
    try:
        run_campaign(spec, jobs=1, state_root=tmp_path / "s")
        artifact = build_artifact(spec, state_root=tmp_path / "s", git=GIT)
        assert artifact["cells_with_failed_gates"] == 1
        assert artifact["cells"][0]["gates_failed"] == ["always"]
    finally:
        unregister("gated")


# -------------------------------------------------------------- the diff gate
def _artifact(medians, *, direction="higher", threshold=10.0,
              gates_failed=(), schema=1):
    return {
        "schema_version": schema,
        "campaign": "tiny",
        "cells_with_failed_gates": 1 if gates_failed else 0,
        "metrics": {"value": {"unit": "u", "direction": direction,
                              "regression_pct": threshold}},
        "cells": [
            {"key": key, "params": {}, "seeds": [0],
             "gates_failed": list(gates_failed),
             "metrics": {"value": {"n": 1, "min": m, "max": m,
                                   "mean": m, "median": m, "ci95": 0.0}}}
            for key, m in medians.items()
        ],
    }


def test_diff_identical_passes():
    base = _artifact({"a": 100.0})
    result = diff_artifacts(base, copy.deepcopy(base))
    assert result.ok
    assert result.rows[0].status == "ok"
    assert result.rows[0].delta_pct == 0.0


def test_diff_flags_regression_beyond_threshold_higher_is_better():
    result = diff_artifacts(_artifact({"a": 100.0}),
                            _artifact({"a": 89.0}))
    assert not result.ok
    assert result.regressions[0].delta_pct == -11.0
    # Within threshold: 10% down exactly is not a regression.
    assert diff_artifacts(_artifact({"a": 100.0}),
                          _artifact({"a": 90.0})).ok


def test_diff_lower_is_better_direction():
    base = _artifact({"a": 10.0}, direction="lower")
    worse = _artifact({"a": 11.5}, direction="lower")
    better = _artifact({"a": 8.0}, direction="lower")
    assert not diff_artifacts(base, worse).ok
    improved = diff_artifacts(base, better)
    assert improved.ok
    assert improved.rows[0].status == "improved"


def test_diff_max_regression_override():
    base, cand = _artifact({"a": 100.0}), _artifact({"a": 95.0})
    assert diff_artifacts(base, cand).ok                       # 10% default
    assert not diff_artifacts(base, cand, max_regression_pct=2.0).ok


def test_diff_missing_cell_and_new_cell():
    base = _artifact({"a": 100.0, "b": 50.0})
    cand = _artifact({"a": 100.0, "c": 1.0})
    result = diff_artifacts(base, cand)
    assert not result.ok
    assert any("missing from the candidate" in p for p in result.problems)
    assert result.new_cells == ["c"]


def test_diff_fails_on_candidate_gate_failures():
    result = diff_artifacts(_artifact({"a": 1.0}),
                            _artifact({"a": 1.0}, gates_failed=["sc"]))
    assert not result.ok
    assert any("failed trial gates" in p for p in result.problems)


def test_diff_schema_and_campaign_mismatch():
    base = _artifact({"a": 1.0})
    assert not diff_artifacts(base, _artifact({"a": 1.0}, schema=2)).ok
    other = _artifact({"a": 1.0})
    other["campaign"] = "other"
    assert not diff_artifacts(base, other).ok


def test_diff_zero_baseline_is_noted_not_gated():
    result = diff_artifacts(_artifact({"a": 0.0}), _artifact({"a": 5.0}))
    assert result.ok
    assert result.rows[0].status == "zero-baseline"
    assert result.rows[0].delta_pct is None


# ------------------------------------------------------------------- the CLI
def test_cli_campaign_list(capsys):
    assert main(["campaign", "list"]) == 0
    out = capsys.readouterr().out
    for name in ("latency", "bandwidth", "chaos", "dsm"):
        assert name in out
    assert "BENCH_DSM.json" in out


def test_cli_campaign_run_and_diff_roundtrip(tmp_path, capsys):
    out = tmp_path / "BENCH_DMA.json"
    assert main(["campaign", "run", "dma",
                 "--state-root", str(tmp_path / "s"),
                 "--jobs", "1", "--out", str(out)]) == 0
    assert out.exists()
    # A fresh artifact diffs clean against itself as baseline.
    assert main(["campaign", "diff", "dma",
                 "--baseline", str(out), "--candidate", str(out)]) == 0
    assert "PASS" in capsys.readouterr().out


def test_cli_campaign_diff_detects_regression(tmp_path, capsys):
    from repro.campaign import load_artifact

    out = tmp_path / "BENCH_DMA.json"
    main(["campaign", "run", "dma", "--state-root", str(tmp_path / "s"),
          "--jobs", "1", "--out", str(out)])
    doctored = load_artifact(out)
    for cell in doctored["cells"]:
        for agg in cell["metrics"].values():
            agg["median"] *= 1.5          # baseline much faster than now
    base = tmp_path / "baseline.json"
    write_artifact(doctored, base)
    capsys.readouterr()
    assert main(["campaign", "diff", "dma", "--baseline", str(base),
                 "--candidate", str(out)]) == 1
    assert "FAIL" in capsys.readouterr().out


def test_cli_campaign_report_reaggregates_without_running(tmp_path, capsys):
    main(["campaign", "run", "dma", "--state-root", str(tmp_path / "s"),
          "--jobs", "1", "--out", str(tmp_path / "a.json")])
    capsys.readouterr()
    assert main(["campaign", "report", "dma",
                 "--state-root", str(tmp_path / "s"),
                 "--out", str(tmp_path / "b.json")]) == 0
    assert ((tmp_path / "a.json").read_text()
            == (tmp_path / "b.json").read_text())


def test_cli_campaign_out_requires_single_name(tmp_path, capsys):
    assert main(["campaign", "run", "dma", "latency",
                 "--out", str(tmp_path / "x.json")]) == 1
    assert "--out-dir" in capsys.readouterr().out


def test_state_dir_separates_smoke_from_full(tmp_path, tiny):
    assert state_dir_for(tiny, False, tmp_path).name == "tiny"
    assert state_dir_for(tiny, True, tmp_path).name == "tiny-smoke"
