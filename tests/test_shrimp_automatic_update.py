"""Tests for SHRIMP automatic update (footnote-3 extension)."""

import numpy as np
import pytest

from repro.vmmc.shrimp_impl import ShrimpCluster


def make_au_pair(buffer_bytes=32 * 1024):
    cluster = ShrimpCluster(nnodes=2, memory_mb=8)
    a = cluster.endpoint(0, "a")
    b = cluster.endpoint(1, "b")
    env = cluster.env
    state = {}

    def setup():
        state["remote"] = b.alloc_buffer(buffer_bytes)
        yield b.export(state["remote"], "au_target")
        state["local"] = a.alloc_buffer(buffer_bytes)
        state["npages"] = yield a.map_automatic(
            state["local"], cluster.nodes[1], "au_target")

    env.run(until=env.process(setup()))
    return cluster, a, b, state


def test_au_mapping_created():
    cluster, a, b, state = make_au_pair()
    assert state["npages"] == 8
    assert cluster.nodes[0].nic.au.mapped_pages == 8


def test_au_write_propagates_without_send_call():
    """A plain store to mapped memory appears at the destination — zero
    send instructions executed by the CPU."""
    cluster, a, b, state = make_au_pair()
    env = cluster.env

    def app():
        yield a.au_write(state["local"], b"snooped!", offset=100)

    env.run(until=env.process(app()))
    env.run(until=env.now + 500_000)
    assert state["remote"].read(100, 8).tobytes() == b"snooped!"
    assert cluster.nodes[0].nic.state_machine.requests_processed == 0
    assert cluster.nodes[0].nic.au.writes_captured >= 1
    assert cluster.nodes[0].nic.au.packets_injected >= 1


def test_au_write_avoids_sender_eisa_bus():
    """Automatic update captures data off the memory bus: no EISA fetch
    on the send side (the defining advantage over deliberate update)."""
    cluster, a, b, state = make_au_pair()
    env = cluster.env
    # Probe the sender's EISA arbiter by counting DMA trace events.
    from repro.sim import Tracer

    tracer = Tracer(keep=lambda c: c.startswith("node0.eisa.dma"))
    env.tracer = tracer

    def app():
        yield a.au_write(state["local"], b"x" * 4096)

    env.run(until=env.process(app()))
    env.run(until=env.now + 1_000_000)
    assert len(tracer) == 0  # sender-side EISA never carried the data
    assert state["remote"].read(0, 4096).tobytes() == b"x" * 4096


def test_au_large_write_integrity_across_pages():
    cluster, a, b, state = make_au_pair()
    env = cluster.env
    rng = np.random.default_rng(9)
    payload = rng.integers(0, 256, 3 * 4096 + 77, dtype=np.uint8)

    def app():
        yield a.au_write(state["local"], payload, offset=11)

    env.run(until=env.process(app()))
    env.run(until=env.now + 3_000_000)
    assert np.array_equal(state["remote"].read(11, payload.size), payload)


def test_au_ordering_of_consecutive_writes():
    cluster, a, b, state = make_au_pair()
    env = cluster.env

    def app():
        for value in (b"AAAA", b"BBBB", b"CCCC"):
            yield a.au_write(state["local"], value, offset=0)

    env.run(until=env.process(app()))
    env.run(until=env.now + 1_000_000)
    # In-order delivery: the last write wins.
    assert state["remote"].read(0, 4).tobytes() == b"CCCC"


def test_au_coalescing_of_adjacent_writes():
    """Adjacent small writes within the window merge into one packet."""
    cluster, a, b, state = make_au_pair()
    env = cluster.env

    def app():
        # One au_write spanning scattered frames produces multiple
        # captures; contiguous destination pieces coalesce.
        yield a.au_write(state["local"], b"z" * 256, offset=0)

    env.run(until=env.process(app()))
    env.run(until=env.now + 1_000_000)
    au = cluster.nodes[0].nic.au
    assert au.packets_injected <= au.writes_captured


def test_au_small_write_latency_below_deliberate_update():
    """For one-word updates the snooped path beats the two-instruction
    deliberate update: no initiation, no EISA fetch."""
    cluster, a, b, state = make_au_pair()
    env = cluster.env
    times = {}

    def app():
        watch = b.watch(state["remote"], 0, 4)
        t0 = env.now
        yield a.au_write(state["local"], b"ping")
        yield watch
        times["au"] = env.now - t0

    env.run(until=env.process(app()))
    # Deliberate update path on the same cluster, fresh buffers.
    def du():
        inbox = b.alloc_buffer(4096)
        yield b.export(inbox, "du_target")
        region = yield a.import_buffer(cluster.nodes[1], "du_target")
        src = a.alloc_buffer(4096)
        watch = b.watch(inbox, 0, 4)
        t0 = env.now
        yield a.send(src, region, 4)
        yield watch
        times["du"] = env.now - t0

    env.run(until=env.process(du()))
    assert times["au"] < times["du"]


def test_au_unmapped_pages_not_snooped():
    cluster, a, b, state = make_au_pair()
    env = cluster.env
    plain = a.alloc_buffer(4096)

    def app():
        yield a.au_write(plain, b"local only")

    env.run(until=env.process(app()))
    env.run(until=env.now + 500_000)
    assert cluster.nodes[0].nic.au.writes_captured == 0
    assert plain.read(0, 10).tobytes() == b"local only"


def test_au_unmap_stops_propagation():
    cluster, a, b, state = make_au_pair()
    env = cluster.env
    au = cluster.nodes[0].nic.au
    for frame in list(au._table):
        au.unmap_page(frame)

    def app():
        yield a.au_write(state["local"], b"gone")

    env.run(until=env.process(app()))
    env.run(until=env.now + 500_000)
    assert state["remote"].read(0, 4).tobytes() != b"gone"
