"""Fault-injection campaigns: schedule validation, hardware fault hooks,
the injector's end-to-end drive, and the CRC-drop path of the base
protocol (section 4.2: detected, counted, dropped — never recovered)."""

import pytest

from repro import Cluster, TestbedConfig
from repro.faults import (
    DAEMON_CRASH,
    FaultCampaign,
    FaultEvent,
    FaultInjector,
    LANAI_STALL,
    LINK_DOWN,
    LINK_ERROR_BURST,
    SWITCH_PORT_DOWN,
)
from repro.hw.myrinet.link import LinkParams, _seed_from_name


def small_cluster(**overrides):
    return Cluster.build(TestbedConfig(nnodes=2, memory_mb=8, **overrides))


# ----------------------------------------------------------- FaultEvent
def test_fault_event_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultEvent(at_ns=0, kind="gamma_ray", target="node0")


def test_fault_event_rejects_negative_times():
    with pytest.raises(ValueError, match="negative time"):
        FaultEvent(at_ns=-1, kind=LINK_DOWN, target="node0->sw0")
    with pytest.raises(ValueError, match="negative fault duration"):
        FaultEvent(at_ns=0, kind=LINK_DOWN, target="node0->sw0",
                   duration_ns=-5)


def test_fault_event_kind_specific_requirements():
    with pytest.raises(ValueError, match="requires a duration"):
        FaultEvent(at_ns=0, kind=LANAI_STALL, target="node0")
    with pytest.raises(ValueError, match=r"params\['rate'\]"):
        FaultEvent(at_ns=0, kind=LINK_ERROR_BURST, target="node0->sw0")


def test_campaign_sorts_events_and_computes_horizon():
    late = FaultEvent(at_ns=900, kind=LINK_DOWN, target="a", duration_ns=50)
    early = FaultEvent(at_ns=100, kind=DAEMON_CRASH, target="node0",
                       duration_ns=2000)
    campaign = FaultCampaign.of("c", [late, early])
    assert [e.at_ns for e in campaign] == [100, 900]
    assert len(campaign) == 2
    assert campaign.horizon_ns == 2100  # crash raised at 100, cleared 2100


def test_random_link_bursts_deterministic_per_seed():
    links = ["node0->sw0", "sw0->node1", "node1->sw0"]
    a = FaultCampaign.random_link_bursts(links, seed=42)
    b = FaultCampaign.random_link_bursts(links, seed=42)
    c = FaultCampaign.random_link_bursts(links, seed=43)
    assert a.events == b.events
    assert a.events != c.events
    for event in a:
        assert event.kind == LINK_ERROR_BURST
        assert event.target in links
        assert 0 < event.params["rate"] <= 1


def test_random_link_bursts_requires_links():
    with pytest.raises(ValueError, match="no links"):
        FaultCampaign.random_link_bursts([], seed=1)


# --------------------------------------------------- hardware fault hooks
def test_link_rng_fallback_seeds_differ_per_name():
    # Regression: independently-built links used to share default_rng(0)
    # and draw identical error sequences.
    assert _seed_from_name("node0->sw0") != _seed_from_name("sw0->node1")
    cluster = small_cluster(link=LinkParams(error_rate=0.5))
    links = cluster.fabric.links
    seeds = {_seed_from_name(l.name) for l in links}
    assert len(seeds) == len(links)


def test_link_down_loses_packets_silently():
    cluster = small_cluster()
    env = cluster.env
    _, tx = cluster.nodes[0].attach_process("s")
    _, rx = cluster.nodes[1].attach_process("r")
    inbox = rx.alloc_buffer(4096)
    inbox.fill(0)
    src = tx.alloc_buffer(4096)
    src.fill(0xAB)
    link = cluster.fabric.find_link("node0->sw0")

    def app():
        yield rx.export(inbox, "inbox")
        imported = yield tx.import_buffer("node1", "inbox")
        link.set_down()
        yield tx.send(src, imported, 1024)

    env.run(until=env.process(app()))
    env.run(until=env.now + 2_000_000)
    assert not link.is_up
    assert link.packets_lost_down >= 1
    assert bytes(inbox.read(0, 1024)) == b"\x00" * 1024
    link.set_up()
    assert link.is_up


def test_find_link_unknown_name_raises():
    cluster = small_cluster()
    with pytest.raises(KeyError, match="no link named"):
        cluster.fabric.find_link("node9->sw9")


def test_switch_port_down_drops_routed_packets():
    cluster = small_cluster()
    env = cluster.env
    _, tx = cluster.nodes[0].attach_process("s")
    _, rx = cluster.nodes[1].attach_process("r")
    inbox = rx.alloc_buffer(4096)
    inbox.fill(0)
    src = tx.alloc_buffer(4096)
    src.fill(0xCD)
    sw = cluster.fabric.switches["sw0"]
    # node1 hangs off the port the route selects; find it from the route.
    out_port = cluster.fabric.compute_route("node0", "node1")[0]

    def app():
        yield rx.export(inbox, "inbox")
        imported = yield tx.import_buffer("node1", "inbox")
        sw.set_port_down(out_port)
        assert not sw.port_is_up(out_port)
        yield tx.send(src, imported, 512)

    env.run(until=env.process(app()))
    env.run(until=env.now + 2_000_000)
    assert sw.port_down_drops >= 1
    assert bytes(inbox.read(0, 512)) == b"\x00" * 512
    sw.set_port_up(out_port)
    assert sw.port_is_up(out_port)


def test_lanai_stall_delays_processing():
    cluster = small_cluster()
    env = cluster.env
    proc = cluster.nodes[0].nic.processor
    before = env.now
    proc.stall(25_000)

    def firmware_step():
        yield proc.cycles(10)

    env.run(until=env.process(firmware_step()))
    assert env.now - before >= 25_000
    assert proc.stall_ns_served >= 25_000


def test_daemon_crash_drops_requests_then_recovers():
    cluster = small_cluster()
    env = cluster.env
    _, tx = cluster.nodes[0].attach_process("s")
    _, rx = cluster.nodes[1].attach_process("r")
    daemon = cluster.nodes[1].daemon
    inbox = rx.alloc_buffer(4096)

    def app():
        yield rx.export(inbox, "inbox")
        daemon.crash()
        assert daemon.crashed
        # Give the import request time to be eaten by the dead daemon.
        yield env.timeout(1_000_000)
        daemon.restart()
        imported = yield tx.import_buffer("node1", "inbox")
        assert imported.nbytes == 4096

    env.run(until=env.process(app()))
    assert daemon.crashes == 1
    assert not daemon.crashed


# ------------------------------------------------------------- injector
def test_injector_drives_burst_and_clears_it():
    cluster = small_cluster()
    env = cluster.env
    link = cluster.fabric.find_link("node0->sw0")
    campaign = FaultCampaign.of("one_burst", [
        FaultEvent(at_ns=1_000, kind=LINK_ERROR_BURST, target="node0->sw0",
                   duration_ns=5_000, params={"rate": 0.9}),
    ])
    injector = FaultInjector(cluster)
    done = injector.run(campaign)
    env.run(until=env.now + 2_000)
    assert link.effective_error_rate == pytest.approx(0.9)
    env.run(until=done)
    assert link.effective_error_rate == 0.0
    stats = injector.stats
    assert stats.faults_raised == 1
    assert stats.faults_cleared == 1
    assert stats.by_kind == {LINK_ERROR_BURST: 1}
    assert stats.fault_ns_by_target["node0->sw0"] == 5_000


def test_injector_permanent_fault_never_cleared():
    cluster = small_cluster()
    env = cluster.env
    campaign = FaultCampaign.of("cable_cut", [
        FaultEvent(at_ns=500, kind=LINK_DOWN, target="sw0->node1"),
    ])
    done = FaultInjector(cluster).run(campaign)
    env.run(until=done)
    link = cluster.fabric.find_link("sw0->node1")
    assert not link.is_up  # stays down forever


def test_injector_mixed_campaign_stats_are_deterministic():
    def run_once():
        cluster = small_cluster()
        campaign = FaultCampaign.of("mixed", [
            FaultEvent(at_ns=1_000, kind=LINK_ERROR_BURST,
                       target="node0->sw0", duration_ns=3_000,
                       params={"rate": 0.5}),
            FaultEvent(at_ns=2_000, kind=SWITCH_PORT_DOWN, target="sw0:0",
                       duration_ns=4_000),
            FaultEvent(at_ns=2_500, kind=LANAI_STALL, target="node1",
                       duration_ns=1_000),
            FaultEvent(at_ns=3_000, kind=DAEMON_CRASH, target="node0",
                       duration_ns=2_000),
        ], seed=11)
        injector = FaultInjector(cluster)
        done = injector.run(campaign)
        cluster.env.run(until=done)
        return injector.stats.as_dict()

    first, second = run_once(), run_once()
    assert first == second
    assert first["faults_raised"] == 4
    assert first["faults_cleared"] == 4  # stall self-clears at expiry


# ----------------------------------- overlapping faults on one target
def test_overlapping_error_bursts_last_clear_wins():
    """Regression: two overlapping bursts used to share a single
    override slot, so the first burst's clear wiped the still-active
    second burst.  With the stack, the link stays faulted until the
    *last* clear."""
    cluster = small_cluster()
    link = cluster.fabric.find_link("node0->sw0")
    tok_a = link.set_error_rate(0.9)
    tok_b = link.set_error_rate(0.5)        # last-wins while both active
    assert link.effective_error_rate == pytest.approx(0.5)
    assert link.error_burst_depth == 2
    link.clear_error_rate(tok_a)            # first burst ends...
    assert link.error_burst_depth == 1
    assert link.effective_error_rate == pytest.approx(0.5)  # ...B survives
    link.clear_error_rate(tok_b)
    assert link.error_burst_depth == 0
    assert link.effective_error_rate == 0.0
    # Unknown token is an idempotent no-op.
    link.clear_error_rate(tok_b)
    assert link.effective_error_rate == 0.0


def test_bare_clear_error_rate_empties_stack():
    cluster = small_cluster()
    link = cluster.fabric.find_link("node0->sw0")
    link.set_error_rate(0.9)
    link.set_error_rate(0.5)
    link.clear_error_rate()                 # legacy: back to baseline
    assert link.effective_error_rate == 0.0
    assert link.error_burst_depth == 0


def test_overlapping_link_down_depth_counted():
    """Regression: an early set_up from fault A used to revive a cable
    fault B still held down."""
    cluster = small_cluster()
    link = cluster.fabric.find_link("node0->sw0")
    link.set_down()
    link.set_down()
    assert not link.is_up and link.down_depth == 2
    link.set_up()                           # A clears: still down (B)
    assert not link.is_up and link.down_depth == 1
    link.set_up()                           # last clear wins
    assert link.is_up and link.down_depth == 0
    link.set_up()                           # stray extra clear: clamped
    assert link.is_up and link.down_depth == 0


def test_overlapping_switch_port_down_depth_counted():
    cluster = small_cluster()
    sw = cluster.fabric.switches["sw0"]
    sw.set_port_down(3)
    sw.set_port_down(3)
    assert not sw.port_is_up(3) and sw.port_down_depth(3) == 2
    sw.set_port_up(3)
    assert not sw.port_is_up(3) and sw.port_down_depth(3) == 1
    sw.set_port_up(3)
    assert sw.port_is_up(3) and sw.port_down_depth(3) == 0
    sw.set_port_up(3)                       # clamped
    assert sw.port_is_up(3)


def test_overlapping_daemon_crashes_nest_cold_dominates_warm():
    cluster = small_cluster()
    daemon = cluster.nodes[1].daemon
    epoch_before = daemon.epoch
    daemon.crash()                          # warm fault
    daemon.crash()                          # cold fault overlaps
    assert daemon.crashed and daemon.crash_depth == 2
    daemon.restart(cold=True)               # inner restart: stays down
    assert daemon.crashed and daemon.crash_depth == 1
    daemon.restart()                        # last restart: cold dominates
    assert not daemon.crashed and daemon.crash_depth == 0
    assert daemon.epoch == epoch_before + 1
    assert daemon.cold_restarts == 1


def test_injector_overlapping_bursts_one_link_no_early_clear():
    """End-to-end through the injector: burst A [1000, 6000) and burst B
    [4000, 9000) on one link; the link must stay errored across A's
    clear and only return to baseline at B's clear."""
    cluster = small_cluster()
    env = cluster.env
    link = cluster.fabric.find_link("node0->sw0")
    campaign = FaultCampaign.of("overlap", [
        FaultEvent(at_ns=1_000, kind=LINK_ERROR_BURST, target="node0->sw0",
                   duration_ns=5_000, params={"rate": 0.9}),
        FaultEvent(at_ns=4_000, kind=LINK_ERROR_BURST, target="node0->sw0",
                   duration_ns=5_000, params={"rate": 0.5}),
    ])
    done = FaultInjector(cluster).run(campaign)
    env.run(until=2_000)
    assert link.effective_error_rate == pytest.approx(0.9)
    env.run(until=5_000)                    # both active: last-wins
    assert link.effective_error_rate == pytest.approx(0.5)
    env.run(until=7_000)                    # A cleared at 6000, B alive
    assert link.effective_error_rate == pytest.approx(0.5)
    assert link.error_burst_depth == 1
    env.run(until=done)                     # B cleared at 9000
    assert link.effective_error_rate == 0.0
    assert link.error_burst_depth == 0


# -------------------------------- injector stats bookkeeping (satellite)
def test_injector_second_campaign_does_not_clobber_first_stats():
    """Regression: run() used to overwrite `injector.stats`, so a second
    campaign clobbered the first's reference mid-run."""
    cluster = small_cluster()
    env = cluster.env
    injector = FaultInjector(cluster)
    first = FaultCampaign.of("first", [
        FaultEvent(at_ns=1_000, kind=LINK_ERROR_BURST, target="node0->sw0",
                   duration_ns=2_000, params={"rate": 0.9})])
    second = FaultCampaign.of("second", [
        FaultEvent(at_ns=1_500, kind=LINK_DOWN, target="sw0->node1",
                   duration_ns=2_000)])
    done_first = injector.run(first)
    stats_first = injector.stats_by_campaign["first"]
    done_second = injector.run(second)      # would have clobbered .stats
    env.run(until=done_first)
    env.run(until=done_second)
    assert injector.stats_by_campaign["first"] is stats_first
    assert stats_first.campaign == "first"
    assert stats_first.by_kind == {LINK_ERROR_BURST: 1}
    assert injector.stats_by_campaign["second"].by_kind == {LINK_DOWN: 1}
    # Process values carry the same objects.
    assert done_first.value is stats_first


def test_permanent_fault_charged_by_finalize():
    """Regression: permanent faults (duration_ns=None) never appeared in
    fault_ns_by_target; finalize(now) charges run_end - raised_at, and
    re-finalizing later extends the charge."""
    cluster = small_cluster()
    env = cluster.env
    t0 = env.now                            # build boots the cluster
    campaign = FaultCampaign.of("cut", [
        FaultEvent(at_ns=500, kind=LINK_DOWN, target="sw0->node1"),
        FaultEvent(at_ns=1_000, kind=LINK_ERROR_BURST, target="node0->sw0",
                   duration_ns=9_500, params={"rate": 0.5}),
    ]).shifted(t0)
    injector = FaultInjector(cluster)
    done = injector.run(campaign)
    env.run(until=done)                     # campaign ends at t0 + 10_500
    stats = injector.stats_by_campaign["cut"]
    assert stats.finalized_at == t0 + 10_500
    assert stats.fault_ns_by_target["sw0->node1"] == 10_000
    assert stats.open_faults == 1
    env.run(until=t0 + 20_000)
    stats.finalize(env.now)                 # extend to measurement end
    assert stats.fault_ns_by_target["sw0->node1"] == 19_500
    assert stats.intervals_by_target["sw0->node1"] == [(t0 + 500,
                                                        t0 + 20_000)]
    # The timed burst is unaffected by finalize.
    assert stats.fault_ns_by_target["node0->sw0"] == 9_500


def test_campaign_sort_is_total_over_duplicate_keys():
    """Events sharing (at_ns, kind, target) used to sort unspecified by
    construction order; the total key makes same-seed campaigns
    bit-identical regardless of input order."""
    e_short = FaultEvent(at_ns=100, kind=LINK_ERROR_BURST, target="a",
                         duration_ns=1_000, params={"rate": 0.2})
    e_long = FaultEvent(at_ns=100, kind=LINK_ERROR_BURST, target="a",
                        duration_ns=2_000, params={"rate": 0.9})
    e_perm = FaultEvent(at_ns=100, kind=LINK_DOWN, target="a")
    e_timed = FaultEvent(at_ns=100, kind=LINK_DOWN, target="a",
                         duration_ns=500)
    forward = FaultCampaign.of("c", [e_short, e_long, e_perm, e_timed],
                               seed=3)
    backward = FaultCampaign.of("c", [e_timed, e_perm, e_long, e_short],
                                seed=3)
    assert forward.events == backward.events
    assert forward == backward
    # Durations break the tie; permanent (None) sorts after timed.
    bursts = [e for e in forward if e.kind == LINK_ERROR_BURST]
    assert [e.duration_ns for e in bursts] == [1_000, 2_000]
    downs = [e for e in forward if e.kind == LINK_DOWN]
    assert [e.duration_ns for e in downs] == [500, None]


def test_same_key_same_duration_params_break_tie():
    a = FaultEvent(at_ns=100, kind=LINK_ERROR_BURST, target="a",
                   duration_ns=1_000, params={"rate": 0.2})
    b = FaultEvent(at_ns=100, kind=LINK_ERROR_BURST, target="a",
                   duration_ns=1_000, params={"rate": 0.9})
    assert (FaultCampaign.of("c", [a, b]).events
            == FaultCampaign.of("c", [b, a]).events)


# -------------------------------------- CRC-drop path (satellite test)
def test_crc_error_detected_counted_dropped_never_recovered():
    """error_rate=1.0: every packet is corrupted on the wire.  The LCP
    must detect the bad CRC, bump its counter, drop the packet, and leave
    the receiver's memory untouched — and nobody retransmits."""
    cluster = small_cluster(link=LinkParams(error_rate=1.0))
    env = cluster.env
    _, tx = cluster.nodes[0].attach_process("s")
    _, rx = cluster.nodes[1].attach_process("r")
    inbox = rx.alloc_buffer(4096)
    inbox.fill(0)
    src = tx.alloc_buffer(4096)
    src.fill(0x5A)

    def app():
        yield rx.export(inbox, "inbox")
        imported = yield tx.import_buffer("node1", "inbox")
        yield tx.send(src, imported, 1024)

    env.run(until=env.process(app()))
    env.run(until=env.now + 2_000_000)
    lossy_links = [l for l in cluster.fabric.links if l.errors_injected]
    assert lossy_links, "no link corrupted anything at error_rate=1.0"
    assert cluster.nodes[1].lcp.crc_drops >= 1
    # Dropped means dropped: the receive buffer never changed.
    assert bytes(inbox.read(0, 1024)) == b"\x00" * 1024
