"""Fault-injection campaigns: schedule validation, hardware fault hooks,
the injector's end-to-end drive, and the CRC-drop path of the base
protocol (section 4.2: detected, counted, dropped — never recovered)."""

import pytest

from repro import Cluster, TestbedConfig
from repro.faults import (
    DAEMON_CRASH,
    FaultCampaign,
    FaultEvent,
    FaultInjector,
    LANAI_STALL,
    LINK_DOWN,
    LINK_ERROR_BURST,
    SWITCH_PORT_DOWN,
)
from repro.hw.myrinet.link import LinkParams, _seed_from_name


def small_cluster(**overrides):
    return Cluster.build(TestbedConfig(nnodes=2, memory_mb=8, **overrides))


# ----------------------------------------------------------- FaultEvent
def test_fault_event_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultEvent(at_ns=0, kind="gamma_ray", target="node0")


def test_fault_event_rejects_negative_times():
    with pytest.raises(ValueError, match="negative time"):
        FaultEvent(at_ns=-1, kind=LINK_DOWN, target="node0->sw0")
    with pytest.raises(ValueError, match="negative fault duration"):
        FaultEvent(at_ns=0, kind=LINK_DOWN, target="node0->sw0",
                   duration_ns=-5)


def test_fault_event_kind_specific_requirements():
    with pytest.raises(ValueError, match="requires a duration"):
        FaultEvent(at_ns=0, kind=LANAI_STALL, target="node0")
    with pytest.raises(ValueError, match=r"params\['rate'\]"):
        FaultEvent(at_ns=0, kind=LINK_ERROR_BURST, target="node0->sw0")


def test_campaign_sorts_events_and_computes_horizon():
    late = FaultEvent(at_ns=900, kind=LINK_DOWN, target="a", duration_ns=50)
    early = FaultEvent(at_ns=100, kind=DAEMON_CRASH, target="node0",
                       duration_ns=2000)
    campaign = FaultCampaign.of("c", [late, early])
    assert [e.at_ns for e in campaign] == [100, 900]
    assert len(campaign) == 2
    assert campaign.horizon_ns == 2100  # crash raised at 100, cleared 2100


def test_random_link_bursts_deterministic_per_seed():
    links = ["node0->sw0", "sw0->node1", "node1->sw0"]
    a = FaultCampaign.random_link_bursts(links, seed=42)
    b = FaultCampaign.random_link_bursts(links, seed=42)
    c = FaultCampaign.random_link_bursts(links, seed=43)
    assert a.events == b.events
    assert a.events != c.events
    for event in a:
        assert event.kind == LINK_ERROR_BURST
        assert event.target in links
        assert 0 < event.params["rate"] <= 1


def test_random_link_bursts_requires_links():
    with pytest.raises(ValueError, match="no links"):
        FaultCampaign.random_link_bursts([], seed=1)


# --------------------------------------------------- hardware fault hooks
def test_link_rng_fallback_seeds_differ_per_name():
    # Regression: independently-built links used to share default_rng(0)
    # and draw identical error sequences.
    assert _seed_from_name("node0->sw0") != _seed_from_name("sw0->node1")
    cluster = small_cluster(link=LinkParams(error_rate=0.5))
    links = cluster.fabric.links
    seeds = {_seed_from_name(l.name) for l in links}
    assert len(seeds) == len(links)


def test_link_down_loses_packets_silently():
    cluster = small_cluster()
    env = cluster.env
    _, tx = cluster.nodes[0].attach_process("s")
    _, rx = cluster.nodes[1].attach_process("r")
    inbox = rx.alloc_buffer(4096)
    inbox.fill(0)
    src = tx.alloc_buffer(4096)
    src.fill(0xAB)
    link = cluster.fabric.find_link("node0->sw0")

    def app():
        yield rx.export(inbox, "inbox")
        imported = yield tx.import_buffer("node1", "inbox")
        link.set_down()
        yield tx.send(src, imported, 1024)

    env.run(until=env.process(app()))
    env.run(until=env.now + 2_000_000)
    assert not link.is_up
    assert link.packets_lost_down >= 1
    assert bytes(inbox.read(0, 1024)) == b"\x00" * 1024
    link.set_up()
    assert link.is_up


def test_find_link_unknown_name_raises():
    cluster = small_cluster()
    with pytest.raises(KeyError, match="no link named"):
        cluster.fabric.find_link("node9->sw9")


def test_switch_port_down_drops_routed_packets():
    cluster = small_cluster()
    env = cluster.env
    _, tx = cluster.nodes[0].attach_process("s")
    _, rx = cluster.nodes[1].attach_process("r")
    inbox = rx.alloc_buffer(4096)
    inbox.fill(0)
    src = tx.alloc_buffer(4096)
    src.fill(0xCD)
    sw = cluster.fabric.switches["sw0"]
    # node1 hangs off the port the route selects; find it from the route.
    out_port = cluster.fabric.compute_route("node0", "node1")[0]

    def app():
        yield rx.export(inbox, "inbox")
        imported = yield tx.import_buffer("node1", "inbox")
        sw.set_port_down(out_port)
        assert not sw.port_is_up(out_port)
        yield tx.send(src, imported, 512)

    env.run(until=env.process(app()))
    env.run(until=env.now + 2_000_000)
    assert sw.port_down_drops >= 1
    assert bytes(inbox.read(0, 512)) == b"\x00" * 512
    sw.set_port_up(out_port)
    assert sw.port_is_up(out_port)


def test_lanai_stall_delays_processing():
    cluster = small_cluster()
    env = cluster.env
    proc = cluster.nodes[0].nic.processor
    before = env.now
    proc.stall(25_000)

    def firmware_step():
        yield proc.cycles(10)

    env.run(until=env.process(firmware_step()))
    assert env.now - before >= 25_000
    assert proc.stall_ns_served >= 25_000


def test_daemon_crash_drops_requests_then_recovers():
    cluster = small_cluster()
    env = cluster.env
    _, tx = cluster.nodes[0].attach_process("s")
    _, rx = cluster.nodes[1].attach_process("r")
    daemon = cluster.nodes[1].daemon
    inbox = rx.alloc_buffer(4096)

    def app():
        yield rx.export(inbox, "inbox")
        daemon.crash()
        assert daemon.crashed
        # Give the import request time to be eaten by the dead daemon.
        yield env.timeout(1_000_000)
        daemon.restart()
        imported = yield tx.import_buffer("node1", "inbox")
        assert imported.nbytes == 4096

    env.run(until=env.process(app()))
    assert daemon.crashes == 1
    assert not daemon.crashed


# ------------------------------------------------------------- injector
def test_injector_drives_burst_and_clears_it():
    cluster = small_cluster()
    env = cluster.env
    link = cluster.fabric.find_link("node0->sw0")
    campaign = FaultCampaign.of("one_burst", [
        FaultEvent(at_ns=1_000, kind=LINK_ERROR_BURST, target="node0->sw0",
                   duration_ns=5_000, params={"rate": 0.9}),
    ])
    injector = FaultInjector(cluster)
    done = injector.run(campaign)
    env.run(until=env.now + 2_000)
    assert link.effective_error_rate == pytest.approx(0.9)
    env.run(until=done)
    assert link.effective_error_rate == 0.0
    stats = injector.stats
    assert stats.faults_raised == 1
    assert stats.faults_cleared == 1
    assert stats.by_kind == {LINK_ERROR_BURST: 1}
    assert stats.fault_ns_by_target["node0->sw0"] == 5_000


def test_injector_permanent_fault_never_cleared():
    cluster = small_cluster()
    env = cluster.env
    campaign = FaultCampaign.of("cable_cut", [
        FaultEvent(at_ns=500, kind=LINK_DOWN, target="sw0->node1"),
    ])
    done = FaultInjector(cluster).run(campaign)
    env.run(until=done)
    link = cluster.fabric.find_link("sw0->node1")
    assert not link.is_up  # stays down forever


def test_injector_mixed_campaign_stats_are_deterministic():
    def run_once():
        cluster = small_cluster()
        campaign = FaultCampaign.of("mixed", [
            FaultEvent(at_ns=1_000, kind=LINK_ERROR_BURST,
                       target="node0->sw0", duration_ns=3_000,
                       params={"rate": 0.5}),
            FaultEvent(at_ns=2_000, kind=SWITCH_PORT_DOWN, target="sw0:0",
                       duration_ns=4_000),
            FaultEvent(at_ns=2_500, kind=LANAI_STALL, target="node1",
                       duration_ns=1_000),
            FaultEvent(at_ns=3_000, kind=DAEMON_CRASH, target="node0",
                       duration_ns=2_000),
        ], seed=11)
        injector = FaultInjector(cluster)
        done = injector.run(campaign)
        cluster.env.run(until=done)
        return injector.stats.as_dict()

    first, second = run_once(), run_once()
    assert first == second
    assert first["faults_raised"] == 4
    assert first["faults_cleared"] == 4  # stall self-clears at expiry


# -------------------------------------- CRC-drop path (satellite test)
def test_crc_error_detected_counted_dropped_never_recovered():
    """error_rate=1.0: every packet is corrupted on the wire.  The LCP
    must detect the bad CRC, bump its counter, drop the packet, and leave
    the receiver's memory untouched — and nobody retransmits."""
    cluster = small_cluster(link=LinkParams(error_rate=1.0))
    env = cluster.env
    _, tx = cluster.nodes[0].attach_process("s")
    _, rx = cluster.nodes[1].attach_process("r")
    inbox = rx.alloc_buffer(4096)
    inbox.fill(0)
    src = tx.alloc_buffer(4096)
    src.fill(0x5A)

    def app():
        yield rx.export(inbox, "inbox")
        imported = yield tx.import_buffer("node1", "inbox")
        yield tx.send(src, imported, 1024)

    env.run(until=env.process(app()))
    env.run(until=env.now + 2_000_000)
    lossy_links = [l for l in cluster.fabric.links if l.errors_injected]
    assert lossy_links, "no link corrupted anything at error_rate=1.0"
    assert cluster.nodes[1].lcp.crc_drops >= 1
    # Dropped means dropped: the receive buffer never changed.
    assert bytes(inbox.read(0, 1024)) == b"\x00" * 1024
